"""Table 1: complexity comparison of the sketch families.

Regenerates the table numerically for the paper's default workload
(N = 10 M, Λ = 25, Δ = 1e-10, ~0.4 M keys) and checks the qualitative
ordering the paper claims: ReliableSketch's space is additive (close to the
heap-based optimum, far below the multiplicative counter-based cost) and its
time is O(1)-like (far below the heap-based logarithm).
"""

from __future__ import annotations

from conftest import run_once

from repro.core import analysis
from repro.experiments import tables


def test_table1_complexity(benchmark):
    rows = run_once(
        benchmark,
        analysis.complexity_table,
        1e7,
        25.0,
        1e-10,
        4e5,
    )
    print()
    print(tables.complexity_table_text())

    by_family = {row.family: row for row in rows}
    ours = by_family["ReliableSketch (Ours)"]
    counter = by_family["Counter-based (L1)"]
    heap = by_family["Heap-based"]

    # Space: ours ~ N/Λ + ln(1/Δ), counter-based ~ N/Λ · ln(1/δ): >10x larger.
    assert counter.space_estimate > 10 * ours.space_estimate
    assert ours.space_estimate < 2 * heap.space_estimate
    # Time: ours ~ O(1); heap-based pays the logarithm.
    assert ours.time_estimate < 1.1
    assert heap.time_estimate > 5 * ours.time_estimate

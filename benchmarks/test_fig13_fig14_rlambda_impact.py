"""Figures 13 and 14: impact of the threshold ratio R_λ.

Paper result: memory for zero outliers drops steeply as R_λ grows from 1.2
to ~2, reaches its minimum around 2-2.5 and stays flat afterwards
(Figure 13); under an AAE target the influence of R_λ is small once R_w is
moderate (Figure 14).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.parameters import rlambda_sweep
from repro.metrics.memory import BYTES_PER_KB

R_LAMBDA_VALUES = [1.4, 2.5, 6.0, 9.0]


def _print(curves, title):
    print(f"\n{title}")
    for curve in curves:
        readings = {
            p.parameter: ("n/a" if p.memory_bytes is None else f"{p.memory_bytes / BYTES_PER_KB:.1f}KB")
            for p in curve.points
        }
        print(f"  R_w={curve.fixed_value}: {readings}")


def test_fig13_rlambda_zero_outlier_memory(benchmark, bench_scale):
    curves = run_once(
        benchmark,
        rlambda_sweep,
        dataset_name="ip",
        r_lambda_values=R_LAMBDA_VALUES,
        r_w_values=[2.0],
        tolerance=25.0,
        scale=bench_scale,
        seed=1,
    )
    _print(curves, "Figure 13 — zero-outlier memory vs R_lambda")
    points = {p.parameter: p.memory_bytes for p in curves[0].points}
    assert points[2.5] is not None
    # The recommended R_λ = 2.5 is no worse than the extreme settings.
    for extreme in (1.4, 9.0):
        assert points[extreme] is None or points[2.5] <= points[extreme] * 1.1


def test_fig14_rlambda_memory_for_target_aae(benchmark, bench_scale):
    curves = run_once(
        benchmark,
        rlambda_sweep,
        dataset_name="ip",
        r_lambda_values=[2.5, 6.0],
        r_w_values=[4.0],
        tolerance=25.0,
        target_aae=5.0,
        scale=bench_scale,
        seed=1,
    )
    _print(curves, "Figure 14 — memory for AAE ≤ 5 vs R_lambda")
    found = [p.memory_bytes for p in curves[0].points if p.memory_bytes is not None]
    assert found
    # With R_w ≥ 4 the paper finds R_λ makes little difference.
    assert max(found) <= 3 * min(found)

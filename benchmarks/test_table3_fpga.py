"""Table 3: FPGA synthesis-style report of the ReliableSketch modules."""

from __future__ import annotations

from conftest import run_once

from repro.core.config import ReliableConfig
from repro.experiments import tables
from repro.hardware.fpga import FpgaModel
from repro.metrics.memory import mb


def test_table3_fpga_resources(benchmark):
    config = ReliableConfig.from_memory(mb(1), tolerance=25.0)
    report = run_once(benchmark, FpgaModel().synthesize, config)
    print()
    print(tables.fpga_table_text(config))

    # Published totals: 2654 LUTs, 2834 registers, ~259 BRAM tiles, 340 MHz.
    assert report.total_luts == 2654
    assert report.total_registers == 2834
    assert abs(report.total_bram - 259) / 259 < 0.2
    assert report.clock_mhz == 340.0
    # Fully pipelined: throughput equals the clock (≈340 M insertions/s).
    assert report.throughput_mops == 340.0
    assert report.lut_utilisation < 0.01
    assert report.bram_utilisation < 0.25

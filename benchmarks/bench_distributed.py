"""Distributed-ingest benchmark — per-transport cost of going remote.

Three measurements, written to ``BENCH_distributed.json``:

1. **Serialization overhead** — pure wire cost, no transport: encode and
   decode every chunk of the stream through
   ``repro.distributed.wire.encode_batch``/``decode_batch`` and record
   items/sec and wire bytes per item.  This bounds what any backend can
   lose to the wire format itself.
2. **Per-transport ingest** — for each backend (``inproc`` queue, ``pipe``
   processes, ``tcp`` sockets) and each benchmarked algorithm, run the full
   coordinator -> workers -> collector pipeline and record ingest
   throughput, wire volume in both directions, tree-merge latency and the
   ``bit_identical`` flag against a single-node sketch fed the same stream
   (CM/Count must be exact; CU records its documented never-underestimates
   guarantee instead).
3. **Single-node baseline** — the same stream batch-inserted into one local
   sketch, so every transport row reads as a ratio against staying local.
4. **Reshard under load** — the dynamic fleet splits its busiest worker a
   third of the way into the stream and folds it back at two thirds;
   recorded against a quiet dynamic fleet: items/s dip, per-handoff
   latency, the epoch trail, and ``bit_identical`` against a local static
   ``partitions``-shard fleet (the no-failure reshard path must not move a
   single counter).

Correctness here is pinned by ``tests/distributed/``; the JSON is a pure
performance artifact.  Read it against ``environment.cpu_count`` — on a
single-core container the process-backed ``pipe`` backend cannot overlap
with the coordinator, so its ratio is a floor, not a verdict (see
``docs/benchmarks.md``).

Not collected by pytest (the module name avoids the ``test_`` prefix); run
it directly::

    PYTHONPATH=src python benchmarks/bench_distributed.py
    PYTHONPATH=src python benchmarks/bench_distributed.py --count 20000 --transports inproc
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.distributed.ingest import run_distributed_ingest
from repro.distributed.wire import decode_batch, encode_batch
from repro.metrics.throughput import measure_batch_throughput
from repro.sketches.registry import build_sketch
from repro.sketches.sharded import ShardedSketch
from repro.streams.items import chunked
from repro.streams.synthetic import zipf_stream

ALGORITHMS = ("CM_fast", "CU_fast", "Count")
DEFAULT_TRANSPORTS = ("inproc", "pipe", "tcp")

DEFAULT_COUNT = 400_000
DEFAULT_SKEW = 1.1
DEFAULT_CHUNK = 8192
DEFAULT_MEMORY_BYTES = 64 * 1024
DEFAULT_WORKERS = 4


def bench_serialization(items, chunk_size: int) -> dict:
    """Pure wire cost: encode/decode every chunk, no transport in the loop."""
    chunks = [
        ([key for key, _ in chunk], [value for _, value in chunk])
        for chunk in chunked(items, chunk_size)
    ]
    start = time.perf_counter()
    payloads = [encode_batch(keys, values) for keys, values in chunks]
    encode_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for payload in payloads:
        decode_batch(payload)
    decode_seconds = time.perf_counter() - start

    wire_bytes = sum(len(payload) for payload in payloads)
    return {
        "chunk_size": chunk_size,
        "chunks": len(chunks),
        "encode_seconds": encode_seconds,
        "decode_seconds": decode_seconds,
        "encode_items_per_s": len(items) / max(encode_seconds, 1e-9),
        "decode_items_per_s": len(items) / max(decode_seconds, 1e-9),
        "wire_bytes": wire_bytes,
        "bytes_per_item": wire_bytes / max(len(items), 1),
    }


def bench_transport(transport: str, name: str, items, keys, truth, single,
                    single_ips: float, memory_bytes: float, workers: int,
                    chunk_size: int, seed: int) -> dict:
    """One full coordinator->workers->collector run over one backend."""
    result = run_distributed_ingest(
        name, memory_bytes, items,
        workers=workers, transport=transport, chunk_size=chunk_size, seed=seed,
    )
    ingest_ips = result.total_items / max(result.ingest_seconds, 1e-9)
    row = {
        "transport": transport,
        "algorithm": name,
        "workers": workers,
        "ingest_seconds": result.ingest_seconds,
        "ingest_ips": ingest_ips,
        "single_node_ips": single_ips,
        "distributed_vs_single": ingest_ips / max(single_ips, 1e-9),
        "merge_seconds": result.merge_seconds,
        "bytes_sent": result.bytes_sent,
        "bytes_received": result.bytes_received,
        "items_per_worker": list(result.items_per_worker),
    }
    if result.merged is not None:
        merged_answers = result.merged.query_batch(keys)
        row["bit_identical"] = bool((merged_answers == single.query_batch(keys)).all())
        if name.startswith("CU"):
            # CU's merge is an upper bound by contract, not bit-identical:
            # the meaningful regression signal is "never below the exact
            # counts" (comparing against the routed answers would be true by
            # construction — sums of non-negative tables always dominate).
            row["merge_never_underestimates"] = bool((merged_answers >= truth).all())
    else:
        # Snapshotable but unmergeable (ReliableSketch): the queryable
        # result is the routed sharded view, and the regression signal is
        # its bit-identity against a local sharded ingest of the same
        # stream over the same partition.
        local = ShardedSketch.from_registry(
            name, memory_bytes, workers, seed=seed
        )
        local.insert_stream(items, batch_size=chunk_size)
        row["bit_identical"] = bool(
            (result.sharded().query_batch(keys) == local.query_batch(keys)).all()
        )
        row["merged"] = None
    return row


def bench_reshard(name: str, items, keys, memory_bytes: float, workers: int,
                  partitions: int, chunk_size: int, seed: int) -> dict:
    """Reshard-under-load: live fleet surgery vs the same dynamic fleet at rest.

    Two runs over the identical stream: a quiet dynamic fleet (the baseline)
    and one that splits the busiest worker a third of the way in and folds
    the new worker back at two thirds.  The row records the throughput dip,
    per-handoff latency, the epoch trail, and ``bit_identical`` against a
    local static ``partitions``-shard fleet — the no-failure reshard path
    must not move a single counter.
    """
    from repro.distributed.ingest import run_dynamic_ingest

    quiet = run_dynamic_ingest(
        name, memory_bytes, items,
        workers=workers, partitions=partitions, transport="inproc",
        chunk_size=chunk_size, seed=seed,
    )
    quiet_ips = quiet.total_items / max(quiet.ingest_seconds, 1e-9)

    chunks_total = max(1, -(-len(items) // chunk_size))
    new_ids: list[int] = []

    def split(coordinator):
        busiest = max(
            coordinator.alive_workers(),
            key=lambda w: len(coordinator.router.partitions_of(w)),
        )
        new_ids.append(coordinator.split_worker(busiest))

    def merge(coordinator):
        if new_ids and new_ids[-1] in coordinator.alive_workers():
            coordinator.merge_workers(
                new_ids[-1], coordinator._least_loaded(exclude={new_ids[-1]})
            )

    result = run_dynamic_ingest(
        name, memory_bytes, items,
        workers=workers, partitions=partitions, transport="inproc",
        chunk_size=chunk_size, seed=seed,
        actions={max(1, chunks_total // 3): split,
                 max(2, 2 * chunks_total // 3): merge},
    )
    ingest_ips = result.total_items / max(result.ingest_seconds, 1e-9)

    local = ShardedSketch.from_registry(name, memory_bytes, partitions, seed=seed)
    local.insert_stream(items, batch_size=chunk_size)
    bit_identical = bool(
        (result.sharded().query_batch(keys) == local.query_batch(keys)).all()
    )
    handoff_seconds = [record["seconds"] for record in result.handoffs]
    return {
        "algorithm": name,
        "transport": "inproc",
        "workers": workers,
        "partitions": partitions,
        "ingest_ips": ingest_ips,
        "static_ips": quiet_ips,
        "reshard_vs_static": ingest_ips / max(quiet_ips, 1e-9),
        "handoffs": len(result.handoffs),
        "handoff_seconds_mean": float(np.mean(handoff_seconds)) if handoff_seconds else 0.0,
        "handoff_seconds_max": float(np.max(handoff_seconds)) if handoff_seconds else 0.0,
        "handoff_items_moved": int(sum(r["items"] for r in result.handoffs)),
        "final_epoch": result.epoch,
        "max_outstanding": result.max_outstanding,
        "bit_identical": bit_identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--count", type=int, default=DEFAULT_COUNT,
                        help="stream length (default: %(default)s)")
    parser.add_argument("--skew", type=float, default=DEFAULT_SKEW,
                        help="Zipf skew (default: %(default)s)")
    parser.add_argument("--chunk-size", type=int, default=DEFAULT_CHUNK,
                        help="coordinator chunk size (default: %(default)s)")
    parser.add_argument("--memory-bytes", type=float, default=DEFAULT_MEMORY_BYTES,
                        help="per-worker sketch memory budget (default: %(default)s)")
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS,
                        help="ingest workers / shards (default: %(default)s)")
    parser.add_argument("--transports", default=",".join(DEFAULT_TRANSPORTS),
                        help="comma-separated backends to benchmark "
                             "(default: %(default)s)")
    parser.add_argument("--algorithms", default=",".join(ALGORITHMS),
                        help="comma-separated registry names (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=0, help="hash seed")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent / "BENCH_distributed.json",
                        help="output JSON path (default: repo root)")
    args = parser.parse_args(argv)
    transports = tuple(name for name in args.transports.split(",") if name)
    algorithms = tuple(name for name in args.algorithms.split(",") if name)

    stream = zipf_stream(args.count, skew=args.skew, seed=args.seed + 1)
    items = [(item.key, item.value) for item in stream]
    keys = stream.keys()
    counts = stream.counts()
    truth = np.asarray([counts[key] for key in keys], dtype=np.int64)
    print(
        f"stream: {len(items)} items, {len(keys)} distinct keys, skew {args.skew}; "
        f"{args.workers} workers, chunk {args.chunk_size}, cpu_count={os.cpu_count()}"
    )

    serialization = bench_serialization(items, args.chunk_size)
    print(
        f"wire: encode {serialization['encode_items_per_s']:,.0f} items/s, "
        f"decode {serialization['decode_items_per_s']:,.0f} items/s, "
        f"{serialization['bytes_per_item']:.2f} B/item"
    )

    transport_rows = []
    ok = True
    for name in algorithms:
        single = build_sketch(name, args.memory_bytes, seed=args.seed)
        single_insert = measure_batch_throughput(
            lambda chunk, s=single: s.insert_batch(
                [key for key, _ in chunk], [value for _, value in chunk]
            ),
            items,
            args.chunk_size,
        )
        for transport in transports:
            row = bench_transport(
                transport, name, items, keys, truth, single,
                single_insert.ops_per_second,
                args.memory_bytes, args.workers, args.chunk_size, args.seed,
            )
            transport_rows.append(row)
            if not name.startswith("CU") and not row["bit_identical"]:
                ok = False
            print(
                f"{transport:>7} {name:>8}: {row['ingest_ips']:>10,.0f} items/s "
                f"({row['distributed_vs_single']:.2f}x single-node), "
                f"merge {row['merge_seconds'] * 1e3:.2f} ms, "
                f"wire {row['bytes_sent']:,} B out, "
                f"bit_identical={row['bit_identical']}"
            )

    partitions = max(2 * args.workers, 2)
    reshard_rows = []
    for name in algorithms:
        row = bench_reshard(
            name, items, keys, args.memory_bytes, args.workers, partitions,
            args.chunk_size, args.seed,
        )
        reshard_rows.append(row)
        if not row["bit_identical"]:
            ok = False
        print(
            f"reshard {name:>8}: {row['ingest_ips']:>10,.0f} items/s "
            f"({row['reshard_vs_static']:.2f}x quiet fleet), "
            f"{row['handoffs']} handoffs "
            f"(mean {row['handoff_seconds_mean'] * 1e3:.2f} ms, "
            f"max {row['handoff_seconds_max'] * 1e3:.2f} ms), "
            f"epoch {row['final_epoch']}, "
            f"bit_identical={row['bit_identical']}"
        )

    payload = {
        "workload": {
            "stream": "zipf",
            "count": args.count,
            "skew": args.skew,
            "distinct_keys": len(keys),
            "chunk_size": args.chunk_size,
            "memory_bytes": args.memory_bytes,
            "workers": args.workers,
            "seed": args.seed,
        },
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "serialization": serialization,
        "transports": transport_rows,
        "reshard": reshard_rows,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    if not ok:
        print("ERROR: a distributed run diverged from its local reference "
              "(merge vs single-node, or reshard vs static fleet)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 6: #Outliers vs memory on the other datasets.

Paper result: ReliableSketch needs the least memory regardless of the
dataset; on the nearly-uniform Zipf(0.3) stream nobody reaches zero within
4 MB but ReliableSketch has over 50x fewer outliers than the others.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.experiments.outliers import outliers_vs_memory
from repro.metrics.memory import BYTES_PER_KB

ALGORITHMS = ("Ours", "CM_acc", "CU_acc", "CM_fast", "CU_fast", "Elastic", "SS", "Coco")
DATASETS = ["web", "datacenter", "zipf-0.3", "zipf-3.0"]


@pytest.mark.parametrize("dataset_name", DATASETS)
def test_fig6_outliers_on_dataset(benchmark, dataset_name, bench_scale, bench_memory_points):
    scale = bench_scale if not dataset_name.startswith("zipf") else bench_scale / 3
    curves = run_once(
        benchmark,
        outliers_vs_memory,
        dataset_name=dataset_name,
        tolerance=25.0,
        scale=scale,
        memory_points=bench_memory_points,
        algorithms=ALGORITHMS,
        seed=1,
    )
    print(f"\nFigure 6 ({dataset_name}) — #outliers per memory point")
    for curve in curves:
        memories = [f"{m / BYTES_PER_KB:.1f}KB" for m in curve.memory_bytes]
        print(f"  {curve.algorithm:>8}: {dict(zip(memories, curve.outliers))}")

    by_name = {curve.algorithm: curve for curve in curves}
    ours = by_name["Ours"]
    # At the largest memory point ReliableSketch has the fewest outliers
    # (strictly fewer than the plain CM/CU variants).
    final_ours = ours.outliers[-1]
    assert final_ours <= min(curve.outliers[-1] for curve in curves)
    assert final_ours <= by_name["CM_acc"].outliers[-1]
    # On the skewed datasets it reaches exactly zero within the sweep.
    if dataset_name != "zipf-0.3":
        assert ours.zero_outlier_memory() is not None

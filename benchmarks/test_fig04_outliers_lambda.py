"""Figure 4: #Outliers vs memory for Λ = 5 and Λ = 25 (IP trace).

Paper result: for both tolerances ReliableSketch reaches zero outliers with
the least memory (zero at 1 MB for Λ = 25) while the counter-based
competitors still report thousands of outliers at the same budget.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.experiments.outliers import outliers_vs_memory
from repro.metrics.memory import BYTES_PER_KB

ALGORITHMS = ("Ours", "CM_acc", "CU_acc", "CM_fast", "CU_fast", "Elastic", "SS", "Coco")


@pytest.mark.parametrize("tolerance", [5.0, 25.0], ids=["lambda5", "lambda25"])
def test_fig4_outliers_vs_memory(benchmark, tolerance, bench_scale, bench_memory_points):
    curves = run_once(
        benchmark,
        outliers_vs_memory,
        dataset_name="ip",
        tolerance=tolerance,
        scale=bench_scale,
        memory_points=bench_memory_points,
        algorithms=ALGORITHMS,
        seed=1,
    )
    print(f"\nFigure 4 (Λ={tolerance:g}) — #outliers per memory point")
    for curve in curves:
        memories = [f"{m / BYTES_PER_KB:.1f}KB" for m in curve.memory_bytes]
        print(f"  {curve.algorithm:>8}: {dict(zip(memories, curve.outliers))}")

    by_name = {curve.algorithm: curve for curve in curves}
    ours = by_name["Ours"]
    if tolerance == 25.0:
        # For Λ = 25 the stronger claim holds: zero outliers within the sweep,
        # before any competitor gets there.
        assert ours.zero_outlier_memory() is not None
        for name, curve in by_name.items():
            if name == "Ours":
                continue
            competitor_zero = curve.zero_outlier_memory()
            assert competitor_zero is None or competitor_zero >= ours.zero_outlier_memory()
        # At the memory point where ours first hits zero, the accurate CM
        # variant still has outliers (the paper reports >5000 at 1 MB).
        index = ours.outliers.index(0)
        assert by_name["CM_acc"].outliers[index] > 0
    else:
        # For the tight Λ = 5 the whole sweep is memory-starved (N/Λ is 5x
        # larger than any swept budget) and the reduced-scale surrogate makes
        # this panel the weakest reproduction (see the deviation notes in
        # EXPERIMENTS.md): only the dominance over the accurate Count-Min
        # variant survives at every swept point, and the outlier count must
        # still improve monotonically along the sweep.
        for index in range(len(bench_memory_points)):
            assert ours.outliers[index] <= by_name["CM_acc"].outliers[index]
        assert ours.outliers[-1] < ours.outliers[0]

"""Conflict-free update kernels vs. the PR 1 per-item batch loops.

Measures, for every order-dependent family ported onto the kernel
subsystem (CU, ReliableSketch with and without the mice filter, Elastic)
and for every available kernel backend (``python-replay``,
``numpy-grouped``, and ``numba`` when installed), the batch-insert and
batch-query throughput over the same Zipfian workload
``bench_batch_throughput.py`` uses — and verifies on the *full stream*
that each backend leaves the sketch bit-identical to the scalar insert
loop (estimates for every key, hash-call accounting and, for
ReliableSketch, the failure/settling statistics).

Two baselines anchor the speedups.  The scalar reference fill is *timed*
(``per_item_insert_ips``): it inserts one item at a time through the
public ``insert`` path, exactly the pre-kernel datapath of the ported
families, so ``speedup_vs_per_item`` measures what the batch engines buy
over per-item replay.  The ``python-replay`` rows double as an in-run
batch baseline (per-item kernel replay behind the batch front end), and
the committed PR 1 numbers are read from ``BENCH_throughput.json`` so
the JSON also records the speedup against the recorded history.

Not collected by pytest (the module name avoids the ``test_`` prefix); run
it directly::

    PYTHONPATH=src python benchmarks/bench_kernels.py
    PYTHONPATH=src python benchmarks/bench_kernels.py --count 100000
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import ReliableSketch
from repro.kernels import available_backends, use_backend
from repro.metrics.throughput import measure_batch_throughput
from repro.sketches.registry import build_sketch
from repro.streams.synthetic import zipf_stream

#: Families whose order-dependent inner loops run on the kernel subsystem.
#: ``CU_acc`` is the deep-sketch configuration (d=16, the paper's accurate
#: variant): same kernels as ``CU_fast``, 16 interfering rows instead of 3 —
#: the stress case for the fixpoint relaxation noted as unbenchmarked in the
#: ROADMAP.  Coco, HashPipe and PRECISION are the pipeline competitors
#: ported in the final kernel batch: probabilistic replacement, eviction
#: walks and probabilistic recirculation respectively.
FAMILIES = (
    "CU_fast", "CU_acc", "Ours", "Ours(Raw)", "Elastic",
    "Coco", "HashPipe", "PRECISION",
)

DEFAULT_COUNT = 1_000_000
DEFAULT_SKEW = 1.1
DEFAULT_CHUNK = 65_536
DEFAULT_MEMORY_BYTES = 64 * 1024


def _fill_batched(sketch, items, chunk_size):
    return measure_batch_throughput(
        lambda chunk, s=sketch: s.insert_batch(
            [item[0] for item in chunk], [item[1] for item in chunk]
        ),
        items,
        chunk_size,
    )


def _bit_identical(reference, expected, insert_calls, candidate, keys) -> bool:
    """Full-stream equivalence: estimates, insert hash calls, statistics.

    ``expected`` and ``insert_calls`` are the reference's estimates and
    post-fill hash-call counter, captured once per family; the candidate's
    counter is read before its own queries so both sides count exactly the
    insert-time hashing.
    """
    if candidate.hash_calls() != insert_calls:
        return False
    if not bool((candidate.query_batch(keys) == expected).all()):
        return False
    if isinstance(reference, ReliableSketch):
        if reference.insert_failures != candidate.insert_failures:
            return False
        if reference.inserts_settled_per_layer != candidate.inserts_settled_per_layer:
            return False
    # PRECISION's public recirculation counter is part of its observable
    # state and must survive the kernel port.
    if getattr(reference, "recirculations", None) != getattr(
        candidate, "recirculations", None
    ):
        return False
    return True


def _load_pr1_baselines(path: Path) -> dict[str, float]:
    """Committed PR 1 batch-insert ips by family (empty if unavailable)."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return {}
    return {
        row["algorithm"]: row["batch_insert_ips"]
        for row in payload.get("results", [])
        if "batch_insert_ips" in row
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--count", type=int, default=DEFAULT_COUNT,
                        help="stream length (default: %(default)s)")
    parser.add_argument("--skew", type=float, default=DEFAULT_SKEW,
                        help="Zipf skew (default: %(default)s)")
    parser.add_argument("--chunk-size", type=int, default=DEFAULT_CHUNK,
                        help="batch chunk size (default: %(default)s)")
    parser.add_argument("--memory-bytes", type=float, default=DEFAULT_MEMORY_BYTES,
                        help="per-sketch memory budget (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=0, help="hash seed")
    parser.add_argument("--baseline", type=Path,
                        default=Path(__file__).resolve().parent.parent / "BENCH_throughput.json",
                        help="PR 1 throughput JSON for the recorded baselines")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent / "BENCH_kernels.json",
                        help="output JSON path (default: repo root)")
    args = parser.parse_args(argv)

    stream = zipf_stream(args.count, skew=args.skew, seed=args.seed + 1)
    items = [(item.key, item.value) for item in stream]
    keys = stream.keys()
    query_keys = keys + [10**9 + i for i in range(25)]
    # Measure the replay baseline first so the faster backends can report
    # their speedup against it.
    backends = tuple(
        name
        for name in ("python-replay", "numpy-grouped", "numba")
        if name in available_backends()
    )
    pr1 = _load_pr1_baselines(args.baseline)
    print(
        f"stream: {len(items)} items, {len(keys)} distinct keys, skew {args.skew}; "
        f"backends: {', '.join(backends)}"
    )

    results = []
    for family in FAMILIES:
        # One scalar-filled reference per family anchors the bit-identity
        # checks of every backend; timing it yields the per-item baseline
        # (the pre-kernel datapath inserted exactly like this loop).
        reference = build_sketch(family, args.memory_bytes, seed=args.seed)
        start = time.perf_counter()
        for key, value in items:
            reference.insert(key, value)
        per_item_ips = len(items) / (time.perf_counter() - start)
        insert_calls = reference.hash_calls()
        expected = reference.query_batch(query_keys)
        replay_ips = None
        for backend in backends:
            with use_backend(backend):
                sketch = build_sketch(family, args.memory_bytes, seed=args.seed)
            insert = _fill_batched(sketch, items, args.chunk_size)
            identical = _bit_identical(reference, expected, insert_calls, sketch, query_keys)
            query = measure_batch_throughput(
                lambda chunk, s=sketch: s.query_batch(chunk), keys, args.chunk_size
            )
            row = {
                "family": family,
                "backend": backend,
                "insert_ips": insert.ops_per_second,
                "query_ips": query.ops_per_second,
                "bit_identical": identical,
                "per_item_insert_ips": per_item_ips,
                "speedup_vs_per_item": insert.ops_per_second / per_item_ips,
            }
            if backend == "python-replay":
                replay_ips = insert.ops_per_second
            if replay_ips:
                row["speedup_vs_python_replay"] = insert.ops_per_second / replay_ips
            if family in pr1:
                row["pr1_batch_insert_ips"] = pr1[family]
                row["speedup_vs_pr1"] = insert.ops_per_second / pr1[family]
            results.append(row)
            print(
                f"{family:>10} {backend:>14}: insert {insert.ops_per_second:>10.0f} items/s"
                f" ({row['speedup_vs_per_item']:.1f}x vs per-item)"
                f"  query {query.ops_per_second:>10.0f} items/s"
                + ("" if identical else "  BIT-IDENTITY FAILED")
            )

    try:
        import numba  # noqa: F401 - version probe only

        numba_version = numba.__version__
    except ImportError:
        numba_version = None
    payload = {
        "workload": {
            "stream": "zipf",
            "count": args.count,
            "skew": args.skew,
            "distinct_keys": len(keys),
            "chunk_size": args.chunk_size,
            "memory_bytes": args.memory_bytes,
            "seed": args.seed,
        },
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "numpy": np.__version__,
            "numba": numba_version,
        },
        "baseline_source": str(args.baseline.name) if pr1 else None,
        "results": results,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0 if all(row["bit_identical"] for row in results) else 1


if __name__ == "__main__":
    sys.exit(main())

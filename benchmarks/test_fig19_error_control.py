"""Figure 19: the error-controlling ability of ReliableSketch.

Paper results: the number of keys associated with each layer falls faster
than exponentially (Figure 19a), and the sorted per-key error distribution of
ReliableSketch stays entirely below Λ while CM's does not (Figure 19b).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.sensing import error_distribution, layer_distribution
from repro.metrics.memory import BYTES_PER_KB


def test_fig19a_layer_distribution(benchmark, bench_scale):
    # The paper sweeps 1000-2000 KB; the lower end of that range is dominated
    # by insertion failures at 0.2% scale (integer thresholds get too coarse),
    # so the benchmark uses the upper part of the sweep where the decay shape
    # is meaningful.
    distributions = run_once(
        benchmark,
        layer_distribution,
        dataset_name="ip",
        memory_megabytes=[1.5, 2.0, 3.0],
        tolerance=25.0,
        scale=bench_scale,
        seed=1,
    )
    print("\nFigure 19a — keys settling per layer")
    for distribution in distributions:
        print(f"  {distribution.memory_bytes / BYTES_PER_KB:6.1f}KB: {distribution.keys_per_layer}")

    for distribution in distributions:
        per_layer = distribution.keys_per_layer
        # Layer 1 holds the most keys and the tail dies out.
        assert per_layer[0] == max(per_layer)
        assert per_layer[-1] <= per_layer[0] // 10 or per_layer[-1] == 0
        # Decay is at least as fast as halving per layer over the first four
        # layers, the "faster than exponential" observation of the paper.
        for earlier, later in zip(per_layer[:3], per_layer[1:4]):
            assert later <= max(earlier, 1)
    # More memory pushes keys towards the first layer.
    assert distributions[-1].keys_per_layer[0] >= distributions[0].keys_per_layer[0]


def test_fig19b_error_distribution(benchmark, bench_scale):
    distribution = run_once(
        benchmark,
        error_distribution,
        dataset_name="ip",
        memory_megabytes=1.0,
        tolerance=25.0,
        scale=bench_scale,
        seed=1,
    )
    ours = distribution["ours_actual"]
    sensed = distribution["ours_sensed"]
    cm = distribution["cm_actual"]
    print("\nFigure 19b — top-10 sorted absolute errors")
    print(f"  Ours(actual): {ours[:10]}")
    print(f"  Ours(sensed): {sensed[:10]}")
    print(f"  CM          : {cm[:10]}")

    # Every error of ReliableSketch is controlled below Λ = 25.
    assert max(ours) <= 25
    # CM cannot control the tail: its worst error exceeds Λ.
    assert max(cm) > 25
    # The sensed distribution dominates the actual one.
    assert max(sensed) >= max(ours)

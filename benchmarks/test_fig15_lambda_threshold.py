"""Figure 15: memory usage as a function of the error threshold Λ.

Paper result: under the zero-outlier target, memory is almost inversely
proportional to Λ — the optimal Λ is exactly the largest error the user can
tolerate (Figure 15a).  Under an AAE target the optimal Λ is 2-3x the target
AAE (Figure 15b).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.parameters import lambda_sweep
from repro.metrics.memory import BYTES_PER_KB

TOLERANCES = [25.0, 50.0, 100.0]


def test_fig15a_memory_vs_lambda_zero_outlier(benchmark, bench_scale):
    results = run_once(
        benchmark,
        lambda_sweep,
        dataset_names=("ip", "web"),
        tolerances=TOLERANCES,
        scale=bench_scale,
        seed=1,
    )
    print("\nFigure 15a — zero-outlier memory vs Λ")
    for dataset_name, points in results.items():
        readings = {
            p.parameter: ("n/a" if p.memory_bytes is None else f"{p.memory_bytes / BYTES_PER_KB:.1f}KB")
            for p in points
        }
        print(f"  {dataset_name}: {readings}")

    for dataset_name, points in results.items():
        by_tolerance = {p.parameter: p.memory_bytes for p in points}
        assert by_tolerance[25.0] is not None
        # Memory decreases monotonically (within search noise) as Λ grows.
        assert by_tolerance[100.0] is not None
        assert by_tolerance[100.0] <= by_tolerance[25.0]
        # Roughly inverse proportionality: 4x the tolerance should save at
        # least a factor ~2 of memory at this scale.
        assert by_tolerance[100.0] <= by_tolerance[25.0] / 1.5


def test_fig15b_memory_vs_lambda_for_target_aae(benchmark, bench_scale):
    results = run_once(
        benchmark,
        lambda_sweep,
        dataset_names=("ip",),
        tolerances=[10.0, 25.0, 50.0],
        target_aae=5.0,
        scale=bench_scale,
        seed=1,
    )
    print("\nFigure 15b — memory for AAE ≤ 5 vs Λ")
    points = results["ip"]
    readings = {
        p.parameter: ("n/a" if p.memory_bytes is None else f"{p.memory_bytes / BYTES_PER_KB:.1f}KB")
        for p in points
    }
    print(f"  ip: {readings}")
    found = {p.parameter: p.memory_bytes for p in points if p.memory_bytes is not None}
    assert found
    # The paper's observation is that the optimal Λ sits *above* the target
    # AAE (2-3x in their full-scale runs); asserted here in the weaker,
    # scale-robust form: the cheapest swept Λ is at least the target AAE, and
    # every swept Λ can reach the target within the search budget.
    cheapest_lambda = min(found, key=found.get)
    assert cheapest_lambda >= 5.0
    assert len(found) == len(points)

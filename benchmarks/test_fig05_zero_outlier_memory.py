"""Figure 5: minimum memory to reach zero outliers, per dataset and algorithm.

Paper result (IP trace, Λ = 25): ReliableSketch needs 0.91 MB — about 6.1x,
2.7x, 2.0x and 9.3x less than CM (accurate), CU (accurate), SpaceSaving and
Elastic respectively; fast CM/CU and Coco never get there within 10 MB.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.outliers import zero_outlier_memory
from repro.metrics.memory import BYTES_PER_KB

ALGORITHMS = ("Ours", "CM_acc", "CU_acc", "SS", "Elastic")


def test_fig5_zero_outlier_memory(benchmark, bench_scale):
    results = run_once(
        benchmark,
        zero_outlier_memory,
        dataset_names=("ip", "web"),
        tolerance=25.0,
        scale=bench_scale,
        algorithms=ALGORITHMS,
        seed=1,
        high_megabytes=10.0,
    )
    print("\nFigure 5 — minimum memory for zero outliers")
    for dataset_name, per_algorithm in results.items():
        readable = {
            name: ("n/a" if memory is None else f"{memory / BYTES_PER_KB:.1f}KB")
            for name, memory in per_algorithm.items()
        }
        print(f"  {dataset_name}: {readable}")

    for dataset_name, per_algorithm in results.items():
        ours = per_algorithm["Ours"]
        assert ours is not None
        for name, memory in per_algorithm.items():
            if name == "Ours":
                continue
            # Every competitor needs at least as much memory (or never gets there).
            assert memory is None or memory >= ours * 0.9
        # At least one competitor needs ≥ 1.5x our memory (the paper reports
        # 2x-9x); at tiny scale the gap narrows but must remain visible.
        gaps = [m / ours for m in per_algorithm.values() if m is not None and m != ours]
        assert any(gap >= 1.5 for gap in gaps) or any(
            m is None for n, m in per_algorithm.items() if n != "Ours"
        )

"""Figure 16: average number of hash-function calls per insert and per query.

Paper result: with growing memory the raw ReliableSketch converges to 1 hash
call per operation (almost everything settles in layer 1) and the
mice-filtered variant to 3 (two filter arrays + one layer); CM stays flat at
its array count.  This is the platform-independent explanation of the speed
trends in Figure 10.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.speed import hash_call_profile
from repro.metrics.memory import BYTES_PER_KB


def test_fig16_hash_call_profile(benchmark, bench_scale, bench_memory_points):
    curves = run_once(
        benchmark,
        hash_call_profile,
        dataset_name="ip",
        scale=bench_scale,
        memory_points=bench_memory_points,
        algorithms=("Ours", "Ours(Raw)", "CM_fast"),
        seed=1,
    )
    print("\nFigure 16 — average hash calls per operation")
    for curve in curves:
        memories = [f"{m / BYTES_PER_KB:.1f}KB" for m in curve.memory_bytes]
        print(f"  {curve.algorithm:>9}: insert={dict(zip(memories, [round(v, 2) for v in curve.insert_calls]))}")
        print(f"  {'':>9}  query ={dict(zip(memories, [round(v, 2) for v in curve.query_calls]))}")

    by_name = {curve.algorithm: curve for curve in curves}
    # CM performs exactly `depth` = 3 calls per operation at every size.
    assert all(abs(v - 3.0) < 1e-9 for v in by_name["CM_fast"].insert_calls)
    # Hash calls per insert decrease as memory grows for both of our variants.
    for name in ("Ours", "Ours(Raw)"):
        curve = by_name[name]
        assert curve.insert_calls[-1] <= curve.insert_calls[0]
    # Limits from the paper: raw → ~1 call, filtered → ~3 calls.
    assert by_name["Ours(Raw)"].insert_calls[-1] < 1.6
    assert by_name["Ours"].insert_calls[-1] < 3.6
    # The filtered variant always pays the two extra filter lookups.
    assert all(
        filtered >= raw
        for filtered, raw in zip(by_name["Ours"].insert_calls, by_name["Ours(Raw)"].insert_calls)
    )

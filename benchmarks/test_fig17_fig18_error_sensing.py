"""Figures 17 and 18: the error-sensing ability of ReliableSketch.

Paper results: every key's true value falls within the sensed interval
(Figure 17); the average sensed error tracks the actual error closely
(Figure 18a) and both decrease as memory grows (Figure 18b).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.sensing import sensed_intervals, sensed_vs_actual, sensed_error_vs_memory
from repro.metrics.memory import BYTES_PER_KB


def test_fig17_sensed_intervals_contain_truth(benchmark, bench_scale):
    mice, elephants = run_once(
        benchmark,
        sensed_intervals,
        dataset_name="ip",
        memory_megabytes=2.0,
        tolerance=25.0,
        scale=bench_scale,
        elephant_threshold=500,
        sample_size=300,
        seed=1,
    )
    contained = sum(1 for interval in mice + elephants if interval.contains_truth)
    print(f"\nFigure 17 — sampled {len(mice)} mice + {len(elephants)} elephant intervals, "
          f"{contained} contain the truth")
    assert mice and elephants
    assert contained == len(mice) + len(elephants)


def test_fig18a_sensed_error_tracks_actual(benchmark, bench_scale):
    points = run_once(
        benchmark,
        sensed_vs_actual,
        dataset_name="ip",
        memory_megabytes=1.0,
        tolerance=25.0,
        scale=bench_scale,
        seed=1,
    )
    print("\nFigure 18a — actual error vs average sensed error")
    for point in points[:12]:
        print(f"  actual={point.actual_error:>3}  sensed={point.mean_sensed_error:6.2f}  keys={point.keys}")
    # The sensed error is a sound upper bound on the actual error...
    assert all(p.mean_sensed_error >= p.actual_error for p in points)
    # ...and it is not a wildly loose one: averaged over all keys it stays
    # within tolerance of the actual error.
    gaps = [p.mean_sensed_error - p.actual_error for p in points]
    assert sum(gaps) / len(gaps) <= 25.0


def test_fig18b_sensed_error_decreases_with_memory(benchmark, bench_scale):
    rows = run_once(
        benchmark,
        sensed_error_vs_memory,
        dataset_name="ip",
        memory_megabytes=[1.0, 1.5, 2.0, 2.5],
        tolerance=25.0,
        scale=bench_scale,
        seed=1,
    )
    print("\nFigure 18b — mean sensed / actual error vs memory")
    for memory, sensed, actual in rows:
        print(f"  {memory / BYTES_PER_KB:6.1f}KB  sensed={sensed:6.2f}  actual={actual:6.2f}")
    sensed_series = [sensed for _, sensed, _ in rows]
    actual_series = [actual for _, _, actual in rows]
    assert sensed_series[-1] <= sensed_series[0]
    assert actual_series[-1] <= actual_series[0]
    assert all(s >= a for s, a in zip(sensed_series, actual_series))

"""Figures 8 and 9: AAE and ARE vs memory (IP trace and Zipf 3.0).

Paper result: ReliableSketch's average error is comparable to the best
counter-based competitors (CU, Elastic), clearly better than CM and Coco,
and an order of magnitude better than SpaceSaving; all errors shrink as
memory grows.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.experiments.error import average_error_sweep
from repro.metrics.memory import BYTES_PER_KB

ALGORITHMS = ("Ours", "CM_fast", "CU_fast", "Elastic", "SS", "Coco")


@pytest.mark.parametrize("dataset_name", ["ip", "zipf-3.0"])
def test_fig8_fig9_average_error(benchmark, dataset_name, bench_scale, bench_memory_points):
    scale = bench_scale if dataset_name == "ip" else bench_scale / 3
    curves = run_once(
        benchmark,
        average_error_sweep,
        dataset_name=dataset_name,
        tolerance=25.0,
        scale=scale,
        memory_points=bench_memory_points,
        algorithms=ALGORITHMS,
        seed=1,
    )
    print(f"\nFigures 8/9 ({dataset_name}) — AAE and ARE per memory point")
    for curve in curves:
        memories = [f"{m / BYTES_PER_KB:.1f}KB" for m in curve.memory_bytes]
        aae = [round(v, 2) for v in curve.aae]
        are = [round(v, 3) for v in curve.are]
        print(f"  {curve.algorithm:>8}: AAE={dict(zip(memories, aae))}")
        print(f"  {'':>8}  ARE={dict(zip(memories, are))}")

    by_name = {curve.algorithm: curve for curve in curves}
    # Errors shrink (or stay flat) as memory grows, for every algorithm.
    for curve in curves:
        assert curve.aae[-1] <= curve.aae[0] + 1e-9
    # Ordering the paper reports, asserted where it survives the scale-down
    # (see EXPERIMENTS.md): on the IP trace ours beats plain CM under tight
    # memory, and on every dataset ours ends at least as accurate as
    # SpaceSaving and within a small factor of the best competitor.
    if dataset_name == "ip":
        assert by_name["Ours"].aae[0] <= by_name["CM_fast"].aae[0]
        assert by_name["Ours"].are[0] <= by_name["CM_fast"].are[0]
    assert by_name["Ours"].aae[-1] <= by_name["SS"].aae[-1] + 1e-9
    assert by_name["Ours"].are[-1] <= by_name["SS"].are[-1] + 1e-9
    best_final = min(curve.aae[-1] for curve in curves)
    assert by_name["Ours"].aae[-1] <= max(3.0 * best_final, 3.0)

"""Figures 11 and 12: impact of the width ratio R_w.

Paper result: under the zero-outlier target, R_w around 2-2.5 minimises the
memory requirement, and very small or very large R_w inflate it (Figure 11);
under an average-error target the curve is much flatter (Figure 12).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.parameters import rw_sweep
from repro.metrics.memory import BYTES_PER_KB

R_W_VALUES = [1.4, 2.0, 4.0, 9.0]


def _print(curves, title):
    print(f"\n{title}")
    for curve in curves:
        readings = {
            p.parameter: ("n/a" if p.memory_bytes is None else f"{p.memory_bytes / BYTES_PER_KB:.1f}KB")
            for p in curve.points
        }
        print(f"  R_lambda={curve.fixed_value}: {readings}")


def test_fig11_rw_zero_outlier_memory(benchmark, bench_scale):
    curves = run_once(
        benchmark,
        rw_sweep,
        dataset_name="ip",
        r_w_values=R_W_VALUES,
        r_lambda_values=[2.5],
        tolerance=25.0,
        scale=bench_scale,
        seed=1,
    )
    _print(curves, "Figure 11 — zero-outlier memory vs R_w")
    points = {p.parameter: p.memory_bytes for p in curves[0].points}
    assert points[2.0] is not None
    # R_w = 2 needs no more memory than the extreme settings (paper: optimum
    # around 2-2.5, rapid growth below 1.6 and above 3).
    for extreme in (1.4, 9.0):
        assert points[extreme] is None or points[2.0] <= points[extreme] * 1.1


def test_fig12_rw_memory_for_target_aae(benchmark, bench_scale):
    curves = run_once(
        benchmark,
        rw_sweep,
        dataset_name="ip",
        r_w_values=[2.0, 4.0, 9.0],
        r_lambda_values=[2.0],
        tolerance=25.0,
        target_aae=5.0,
        scale=bench_scale,
        seed=1,
    )
    _print(curves, "Figure 12 — memory for AAE ≤ 5 vs R_w")
    found = [p.memory_bytes for p in curves[0].points if p.memory_bytes is not None]
    assert found
    # The AAE target is much easier than the zero-outlier target, so the
    # memory spread across R_w values stays within a small factor.
    assert max(found) <= 4 * min(found)

"""Sharded ingest + parallel sweep benchmark — the scaling trajectory tracker.

Two measurements, written to ``BENCH_sharding.json``:

1. **Sharded ingest** — for each benchmarked algorithm, batch-insert the
   same Zipfian stream into a monolithic sketch and into a
   hash-partitioned :class:`ShardedSketch`, recording items/sec, the
   per-shard load split (imbalance factor) and — for mergeable families —
   that ``merge_shards()`` is bit-identical to the monolithic sketch.
2. **Parallel sweep** — run the same (algorithm × memory-point) accuracy
   grid through ``run_grid`` with ``workers=1`` and with a process pool,
   verifying the results are bit-identical and recording the wall-clock
   speedup.

Both sharded routing and parallel sweeps are exact (pinned by
``tests/sketches/test_sharded.py`` and
``tests/experiments/test_parallel_runner.py``), so the JSON is a pure
performance artifact.  The recorded ``environment.cpu_count`` is what the
speedup must be read against: on a single-core container the pool cannot
beat the sequential sweep (expect ~1x), on a 4-core runner the grid sweep
speedup lands between 2x and 4x.

Not collected by pytest (the module name avoids the ``test_`` prefix); run
it directly::

    PYTHONPATH=src python benchmarks/bench_sharding.py
    PYTHONPATH=src python benchmarks/bench_sharding.py --count 20000   # smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.experiments.parallel import resolve_workers
from repro.experiments.runner import ExperimentSettings, run_grid
from repro.metrics.throughput import measure_batch_throughput, shard_load_report
from repro.sketches.registry import build_sketch, is_mergeable
from repro.sketches.sharded import ShardedSketch
from repro.streams.synthetic import zipf_stream

SHARD_ALGORITHMS = ("CM_fast", "CU_fast", "Count", "Ours")
SWEEP_ALGORITHMS = ("Ours", "CM_fast", "CU_fast", "Count")

DEFAULT_COUNT = 400_000
DEFAULT_SKEW = 1.1
DEFAULT_CHUNK = 65_536
DEFAULT_MEMORY_BYTES = 64 * 1024
DEFAULT_SHARDS = 4


def bench_sharded_ingest(name: str, items, keys, memory_bytes: float,
                         shards: int, chunk_size: int, seed: int) -> dict:
    """Monolithic vs sharded batch-insert throughput for one algorithm."""
    def batch_insert(chunk, sketch):
        sketch.insert_batch([item[0] for item in chunk], [item[1] for item in chunk])

    single = build_sketch(name, memory_bytes, seed=seed)
    single_insert = measure_batch_throughput(
        lambda chunk, s=single: batch_insert(chunk, s), items, chunk_size
    )

    sharded = ShardedSketch.from_registry(name, memory_bytes, shards, seed=seed)
    sharded_insert = measure_batch_throughput(
        lambda chunk, s=sharded: batch_insert(chunk, s), items, chunk_size
    )
    load = shard_load_report(sharded.items_per_shard, sharded_insert.seconds)

    row = {
        "algorithm": name,
        "shards": shards,
        "unsharded_insert_ips": single_insert.ops_per_second,
        "sharded_insert_ips": sharded_insert.ops_per_second,
        "sharded_vs_unsharded": (
            sharded_insert.ops_per_second / single_insert.ops_per_second
        ),
        "items_per_shard": list(load.items_per_shard),
        "load_imbalance": load.load_imbalance,
    }
    if is_mergeable(name):
        merged = sharded.merge_shards()
        # Exact for CM/Count; CU documents an upper-bound merge instead, so
        # both facets are recorded: bit-equality with the monolithic sketch
        # and domination of the routed per-shard answers.
        row["merge_exact"] = bool(
            (merged.query_batch(keys) == single.query_batch(keys)).all()
        )
        row["merge_dominates_routing"] = bool(
            (merged.query_batch(keys) >= sharded.query_batch(keys)).all()
        )
    return row


def _grid_signature(grid) -> list:
    """Comparable projection of a run_grid result (sketches excluded)."""
    return [
        (name, memory, run.report.outliers, run.report.aae, run.report.are,
         run.report.max_error)
        for (name, memory), run in sorted(grid.items(), key=lambda kv: (kv[0][0], kv[0][1]))
    ]


def bench_parallel_sweep(stream, memory_points, workers: int, seed: int,
                         batch_size: int) -> dict:
    """Sequential vs process-pool wall-clock of the same accuracy grid."""
    sequential_settings = ExperimentSettings(seed=seed, batch_size=batch_size, workers=1)
    parallel_settings = ExperimentSettings(seed=seed, batch_size=batch_size, workers=workers)

    # Warm the cached ground truth so the one-time exact count isn't billed
    # to whichever run happens to go first.
    stream.counts()

    start = time.perf_counter()
    sequential = run_grid(SWEEP_ALGORITHMS, memory_points, stream, sequential_settings)
    sequential_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_grid(SWEEP_ALGORITHMS, memory_points, stream, parallel_settings)
    parallel_seconds = time.perf_counter() - start

    return {
        "algorithms": list(SWEEP_ALGORITHMS),
        "memory_points_bytes": list(memory_points),
        "tasks": len(SWEEP_ALGORITHMS) * len(memory_points),
        "workers": workers,
        "sequential_seconds": sequential_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": sequential_seconds / parallel_seconds,
        "bit_identical": _grid_signature(sequential) == _grid_signature(parallel),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--count", type=int, default=DEFAULT_COUNT,
                        help="stream length (default: %(default)s)")
    parser.add_argument("--skew", type=float, default=DEFAULT_SKEW,
                        help="Zipf skew (default: %(default)s)")
    parser.add_argument("--chunk-size", type=int, default=DEFAULT_CHUNK,
                        help="batch chunk size (default: %(default)s)")
    parser.add_argument("--memory-bytes", type=float, default=DEFAULT_MEMORY_BYTES,
                        help="per-sketch memory budget (default: %(default)s)")
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS,
                        help="shard count for the ingest benchmark (default: %(default)s)")
    parser.add_argument("--workers", type=int, default=0,
                        help="pool width for the sweep benchmark; 0 = one per CPU core "
                             "(default: %(default)s)")
    parser.add_argument("--seed", type=int, default=0, help="hash seed")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent / "BENCH_sharding.json",
                        help="output JSON path (default: repo root)")
    args = parser.parse_args(argv)
    workers = resolve_workers(args.workers)

    stream = zipf_stream(args.count, skew=args.skew, seed=args.seed + 1)
    items = [(item.key, item.value) for item in stream]
    keys = stream.keys()
    print(
        f"stream: {len(items)} items, {len(keys)} distinct keys, skew {args.skew}; "
        f"{workers} workers, {args.shards} shards, cpu_count={os.cpu_count()}"
    )

    sharding_rows = []
    for name in SHARD_ALGORITHMS:
        row = bench_sharded_ingest(
            name, items, keys, args.memory_bytes, args.shards, args.chunk_size, args.seed
        )
        sharding_rows.append(row)
        merge_note = (
            f" merge_exact={row['merge_exact']}" if "merge_exact" in row else ""
        )
        print(
            f"{name:>10}: unsharded {row['unsharded_insert_ips']:>10.0f} -> "
            f"sharded {row['sharded_insert_ips']:>10.0f} items/s "
            f"(imbalance {row['load_imbalance']:.3f}){merge_note}"
        )

    memory_points = [args.memory_bytes / 2, args.memory_bytes, 2 * args.memory_bytes]
    sweep = bench_parallel_sweep(
        stream, memory_points, workers, args.seed, args.chunk_size
    )
    print(
        f"sweep ({sweep['tasks']} tasks): sequential {sweep['sequential_seconds']:.2f}s, "
        f"parallel[{workers}] {sweep['parallel_seconds']:.2f}s "
        f"-> {sweep['speedup']:.2f}x, bit_identical={sweep['bit_identical']}"
    )

    payload = {
        "workload": {
            "stream": "zipf",
            "count": args.count,
            "skew": args.skew,
            "distinct_keys": len(keys),
            "chunk_size": args.chunk_size,
            "memory_bytes": args.memory_bytes,
            "shards": args.shards,
            "seed": args.seed,
        },
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "sharded_ingest": sharding_rows,
        "parallel_sweep": sweep,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    if not sweep["bit_identical"]:
        print("ERROR: parallel sweep diverged from sequential results", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

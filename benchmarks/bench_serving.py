"""Online-serving benchmark — per-transport closed loop plus concurrency sweep.

**Closed loop** (the original section): for every (transport × algorithm)
pair, launches one remote :func:`repro.serve.server.serve_main` endpoint
over the transport, then drives it with the closed-loop load generator
(:mod:`repro.serve.loadgen`): a Zipf key mix at a configurable read/write
ratio, one outstanding operation at a time.  Each row of
``BENCH_serving.json`` records:

* sustained operations/sec, read qps and ingest items/sec;
* read latency p50/p99/mean (closed-loop service latency, milliseconds);
* staleness — items between epoch publishes (mean/max) and the number of
  epochs rotated during the run;
* ``epoch_consistent`` — both correctness signals of the load generator
  held: repeat reads within one epoch were bit-identical (no torn reads)
  and the final epoch's answers equal a local reference sketch fed the
  identical write stream (CI asserts this flag on every row).

**Concurrency** (the ``"concurrency"`` section): pre-loads one service,
then sweeps client counts over tcp against two front ends serving it —
the selector event loop (:class:`~repro.serve.async_server.AsyncSketchServer`)
and the sequential accept loop (:func:`repro.serve.server.serve_forever`,
which serves one connection at a time).  Each (server × clients) row runs
the open-loop generator twice:

* *blast mode* (``target_qps=0``) — saturation throughput
  (``saturation_qps``): every client streams pipelined requests as fast as
  the socket accepts them;
* *paced mode* — Poisson arrivals at an offered load (default: half the
  measured saturation), reporting schedule-relative latency p50/p99/p99.9
  — the open-loop convention, so queueing delay counts.

Every row also carries the BUSY admission-control counters and the same
``epoch_consistent`` flag (cross-client same-epoch agreement plus final
bit-identity against a local reference), including across epoch publishes
forced mid-run on the async rows.  The ``comparison`` block divides async
by sequential saturation per client count; on a 1-core container the two
front ends time-slice one CPU, so the ratio reflects fairness and tail
latency, not parallel speedup — rows below 2x carry that note explicitly.

**Temporal** (the ``"temporal"`` section): for each subtractable family,
drives enough epoch publishes through a bounded ring to force evictions,
then measures read qps three ways against the same in-process service —
latest-epoch reads, reads pinned to a ring-resident historical epoch
(``epoch=``), and sliding-window reads (``window=``, answered by the
mergeable-family delta).  Each row verifies temporal correctness before
timing anything: the pinned answers are bit-identical to the pinned
snapshot's own (including after a further publish-and-evict), and the
windowed answers equal the exact pinned subtraction — recorded as the
row's ``epoch_consistent`` flag.  The row also counts successful epoch
pins and typed ``EPOCH_GONE`` rejections (CI asserts at least one of
each), and isolates ring-eviction overhead by timing the identical
publish schedule against a single-epoch ring.

**Warm restart** (the ``"warm_restart"`` section): ingests a stream into
a service backed by a durable store (``--store``), kills it *without*
flushing, then measures restart-to-first-answer — recover the newest
checksummed snapshot plus the WAL tail — against rebuilding the same
state by replaying the full stream from scratch.  Each row asserts
``bit_identical``: the restarted service's answers equal the replayed
reference's exactly (CI gates on this flag, like ``epoch_consistent``).

Not collected by pytest (the module name avoids the ``test_`` prefix); run
it directly::

    PYTHONPATH=src python benchmarks/bench_serving.py
    PYTHONPATH=src python benchmarks/bench_serving.py --operations 500 --transports inproc
    PYTHONPATH=src python benchmarks/bench_serving.py --skip-closed-loop \\
        --concurrency-clients 1,8 --concurrency-requests 400
    PYTHONPATH=src python benchmarks/bench_serving.py --skip-closed-loop \\
        --skip-concurrency --warm-restart-items 100000
    PYTHONPATH=src python benchmarks/bench_serving.py --skip-closed-loop \\
        --skip-concurrency --skip-warm-restart --temporal-reads 500
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import socket
import sys
import threading
from pathlib import Path

import numpy as np

from repro.distributed.transport import SocketChannel
from repro.serve.async_server import AsyncServingSession
from repro.serve.errors import EpochGoneError
from repro.serve.loadgen import (
    LoadGenConfig,
    OpenLoopConfig,
    run_loadgen,
    run_open_loop,
)
from repro.serve.server import (
    QueryClient,
    ServeConfig,
    ServingSession,
    create_listener,
    serve_forever,
)
from repro.sketches.registry import build_sketch
from repro.streams.synthetic import ZipfGenerator

#: Families benchmarked by default: the cheapest mergeable baseline, the
#: order-dependent CU, and the paper's sketch — all snapshot-rotated.
ALGORITHMS = ("CM_fast", "CU_fast", "Ours")
DEFAULT_TRANSPORTS = ("inproc", "pipe", "tcp")

DEFAULT_OPERATIONS = 4000
DEFAULT_READ_RATIO = 0.5
DEFAULT_WRITE_BATCH = 256
DEFAULT_READ_BATCH = 64
DEFAULT_SKEW = 1.1
DEFAULT_UNIVERSE = 10_000
DEFAULT_MEMORY_BYTES = 64 * 1024
DEFAULT_PUBLISH_EVERY = 8192

# --- concurrency-section defaults -----------------------------------------
DEFAULT_CONCURRENCY_CLIENTS = (1, 8)
DEFAULT_CONCURRENCY_REQUESTS = 600
DEFAULT_CONCURRENCY_READ_BATCH = 16
DEFAULT_CONCURRENCY_ALGORITHM = "Ours"
DEFAULT_PRELOAD_ITEMS = 20_000
SERVER_KINDS = ("sequential", "async")

# --- temporal-section defaults ---------------------------------------------
#: Only subtractable families answer windowed reads, so the temporal sweep
#: defaults to the two delta-capable baselines rather than ``ALGORITHMS``.
DEFAULT_TEMPORAL_ALGORITHMS = ("CM_fast", "Count")
DEFAULT_TEMPORAL_READS = 2000
DEFAULT_TEMPORAL_RING_EPOCHS = 8
DEFAULT_TEMPORAL_WINDOW = 4
DEFAULT_TEMPORAL_EPOCH_ITEMS = 2000

TEMPORAL_ONE_CORE_NOTE = (
    "single-core container: the benchmark loop and the service time-slice "
    "one CPU, so compare the modes' relative qps (pinned/windowed vs "
    "latest) and treat absolute rates and the eviction-overhead ratio as "
    "indicative, not parallel-hardware numbers (see docs/benchmarks.md)"
)

ONE_CORE_NOTE = (
    "single-core container: both front ends time-slice one CPU, so the "
    "async/sequential saturation ratio measures multiplexing overhead, not "
    "parallel speedup — compare tail latency and fairness instead "
    "(see docs/benchmarks.md)"
)


def bench_pair(transport: str, algorithm: str, args) -> dict:
    """One load-generation run against one remote service."""
    serve_config = ServeConfig(
        algorithm,
        args.memory_bytes,
        seed=args.seed,
        publish_every_items=args.publish_every,
    )
    load_config = LoadGenConfig(
        operations=args.operations,
        read_ratio=args.read_ratio,
        write_batch=args.write_batch,
        read_batch=args.read_batch,
        skew=args.skew,
        universe=args.universe,
        seed=args.seed,
    )
    reference = build_sketch(algorithm, args.memory_bytes, seed=args.seed)
    with ServingSession(serve_config, transport) as session:
        report = run_loadgen(session.client, load_config, reference=reference)
        wire_out, wire_in = session.client.bytes_sent, session.client.bytes_received
    row = {"transport": transport, "algorithm": algorithm, **report.to_row()}
    row["bytes_sent"] = wire_out
    row["bytes_received"] = wire_in
    return row


# ---------------------------------------------------------------------------
# Concurrency sweep: async event loop vs sequential accept loop, over tcp.


def _preloaded_service(algorithm: str, args):
    """A service pre-loaded with a Zipf stream, plus its local reference."""
    serve_config = ServeConfig(
        algorithm,
        args.memory_bytes,
        seed=args.seed,
        publish_every_items=args.publish_every,
    )
    service = serve_config.build_service()
    reference = build_sketch(algorithm, args.memory_bytes, seed=args.seed)
    zipf = ZipfGenerator(args.skew, universe=args.universe, seed=args.seed + 7)
    keys = zipf.draw(args.preload_items).tolist()
    service.ingest(keys)
    reference.insert_batch(keys)
    service.flush()
    return service, reference


def _sequential_endpoint(service):
    """The baseline front end: ``serve_forever`` sessions on a thread.

    Connections are served one at a time in accept order — the second
    client's first reply arrives only after the first client disconnects.
    Returns ``(connect, shutdown)`` matching the async session's shape.
    """
    listener = create_listener("127.0.0.1", 0, backlog=256)
    host, port = listener.getsockname()[:2]
    thread = threading.Thread(
        target=serve_forever, args=(listener, service, None),
        name="sequential-sketch-server", daemon=True,
    )
    thread.start()

    def connect() -> QueryClient:
        sock = socket.create_connection((host, port), timeout=30.0)
        sock.settimeout(None)
        return QueryClient(SocketChannel(sock))

    def shutdown() -> dict:
        listener.close()  # accept() raises OSError -> the loop exits
        thread.join(timeout=30)
        return {}

    return connect, shutdown


def bench_concurrency_row(server_kind: str, clients: int, algorithm: str, args) -> dict:
    """One (server × clients) row: a blast run then a paced run."""
    service, reference = _preloaded_service(algorithm, args)
    if server_kind == "async":
        session = AsyncServingSession(service, max_inflight=args.max_inflight)
        connect, shutdown = session.connect, session.shutdown
        # Rotate epochs mid-run on the async rows: consistency must hold
        # across publishes.  The sequential loop cannot interleave the
        # control connection with live sessions, so its rows skip this.
        flushes = 2
    else:
        connect, shutdown = _sequential_endpoint(service)
        flushes = 0

    blast_config = OpenLoopConfig(
        clients=clients,
        requests_per_client=args.concurrency_requests,
        target_qps=0.0,
        read_batch=args.concurrency_read_batch,
        skew=args.skew,
        universe=args.universe,
        seed=args.seed,
        flushes_during_run=flushes,
    )
    blast = run_open_loop(connect, blast_config, reference=reference)
    offered = args.offered_qps if args.offered_qps > 0 else 0.5 * blast.achieved_qps
    paced_config = OpenLoopConfig(
        clients=clients,
        requests_per_client=args.concurrency_requests,
        target_qps=offered,
        read_batch=args.concurrency_read_batch,
        skew=args.skew,
        universe=args.universe,
        seed=args.seed + 1,
        flushes_during_run=flushes,
    )
    paced = run_open_loop(connect, paced_config, reference=reference)
    stats = shutdown()

    busy = blast.busy_rejected + paced.busy_rejected
    attempts = blast.completed + paced.completed + busy
    row = {
        "server": server_kind,
        "transport": "tcp",
        "algorithm": algorithm,
        "clients": clients,
        "requests_per_client": args.concurrency_requests,
        "read_batch": args.concurrency_read_batch,
        "saturation_qps": blast.achieved_qps,
        "offered_qps": offered,
        "achieved_qps": paced.achieved_qps,
        "latency_p50_ms": paced.latency_p50_ms,
        "latency_p99_ms": paced.latency_p99_ms,
        "latency_p999_ms": paced.latency_p999_ms,
        "latency_mean_ms": paced.latency_mean_ms,
        "latency_max_ms": paced.latency_max_ms,
        "completed": blast.completed + paced.completed,
        "failed": blast.failed + paced.failed,
        "busy_rejected": busy,
        "busy_retried": blast.busy_retried + paced.busy_retried,
        "busy_rejection_rate": busy / attempts if attempts else 0.0,
        "epoch_consistent": blast.epoch_consistent and paced.epoch_consistent,
        "epochs_observed": max(blast.epochs_observed, paced.epochs_observed),
        "client_errors": blast.client_errors + paced.client_errors,
    }
    if hasattr(stats, "to_dict"):
        row["server_stats"] = stats.to_dict()
    return row


def run_concurrency_section(args) -> dict:
    """The whole sweep: ``SERVER_KINDS`` × client counts, plus comparisons."""
    rows = []
    for clients in args.concurrency_client_counts:
        for server_kind in SERVER_KINDS:
            row = bench_concurrency_row(
                server_kind, clients, args.concurrency_algorithm, args
            )
            rows.append(row)
            print(
                f"{server_kind:>10} x{clients:<2} clients: "
                f"saturation {row['saturation_qps']:>8,.0f} qps, "
                f"paced {row['achieved_qps']:,.0f}/{row['offered_qps']:,.0f} qps, "
                f"p50 {row['latency_p50_ms']:.2f} ms, "
                f"p99 {row['latency_p99_ms']:.2f} ms, "
                f"p99.9 {row['latency_p999_ms']:.2f} ms, "
                f"busy rate {row['busy_rejection_rate']:.4f}, "
                f"epoch_consistent={row['epoch_consistent']}"
            )

    one_core = (os.cpu_count() or 1) <= 1
    comparison = []
    for clients in args.concurrency_client_counts:
        by_kind = {
            row["server"]: row for row in rows if row["clients"] == clients
        }
        if len(by_kind) < len(SERVER_KINDS):
            continue
        sequential = by_kind["sequential"]["saturation_qps"]
        ratio = by_kind["async"]["saturation_qps"] / max(sequential, 1e-9)
        entry = {"clients": clients, "async_vs_sequential_saturation": ratio}
        if ratio < 2.0 and one_core:
            entry["note"] = ONE_CORE_NOTE
            by_kind["async"]["note"] = ONE_CORE_NOTE
        comparison.append(entry)
        print(f"async/sequential saturation x{clients} clients: {ratio:.2f}x")

    return {
        "workload": {
            "algorithm": args.concurrency_algorithm,
            "client_counts": list(args.concurrency_client_counts),
            "requests_per_client": args.concurrency_requests,
            "read_batch": args.concurrency_read_batch,
            "preload_items": args.preload_items,
            "offered_qps": args.offered_qps or "auto (half of saturation)",
            "max_inflight": args.max_inflight,
            "seed": args.seed,
        },
        "results": rows,
        "comparison": comparison,
    }


# ---------------------------------------------------------------------------
# Warm restart: durable-store recovery vs full stream replay.

WARM_RESTART_ALGORITHMS = ("CM_fast", "Ours")
DEFAULT_WARM_RESTART_ITEMS = 30_000
WARM_RESTART_BATCH = 4096


def bench_warm_restart_row(algorithm: str, args) -> dict:
    """One family: kill a durable service mid-journal, race recovery vs replay."""
    import shutil
    import tempfile
    import time

    directory = tempfile.mkdtemp(prefix="bench-warm-restart-")
    try:
        durable_config = ServeConfig(
            algorithm,
            args.memory_bytes,
            seed=args.seed,
            publish_every_items=args.publish_every,
            store_dir=directory,
        )
        zipf = ZipfGenerator(args.skew, universe=args.universe, seed=args.seed + 13)
        keys = zipf.draw(args.warm_restart_items).tolist()
        service = durable_config.build_service()
        for start in range(0, len(keys), WARM_RESTART_BATCH):
            service.ingest(keys[start : start + WARM_RESTART_BATCH])
        # Kill without flush: recovery must replay the journal tail, not
        # just reload the last published snapshot.
        service.close()

        probe = keys[:64]
        begin = time.perf_counter()
        warm = durable_config.build_service()
        warm_answers = warm.query_batch(probe)
        restart_seconds = time.perf_counter() - begin
        warm_stats = warm.stats()
        warm.close()

        replay_config = ServeConfig(
            algorithm,
            args.memory_bytes,
            seed=args.seed,
            publish_every_items=args.publish_every,
        )
        begin = time.perf_counter()
        replay = replay_config.build_service()
        for start in range(0, len(keys), WARM_RESTART_BATCH):
            replay.ingest(keys[start : start + WARM_RESTART_BATCH])
        replay.flush()
        replay_answers = replay.query_batch(probe)
        replay_seconds = time.perf_counter() - begin

        bit_identical = bool(
            np.array_equal(warm_answers, replay_answers)
            and warm_stats["items_ingested"] == replay.stats()["items_ingested"]
        )
        return {
            "algorithm": algorithm,
            "items": len(keys),
            "publish_every_items": args.publish_every,
            "restart_to_first_answer_seconds": restart_seconds,
            "full_replay_seconds": replay_seconds,
            "replay_over_restart": replay_seconds / max(restart_seconds, 1e-9),
            "recovered_items": warm_stats["items_ingested"],
            "recovered_epoch": warm_stats.get("store", {}).get("last_snapshot_epoch"),
            "bit_identical": bit_identical,
        }
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def run_warm_restart_section(args) -> list[dict]:
    rows = []
    for algorithm in WARM_RESTART_ALGORITHMS:
        row = bench_warm_restart_row(algorithm, args)
        rows.append(row)
        print(
            f"warm restart {algorithm:>8}: "
            f"{row['restart_to_first_answer_seconds'] * 1e3:.1f} ms to first "
            f"answer vs {row['full_replay_seconds'] * 1e3:.1f} ms full replay "
            f"({row['replay_over_restart']:.1f}x), "
            f"{row['recovered_items']} items recovered, "
            f"bit_identical={row['bit_identical']}"
        )
    return rows


# ---------------------------------------------------------------------------
# Temporal section: pinned/windowed reads vs latest-epoch reads, ring churn.


def bench_temporal_row(algorithm: str, args) -> dict:
    """One family: time-travel and window read rates over a churning ring."""
    import time

    ring_epochs = args.temporal_ring_epochs
    epoch_items = args.temporal_epoch_items
    config = ServeConfig(
        algorithm,
        args.memory_bytes,
        seed=args.seed,
        publish_every_items=epoch_items,
        ring_epochs=ring_epochs,
    )
    zipf = ZipfGenerator(args.skew, universe=args.universe, seed=args.seed + 19)
    # Enough publishes past the ring budget that epoch 0 is long evicted,
    # pre-drawn so the eviction-overhead rerun replays the same schedule.
    batches = [zipf.draw(epoch_items).tolist() for _ in range(ring_epochs + 4)]

    service = config.build_service()
    begin = time.perf_counter()
    for batch in batches:
        service.ingest(batch)
    publish_seconds_ring = time.perf_counter() - begin

    resident = service.ring.epochs
    pinned_epoch = resident[len(resident) // 2]
    window = min(args.temporal_window, len(resident) - 1)
    read_keys = zipf.draw(args.read_batch).tolist()
    reads = args.temporal_reads
    epoch_pins = 0

    def pinned_read(epoch):
        nonlocal epoch_pins
        estimates, _ = service.serve_batch(read_keys, epoch=epoch)
        epoch_pins += 1
        return estimates

    # Correctness before timing: pinned answers are bit-identical to the
    # ring snapshot's own, windowed answers are bit-identical to a fresh
    # sketch fed only the window's slice of the stream (the delta is exact
    # at the table level — estimates are min/median'd after subtraction,
    # so comparing against pinned-estimate arithmetic would be wrong),
    # and pins do not move under a further publish-and-evict.
    pinned_before = pinned_read(pinned_epoch)
    snapshot = service.ring.get(pinned_epoch)
    consistent = bool(
        np.array_equal(pinned_before, snapshot.query_batch(read_keys))
    )
    windowed, later = service.serve_batch(read_keys, window=window)
    fresh = build_sketch(algorithm, args.memory_bytes, seed=args.seed)
    for batch in batches[later - window : later]:
        fresh.insert_batch(batch)
    consistent = consistent and bool(
        np.array_equal(windowed, fresh.query_batch(read_keys))
    )
    epoch_pins += 1  # the windowed read above pins its anchor epoch
    service.ingest(zipf.draw(epoch_items).tolist())
    consistent = consistent and bool(
        np.array_equal(pinned_before, pinned_read(pinned_epoch))
    )

    # The construction epoch was evicted many publishes ago: a pin against
    # it must fail typed, and the service must count the rejection.
    try:
        service.serve_batch(read_keys, epoch=0)
        consistent = False  # unreachable if eviction works
    except EpochGoneError:
        pass
    gone_rejections = service.epoch_gone_rejections

    def read_qps(run_read) -> float:
        begin = time.perf_counter()
        for _ in range(reads):
            run_read()
        return reads / max(time.perf_counter() - begin, 1e-9)

    latest_read_qps = read_qps(lambda: service.serve_batch(read_keys))
    pinned_read_qps = read_qps(lambda: pinned_read(pinned_epoch))
    windowed_read_qps = read_qps(
        lambda: service.serve_batch(read_keys, window=window)
    )
    ring_evictions = service.ring.evictions
    service.close()

    # Eviction overhead: the identical publish schedule against a ring that
    # retains only the current epoch, so every publish evicts.
    minimal_config = ServeConfig(
        algorithm,
        args.memory_bytes,
        seed=args.seed,
        publish_every_items=epoch_items,
        ring_epochs=1,
    )
    minimal = minimal_config.build_service()
    begin = time.perf_counter()
    for batch in batches:
        minimal.ingest(batch)
    publish_seconds_minimal = time.perf_counter() - begin
    minimal.close()

    return {
        "algorithm": algorithm,
        "ring_epochs": ring_epochs,
        "publish_every_items": epoch_items,
        "read_batch": args.read_batch,
        "reads_per_mode": reads,
        "window": window,
        "pinned_epoch": pinned_epoch,
        "latest_read_qps": latest_read_qps,
        "pinned_read_qps": pinned_read_qps,
        "windowed_read_qps": windowed_read_qps,
        "pinned_over_latest": pinned_read_qps / max(latest_read_qps, 1e-9),
        "windowed_over_latest": windowed_read_qps / max(latest_read_qps, 1e-9),
        "epoch_pins": epoch_pins,
        "epoch_gone_rejections": gone_rejections,
        "publish_seconds_ring": publish_seconds_ring,
        "publish_seconds_minimal_ring": publish_seconds_minimal,
        "ring_eviction_overhead": publish_seconds_ring
        / max(publish_seconds_minimal, 1e-9),
        "ring_evictions": ring_evictions,
        "epoch_consistent": consistent,
        "note": TEMPORAL_ONE_CORE_NOTE,
    }


def run_temporal_section(args) -> list[dict]:
    rows = []
    for algorithm in args.temporal_algorithm_names:
        row = bench_temporal_row(algorithm, args)
        rows.append(row)
        print(
            f"temporal {algorithm:>8}: "
            f"latest {row['latest_read_qps']:,.0f} q/s, "
            f"pinned {row['pinned_read_qps']:,.0f} q/s "
            f"({row['pinned_over_latest']:.2f}x), "
            f"window({row['window']}) {row['windowed_read_qps']:,.0f} q/s, "
            f"eviction overhead {row['ring_eviction_overhead']:.2f}x, "
            f"{row['epoch_pins']} pins, "
            f"{row['epoch_gone_rejections']} gone, "
            f"epoch_consistent={row['epoch_consistent']}"
        )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--operations", type=int, default=DEFAULT_OPERATIONS,
                        help="closed-loop operations per run (default: %(default)s)")
    parser.add_argument("--read-ratio", type=float, default=DEFAULT_READ_RATIO,
                        help="fraction of operations that are reads (default: %(default)s)")
    parser.add_argument("--write-batch", type=int, default=DEFAULT_WRITE_BATCH,
                        help="items per write operation (default: %(default)s)")
    parser.add_argument("--read-batch", type=int, default=DEFAULT_READ_BATCH,
                        help="keys per read operation (default: %(default)s)")
    parser.add_argument("--skew", type=float, default=DEFAULT_SKEW,
                        help="Zipf skew of the key mix (default: %(default)s)")
    parser.add_argument("--universe", type=int, default=DEFAULT_UNIVERSE,
                        help="distinct-key universe (default: %(default)s)")
    parser.add_argument("--memory-bytes", type=float, default=DEFAULT_MEMORY_BYTES,
                        help="served sketch memory budget (default: %(default)s)")
    parser.add_argument("--publish-every", type=int, default=DEFAULT_PUBLISH_EVERY,
                        help="epoch length in items (default: %(default)s)")
    parser.add_argument("--transports", default=",".join(DEFAULT_TRANSPORTS),
                        help="comma-separated backends (default: %(default)s)")
    parser.add_argument("--algorithms", default=",".join(ALGORITHMS),
                        help="comma-separated registry names (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=0, help="schedule / hash seed")
    parser.add_argument("--concurrency-clients", default=",".join(
                            str(n) for n in DEFAULT_CONCURRENCY_CLIENTS),
                        help="comma-separated client counts for the concurrency "
                             "sweep (default: %(default)s)")
    parser.add_argument("--concurrency-requests", type=int,
                        default=DEFAULT_CONCURRENCY_REQUESTS,
                        help="open-loop requests per client per run (default: %(default)s)")
    parser.add_argument("--concurrency-read-batch", type=int,
                        default=DEFAULT_CONCURRENCY_READ_BATCH,
                        help="keys per open-loop request (default: %(default)s)")
    parser.add_argument("--concurrency-algorithm",
                        default=DEFAULT_CONCURRENCY_ALGORITHM,
                        help="registry name served in the concurrency sweep "
                             "(default: %(default)s)")
    parser.add_argument("--preload-items", type=int, default=DEFAULT_PRELOAD_ITEMS,
                        help="items pre-loaded before the read-only sweep "
                             "(default: %(default)s)")
    parser.add_argument("--offered-qps", type=float, default=0.0,
                        help="paced-run offered load; 0 = half of the measured "
                             "saturation (default: %(default)s)")
    parser.add_argument("--max-inflight", type=int, default=1024,
                        help="async server admission bound (default: %(default)s)")
    parser.add_argument("--warm-restart-items", type=int,
                        default=DEFAULT_WARM_RESTART_ITEMS,
                        help="items ingested before the durable-store restart "
                             "race (default: %(default)s)")
    parser.add_argument("--temporal-algorithms",
                        default=",".join(DEFAULT_TEMPORAL_ALGORITHMS),
                        help="comma-separated subtractable families for the "
                             "temporal section (default: %(default)s)")
    parser.add_argument("--temporal-reads", type=int,
                        default=DEFAULT_TEMPORAL_READS,
                        help="timed reads per temporal mode (default: %(default)s)")
    parser.add_argument("--temporal-ring-epochs", type=int,
                        default=DEFAULT_TEMPORAL_RING_EPOCHS,
                        help="ring budget for the temporal section "
                             "(default: %(default)s)")
    parser.add_argument("--temporal-window", type=int,
                        default=DEFAULT_TEMPORAL_WINDOW,
                        help="sliding-window span in epochs (default: %(default)s)")
    parser.add_argument("--temporal-epoch-items", type=int,
                        default=DEFAULT_TEMPORAL_EPOCH_ITEMS,
                        help="items per temporal epoch (default: %(default)s)")
    parser.add_argument("--skip-concurrency", action="store_true",
                        help="run only the closed-loop transport section")
    parser.add_argument("--skip-closed-loop", action="store_true",
                        help="run only the concurrency section")
    parser.add_argument("--skip-warm-restart", action="store_true",
                        help="skip the durable-store restart section")
    parser.add_argument("--skip-temporal", action="store_true",
                        help="skip the pinned/windowed read section")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent / "BENCH_serving.json",
                        help="output JSON path (default: repo root)")
    args = parser.parse_args(argv)
    transports = tuple(name for name in args.transports.split(",") if name)
    algorithms = tuple(name for name in args.algorithms.split(",") if name)
    args.concurrency_client_counts = tuple(
        int(name) for name in args.concurrency_clients.split(",") if name
    )
    args.temporal_algorithm_names = tuple(
        name for name in args.temporal_algorithms.split(",") if name
    )

    print(
        f"load: {args.operations} ops, read ratio {args.read_ratio}, "
        f"write batch {args.write_batch}, read batch {args.read_batch}, "
        f"zipf {args.skew} over {args.universe} keys, "
        f"epoch every {args.publish_every} items, cpu_count={os.cpu_count()}"
    )
    rows = []
    if not args.skip_closed_loop:
        for algorithm in algorithms:
            for transport in transports:
                row = bench_pair(transport, algorithm, args)
                rows.append(row)
                print(
                    f"{transport:>7} {algorithm:>8}: {row['ops_per_second']:>8,.0f} ops/s "
                    f"({row['keys_read_per_second']:,.0f} keys/s read, "
                    f"{row['items_written_per_second']:,.0f} items/s write), "
                    f"p50 {row['read_latency_p50_ms']:.3f} ms, "
                    f"p99 {row['read_latency_p99_ms']:.3f} ms, "
                    f"staleness {row['mean_staleness_items']:,.0f} items, "
                    f"epoch_consistent={row['epoch_consistent']}"
                )

    concurrency = None
    if not args.skip_concurrency:
        print("concurrency sweep: async event loop vs sequential accept loop (tcp)")
        concurrency = run_concurrency_section(args)

    warm_restart = None
    if not args.skip_warm_restart:
        print("warm restart: durable-store recovery vs full stream replay")
        warm_restart = run_warm_restart_section(args)

    temporal = None
    if not args.skip_temporal:
        print("temporal: pinned and windowed reads over a churning epoch ring")
        temporal = run_temporal_section(args)

    payload = {
        "workload": {
            "operations": args.operations,
            "read_ratio": args.read_ratio,
            "write_batch": args.write_batch,
            "read_batch": args.read_batch,
            "skew": args.skew,
            "universe": args.universe,
            "memory_bytes": args.memory_bytes,
            "publish_every_items": args.publish_every,
            "seed": args.seed,
        },
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "results": rows,
    }
    if concurrency is not None:
        payload["concurrency"] = concurrency
    if warm_restart is not None:
        payload["warm_restart"] = {
            "items": args.warm_restart_items,
            "results": warm_restart,
        }
    if temporal is not None:
        payload["temporal"] = {
            "ring_epochs": args.temporal_ring_epochs,
            "window": args.temporal_window,
            "epoch_items": args.temporal_epoch_items,
            "results": temporal,
        }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    all_rows = rows + (concurrency["results"] if concurrency else [])
    all_rows += temporal or []
    if not all(row["epoch_consistent"] for row in all_rows):
        print("ERROR: a serving run violated epoch consistency", file=sys.stderr)
        return 1
    if warm_restart is not None and not all(
        row["bit_identical"] for row in warm_restart
    ):
        print("ERROR: a warm restart was not bit-identical", file=sys.stderr)
        return 1
    if temporal is not None and not all(
        row["epoch_pins"] > 0 and row["epoch_gone_rejections"] > 0
        for row in temporal
    ):
        print("ERROR: a temporal run pinned nothing or never saw EPOCH_GONE",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Online-serving benchmark — sustained qps, latency and staleness per transport.

For every (transport × algorithm) pair, launches one remote
:func:`repro.serve.server.serve_main` endpoint over the transport, then
drives it with the closed-loop load generator
(:mod:`repro.serve.loadgen`): a Zipf key mix at a configurable read/write
ratio, one outstanding operation at a time.  Each row of
``BENCH_serving.json`` records:

* sustained operations/sec, read qps and ingest items/sec;
* read latency p50/p99/mean (closed-loop service latency, milliseconds);
* staleness — items between epoch publishes (mean/max) and the number of
  epochs rotated during the run;
* ``epoch_consistent`` — both correctness signals of the load generator
  held: repeat reads within one epoch were bit-identical (no torn reads)
  and the final epoch's answers equal a local reference sketch fed the
  identical write stream (CI asserts this flag on every row).

Absolute numbers carry the usual single-core caveat (see
``docs/benchmarks.md``): on a 1-core container the ``pipe``/``tcp`` server
cannot overlap with the client, so cross-transport ratios are floors, not
verdicts.  Latency percentiles and the consistency flags are meaningful
everywhere.

Not collected by pytest (the module name avoids the ``test_`` prefix); run
it directly::

    PYTHONPATH=src python benchmarks/bench_serving.py
    PYTHONPATH=src python benchmarks/bench_serving.py --operations 500 --transports inproc
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path

import numpy as np

from repro.serve.loadgen import LoadGenConfig, run_loadgen
from repro.serve.server import ServeConfig, ServingSession
from repro.sketches.registry import build_sketch

#: Families benchmarked by default: the cheapest mergeable baseline, the
#: order-dependent CU, and the paper's sketch — all snapshot-rotated.
ALGORITHMS = ("CM_fast", "CU_fast", "Ours")
DEFAULT_TRANSPORTS = ("inproc", "pipe", "tcp")

DEFAULT_OPERATIONS = 4000
DEFAULT_READ_RATIO = 0.5
DEFAULT_WRITE_BATCH = 256
DEFAULT_READ_BATCH = 64
DEFAULT_SKEW = 1.1
DEFAULT_UNIVERSE = 10_000
DEFAULT_MEMORY_BYTES = 64 * 1024
DEFAULT_PUBLISH_EVERY = 8192


def bench_pair(transport: str, algorithm: str, args) -> dict:
    """One load-generation run against one remote service."""
    serve_config = ServeConfig(
        algorithm,
        args.memory_bytes,
        seed=args.seed,
        publish_every_items=args.publish_every,
    )
    load_config = LoadGenConfig(
        operations=args.operations,
        read_ratio=args.read_ratio,
        write_batch=args.write_batch,
        read_batch=args.read_batch,
        skew=args.skew,
        universe=args.universe,
        seed=args.seed,
    )
    reference = build_sketch(algorithm, args.memory_bytes, seed=args.seed)
    with ServingSession(serve_config, transport) as session:
        report = run_loadgen(session.client, load_config, reference=reference)
        wire_out, wire_in = session.client.bytes_sent, session.client.bytes_received
    row = {"transport": transport, "algorithm": algorithm, **report.to_row()}
    row["bytes_sent"] = wire_out
    row["bytes_received"] = wire_in
    return row


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--operations", type=int, default=DEFAULT_OPERATIONS,
                        help="closed-loop operations per run (default: %(default)s)")
    parser.add_argument("--read-ratio", type=float, default=DEFAULT_READ_RATIO,
                        help="fraction of operations that are reads (default: %(default)s)")
    parser.add_argument("--write-batch", type=int, default=DEFAULT_WRITE_BATCH,
                        help="items per write operation (default: %(default)s)")
    parser.add_argument("--read-batch", type=int, default=DEFAULT_READ_BATCH,
                        help="keys per read operation (default: %(default)s)")
    parser.add_argument("--skew", type=float, default=DEFAULT_SKEW,
                        help="Zipf skew of the key mix (default: %(default)s)")
    parser.add_argument("--universe", type=int, default=DEFAULT_UNIVERSE,
                        help="distinct-key universe (default: %(default)s)")
    parser.add_argument("--memory-bytes", type=float, default=DEFAULT_MEMORY_BYTES,
                        help="served sketch memory budget (default: %(default)s)")
    parser.add_argument("--publish-every", type=int, default=DEFAULT_PUBLISH_EVERY,
                        help="epoch length in items (default: %(default)s)")
    parser.add_argument("--transports", default=",".join(DEFAULT_TRANSPORTS),
                        help="comma-separated backends (default: %(default)s)")
    parser.add_argument("--algorithms", default=",".join(ALGORITHMS),
                        help="comma-separated registry names (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=0, help="schedule / hash seed")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent / "BENCH_serving.json",
                        help="output JSON path (default: repo root)")
    args = parser.parse_args(argv)
    transports = tuple(name for name in args.transports.split(",") if name)
    algorithms = tuple(name for name in args.algorithms.split(",") if name)

    print(
        f"load: {args.operations} ops, read ratio {args.read_ratio}, "
        f"write batch {args.write_batch}, read batch {args.read_batch}, "
        f"zipf {args.skew} over {args.universe} keys, "
        f"epoch every {args.publish_every} items, cpu_count={os.cpu_count()}"
    )
    rows = []
    for algorithm in algorithms:
        for transport in transports:
            row = bench_pair(transport, algorithm, args)
            rows.append(row)
            print(
                f"{transport:>7} {algorithm:>8}: {row['ops_per_second']:>8,.0f} ops/s "
                f"({row['keys_read_per_second']:,.0f} keys/s read, "
                f"{row['items_written_per_second']:,.0f} items/s write), "
                f"p50 {row['read_latency_p50_ms']:.3f} ms, "
                f"p99 {row['read_latency_p99_ms']:.3f} ms, "
                f"staleness {row['mean_staleness_items']:,.0f} items, "
                f"epoch_consistent={row['epoch_consistent']}"
            )

    payload = {
        "workload": {
            "operations": args.operations,
            "read_ratio": args.read_ratio,
            "write_batch": args.write_batch,
            "read_batch": args.read_batch,
            "skew": args.skew,
            "universe": args.universe,
            "memory_bytes": args.memory_bytes,
            "publish_every_items": args.publish_every,
            "seed": args.seed,
        },
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "results": rows,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    if not all(row["epoch_consistent"] for row in rows):
        print("ERROR: a serving run violated epoch consistency", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

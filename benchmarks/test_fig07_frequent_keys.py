"""Figure 7: worst-case #outliers among frequent keys (T = 100 and T = 1000).

Paper result: ReliableSketch needs the least memory to keep every frequent
key's error below Λ even in the worst of repeated seed trials; SpaceSaving
needs ~1.8x more memory for T = 100, and the switch-oriented competitors
(HashPipe, PRECISION, Elastic) cannot eliminate outliers within the sweep.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.experiments.outliers import frequent_key_outliers
from repro.metrics.memory import BYTES_PER_KB


@pytest.mark.parametrize("threshold", [100, 1000], ids=["T100", "T1000"])
def test_fig7_frequent_key_outliers(benchmark, threshold, bench_scale, bench_memory_points):
    curves = run_once(
        benchmark,
        frequent_key_outliers,
        threshold=threshold,
        dataset_name="ip",
        tolerance=25.0,
        scale=bench_scale,
        memory_points=bench_memory_points,
        repetitions=2,
        seed=1,
    )
    print(f"\nFigure 7 (T={threshold}) — worst-case #outliers among frequent keys")
    for curve in curves:
        memories = [f"{m / BYTES_PER_KB:.1f}KB" for m in curve.memory_bytes]
        print(f"  {curve.algorithm:>10}: {dict(zip(memories, curve.outliers))}")

    by_name = {curve.algorithm: curve for curve in curves}
    ours = by_name["Ours"]
    assert ours.zero_outlier_memory() is not None
    # Nobody reaches zero outliers with less memory than ReliableSketch.
    for name, curve in by_name.items():
        zero = curve.zero_outlier_memory()
        assert zero is None or zero >= ours.zero_outlier_memory()
    # At the tightest memory point ours is already at (or near) zero while at
    # least one competitor still has outliers.  For T = 1000 the frequent-key
    # set is tiny at bench scale and every algorithm may already be clean, so
    # the comparison is only meaningful for T = 100.
    if threshold == 100:
        assert any(curve.outliers[0] > ours.outliers[0] for curve in curves)

"""Ablation benchmarks for the design choices called out in DESIGN.md.

Not a paper figure, but the two design decisions the paper argues for are
checked head-to-head on the same workload:

* **Mice filter on/off** (§3.3): the filter trades a little accuracy for a
  large reduction in layer-1 pressure (fewer locked buckets) and fewer layer
  hash calls at small memory.
* **Double-exponential vs arithmetic thresholds** (§3.2, "Modifying either
  parameter to follow an arithmetic sequence would thoroughly undermine the
  complexity"): with a *flat* threshold schedule of the same total error
  budget, more keys escape deep into the structure.
"""

from __future__ import annotations

from conftest import run_once

from repro.core.config import LayerSpec, ReliableConfig
from repro.core.reliable_sketch import ReliableSketch
from repro.experiments.datasets import dataset
from repro.metrics.accuracy import evaluate_accuracy

MEMORY = 4 * 1024
TOLERANCE = 25.0


def _run_variants(stream):
    results = {}
    for label, kwargs in (
        ("with-filter", dict(use_mice_filter=True)),
        ("raw", dict(use_mice_filter=False)),
    ):
        sketch = ReliableSketch.from_memory(MEMORY, tolerance=TOLERANCE, seed=2, **kwargs)
        sketch.insert_stream(stream)
        report = evaluate_accuracy(stream.counts(), sketch.query, TOLERANCE)
        results[label] = (sketch, report)
    return results


def test_ablation_mice_filter(benchmark, bench_scale):
    stream = dataset("ip", scale=bench_scale, seed=2)
    results = run_once(benchmark, _run_variants, stream)
    print("\nAblation — mice filter on/off at equal memory")
    for label, (sketch, report) in results.items():
        locked = sum(sketch.locked_buckets())
        print(f"  {label:>11}: outliers={report.outliers}  aae={report.aae:.2f}  "
              f"locked_buckets={locked}  failures={sketch.insert_failures}")
    with_filter, raw = results["with-filter"], results["raw"]
    # The filter absorbs mice keys, so far fewer layer-1 buckets lock.
    assert sum(with_filter[0].locked_buckets()) < sum(raw[0].locked_buckets())
    # And the filtered variant never has more outliers at this budget.
    assert with_filter[1].outliers <= raw[1].outliers


def _flat_threshold_config(reference: ReliableConfig) -> ReliableConfig:
    """Same widths and total error budget, but an arithmetic (flat) schedule."""
    flat_value = int(TOLERANCE // reference.depth)
    layers = tuple(
        LayerSpec(index=layer.index, width=layer.width, threshold=max(1, flat_value))
        for layer in reference.layers
    )
    return ReliableConfig(
        layers=layers,
        tolerance=reference.tolerance,
        r_w=reference.r_w,
        r_lambda=reference.r_lambda,
        mice_filter_fraction=0.0,
        mice_filter_bits=reference.mice_filter_bits,
        mice_filter_arrays=reference.mice_filter_arrays,
        mice_filter_bytes=0.0,
    )


def _run_schedules(stream):
    geometric_config = ReliableConfig.from_memory(
        MEMORY, tolerance=TOLERANCE, use_mice_filter=False
    )
    flat_config = _flat_threshold_config(geometric_config)
    out = {}
    for label, config in (("geometric", geometric_config), ("flat", flat_config)):
        sketch = ReliableSketch(config, seed=3)
        sketch.insert_stream(stream)
        deep_inserts = sum(sketch.inserts_settled_per_layer[3:-1]) + sketch.insert_failures
        out[label] = (sketch, deep_inserts)
    return out


def test_ablation_double_exponential_thresholds(benchmark, bench_scale):
    stream = dataset("ip", scale=bench_scale, seed=2)
    results = run_once(benchmark, _run_schedules, stream)
    print("\nAblation — geometric vs flat threshold schedule (same error budget)")
    for label, (sketch, deep) in results.items():
        print(f"  {label:>9}: inserts reaching layer 4+ or failing = {deep}  "
              f"failures={sketch.insert_failures}")
    geometric_deep = results["geometric"][1]
    flat_deep = results["flat"][1]
    # The geometric schedule stops traffic earlier: fewer inserts reach deep
    # layers than with a flat schedule of the same total budget.
    assert geometric_deep <= flat_deep

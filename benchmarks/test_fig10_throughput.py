"""Figure 10: insertion and query throughput of every algorithm.

Paper result (C++/3 GHz Xeon): Raw ReliableSketch is comparable to fast CM
and faster than CU/Elastic/PRECISION; the mice-filtered variant pays about a
2x slowdown for its accuracy.  Absolute Python numbers are not comparable to
the paper's Mpps (see EXPERIMENTS.md); this benchmark asserts only the
relationships that survive the language change — the ones driven by
operation counts rather than constant factors.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.speed import throughput_comparison

ALGORITHMS = (
    "Ours",
    "Ours(Raw)",
    "CM_fast",
    "CU_fast",
    "CM_acc",
    "CU_acc",
    "SS",
    "Elastic",
    "Coco",
    "HashPipe",
    "PRECISION",
)


def test_fig10_throughput(benchmark, bench_scale):
    rows = run_once(
        benchmark,
        throughput_comparison,
        dataset_name="ip",
        memory_megabytes=1.0,
        scale=bench_scale,
        algorithms=ALGORITHMS,
        seed=1,
    )
    print("\nFigure 10 — throughput (pure-Python, relative comparison only)")
    for row in rows:
        print(f"  {row.algorithm:>10}: insert={row.insert_mops:.3f} Mops  "
              f"query={row.query_mops:.3f} Mops")

    by_name = {row.algorithm: row for row in rows}
    # Everything produced a positive measurement.
    assert all(row.insert_mops > 0 and row.query_mops > 0 for row in rows)
    # The raw variant does strictly less work per insert than the filtered one.
    assert by_name["Ours(Raw)"].insert_mops > by_name["Ours"].insert_mops
    assert by_name["Ours(Raw)"].query_mops > by_name["Ours"].query_mops
    # The 16-array accurate CM/CU variants are slower than their 3-array
    # fast variants (the paper's speed/accuracy trade-off).
    assert by_name["CM_fast"].insert_mops > by_name["CM_acc"].insert_mops
    assert by_name["CU_fast"].insert_mops > by_name["CU_acc"].insert_mops
    # Raw ReliableSketch is in the same league as fast CM (within 2x), the
    # paper's "near-optimal throughput" claim.
    assert by_name["Ours(Raw)"].insert_mops > by_name["CM_acc"].insert_mops

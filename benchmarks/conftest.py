"""Shared configuration of the benchmark harness.

Each benchmark module regenerates one table or figure of the paper at a
reduced scale (see DESIGN.md §3 for the index and EXPERIMENTS.md for
paper-vs-measured numbers).  Experiments are executed exactly once per
benchmark (``rounds=1``) because each one is itself a full parameter sweep;
pytest-benchmark is used for its timing/reporting machinery, not for
micro-benchmark statistics.

Run everything with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

#: Stream scale used by the benchmark harness (fraction of the paper's size).
BENCH_SCALE = 0.002

#: Memory sweep (bytes) equivalent to the paper's 0.5-4 MB at BENCH_SCALE.
BENCH_MEMORY_POINTS = [1049.0, 2097.0, 4194.0, 6291.0, 8389.0]


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Stream scale shared by all figure benchmarks."""
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_memory_points() -> list[float]:
    """Scaled version of the paper's 0.5/1/2/3/4 MB memory sweep."""
    return list(BENCH_MEMORY_POINTS)


def run_once(benchmark, func, *args, **kwargs):
    """Execute ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

"""Figure 20: accuracy of the Tofino testbed deployment vs SRAM size.

Paper result: on the IP trace the switch needs more than 368 KB of SRAM to
guarantee zero outliers (AAE within 4 Kbps); on the Hadoop trace 92 KB is
enough (AAE within 10 Kbps).  Both the outlier count and the AAE decrease
monotonically as SRAM grows.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.experiments.deployment import testbed_accuracy
from repro.metrics.memory import BYTES_PER_KB


@pytest.mark.parametrize("trace_name", ["ip", "hadoop"])
def test_fig20_testbed_accuracy(benchmark, trace_name):
    curve = run_once(
        benchmark,
        testbed_accuracy,
        trace_name=trace_name,
        scale=0.002,
        seed=1,
    )
    print(f"\nFigure 20 ({trace_name}) — data-plane accuracy vs SRAM")
    for result in curve.results:
        print(
            f"  SRAM={result.sram_bytes / BYTES_PER_KB:6.1f}KB  outliers={result.outliers:>4}  "
            f"AAE={result.aae_kbps:8.1f}Kbps  recirculations={result.recirculations}"
        )

    outliers = [result.outliers for result in curve.results]
    aae = [result.aae_kbps for result in curve.results]
    # Accuracy improves with SRAM: strictly fewer outliers and lower AAE at
    # the top of the sweep than at the bottom.
    assert outliers[-1] < outliers[0]
    assert aae[-1] < aae[0]
    # The largest swept SRAM is close to eliminating outliers (the paper's
    # zero-outlier point lies within the sweep).
    assert outliers[-1] <= max(1, outliers[0] // 10)
    # Recirculation (the lock mechanism) is actually exercised.
    assert all(result.recirculations > 0 for result in curve.results)

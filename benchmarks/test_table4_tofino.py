"""Table 4: hardware resources used by ReliableSketch on a Tofino switch."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import tables
from repro.hardware.tofino import PAPER_USAGE, TofinoResourceModel


def test_table4_tofino_resources(benchmark):
    model = TofinoResourceModel(layers=6)
    rows = run_once(benchmark, model.rows)
    print()
    print(tables.tofino_table_text(layers=6))

    by_resource = {row.resource: row for row in rows}
    # Exact reproduction of the published usage column.
    for resource, usage in PAPER_USAGE.items():
        assert by_resource[resource].usage == usage
    # The two most-used resources are Stateful ALUs (25%) and Map RAM (20.66%).
    assert by_resource["Stateful ALU"].percentage == max(r.percentage for r in rows)
    assert abs(by_resource["Map RAM"].percentage - 0.2066) < 0.005
    # Everything else stays at or below 14.37% and the deployment fits.
    assert model.fits()

"""Scalar vs. batch datapath throughput — the perf trajectory tracker.

Runs every sketch with a vectorized batch datapath (CM, CU, Count,
ReliableSketch with and without the mice filter) over the same Zipfian
stream twice — once through the scalar ``insert``/``query`` loop, once
through ``insert_batch``/``query_batch`` in fixed-size chunks — and writes
the items/sec numbers plus speedups to ``BENCH_throughput.json``.

Because batch and scalar paths are bit-identical, the JSON is a pure
performance artifact: regenerate it after any datapath change and compare
against the committed numbers to see the trajectory.

Not collected by pytest (the module name avoids the ``test_`` prefix); run
it directly::

    PYTHONPATH=src python benchmarks/bench_batch_throughput.py
    PYTHONPATH=src python benchmarks/bench_batch_throughput.py --count 100000
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

from repro.metrics.throughput import measure_batch_throughput, measure_throughput
from repro.sketches.registry import build_sketch
from repro.streams.synthetic import zipf_stream

#: Algorithms with a vectorized batch datapath (ReliableSketch's batch insert
#: vectorizes hashing/encoding only; bucket updates stay in stream order).
ALGORITHMS = ("CM_fast", "CU_fast", "Count", "Ours(Raw)", "Ours")

DEFAULT_COUNT = 1_000_000
DEFAULT_SKEW = 1.1
DEFAULT_CHUNK = 65_536
DEFAULT_MEMORY_BYTES = 64 * 1024


def bench_algorithm(name: str, items, keys, memory_bytes: float, chunk_size: int, seed: int) -> dict:
    """Measure one algorithm's insert and query throughput on both paths."""
    scalar_sketch = build_sketch(name, memory_bytes, seed=seed)
    scalar_insert = measure_throughput(
        lambda item, s=scalar_sketch: s.insert(item[0], item[1]), items
    )
    scalar_query = measure_throughput(lambda key, s=scalar_sketch: s.query(key), keys)

    batch_sketch = build_sketch(name, memory_bytes, seed=seed)
    batch_insert = measure_batch_throughput(
        lambda chunk, s=batch_sketch: s.insert_batch(
            [item[0] for item in chunk], [item[1] for item in chunk]
        ),
        items,
        chunk_size,
    )
    batch_query = measure_batch_throughput(
        lambda chunk, s=batch_sketch: s.query_batch(chunk), keys, chunk_size
    )

    return {
        "algorithm": name,
        "scalar_insert_ips": scalar_insert.ops_per_second,
        "batch_insert_ips": batch_insert.ops_per_second,
        "insert_speedup": batch_insert.ops_per_second / scalar_insert.ops_per_second,
        "scalar_query_ips": scalar_query.ops_per_second,
        "batch_query_ips": batch_query.ops_per_second,
        "query_speedup": batch_query.ops_per_second / scalar_query.ops_per_second,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--count", type=int, default=DEFAULT_COUNT,
                        help="stream length (default: %(default)s)")
    parser.add_argument("--skew", type=float, default=DEFAULT_SKEW,
                        help="Zipf skew (default: %(default)s)")
    parser.add_argument("--chunk-size", type=int, default=DEFAULT_CHUNK,
                        help="batch chunk size (default: %(default)s)")
    parser.add_argument("--memory-bytes", type=float, default=DEFAULT_MEMORY_BYTES,
                        help="per-sketch memory budget (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=0, help="hash seed")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent / "BENCH_throughput.json",
                        help="output JSON path (default: repo root)")
    args = parser.parse_args(argv)

    stream = zipf_stream(args.count, skew=args.skew, seed=args.seed + 1)
    items = [(item.key, item.value) for item in stream]
    keys = stream.keys()
    print(f"stream: {len(items)} items, {len(keys)} distinct keys, skew {args.skew}")

    results = []
    for name in ALGORITHMS:
        row = bench_algorithm(name, items, keys, args.memory_bytes, args.chunk_size, args.seed)
        results.append(row)
        print(
            f"{name:>10}: insert {row['scalar_insert_ips']:>10.0f} -> "
            f"{row['batch_insert_ips']:>10.0f} items/s ({row['insert_speedup']:.1f}x)   "
            f"query {row['scalar_query_ips']:>10.0f} -> {row['batch_query_ips']:>10.0f} "
            f"items/s ({row['query_speedup']:.1f}x)"
        )

    payload = {
        "workload": {
            "stream": "zipf",
            "count": args.count,
            "skew": args.skew,
            "distinct_keys": len(keys),
            "chunk_size": args.chunk_size,
            "memory_bytes": args.memory_bytes,
            "seed": args.seed,
        },
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "results": results,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Load generation against a serving endpoint: closed-loop and open-loop.

**Closed-loop** (:func:`run_loadgen`) models the paper's operator
workload: a measurement stream being absorbed (writes) while per-flow
estimates are queried concurrently (reads), one outstanding operation at a
time — so reported latencies are service latencies, not queue-buildup
artifacts, and sustained ops/sec is the inverse of mean latency.

**Open-loop** (:func:`run_open_loop`) is the saturation harness behind the
concurrency section of ``BENCH_serving.json``: N worker connections, each
issuing read requests on a *Poisson arrival schedule* pinned to a target
aggregate qps — arrivals do not wait for replies (requests pipeline on
each connection), so offered load is independent of service speed, which
is what makes saturation qps and tail latency under overload measurable at
all.  ``target_qps=0`` is blast mode: every worker streams its whole
schedule as fast as the socket accepts it, and the achieved rate *is* the
saturation throughput.  Typed BUSY rejections (the async server's
admission control) are counted and retried with bounded attempts.

Operations are drawn from a pre-generated schedule (read with probability
``read_ratio``, write otherwise) over a Zipf key mix; all randomness is
materialised before the timed loop so the measurement is pure serving cost.

Two correctness signals ride along and land in ``BENCH_serving.json``:

* **Repeat-read consistency** — a sampled fraction of reads is immediately
  re-issued; whenever both answers carry the same epoch id they must be
  bit-identical (a torn read would differ).
* **End-of-run bit-identity** — after the final flush, every distinct key's
  served answer must equal a local *reference sketch* fed the identical
  write stream in the identical order.  Channels are FIFO and the service
  is single-writer, so the remote live sketch is bit-identical to the local
  reference by the layers-below contracts; the final epoch must expose
  exactly that state.

``epoch_consistent`` is the conjunction of both.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.distributed.wire import (
    MSG_QUERY,
    MSG_QUERY_REPLY,
    QUERY_KEYS,
    STATUS_BUSY,
    WireFormatError,
    decode_frame,
    decode_query_response,
    encode_frame,
    encode_query_request,
)
from repro.metrics.throughput import LatencySummary
from repro.serve.server import QueryClient
from repro.sketches.base import Sketch
from repro.streams.synthetic import ZipfGenerator

#: Fraction of reads that are immediately re-issued for the consistency check.
REPEAT_READ_FRACTION = 0.05


@dataclass(frozen=True)
class LoadGenConfig:
    """Shape of one load-generation run."""

    #: Total operations (each write ships ``write_batch`` items, each read
    #: queries ``read_batch`` keys).
    operations: int = 2000
    #: Probability that an operation is a read.
    read_ratio: float = 0.5
    #: Items per write operation.
    write_batch: int = 256
    #: Keys per read operation.
    read_batch: int = 64
    #: Zipf skew of the key mix (reads and writes share it).
    skew: float = 1.1
    #: Key universe size.
    universe: int = 10_000
    #: RNG seed (schedule and key draws are fully deterministic).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.operations <= 0:
            raise ValueError("operations must be positive")
        if not 0.0 <= self.read_ratio <= 1.0:
            raise ValueError("read_ratio must be in [0, 1]")
        if self.write_batch <= 0 or self.read_batch <= 0:
            raise ValueError("write_batch and read_batch must be positive")


@dataclass
class LoadGenReport:
    """Everything one run measured (one row of ``BENCH_serving.json``)."""

    operations: int
    reads: int
    writes: int
    items_written: int
    keys_read: int
    wall_seconds: float
    ops_per_second: float
    reads_per_second: float
    keys_read_per_second: float
    items_written_per_second: float
    read_latency_p50_ms: float
    read_latency_p99_ms: float
    read_latency_mean_ms: float
    #: Epoch rotation observed by the service (staleness accounting).
    epochs_published: int
    mean_staleness_items: float
    max_staleness_items: float
    #: Both correctness signals held (see the module docstring).
    epoch_consistent: bool
    repeat_reads_checked: int
    service_stats: dict = field(default_factory=dict)

    def to_row(self) -> dict:
        """A flat JSON-serializable dict."""
        return dict(self.__dict__)


def run_loadgen(
    client: QueryClient,
    config: LoadGenConfig,
    reference: Sketch | None = None,
) -> LoadGenReport:
    """Drive one serving endpoint with a mixed read/write workload.

    ``reference`` is a local empty sketch built with the *same* registry
    configuration and seed as the served one; the generator feeds it every
    write batch it ships and uses it for the end-of-run bit-identity check
    (skipped when ``None``, leaving only the repeat-read signal).
    """
    rng = np.random.default_rng(config.seed)
    zipf = ZipfGenerator(config.skew, universe=config.universe, seed=config.seed + 1)

    # Materialise the whole schedule before the timed loop.
    is_read = rng.random(config.operations) < config.read_ratio
    reads = int(is_read.sum())
    writes = config.operations - reads
    write_keys = zipf.draw(writes * config.write_batch).tolist()
    read_keys = zipf.draw(reads * config.read_batch).tolist()
    repeat_read = rng.random(reads) < REPEAT_READ_FRACTION

    consistent = True
    repeat_checked = 0
    read_latencies: list[float] = []
    write_cursor = 0
    read_cursor = 0
    read_index = 0
    written_keys: dict = {}

    start = time.perf_counter()
    for operation in range(config.operations):
        if is_read[operation]:
            keys = read_keys[read_cursor : read_cursor + config.read_batch]
            read_cursor += config.read_batch
            issued = time.perf_counter()
            estimates, epoch_id = client.query_batch(keys)
            read_latencies.append(time.perf_counter() - issued)
            if repeat_read[read_index]:
                again, again_epoch = client.query_batch(keys)
                repeat_checked += 1
                if again_epoch == epoch_id and not (again == estimates).all():
                    # Same epoch, different answers: a torn read.
                    consistent = False
            read_index += 1
        else:
            keys = write_keys[write_cursor : write_cursor + config.write_batch]
            write_cursor += config.write_batch
            client.ingest(keys)
            if reference is not None:
                reference.insert_batch(keys)
            written_keys.update(dict.fromkeys(keys))
    wall_seconds = time.perf_counter() - start

    # Epoch-rotation accounting must be read BEFORE the drain flush: the
    # flush force-publishes, so reading afterwards would make
    # ``epochs_published`` >= 1 even if rotation during the run was broken
    # (and the CI assertion on it vacuous).
    in_run_stats = client.stats()
    publishes = int(in_run_stats.get("publishes", 0))

    # Drain: force the final epoch, then compare every written key against
    # the reference fed the identical stream.
    client.flush()
    if reference is not None and written_keys:
        distinct = list(written_keys)
        served, _ = client.query_batch(distinct)
        if not (served == reference.query_batch(distinct)).all():
            consistent = False

    stats = client.stats()
    latency = LatencySummary.from_seconds(read_latencies)
    items_written = writes * config.write_batch
    keys_read = reads * config.read_batch
    return LoadGenReport(
        operations=config.operations,
        reads=reads,
        writes=writes,
        items_written=items_written,
        keys_read=keys_read,
        wall_seconds=wall_seconds,
        ops_per_second=config.operations / max(wall_seconds, 1e-9),
        reads_per_second=reads / max(wall_seconds, 1e-9),
        keys_read_per_second=keys_read / max(wall_seconds, 1e-9),
        items_written_per_second=items_written / max(wall_seconds, 1e-9),
        read_latency_p50_ms=latency.p50_ms,
        read_latency_p99_ms=latency.p99_ms,
        read_latency_mean_ms=latency.mean_ms,
        epochs_published=publishes,
        # Staleness from the in-run stats too: the drain flush would append
        # one short partial interval and skew the mean low.
        mean_staleness_items=float(in_run_stats.get("mean_interval_items", 0.0)),
        max_staleness_items=float(in_run_stats.get("max_interval_items", 0)),
        epoch_consistent=consistent,
        repeat_reads_checked=repeat_checked,
        service_stats=stats,
    )


# ---------------------------------------------------------------------------
# Open-loop, multi-client load generation (the concurrency harness)


@dataclass(frozen=True)
class OpenLoopConfig:
    """Shape of one open-loop run (read-only; the caller pre-loads state)."""

    #: Concurrent worker connections.
    clients: int = 4
    #: Read requests issued per client.
    requests_per_client: int = 500
    #: Aggregate offered load across all clients (Poisson arrivals); 0 means
    #: *blast mode* — no pacing, the achieved rate is the saturation rate.
    target_qps: float = 0.0
    #: Keys per read request.
    read_batch: int = 16
    #: Distinct request batches drawn up front; requests sample from this
    #: pool, so the same batch recurs and cross-client / cross-epoch answers
    #: can be compared for the consistency signal.
    batch_pool: int = 64
    #: Zipf skew of the key mix.
    skew: float = 1.1
    #: Key universe size.
    universe: int = 10_000
    #: RNG seed (schedules and key draws are fully deterministic).
    seed: int = 0
    #: Local cap on requests in flight per connection (bounds client memory;
    #: an open loop that falls behind queues locally beyond it).
    max_inflight_per_client: int = 128
    #: Total BUSY retries allowed per client before a request is recorded
    #: as failed (None retries forever).
    busy_retries: int | None = 1024
    #: Epoch publishes forced mid-run through a control connection (0 = off);
    #: state is read-only so they rotate epoch ids without changing answers —
    #: the consistency checks must hold across the publishes.
    flushes_during_run: int = 0

    def __post_init__(self) -> None:
        if self.clients <= 0 or self.requests_per_client <= 0:
            raise ValueError("clients and requests_per_client must be positive")
        if self.read_batch <= 0 or self.batch_pool <= 0:
            raise ValueError("read_batch and batch_pool must be positive")
        if self.target_qps < 0:
            raise ValueError("target_qps must be >= 0")
        if self.max_inflight_per_client <= 0:
            raise ValueError("max_inflight_per_client must be positive")


@dataclass
class OpenLoopReport:
    """Everything one open-loop run measured (one concurrency-section row)."""

    clients: int
    requests_total: int
    completed: int
    failed: int
    offered_qps: float
    achieved_qps: float
    wall_seconds: float
    latency_p50_ms: float
    latency_p99_ms: float
    latency_p999_ms: float
    latency_mean_ms: float
    latency_max_ms: float
    busy_rejected: int
    busy_retried: int
    busy_rejection_rate: float
    #: Every consistency signal held: same-epoch repeat answers (within and
    #: across clients) were bit-identical, and — when a reference sketch was
    #: given — every pool batch's final answer equals the reference.
    epoch_consistent: bool
    epochs_observed: int
    client_errors: list = field(default_factory=list)

    def to_row(self) -> dict:
        return dict(self.__dict__)


class _ClientOutcome:
    """Mutable per-worker result box (threads have no return values)."""

    def __init__(self, requests: int) -> None:
        self.latencies = np.full(requests, np.nan)
        self.completed = 0
        self.failed = 0
        self.busy_rejected = 0
        self.busy_retried = 0
        #: (epoch_id, pool_index) -> estimates bytes, for repeat-answer checks.
        self.answers: dict[tuple[int, int], bytes] = {}
        self.consistent = True
        self.error: str | None = None
        self.finished_at = 0.0


def _open_loop_worker(
    client: QueryClient,
    pool: list[list[int]],
    schedule: np.ndarray,
    arrivals: np.ndarray,
    start_event: threading.Event,
    start_box: list[float],
    config: OpenLoopConfig,
    outcome: _ClientOutcome,
) -> None:
    """One open-loop connection: a paced sender plus an in-thread receiver.

    The sender thread issues requests at their scheduled arrival instants
    without waiting for replies; this (receiver) thread matches replies by
    request id, retries BUSY rejections, and records per-request latency —
    schedule-relative when paced (queueing delay included, the open-loop
    convention), send-relative in blast mode (where the schedule is "now").
    """
    channel = client._channel
    requests = len(schedule)
    send_lock = threading.Lock()  # sender and BUSY-retry both write the socket
    window = threading.Semaphore(config.max_inflight_per_client)
    id_to_index: dict[int, int] = {}
    send_times = np.zeros(requests)
    next_id = [0]
    paced = config.target_qps > 0

    def send_request(index: int) -> None:
        request_id = next_id[0]
        next_id[0] += 1
        id_to_index[request_id] = index
        frame = encode_frame(
            MSG_QUERY,
            encode_query_request(request_id, QUERY_KEYS, keys=pool[schedule[index]]),
        )
        with send_lock:
            channel.send(frame)

    def sender() -> None:
        start = start_box[0]
        try:
            for index in range(requests):
                if paced:
                    while True:
                        delay = arrivals[index] - (time.perf_counter() - start)
                        if delay <= 0:
                            break
                        time.sleep(min(delay, 0.01))
                window.acquire()
                if outcome.error is not None:
                    return
                send_times[index] = time.perf_counter() - start
                send_request(index)
        except (WireFormatError, OSError) as error:
            outcome.error = f"sender: {error}"

    start_event.wait()
    sender_thread = threading.Thread(target=sender, daemon=True)
    sender_thread.start()
    start = start_box[0]
    remaining = requests
    retries_left = (
        float("inf") if config.busy_retries is None else config.busy_retries
    )
    try:
        while remaining:
            frame = channel.recv()
            if frame is None:
                outcome.error = "server closed the connection mid-run"
                break
            msg_type, payload = decode_frame(frame)
            if msg_type != MSG_QUERY_REPLY:
                outcome.error = f"unexpected message type {msg_type}"
                break
            response = decode_query_response(payload)
            index = id_to_index.pop(response.request_id, None)
            if index is None:
                outcome.error = f"unmatched reply id {response.request_id}"
                break
            if response.status == STATUS_BUSY:
                outcome.busy_rejected += 1
                if retries_left > 0:
                    retries_left -= 1
                    outcome.busy_retried += 1
                    send_request(index)  # new id, same slot in the window
                    continue
                outcome.failed += 1
                remaining -= 1
                window.release()
                continue
            now = time.perf_counter() - start
            reference_instant = arrivals[index] if paced else send_times[index]
            outcome.latencies[index] = now - reference_instant
            outcome.completed += 1
            fingerprint = (response.epoch_id, int(schedule[index]))
            answer = response.estimates.tobytes()
            previous = outcome.answers.setdefault(fingerprint, answer)
            if previous != answer:
                outcome.consistent = False  # torn read within one epoch
            remaining -= 1
            window.release()
    except (WireFormatError, OSError) as error:
        outcome.error = f"receiver: {error}"
    finally:
        outcome.finished_at = time.perf_counter() - start
        # Unblock a sender parked on the window before joining it.
        for _ in range(config.max_inflight_per_client):
            window.release()
        sender_thread.join(timeout=10)
        # Close eagerly: against the *sequential* accept loop the next
        # waiting connection is only served once this one disconnects, so
        # holding sockets open until the end of the run would deadlock the
        # comparison harness.
        client.close()


def run_open_loop(
    connect: Callable[[], QueryClient],
    config: OpenLoopConfig,
    reference: Sketch | None = None,
) -> OpenLoopReport:
    """Drive one endpoint with ``config.clients`` open-loop connections.

    ``connect`` dials one fresh connection per call (clients plus one
    control connection).  ``reference`` is a local sketch holding the same
    state the server was pre-loaded with; when given, the end-of-run check
    queries every pool batch once more and requires bit-identity.  The run
    is read-only — pre-load the service before calling.
    """
    rng = np.random.default_rng(config.seed)
    zipf = ZipfGenerator(config.skew, universe=config.universe, seed=config.seed + 1)
    pool = [
        zipf.draw(config.read_batch).tolist() for _ in range(config.batch_pool)
    ]
    schedules = [
        rng.integers(0, config.batch_pool, size=config.requests_per_client)
        for _ in range(config.clients)
    ]
    if config.target_qps > 0:
        per_client_interval = config.clients / config.target_qps
        arrival_lists = [
            np.cumsum(rng.exponential(per_client_interval, size=config.requests_per_client))
            for _ in range(config.clients)
        ]
    else:
        arrival_lists = [np.zeros(config.requests_per_client)] * config.clients

    clients = [connect() for _ in range(config.clients)]
    control = connect()
    outcomes = [_ClientOutcome(config.requests_per_client) for _ in range(config.clients)]
    start_event = threading.Event()
    start_box = [0.0]
    workers = [
        threading.Thread(
            target=_open_loop_worker,
            args=(clients[i], pool, schedules[i], arrival_lists[i],
                  start_event, start_box, config, outcomes[i]),
            name=f"loadgen-client-{i}",
            daemon=True,
        )
        for i in range(config.clients)
    ]
    for worker in workers:
        worker.start()
    start_box[0] = time.perf_counter()
    start_event.set()

    # Mid-run epoch publishes (optional): rotate epoch ids while readers
    # are in flight; answers must stay bit-identical (read-only state).
    for _ in range(config.flushes_during_run):
        time.sleep(0.01)
        control.flush()

    for worker in workers:
        worker.join(timeout=120)
    wall_seconds = max(
        (outcome.finished_at for outcome in outcomes), default=0.0
    )

    consistent = all(outcome.consistent for outcome in outcomes)
    # Cross-client agreement: the same (epoch, batch) answered to two
    # different clients must be one answer.
    merged: dict[tuple[int, int], bytes] = {}
    epochs = set()
    for outcome in outcomes:
        for fingerprint, answer in outcome.answers.items():
            epochs.add(fingerprint[0])
            if merged.setdefault(fingerprint, answer) != answer:
                consistent = False
    # End-of-run bit-identity against the local reference.
    if reference is not None:
        control.flush()
        for pool_index, keys in enumerate(pool):
            served, _ = control.query_batch(keys)
            if not (served == reference.query_batch(keys)).all():
                consistent = False
                break
    control.close()
    for client in clients:
        client.close()

    latencies = np.concatenate([outcome.latencies for outcome in outcomes])
    latencies = latencies[~np.isnan(latencies)]
    summary = LatencySummary.from_seconds(latencies.tolist())
    p999 = float(np.percentile(latencies * 1e3, 99.9)) if latencies.size else 0.0
    completed = sum(outcome.completed for outcome in outcomes)
    failed = sum(outcome.failed for outcome in outcomes)
    busy = sum(outcome.busy_rejected for outcome in outcomes)
    attempts = completed + busy
    errors = [
        f"client {i}: {outcome.error}"
        for i, outcome in enumerate(outcomes)
        if outcome.error
    ]
    return OpenLoopReport(
        clients=config.clients,
        requests_total=config.clients * config.requests_per_client,
        completed=completed,
        failed=failed,
        offered_qps=config.target_qps,
        achieved_qps=completed / max(wall_seconds, 1e-9),
        wall_seconds=wall_seconds,
        latency_p50_ms=summary.p50_ms,
        latency_p99_ms=summary.p99_ms,
        latency_p999_ms=p999,
        latency_mean_ms=summary.mean_ms,
        latency_max_ms=summary.max_ms,
        busy_rejected=busy,
        busy_retried=sum(outcome.busy_retried for outcome in outcomes),
        busy_rejection_rate=busy / attempts if attempts else 0.0,
        epoch_consistent=consistent and not errors,
        epochs_observed=len(epochs),
        client_errors=errors,
    )

"""Closed-loop load generation against a serving endpoint.

The generator models the paper's operator workload: a measurement stream
being absorbed (writes) while per-flow estimates are queried concurrently
(reads).  It is *closed-loop*: one outstanding operation at a time, the
next op issued when the previous completes — so reported latencies are
service latencies, not queue-buildup artifacts, and sustained ops/sec is
the inverse of mean latency.

Operations are drawn from a pre-generated schedule (read with probability
``read_ratio``, write otherwise) over a Zipf key mix; all randomness is
materialised before the timed loop so the measurement is pure serving cost.

Two correctness signals ride along and land in ``BENCH_serving.json``:

* **Repeat-read consistency** — a sampled fraction of reads is immediately
  re-issued; whenever both answers carry the same epoch id they must be
  bit-identical (a torn read would differ).
* **End-of-run bit-identity** — after the final flush, every distinct key's
  served answer must equal a local *reference sketch* fed the identical
  write stream in the identical order.  Channels are FIFO and the service
  is single-writer, so the remote live sketch is bit-identical to the local
  reference by the layers-below contracts; the final epoch must expose
  exactly that state.

``epoch_consistent`` is the conjunction of both.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.metrics.throughput import LatencySummary
from repro.serve.server import QueryClient
from repro.sketches.base import Sketch
from repro.streams.synthetic import ZipfGenerator

#: Fraction of reads that are immediately re-issued for the consistency check.
REPEAT_READ_FRACTION = 0.05


@dataclass(frozen=True)
class LoadGenConfig:
    """Shape of one load-generation run."""

    #: Total operations (each write ships ``write_batch`` items, each read
    #: queries ``read_batch`` keys).
    operations: int = 2000
    #: Probability that an operation is a read.
    read_ratio: float = 0.5
    #: Items per write operation.
    write_batch: int = 256
    #: Keys per read operation.
    read_batch: int = 64
    #: Zipf skew of the key mix (reads and writes share it).
    skew: float = 1.1
    #: Key universe size.
    universe: int = 10_000
    #: RNG seed (schedule and key draws are fully deterministic).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.operations <= 0:
            raise ValueError("operations must be positive")
        if not 0.0 <= self.read_ratio <= 1.0:
            raise ValueError("read_ratio must be in [0, 1]")
        if self.write_batch <= 0 or self.read_batch <= 0:
            raise ValueError("write_batch and read_batch must be positive")


@dataclass
class LoadGenReport:
    """Everything one run measured (one row of ``BENCH_serving.json``)."""

    operations: int
    reads: int
    writes: int
    items_written: int
    keys_read: int
    wall_seconds: float
    ops_per_second: float
    reads_per_second: float
    keys_read_per_second: float
    items_written_per_second: float
    read_latency_p50_ms: float
    read_latency_p99_ms: float
    read_latency_mean_ms: float
    #: Epoch rotation observed by the service (staleness accounting).
    epochs_published: int
    mean_staleness_items: float
    max_staleness_items: float
    #: Both correctness signals held (see the module docstring).
    epoch_consistent: bool
    repeat_reads_checked: int
    service_stats: dict = field(default_factory=dict)

    def to_row(self) -> dict:
        """A flat JSON-serializable dict."""
        return dict(self.__dict__)


def run_loadgen(
    client: QueryClient,
    config: LoadGenConfig,
    reference: Sketch | None = None,
) -> LoadGenReport:
    """Drive one serving endpoint with a mixed read/write workload.

    ``reference`` is a local empty sketch built with the *same* registry
    configuration and seed as the served one; the generator feeds it every
    write batch it ships and uses it for the end-of-run bit-identity check
    (skipped when ``None``, leaving only the repeat-read signal).
    """
    rng = np.random.default_rng(config.seed)
    zipf = ZipfGenerator(config.skew, universe=config.universe, seed=config.seed + 1)

    # Materialise the whole schedule before the timed loop.
    is_read = rng.random(config.operations) < config.read_ratio
    reads = int(is_read.sum())
    writes = config.operations - reads
    write_keys = zipf.draw(writes * config.write_batch).tolist()
    read_keys = zipf.draw(reads * config.read_batch).tolist()
    repeat_read = rng.random(reads) < REPEAT_READ_FRACTION

    consistent = True
    repeat_checked = 0
    read_latencies: list[float] = []
    write_cursor = 0
    read_cursor = 0
    read_index = 0
    written_keys: dict = {}

    start = time.perf_counter()
    for operation in range(config.operations):
        if is_read[operation]:
            keys = read_keys[read_cursor : read_cursor + config.read_batch]
            read_cursor += config.read_batch
            issued = time.perf_counter()
            estimates, epoch_id = client.query_batch(keys)
            read_latencies.append(time.perf_counter() - issued)
            if repeat_read[read_index]:
                again, again_epoch = client.query_batch(keys)
                repeat_checked += 1
                if again_epoch == epoch_id and not (again == estimates).all():
                    # Same epoch, different answers: a torn read.
                    consistent = False
            read_index += 1
        else:
            keys = write_keys[write_cursor : write_cursor + config.write_batch]
            write_cursor += config.write_batch
            client.ingest(keys)
            if reference is not None:
                reference.insert_batch(keys)
            written_keys.update(dict.fromkeys(keys))
    wall_seconds = time.perf_counter() - start

    # Epoch-rotation accounting must be read BEFORE the drain flush: the
    # flush force-publishes, so reading afterwards would make
    # ``epochs_published`` >= 1 even if rotation during the run was broken
    # (and the CI assertion on it vacuous).
    in_run_stats = client.stats()
    publishes = int(in_run_stats.get("publishes", 0))

    # Drain: force the final epoch, then compare every written key against
    # the reference fed the identical stream.
    client.flush()
    if reference is not None and written_keys:
        distinct = list(written_keys)
        served, _ = client.query_batch(distinct)
        if not (served == reference.query_batch(distinct)).all():
            consistent = False

    stats = client.stats()
    latency = LatencySummary.from_seconds(read_latencies)
    items_written = writes * config.write_batch
    keys_read = reads * config.read_batch
    return LoadGenReport(
        operations=config.operations,
        reads=reads,
        writes=writes,
        items_written=items_written,
        keys_read=keys_read,
        wall_seconds=wall_seconds,
        ops_per_second=config.operations / max(wall_seconds, 1e-9),
        reads_per_second=reads / max(wall_seconds, 1e-9),
        keys_read_per_second=keys_read / max(wall_seconds, 1e-9),
        items_written_per_second=items_written / max(wall_seconds, 1e-9),
        read_latency_p50_ms=latency.p50_ms,
        read_latency_p99_ms=latency.p99_ms,
        read_latency_mean_ms=latency.mean_ms,
        epochs_published=publishes,
        # Staleness from the in-run stats too: the drain flush would append
        # one short partial interval and skew the mean low.
        mean_staleness_items=float(in_run_stats.get("mean_interval_items", 0.0)),
        max_staleness_items=float(in_run_stats.get("max_interval_items", 0)),
        epoch_consistent=consistent,
        repeat_reads_checked=repeat_checked,
        service_stats=stats,
    )

"""Typed rejection errors of the serving layer's read path.

Every non-OK ``MSG_QUERY_REPLY`` status maps to one subclass of
:class:`QueryRejectedError`, so callers branch on exception *type* (and the
``retryable`` flag) instead of string-matching messages or raw status bytes:

* :class:`ServerBusyError` — admission control turned the request away
  before executing it; retrying under backoff is safe and the client does.
* :class:`EpochGoneError` — a pinned-epoch (or windowed) read named an epoch
  the ring has evicted; no number of retries can bring it back, so clients
  raise immediately instead of burning their retry budget on it.

The split matters operationally: treating every rejection as BUSY (the old
behaviour) made a client retry EPOCH_GONE requests that could never succeed,
turning one stale pin into ``max_retries`` round trips plus a misleading
"server busy" failure.

This module lives apart from ``repro.serve.server`` so the temporal layer
(whose ring raises :class:`EpochGoneError`) can import it without pulling in
the transport stack; ``server`` re-exports the names for compatibility.
"""

from __future__ import annotations


class QueryRejectedError(RuntimeError):
    """Base of all typed non-OK query replies.

    ``retryable`` says whether resending the same request can ever succeed;
    ``request_id``/``kind``/``epoch_id`` echo the rejected request when the
    error surfaced from a wire reply (``None`` when raised service-side,
    before any frame existed).
    """

    retryable = False

    def __init__(
        self,
        message: str,
        request_id: int | None = None,
        kind: int | None = None,
        epoch_id: int | None = None,
    ) -> None:
        super().__init__(message)
        self.request_id = request_id
        self.kind = kind
        self.epoch_id = epoch_id


class ServerBusyError(QueryRejectedError):
    """The server rejected a request with a typed BUSY reply.

    Raised by ``QueryClient`` when a reply carries
    :data:`~repro.distributed.wire.STATUS_BUSY` — the async front end's
    admission control turned the request away (it was never executed).
    Retrying is safe; the client does so with bounded backoff and only
    raises once its retry budget is spent.
    """

    retryable = True

    def __init__(self, request_id: int, kind: int, epoch_id: int) -> None:
        QueryRejectedError.__init__(
            self,
            f"server is at its in-flight bound (request {request_id}, "
            f"kind {kind}, epoch {epoch_id})",
            request_id=request_id,
            kind=kind,
            epoch_id=epoch_id,
        )


class EpochGoneError(QueryRejectedError):
    """A pinned or windowed read named an epoch the ring no longer holds.

    Raised service-side by the :class:`~repro.temporal.EpochRing` when the
    requested epoch was evicted (or never published), and client-side when a
    reply carries :data:`~repro.distributed.wire.STATUS_EPOCH_GONE`.  Not
    retryable by construction — eviction is permanent — so clients surface
    it immediately instead of backing off.

    ``epoch_id`` is the epoch that was requested and is gone; ``oldest`` /
    ``newest`` bound the ring's resident range when known (service-side), so
    the message tells the caller what *is* still pinnable.
    """

    retryable = False

    def __init__(
        self,
        epoch_id: int,
        oldest: int | None = None,
        newest: int | None = None,
        request_id: int | None = None,
        kind: int | None = None,
    ) -> None:
        message = f"epoch {epoch_id} is not ring-resident"
        if oldest is not None and newest is not None:
            message += f" (ring holds epochs {oldest}..{newest})"
        QueryRejectedError.__init__(
            self, message, request_id=request_id, kind=kind, epoch_id=epoch_id
        )
        self.oldest = oldest
        self.newest = newest

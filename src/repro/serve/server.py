"""Remote serving: the query loop and client over the distributed transports.

The serving layer deliberately reuses the distributed-ingest machinery
instead of growing its own networking stack:

* **Writes** travel as the existing ``MSG_BATCH`` frames (packed key
  encodings, value compression) — a remote writer feeds a service exactly
  the way a coordinator feeds an ingest worker.
* **Reads** travel as the new ``MSG_QUERY``/``MSG_QUERY_REPLY`` frames
  (:mod:`repro.distributed.wire`), each reply stamped with the epoch id
  that answered it.
* **Transports** are the same ``inproc``/``pipe``/``tcp`` backends: a
  channel is a channel, whether it carries ingest batches or queries.

:func:`serve_main` is the server-side event loop (symmetric to
``ingest.worker_main``): stateless until a CONFIG frame describes the
service, then ingesting batches and answering queries until the channel
closes.  :class:`QueryClient` is the caller side.  :class:`ServingSession`
wires one server behind any transport backend and hands back a connected
client — the entry point of ``benchmarks/bench_serving.py``.
"""

from __future__ import annotations

import random
import socket
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.distributed.transport import (
    Channel,
    ChannelTimeoutError,
    SocketChannel,
    Transport,
    create_transport,
)
from repro.distributed.wire import (
    MSG_BATCH,
    MSG_CONFIG,
    MSG_QUERY,
    MSG_QUERY_REPLY,
    MSG_SHUTDOWN,
    QUERY_FLUSH,
    QUERY_KEYS,
    QUERY_STATS,
    QUERY_TOP_K,
    STATUS_BUSY,
    STATUS_EPOCH_GONE,
    STATUS_OK,
    QueryResponse,
    WireFormatError,
    decode_batch,
    decode_config,
    decode_frame,
    decode_query_request,
    decode_query_response,
    encode_batch,
    encode_config,
    encode_frame,
    encode_query_request,
    encode_query_response,
)
# Typed rejection errors live in their own module (the temporal ring raises
# EpochGoneError without touching the transport stack); re-exported here
# because this is where callers historically imported ServerBusyError from.
from repro.serve.errors import (  # noqa: F401  (re-exports)
    EpochGoneError,
    QueryRejectedError,
    ServerBusyError,
)
from repro.serve.service import DEFAULT_CACHE_SIZE, SketchService
from repro.serve.snapshots import DEFAULT_PUBLISH_EVERY_ITEMS, EpochSnapshot
from repro.temporal import DEFAULT_RING_EPOCHS
from repro.sketches.base import Sketch, UnmergeableSketchError
from repro.sketches.registry import build_sketch
from repro.sketches.sharded import ShardedSketch


class ServeTimeoutError(RuntimeError):
    """A client-side deadline expired before the server answered.

    Raised by :class:`QueryClient` when a :class:`RetryPolicy` deadline is
    breached — either because BUSY retries (with backoff) did not get
    through in time, or because the server went silent mid-request /
    mid-pipeline and the bounded ``recv`` never produced a reply.  Typed so
    callers can tell "the server said no" (:class:`ServerBusyError`) from
    "the server said nothing" without string matching.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with jitter for BUSY retries.

    ``delay(attempt, rng)`` grows ``base_delay`` by ``multiplier`` per
    attempt, capped at ``max_delay``, then shrinks it by up to ``jitter``
    (a seeded fraction) so a fleet of rejected clients does not reconverge
    on the server in lockstep — the classic retry-storm fix.

    ``max_retries`` bounds the attempts (``None`` = unbounded — rely on the
    deadline); ``deadline_seconds`` bounds the *total* time a logical
    request (or one whole pipelined call) may take, including server
    silence: with a deadline set, replies are awaited with a bounded
    ``recv`` and its expiry raises :class:`ServeTimeoutError` instead of
    hanging on a dead server.
    """

    max_retries: int | None = 64
    base_delay: float = 0.001
    max_delay: float = 0.25
    multiplier: float = 2.0
    jitter: float = 0.5
    deadline_seconds: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries is not None and self.max_retries < 0:
            raise ValueError("max_retries must be non-negative (or None)")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 <= base_delay <= max_delay")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        raw = min(self.max_delay, self.base_delay * self.multiplier**attempt)
        if self.jitter:
            raw *= 1.0 - self.jitter * rng.random()
        return raw


def create_listener(host: str, port: int, backlog: int = 128) -> socket.socket:
    """A TCP listener with ``SO_REUSEADDR`` set.

    Restarting a server on the same port must not fail while the previous
    incarnation's connections sit in TIME_WAIT — the classic
    "address already in use" of a quickly restarted ``repro-cli serve``.
    ``backlog`` is the pending-accept queue; concurrent clients beyond it
    see connection refusals instead of unbounded kernel queueing.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen(backlog)
    except OSError:
        sock.close()
        raise
    return sock


@dataclass(frozen=True)
class ServeConfig:
    """Everything a remote server needs to build its :class:`SketchService`.

    Travels as the first frame on a serving channel (the serving analogue of
    ``ingest.WorkerConfig``), so a TCP server process can be started with
    nothing but a listen address.  ``shards > 1`` builds the service over a
    :class:`~repro.sketches.sharded.ShardedSketch` of full-budget replicas.

    ``store_dir`` makes the service durable: :meth:`build_service` opens a
    :class:`~repro.store.SketchStore` there, recovers the newest valid
    epoch (warm restart — the sketch resumes bit-identical to the process
    that died), and journals everything ingested afterwards.  Requires a
    snapshotable algorithm (the store persists ``state_snapshot()``).

    ``ring_epochs`` budgets the temporal ring (how many published epochs
    stay pinnable for time-travel and windowed reads); on a warm restart
    the older retained on-disk snapshots are rehydrated into the ring, so
    ``--epoch`` pins survive a process death up to the store's retention.
    """

    algorithm: str
    memory_bytes: float
    seed: int = 0
    shards: int = 1
    publish_every_items: int = DEFAULT_PUBLISH_EVERY_ITEMS
    cache_size: int = DEFAULT_CACHE_SIZE
    max_tracked_keys: int | None = None
    store_dir: str | None = None
    ring_epochs: int = DEFAULT_RING_EPOCHS
    sketch_kwargs: dict = field(default_factory=dict)

    def to_payload(self) -> bytes:
        return encode_config(
            {
                "algorithm": self.algorithm,
                "memory_bytes": self.memory_bytes,
                "seed": self.seed,
                "shards": self.shards,
                "publish_every_items": self.publish_every_items,
                "cache_size": self.cache_size,
                "max_tracked_keys": self.max_tracked_keys,
                "store_dir": self.store_dir,
                "ring_epochs": self.ring_epochs,
                "sketch_kwargs": self.sketch_kwargs,
            }
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "ServeConfig":
        config = decode_config(payload)
        try:
            return cls(
                algorithm=config["algorithm"],
                memory_bytes=config["memory_bytes"],
                seed=config.get("seed", 0),
                shards=config.get("shards", 1),
                publish_every_items=config.get(
                    "publish_every_items", DEFAULT_PUBLISH_EVERY_ITEMS
                ),
                cache_size=config.get("cache_size", DEFAULT_CACHE_SIZE),
                max_tracked_keys=config.get("max_tracked_keys"),
                store_dir=config.get("store_dir"),
                ring_epochs=config.get("ring_epochs", DEFAULT_RING_EPOCHS),
                sketch_kwargs=config.get("sketch_kwargs", {}),
            )
        except KeyError as missing:
            raise WireFormatError(f"serve config is missing {missing}") from None

    def build_sketch(self) -> Sketch:
        if self.shards > 1:
            return ShardedSketch.from_registry(
                self.algorithm, self.memory_bytes, self.shards,
                seed=self.seed, **self.sketch_kwargs,
            )
        return build_sketch(
            self.algorithm, self.memory_bytes, seed=self.seed, **self.sketch_kwargs
        )

    def build_service(self) -> SketchService:
        """The configured service, with the replica factory wired in.

        With ``store_dir``: opens the durable store, recovers the newest
        valid epoch + journal replay into a warm sketch, and seeds the
        epoch writer one epoch past the recovered one — the construction
        publish then immediately re-snapshots the warm state, so the
        journal debt is repaid the moment the service is up.  Cold start
        (an empty directory) builds exactly the undurable service plus
        journaling.  The top-k key directory does not survive a restart
        (documented caveat — it re-fills from post-restart ingest).

        The recovery report's older retained snapshots — plus the recovered
        epoch itself, rebuilt as an immutable :class:`EpochSnapshot` — seed
        the temporal ring, so time-travel reads for on-disk epochs work
        from the first request after a warm restart.
        """
        store = None
        sketch = None
        start_epoch = 0
        start_items = 0
        ring_seed: list[EpochSnapshot] = []
        if self.store_dir is not None:
            from repro.sketches.registry import supports_snapshots
            from repro.store import SketchStore

            if not supports_snapshots(self.algorithm):
                raise ValueError(
                    f"--store needs a snapshotable algorithm; {self.algorithm!r} "
                    "does not support state snapshots"
                )
            store = SketchStore(self.store_dir, algorithm=self.algorithm)
            recovered = store.restore_into(self.build_sketch)
            if recovered is not None:
                sketch, report = recovered
                start_epoch = report.epoch_id + 1
                start_items = report.items_total
                restored_at = time.perf_counter()
                for ring_epoch_id, ring_items, ring_state in report.ring_epochs:
                    replica = self.build_sketch()
                    replica.state_restore(ring_state)
                    ring_seed.append(
                        EpochSnapshot(
                            epoch_id=ring_epoch_id,
                            items=ring_items,
                            sketch=replica,
                            published_at=restored_at,
                        )
                    )
                # The recovered epoch pins as published: its snapshot state
                # *without* the replayed journal tail (which belongs to the
                # in-flight epoch, not the published one).
                replica = self.build_sketch()
                replica.state_restore(report.state)
                ring_seed.append(
                    EpochSnapshot(
                        epoch_id=report.epoch_id,
                        items=report.items,
                        sketch=replica,
                        published_at=restored_at,
                    )
                )
        if sketch is None:
            sketch = self.build_sketch()
        return SketchService(
            sketch,
            factory=self.build_sketch,
            publish_every_items=self.publish_every_items,
            cache_size=self.cache_size,
            max_tracked_keys=self.max_tracked_keys,
            store=store,
            start_epoch=start_epoch,
            start_items=start_items,
            ring_epochs=self.ring_epochs,
            ring_seed=ring_seed,
        )


def answer_request(service: SketchService, payload: bytes) -> bytes:
    """Decode one MSG_QUERY payload, serve it, encode the MSG_QUERY_REPLY.

    Shared by every server front end (transport-launched ``serve_main``,
    the CLI's TCP accept loop and the async event loop), so request
    semantics cannot drift between deployment shapes — including the
    temporal extension: pinned-epoch and windowed reads resolve against
    the service's ring here, and a request naming an evicted epoch gets a
    typed :data:`~repro.distributed.wire.STATUS_EPOCH_GONE` reply (echoing
    the requested epoch) on every front end.  A windowed read on a family
    without the delta contract is a protocol violation and raises
    :class:`~repro.distributed.wire.WireFormatError`, like any other
    malformed request.
    """
    request = decode_query_request(payload)
    try:
        if request.kind == QUERY_KEYS:
            estimates, epoch_id = service.serve_batch(
                request.keys, epoch=request.epoch, window=request.window
            )
            return encode_query_response(
                request.request_id, QUERY_KEYS, epoch_id, estimates=estimates
            )
        if request.kind == QUERY_TOP_K:
            ranking, epoch_id = service.serve_top_k(request.k, epoch=request.epoch)
            return encode_query_response(
                request.request_id,
                QUERY_TOP_K,
                epoch_id,
                estimates=[estimate for _, estimate in ranking],
                keys=[key for key, _ in ranking],
            )
    except EpochGoneError as gone:
        # Echo the requested-and-gone epoch (clamped: a window reaching
        # before epoch 0 names a negative id the wire cannot carry).
        return encode_query_response(
            request.request_id,
            request.kind,
            max(0, gone.epoch_id or 0),
            status=STATUS_EPOCH_GONE,
        )
    except UnmergeableSketchError as error:
        raise WireFormatError(str(error)) from None
    if request.kind == QUERY_STATS:
        return encode_query_response(
            request.request_id,
            QUERY_STATS,
            service.current_epoch.epoch_id,
            stats=service.stats(),
        )
    # QUERY_FLUSH — decode_query_request already rejected unknown kinds.
    epoch = service.flush()
    return encode_query_response(request.request_id, QUERY_FLUSH, epoch.epoch_id)


def serve_channel(channel: Channel, service: SketchService) -> None:
    """Serve one configured channel until it closes (or SHUTDOWN arrives)."""
    while True:
        frame = channel.recv()
        if frame is None:
            break
        msg_type, payload = decode_frame(frame)
        if msg_type == MSG_BATCH:
            batch, values = decode_batch(payload)
            service.ingest(batch, values)
        elif msg_type == MSG_QUERY:
            channel.send(encode_frame(MSG_QUERY_REPLY, answer_request(service, payload)))
        elif msg_type == MSG_SHUTDOWN:
            break
        else:
            raise WireFormatError(
                f"unexpected message type {msg_type} on a serving channel"
            )


def serve_main(channel: Channel) -> None:
    """The remote server's event loop (same code on every transport).

    Frames in: CONFIG (build the service), BATCH (ingest through the epoch
    writer), QUERY (answer from the latest published epoch),
    SHUTDOWN / EOF (exit).  Mirrors ``ingest.worker_main`` — and is
    launchable by any ``Transport`` the same way.
    """
    frame = channel.recv()
    if frame is None:
        channel.close()
        return
    msg_type, payload = decode_frame(frame)
    if msg_type != MSG_CONFIG:
        channel.close()
        raise WireFormatError("serving channel must start with a CONFIG frame")
    service = ServeConfig.from_payload(payload).build_service()
    try:
        serve_channel(channel, service)
    finally:
        channel.close()


def _rejection_error(response: QueryResponse) -> QueryRejectedError:
    """The typed error of a non-OK, non-BUSY reply (client side).

    ``decode_query_response`` already rejected statuses this build does not
    know, so the fallback branch only fires if a new status is added to the
    wire module without a mapping here — still a typed, non-retryable error.
    """
    if response.status == STATUS_EPOCH_GONE:
        return EpochGoneError(
            response.epoch_id, request_id=response.request_id, kind=response.kind
        )
    return QueryRejectedError(
        f"server rejected request {response.request_id} with status "
        f"{response.status}",
        request_id=response.request_id,
        kind=response.kind,
        epoch_id=response.epoch_id,
    )


class QueryClient:
    """Caller-side API over one serving channel.

    Writes (:meth:`ingest`) are fire-and-forget ``MSG_BATCH`` frames; reads
    round-trip and return epoch-stamped answers.  Channels are FIFO in both
    directions, so a read observes every write the same client sent before
    it (once the read's epoch has rotated past them — :meth:`flush` forces
    that).  Not thread-safe: one client per channel, one channel per client.

    ``retry_policy`` governs BUSY handling on every read path: rejected
    requests are retried under exponential backoff with seeded jitter
    instead of spinning, bounded by the policy's ``max_retries`` and (when
    set) its total deadline — a breach raises :class:`ServeTimeoutError`
    rather than hanging on a server that died mid-request.  Only BUSY is
    retried: any other non-OK status raises its typed
    :class:`~repro.serve.errors.QueryRejectedError` subclass immediately
    (an :class:`~repro.serve.errors.EpochGoneError` pin can never succeed,
    so retrying it would just burn the budget).
    """

    def __init__(self, channel: Channel, retry_policy: RetryPolicy | None = None) -> None:
        self._channel = channel
        self._next_request_id = 0
        self.retry_policy = retry_policy or RetryPolicy()
        self._retry_rng = random.Random(self.retry_policy.seed)
        #: BUSY replies absorbed by backoff (monitoring counter).
        self.busy_retries = 0

    # ----------------------------------------------------------- write side
    def ingest(self, keys: Sequence[object], values: Sequence[int] | int | None = None) -> None:
        """Ship one write batch (packed key encodings, no acknowledgement)."""
        self._channel.send(encode_frame(MSG_BATCH, encode_batch(keys, values)))

    # ------------------------------------------------------------ read side
    def _deadline(self) -> float | None:
        seconds = self.retry_policy.deadline_seconds
        return None if seconds is None else time.monotonic() + seconds

    def _recv_within(self, deadline: float | None) -> bytes | None:
        """One frame, bounded by the deadline when there is one."""
        if deadline is None:
            return self._channel.recv()
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise ServeTimeoutError(
                f"deadline of {self.retry_policy.deadline_seconds}s exhausted "
                "waiting for the server"
            )
        try:
            return self._channel.recv(timeout=remaining)
        except ChannelTimeoutError:
            raise ServeTimeoutError(
                f"no reply within the {self.retry_policy.deadline_seconds}s deadline "
                "(server silent; channel no longer usable)"
            ) from None

    def _backoff(self, attempt: int, deadline: float | None) -> None:
        """Sleep before BUSY retry ``attempt``, never past the deadline."""
        delay = self.retry_policy.delay(attempt, self._retry_rng)
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeTimeoutError(
                    f"deadline of {self.retry_policy.deadline_seconds}s exhausted "
                    f"after {attempt} BUSY retries"
                )
            delay = min(delay, remaining)
        if delay > 0:
            time.sleep(delay)

    def _round_trip(self, kind: int, **request_kwargs) -> QueryResponse:
        policy = self.retry_policy
        deadline = self._deadline()
        attempt = 0
        while True:
            request_id = self._next_request_id
            self._next_request_id += 1
            self._channel.send(
                encode_frame(
                    MSG_QUERY, encode_query_request(request_id, kind, **request_kwargs)
                )
            )
            frame = self._recv_within(deadline)
            if frame is None:
                raise WireFormatError("server closed the channel mid-request")
            msg_type, payload = decode_frame(frame)
            if msg_type != MSG_QUERY_REPLY:
                raise WireFormatError(f"expected MSG_QUERY_REPLY, got {msg_type}")
            response = decode_query_response(payload)
            if response.request_id != request_id or response.kind != kind:
                raise WireFormatError(
                    f"response ({response.request_id}, kind {response.kind}) does not "
                    f"match request ({request_id}, kind {kind})"
                )
            if response.status == STATUS_BUSY:
                if policy.max_retries is not None and attempt >= policy.max_retries:
                    raise ServerBusyError(
                        response.request_id, response.kind, response.epoch_id
                    )
                self._backoff(attempt, deadline)
                self.busy_retries += 1
                attempt += 1
                continue
            if response.status != STATUS_OK:
                # Non-retryable rejections (EPOCH_GONE and any future
                # status) raise their typed error immediately: the old
                # treat-everything-as-BUSY path would burn the whole retry
                # budget on a request that can never succeed.
                raise _rejection_error(response)
            return response

    def query_batch(
        self,
        keys: Sequence[object],
        epoch: int | None = None,
        window: int | None = None,
    ) -> tuple[np.ndarray, int]:
        """Point estimates plus the id of the epoch that answered.

        ``epoch`` pins the read to a specific published epoch, ``window``
        asks for last-``window``-epochs estimates (subtractable families
        only); a pin the server's ring has evicted raises the typed,
        non-retryable :class:`~repro.serve.errors.EpochGoneError`.
        """
        response = self._round_trip(QUERY_KEYS, keys=keys, epoch=epoch, window=window)
        if len(response.estimates) != len(keys):
            raise WireFormatError("server returned a mismatched estimate count")
        return response.estimates, response.epoch_id

    def query_batches_pipelined(
        self,
        key_batches: Sequence[Sequence[object]],
        max_inflight: int = 64,
        busy_retries: int | None = 64,
    ) -> list[tuple[np.ndarray, int]]:
        """Issue many key-batch queries with up to ``max_inflight`` in flight.

        The pipelined read path: requests are streamed without waiting for
        their replies, so one connection amortises its round-trip latency
        over the whole window (both servers answer pipelined frames; the
        async server interleaves them with other connections).  Results
        come back in ``key_batches`` order regardless of BUSY retries —
        a BUSY reply re-enqueues its batch under a fresh request id *after
        the policy's backoff delay* (per-batch exponential growth with
        seeded jitter, so a saturated server is not hammered in a tight
        resend loop).  ``busy_retries`` bounds the total across the call
        (``None`` retries forever); the policy's ``deadline_seconds``
        bounds the whole call — replies are then awaited with a bounded
        ``recv``, so a server dying mid-pipeline raises
        :class:`ServeTimeoutError` instead of hanging.
        """
        results: list[tuple[np.ndarray, int] | None] = [None] * len(key_batches)
        # (index, earliest send time); 0 = immediately.  Backoff works by
        # re-enqueuing a rejected batch with a future ready time.
        unsent: deque[tuple[int, float]] = deque((i, 0.0) for i in range(len(key_batches)))
        attempts = [0] * len(key_batches)
        id_to_index: dict[int, int] = {}
        retries = 0
        deadline = self._deadline()
        while unsent or id_to_index:
            now = time.monotonic()
            while unsent and len(id_to_index) < max_inflight and unsent[0][1] <= now:
                index, _ = unsent.popleft()
                request_id = self._next_request_id
                self._next_request_id += 1
                id_to_index[request_id] = index
                self._channel.send(
                    encode_frame(
                        MSG_QUERY,
                        encode_query_request(
                            request_id, QUERY_KEYS, keys=key_batches[index]
                        ),
                    )
                )
            if not id_to_index:
                # Nothing in flight: every pending batch is backing off.
                # Sleep to its ready time (deadline-capped) instead of
                # spinning on the empty window.
                wait = unsent[0][1] - time.monotonic()
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise ServeTimeoutError(
                            f"deadline of {self.retry_policy.deadline_seconds}s "
                            f"exhausted with {len(unsent)} batch(es) unserved"
                        )
                    wait = min(wait, remaining)
                if wait > 0:
                    time.sleep(wait)
                continue
            frame = self._recv_within(deadline)
            if frame is None:
                raise WireFormatError("server closed the channel mid-pipeline")
            msg_type, payload = decode_frame(frame)
            if msg_type != MSG_QUERY_REPLY:
                raise WireFormatError(f"expected MSG_QUERY_REPLY, got {msg_type}")
            response = decode_query_response(payload)
            index = id_to_index.pop(response.request_id, None)
            if index is None:
                raise WireFormatError(
                    f"reply {response.request_id} matches no in-flight request"
                )
            if response.status == STATUS_BUSY:
                retries += 1
                if busy_retries is not None and retries > busy_retries:
                    raise ServerBusyError(
                        response.request_id, response.kind, response.epoch_id
                    )
                self.busy_retries += 1
                delay = self.retry_policy.delay(attempts[index], self._retry_rng)
                attempts[index] += 1
                unsent.append((index, time.monotonic() + delay))
                continue
            if response.status != STATUS_OK:
                # Never re-enqueue a non-retryable rejection: resending an
                # EPOCH_GONE batch can only produce the same answer.
                raise _rejection_error(response)
            if len(response.estimates) != len(key_batches[index]):
                raise WireFormatError("server returned a mismatched estimate count")
            results[index] = (response.estimates, response.epoch_id)
        return results  # type: ignore[return-value]

    def query(self, key: object) -> int:
        """Point estimate of one key."""
        return int(self.query_batch([key])[0][0])

    def top_k(
        self, k: int, epoch: int | None = None
    ) -> tuple[list[tuple[object, int]], int]:
        """The server's top-k ranking (heaviest first) plus its epoch id.

        ``epoch`` ranks against a pinned ring epoch instead of the latest
        one (candidates are still the server's current key directory).
        """
        response = self._round_trip(QUERY_TOP_K, k=k, epoch=epoch)
        ranking = list(zip(response.keys, response.estimates.tolist()))
        return ranking, response.epoch_id

    def stats(self) -> dict:
        """The service's counters (see :meth:`SketchService.stats`)."""
        return self._round_trip(QUERY_STATS).stats

    def flush(self) -> int:
        """Force an epoch publish; returns the new epoch id.

        Because the channel is FIFO, the new epoch covers every batch this
        client ingested before the flush — the read-your-writes barrier.
        """
        return self._round_trip(QUERY_FLUSH).epoch_id

    def close(self) -> None:
        self._channel.close()

    @property
    def bytes_sent(self) -> int:
        return self._channel.bytes_sent

    @property
    def bytes_received(self) -> int:
        return self._channel.bytes_received


class ServingSession:
    """One remote service behind a transport, with a connected client.

    ``transport`` is a backend name (``inproc``/``pipe``/``tcp``) or a
    pre-built :class:`Transport`.  The session launches a single
    :func:`serve_main` endpoint over it (a thread for ``inproc``, an OS
    process for ``pipe``, a socket peer for ``tcp``), ships the CONFIG
    frame, and exposes the :class:`QueryClient`.  Use as a context manager;
    exit shuts the server down and joins it.
    """

    def __init__(
        self,
        config: ServeConfig,
        transport: str | Transport = "inproc",
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self.config = config
        self.transport = (
            create_transport(transport) if isinstance(transport, str) else transport
        )
        channels = self.transport.launch(serve_main, 1)
        self._channel = channels[0]
        self._channel.send(encode_frame(MSG_CONFIG, config.to_payload()))
        self.client = QueryClient(self._channel, retry_policy=retry_policy)

    def shutdown(self) -> None:
        try:
            self._channel.send(encode_frame(MSG_SHUTDOWN))
        except (WireFormatError, OSError):
            pass  # already closed
        self.transport.close()
        self.transport.join(timeout=30)

    def __enter__(self) -> "ServingSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def serve_forever(
    listener: socket.socket, service: SketchService, max_sessions: int | None = None
) -> int:
    """Accept and serve TCP clients sequentially over one shared service.

    The ``repro-cli serve`` accept loop: each accepted connection is served
    until it disconnects; the service (and its sketch state) persists across
    sessions, so a writer client can load state that later reader clients
    query.  A misbehaving client — garbage bytes, a connection dropped
    mid-frame — ends *its* session, never the server: the error is reported
    and the loop accepts the next client with the sketch state intact.
    Returns the number of completed sessions (``max_sessions`` bounds it;
    ``None`` loops until the listener is closed).
    """
    sessions = 0
    while max_sessions is None or sessions < max_sessions:
        try:
            connection, _ = listener.accept()
        except (OSError, TimeoutError):
            break
        channel = SocketChannel(connection)
        try:
            serve_channel(channel, service)
        except (WireFormatError, OSError) as error:
            print(f"client session ended with an error: {error}")
        finally:
            channel.close()
        sessions += 1
    return sessions

"""Online query serving: snapshot-isolated reads concurrent with ingest.

The sixth layer of the engine (see ``docs/architecture.md``).  Everything
below it answers queries *after* a stream has been absorbed; this package
answers them *while* the stream is being absorbed, without ever letting a
reader observe a half-applied update:

* :mod:`repro.serve.snapshots` — epoch-based snapshot rotation: a single
  writer ingests batches into the live sketch and periodically publishes an
  immutable replica (``state_snapshot`` → ``state_restore`` when the sketch
  supports it, deep copy otherwise).  Readers always see the latest
  *published* epoch, so every answer is bit-identical to querying a frozen
  copy of the sketch at that epoch — reads never contend with inserts.
* :mod:`repro.serve.service` — :class:`~repro.serve.service.SketchService`:
  the query front end (``query`` / ``query_batch`` / ``top_k`` / ``stats``)
  with a bounded LRU answer cache invalidated on epoch publish.
* :mod:`repro.serve.server` — request/response framing layered on the
  distributed ``Transport`` protocol, so the same inproc/pipe/tcp backends
  that ship ingest batches also serve remote queries
  (``repro-cli serve`` / ``repro-cli query``).
* :mod:`repro.serve.async_server` — the concurrent TCP front end: one
  selector event loop multiplexing every live connection over one shared
  service, with pipelined frames, bounded in-flight admission control
  (typed BUSY replies) and graceful drain (``repro-cli serve --async``).
* :mod:`repro.serve.loadgen` — load generation: a closed-loop generator
  (Zipf key mix, configurable read/write ratio) and an open-loop
  multi-client harness (target-qps Poisson arrivals, per-request latency),
  both behind ``benchmarks/bench_serving.py``.
* :mod:`repro.serve.errors` — the typed query-rejection hierarchy
  (:class:`~repro.serve.errors.ServerBusyError` is retryable;
  :class:`~repro.serve.errors.EpochGoneError` — a pinned epoch evicted
  from the temporal ring — is not).  The ring itself, sliding-window
  deltas, and heavy-hitter change detection live in :mod:`repro.temporal`
  and surface here through ``SketchService``.
"""

from repro.serve.async_server import (
    AsyncServerStats,
    AsyncServingSession,
    AsyncSketchServer,
)
from repro.serve.loadgen import (
    LoadGenConfig,
    LoadGenReport,
    OpenLoopConfig,
    OpenLoopReport,
    run_loadgen,
    run_open_loop,
)
from repro.serve.errors import EpochGoneError, QueryRejectedError
from repro.serve.server import (
    QueryClient,
    RetryPolicy,
    ServeConfig,
    ServerBusyError,
    ServeTimeoutError,
    ServingSession,
    create_listener,
    serve_main,
)
from repro.serve.service import SketchService
from repro.serve.snapshots import EpochSnapshot, EpochWriter, replicate_sketch

__all__ = [
    "AsyncServerStats",
    "AsyncServingSession",
    "AsyncSketchServer",
    "EpochGoneError",
    "EpochSnapshot",
    "EpochWriter",
    "LoadGenConfig",
    "LoadGenReport",
    "OpenLoopConfig",
    "OpenLoopReport",
    "QueryClient",
    "QueryRejectedError",
    "RetryPolicy",
    "ServeConfig",
    "ServerBusyError",
    "ServeTimeoutError",
    "ServingSession",
    "SketchService",
    "create_listener",
    "replicate_sketch",
    "run_loadgen",
    "run_open_loop",
    "serve_main",
]

"""The query front end of the serving layer.

:class:`SketchService` bolts the read API onto an
:class:`~repro.serve.snapshots.EpochWriter`:

* ``query(key)`` / ``query_batch(keys)`` — point estimates answered from
  the latest published epoch (never from the live sketch), so every answer
  is bit-identical to querying a frozen copy of the sketch at that epoch;
* ``top_k(k)`` — the heaviest keys among those the service has ingested,
  ranked by their epoch estimates (ties broken by first-contact order, so
  the ranking is deterministic);
* ``stats()`` — epoch id, items absorbed, memory, staleness and cache
  counters (the ``repro-cli query --stats`` payload);
* ``ingest(keys, values)`` / ``flush()`` — the write side, delegated to the
  epoch writer.

A bounded LRU **answer cache** sits in front of the scalar ``query`` and
``top_k`` paths; it is keyed per epoch and cleared on every publish, so a
cached answer can never outlive the epoch it was computed in.  The batch
query path bypasses the cache on purpose — one vectorized ``query_batch``
against the replica is cheaper than per-key cache probes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Sequence

import numpy as np

from repro.serve.errors import EpochGoneError
from repro.serve.snapshots import (
    DEFAULT_PUBLISH_EVERY_ITEMS,
    EpochSnapshot,
    EpochWriter,
)
from repro.sketches.base import Sketch
from repro.temporal import (
    DEFAULT_RING_EPOCHS,
    ChangeReport,
    EpochRing,
    delta_sketch,
    diff_rankings,
)

#: Default bound of the per-epoch LRU answer cache.
DEFAULT_CACHE_SIZE = 4096


class SketchService:
    """Snapshot-isolated online query service over one live sketch.

    Parameters
    ----------
    sketch:
        The live sketch (any :class:`~repro.sketches.base.Sketch`, including
        a :class:`~repro.sketches.sharded.ShardedSketch`).
    factory:
        Optional builder of structurally identical empty peers — enables the
        cheap snapshot-restore epoch replication (see
        :func:`~repro.serve.snapshots.replicate_sketch`).
    publish_every_items / publish_every_seconds:
        Epoch rotation cadence, forwarded to the writer.
    cache_size:
        Bound of the LRU answer cache (0 disables caching).
    track_keys:
        Maintain the key directory behind :meth:`top_k` (every distinct key
        ever ingested, in first-contact order).  The directory grows with
        the distinct keys — the same deliberate speed-for-memory trade as
        the kernel interner; disable it for unbounded key spaces, at the
        price of ``top_k`` raising.
    max_tracked_keys:
        Bound the directory to a heavy-hitter candidate set.  When the
        directory overshoots the bound (plus a small slack so pruning is
        amortized), it is pruned back to the ``max_tracked_keys`` keys with
        the highest current-epoch estimates (ties kept in first-contact
        order).  ``top_k`` then ranks *candidates*, not all keys ever seen:
        a key pruned while light is invisible to ``top_k`` until it is
        ingested again — see ``docs/api.md`` for the accuracy caveat.
    store:
        Optional :class:`~repro.store.SketchStore` making the epoch stream
        durable: every ingest batch is journaled **before** the in-memory
        insert and every published epoch is persisted from the publish
        hook, so a restarted service recovers bit-identical to one that
        never died.  The store must already be recovered (its journal
        rotates on the construction-time publish).  The key directory is
        *not* persisted — after a warm restart ``top_k`` ranks only keys
        ingested since (documented caveat in ``docs/api.md``).
    start_epoch / start_items:
        Warm-restart seeding forwarded to the epoch writer (see
        :class:`~repro.serve.snapshots.EpochWriter`).
    ring_epochs / ring_bytes:
        Budgets of the temporal :class:`~repro.temporal.EpochRing`: retain
        at most ``ring_epochs`` recent published epochs (and, optionally,
        at most ``ring_bytes`` of summed replica memory) for pinned-epoch
        reads, sliding windows and change detection.  Reads pinning an
        evicted epoch raise the typed
        :class:`~repro.serve.errors.EpochGoneError`.
    ring_seed:
        Snapshots to pre-populate the ring with, oldest first — the warm
        restart path hands back the on-disk epochs here so time-travel
        reads survive a process death.  Their epoch ids must precede
        ``start_epoch``.
    """

    def __init__(
        self,
        sketch: Sketch,
        factory: Callable[[], Sketch] | None = None,
        publish_every_items: int = DEFAULT_PUBLISH_EVERY_ITEMS,
        publish_every_seconds: float | None = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        track_keys: bool = True,
        max_tracked_keys: int | None = None,
        store=None,
        start_epoch: int = 0,
        start_items: int = 0,
        ring_epochs: int = DEFAULT_RING_EPOCHS,
        ring_bytes: float | None = None,
        ring_seed: Sequence[EpochSnapshot] = (),
    ) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if max_tracked_keys is not None and max_tracked_keys <= 0:
            raise ValueError("max_tracked_keys must be positive (or None)")
        self.cache_size = cache_size
        self._cache: OrderedDict = OrderedDict()
        self._cache_lock = threading.Lock()
        self._cache_epoch = -1
        self.cache_hits = 0
        self.cache_misses = 0
        self._track_keys = track_keys
        self.max_tracked_keys = max_tracked_keys
        #: Number of times the bounded directory was pruned.
        self.directory_prunes = 0
        # First-contact-ordered key directory (dict-as-ordered-set).
        self._keys: dict = {}
        self._factory = factory
        # Temporal state — built before the writer exists: the construction
        # publish fires _on_publish, which offers the first epoch to the ring.
        self.ring = EpochRing(max_epochs=ring_epochs, max_bytes=ring_bytes)
        for snapshot in ring_seed:
            self.ring.offer(snapshot)
        # Delta sketches memoised per (later epoch, window); cleared on
        # publish so the memo cannot outgrow one epoch's query mix.
        self._window_cache: dict[tuple[int, int], Sketch] = {}
        #: Pinned/windowed reads rejected because their epoch was evicted.
        self.epoch_gone_rejections = 0
        self._change_listeners: list[tuple[Callable[[ChangeReport], None], int, int]] = []
        #: Change-listener callbacks that raised (swallowed, counted:
        #: a misbehaving alert sink must not kill the ingest path).
        self.change_alert_errors = 0
        # Set before the writer exists: the construction-time publish fires
        # _on_publish, which must already see the store to persist epoch 0
        # (or the warm-restart epoch) and rotate its journal.
        self._store = store
        self._writer = EpochWriter(
            sketch,
            factory=factory,
            publish_every_items=publish_every_items,
            publish_every_seconds=publish_every_seconds,
            on_publish=self._on_publish,
            start_epoch=start_epoch,
            start_items=start_items,
        )

    # ------------------------------------------------------------ write side
    def ingest(self, keys: Sequence[object], values: Sequence[int] | int | None = None) -> None:
        """Absorb one batch (single-writer contract, see the epoch writer)."""
        if self._store is not None:
            # Journal first: a batch is either durably in the WAL before it
            # can affect an answer, or (post-crash) absent from both the
            # journal and the sketch — never in one without the other in a
            # direction that loses acknowledged state.
            self._store.append_batch(keys, values)
        if self._track_keys:
            directory = self._keys
            for key in keys:
                # Numpy scalars (an ndarray batch) are stored as native ints:
                # directory keys are re-queried later as a mixed python list
                # (ranking, change detection), and the scalar key encoder
                # only accepts native types.
                if isinstance(key, np.generic):
                    key = key.item()
                directory[key] = None
            cap = self.max_tracked_keys
            if cap is not None and len(directory) > cap + max(64, cap // 8):
                self._prune_directory()
        self._writer.ingest(keys, values)

    def _prune_directory(self) -> None:
        """Shrink the directory to the ``max_tracked_keys`` heaviest keys.

        Ranked by current-epoch estimate (items absorbed since the last
        publish are not yet visible — a freshly ingested heavy key can be
        pruned once, and re-enters the directory on its next ingest), ties
        kept in first-contact order.
        """
        candidates = list(self._keys)
        estimates = self._writer.current.sketch.query_batch(candidates)
        order = np.argsort(-estimates, kind="stable")[: self.max_tracked_keys]
        # Re-sort the survivors by position to preserve first-contact order.
        self._keys = {candidates[i]: None for i in sorted(order.tolist())}
        self.directory_prunes += 1

    def flush(self) -> EpochSnapshot:
        """Force an epoch publish so reads catch up with all absorbed items."""
        return self._writer.publish()

    def _on_publish(self, epoch: EpochSnapshot) -> None:
        # A new epoch invalidates every cached answer: answers are per-epoch
        # facts, and the next probe repopulates against the new replica.
        with self._cache_lock:
            self._cache.clear()
            self._cache_epoch = epoch.epoch_id
            self._window_cache.clear()
        # The previous newest ring epoch is the "before" side of per-publish
        # change alerts; captured before the offer (which may also evict).
        previous = self.ring.newest
        self.ring.offer(epoch)
        if self._store is not None:
            # Persist the frozen replica (not the live sketch): the hook
            # runs inside the writer lock, but the replica is immutable so
            # the store reads a consistent state no matter how long the
            # disk takes.  Degradation is handled inside the store.
            self._store.publish_epoch(epoch.epoch_id, epoch.items, epoch.sketch)
        if previous is not None:
            for callback, k, min_delta in self._change_listeners:
                try:
                    report = self._diff_snapshots(previous, epoch, k, min_delta)
                    if report.has_changes:
                        callback(report)
                except Exception:
                    # The hook runs inside the writer lock, on the ingest
                    # path: an alert sink's bug must degrade alerting, not
                    # availability.
                    self.change_alert_errors += 1

    # ------------------------------------------------------------- read side
    @property
    def current_epoch(self) -> EpochSnapshot:
        """The epoch reads are currently served from."""
        return self._writer.current

    def resolve_epoch(self, epoch_id: int) -> EpochSnapshot:
        """The snapshot of ``epoch_id``, from the ring or the current epoch.

        Raises :class:`~repro.serve.errors.EpochGoneError` (counted in
        ``epoch_gone_rejections``) when the epoch is not ring-resident —
        evicted, never published, or not yet published.
        """
        current = self._writer.current
        if epoch_id == current.epoch_id:
            return current
        try:
            return self.ring.get(epoch_id)
        except EpochGoneError:
            self.epoch_gone_rejections += 1
            raise

    def window_sketch(self, window: int) -> tuple[Sketch, int]:
        """The delta sketch of the last ``window`` epochs, plus the later id.

        Subtracts the snapshot published ``window`` epochs ago from the
        current one — exact for subtractable families (CM/Count): the
        result answers as a sketch fed only the items of those epochs.
        Raises :class:`~repro.serve.errors.EpochGoneError` when the ring no
        longer holds the delimiting epoch, and
        :class:`~repro.sketches.base.UnmergeableSketchError` for families
        without the delta contract.  Delta tables are memoised per (current
        epoch, window) — repeated window queries within one epoch pay one
        subtraction.
        """
        if window <= 0:
            raise ValueError("window must be a positive epoch count")
        current = self._writer.current
        memo_key = (current.epoch_id, window)
        with self._cache_lock:
            cached = self._window_cache.get(memo_key)
        if cached is not None:
            return cached, current.epoch_id
        earlier_id = current.epoch_id - window
        if earlier_id < 0:
            # The window reaches past the first possible epoch: by the
            # ring's own vocabulary, that epoch is (and always was) gone.
            self.epoch_gone_rejections += 1
            raise EpochGoneError(earlier_id)
        earlier = self.resolve_epoch(earlier_id)
        sketch = delta_sketch(current, earlier, self._factory)
        with self._cache_lock:
            self._window_cache[memo_key] = sketch
        return sketch, current.epoch_id

    def serve_batch(
        self,
        keys: Sequence[object],
        epoch: int | None = None,
        window: int | None = None,
    ) -> tuple[np.ndarray, int]:
        """Estimates for ``keys`` plus the id of the epoch that answered.

        The epoch is captured once, so all estimates of one call come from
        the same frozen replica even if a publish lands mid-call — the
        wire-level ``QueryResponse`` carries this epoch id.  ``epoch`` pins
        the answer to a ring-resident epoch (time travel); ``window``
        answers from the last-``window``-epochs delta instead of the
        cumulative sketch.  At most one of the two may be set.
        """
        if epoch is not None and window is not None:
            raise ValueError("serve_batch takes an epoch pin or a window, not both")
        if epoch is not None:
            snapshot = self.resolve_epoch(epoch)
            return snapshot.sketch.query_batch(keys), snapshot.epoch_id
        if window is not None:
            sketch, epoch_id = self.window_sketch(window)
            return sketch.query_batch(keys), epoch_id
        snapshot = self._writer.current
        return snapshot.sketch.query_batch(keys), snapshot.epoch_id

    def query_batch(
        self,
        keys: Sequence[object],
        epoch: int | None = None,
        window: int | None = None,
    ) -> np.ndarray:
        """Point estimates from the latest (or pinned/windowed) epoch."""
        return self.serve_batch(keys, epoch=epoch, window=window)[0]

    def query(self, key: object) -> int:
        """Point estimate of one key (LRU-cached within the current epoch)."""
        if not self.cache_size:
            return int(self._writer.current.sketch.query(key))
        cache_key = ("q", key)
        epoch = self._writer.current
        with self._cache_lock:
            if self._cache_epoch == epoch.epoch_id and cache_key in self._cache:
                self._cache.move_to_end(cache_key)
                self.cache_hits += 1
                return self._cache[cache_key]
        estimate = int(epoch.sketch.query(key))
        self._cache_store(epoch.epoch_id, cache_key, estimate)
        return estimate

    def top_k(self, k: int, epoch: int | None = None) -> list[tuple[object, int]]:
        """The ``k`` heaviest directory keys by current-epoch estimate.

        Candidates are the keys the service has ingested (the directory);
        ranking is by estimate descending, ties by first-contact order —
        deterministic, so remote and local top-k agree exactly.  ``epoch``
        ranks against a pinned ring epoch instead of the latest one.
        """
        return self.serve_top_k(k, epoch=epoch)[0]

    def serve_top_k(
        self, k: int, epoch: int | None = None
    ) -> tuple[list[tuple[object, int]], int]:
        """:meth:`top_k` plus the id of the epoch that ranked it.

        Like :meth:`serve_batch`, the epoch is captured once so the ranking
        and the stamp cannot straddle a publish.  Pinned rankings rank
        *today's* candidate directory against the pinned epoch's estimates
        (the directory itself is not versioned — documented caveat), and
        bypass the answer cache, which only holds current-epoch facts.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        if not self._track_keys:
            raise ValueError(
                "top_k needs the key directory; this service was built with "
                "track_keys=False"
            )
        if epoch is not None:
            snapshot = self.resolve_epoch(epoch)
            return self._rank_epoch(snapshot, list(self._keys), k), snapshot.epoch_id
        cache_key = ("topk", k)
        snapshot = self._writer.current
        if self.cache_size:
            with self._cache_lock:
                if self._cache_epoch == snapshot.epoch_id and cache_key in self._cache:
                    self._cache.move_to_end(cache_key)
                    self.cache_hits += 1
                    return list(self._cache[cache_key]), snapshot.epoch_id
        ranking = self._rank_epoch(snapshot, list(self._keys), k)
        self._cache_store(snapshot.epoch_id, cache_key, ranking)
        return list(ranking), snapshot.epoch_id

    @staticmethod
    def _rank_epoch(
        snapshot: EpochSnapshot, candidates: list, k: int
    ) -> list[tuple[object, int]]:
        """Rank ``candidates`` by one epoch's estimates (deterministic)."""
        if not candidates:
            return []
        estimates = snapshot.sketch.query_batch(candidates)
        # stable sort on -estimate keeps first-contact order within ties
        order = np.argsort(-estimates, kind="stable")[:k]
        return [(candidates[i], int(estimates[i])) for i in order.tolist()]

    # ------------------------------------------------------ change detection
    def diff_epochs(
        self,
        earlier: int,
        later: int | None = None,
        k: int = 10,
        min_delta: int = 1,
    ) -> ChangeReport:
        """Heavy-hitter changes between two ring epochs.

        Ranks the directory's candidates against both snapshots (``later``
        defaults to the current epoch) and diffs the two top-``k``
        rankings: surges and drops of at least ``min_delta``, keys that
        entered or left the ranking, and the membership churn fraction.
        Deltas are sketch-exact — both snapshots are queried for the union
        of the two rankings.  Raises
        :class:`~repro.serve.errors.EpochGoneError` when either epoch is
        not ring-resident.
        """
        earlier_snapshot = self.resolve_epoch(earlier)
        later_snapshot = (
            self._writer.current if later is None else self.resolve_epoch(later)
        )
        if later_snapshot.epoch_id <= earlier_snapshot.epoch_id:
            raise ValueError(
                f"diff must run forward: later epoch {later_snapshot.epoch_id} "
                f"is not after earlier epoch {earlier_snapshot.epoch_id}"
            )
        return self._diff_snapshots(earlier_snapshot, later_snapshot, k, min_delta)

    def _diff_snapshots(
        self, earlier: EpochSnapshot, later: EpochSnapshot, k: int, min_delta: int
    ) -> ChangeReport:
        candidates = list(self._keys)
        before = self._rank_epoch(earlier, candidates, k)
        after = self._rank_epoch(later, candidates, k)
        # Exact cross-estimates for keys ranked on only one side, so every
        # reported delta is the true sketch delta, not a truncation artefact.
        union = list(dict.fromkeys([key for key, _ in after] + [key for key, _ in before]))
        before_estimates: dict = {}
        after_estimates: dict = {}
        if union:
            before_estimates = dict(
                zip(union, earlier.sketch.query_batch(union).tolist())
            )
            after_estimates = dict(zip(union, later.sketch.query_batch(union).tolist()))
        return diff_rankings(
            before,
            after,
            earlier_epoch=earlier.epoch_id,
            later_epoch=later.epoch_id,
            min_delta=min_delta,
            before_estimates=before_estimates,
            after_estimates=after_estimates,
        )

    def add_change_listener(
        self,
        callback: Callable[[ChangeReport], None],
        k: int = 10,
        min_delta: int = 1,
    ) -> None:
        """Alert ``callback`` with a :class:`ChangeReport` on every publish.

        Fired from the publish hook (inside the writer lock, before the new
        epoch becomes visible) whenever the top-``k`` diff against the
        previous epoch shows any change of at least ``min_delta``.
        Callbacks must be fast; one that raises is swallowed and counted in
        ``change_alert_errors`` so a buggy alert sink cannot take down the
        ingest path.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        if min_delta < 1:
            raise ValueError("min_delta must be at least 1")
        if not self._track_keys:
            raise ValueError(
                "change listeners need the key directory; this service was "
                "built with track_keys=False"
            )
        self._change_listeners.append((callback, k, min_delta))

    def _cache_store(self, epoch_id: int, cache_key, answer) -> None:
        if not self.cache_size:
            return
        with self._cache_lock:
            self.cache_misses += 1
            if self._cache_epoch != epoch_id:
                # A publish raced this computation: the answer belongs to an
                # older epoch and must not be cached against the new one.
                return
            self._cache[cache_key] = answer
            self._cache.move_to_end(cache_key)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)

    # ------------------------------------------------------------ accounting
    def stats(self) -> dict:
        """Service counters (JSON-serializable; the STATS wire payload)."""
        epoch = self._writer.current
        writer = self._writer
        intervals = writer.publish_count
        stats = {
            "epoch_id": epoch.epoch_id,
            "epoch_items": epoch.items,
            "items_ingested": writer.items_ingested,
            "staleness_items": writer.staleness_items,
            "publish_every_items": writer.publish_every_items,
            "publishes": intervals,
            "mean_interval_items": (
                writer.total_interval_items / intervals if intervals else 0.0
            ),
            "max_interval_items": writer.max_interval_items,
            "memory_bytes": float(writer.live_sketch.memory_bytes()),
            "distinct_keys_tracked": len(self._keys),
            "max_tracked_keys": self.max_tracked_keys,
            "directory_prunes": self.directory_prunes,
            "cache_size": self.cache_size,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "algorithm": writer.live_sketch.name,
            "temporal": {
                **self.ring.stats(),
                "epoch_gone_rejections": self.epoch_gone_rejections,
                "change_listeners": len(self._change_listeners),
                "change_alert_errors": self.change_alert_errors,
                "subtractable": bool(getattr(writer.live_sketch, "subtractable", False)),
            },
        }
        if self._store is not None:
            stats["store"] = self._store.stats()
        return stats

    # --------------------------------------------------------------- teardown
    def close(self) -> None:
        """Release the durable store's journal handle (no-op without one)."""
        if self._store is not None:
            self._store.close()

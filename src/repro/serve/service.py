"""The query front end of the serving layer.

:class:`SketchService` bolts the read API onto an
:class:`~repro.serve.snapshots.EpochWriter`:

* ``query(key)`` / ``query_batch(keys)`` — point estimates answered from
  the latest published epoch (never from the live sketch), so every answer
  is bit-identical to querying a frozen copy of the sketch at that epoch;
* ``top_k(k)`` — the heaviest keys among those the service has ingested,
  ranked by their epoch estimates (ties broken by first-contact order, so
  the ranking is deterministic);
* ``stats()`` — epoch id, items absorbed, memory, staleness and cache
  counters (the ``repro-cli query --stats`` payload);
* ``ingest(keys, values)`` / ``flush()`` — the write side, delegated to the
  epoch writer.

A bounded LRU **answer cache** sits in front of the scalar ``query`` and
``top_k`` paths; it is keyed per epoch and cleared on every publish, so a
cached answer can never outlive the epoch it was computed in.  The batch
query path bypasses the cache on purpose — one vectorized ``query_batch``
against the replica is cheaper than per-key cache probes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Sequence

import numpy as np

from repro.serve.snapshots import (
    DEFAULT_PUBLISH_EVERY_ITEMS,
    EpochSnapshot,
    EpochWriter,
)
from repro.sketches.base import Sketch

#: Default bound of the per-epoch LRU answer cache.
DEFAULT_CACHE_SIZE = 4096


class SketchService:
    """Snapshot-isolated online query service over one live sketch.

    Parameters
    ----------
    sketch:
        The live sketch (any :class:`~repro.sketches.base.Sketch`, including
        a :class:`~repro.sketches.sharded.ShardedSketch`).
    factory:
        Optional builder of structurally identical empty peers — enables the
        cheap snapshot-restore epoch replication (see
        :func:`~repro.serve.snapshots.replicate_sketch`).
    publish_every_items / publish_every_seconds:
        Epoch rotation cadence, forwarded to the writer.
    cache_size:
        Bound of the LRU answer cache (0 disables caching).
    track_keys:
        Maintain the key directory behind :meth:`top_k` (every distinct key
        ever ingested, in first-contact order).  The directory grows with
        the distinct keys — the same deliberate speed-for-memory trade as
        the kernel interner; disable it for unbounded key spaces, at the
        price of ``top_k`` raising.
    max_tracked_keys:
        Bound the directory to a heavy-hitter candidate set.  When the
        directory overshoots the bound (plus a small slack so pruning is
        amortized), it is pruned back to the ``max_tracked_keys`` keys with
        the highest current-epoch estimates (ties kept in first-contact
        order).  ``top_k`` then ranks *candidates*, not all keys ever seen:
        a key pruned while light is invisible to ``top_k`` until it is
        ingested again — see ``docs/api.md`` for the accuracy caveat.
    store:
        Optional :class:`~repro.store.SketchStore` making the epoch stream
        durable: every ingest batch is journaled **before** the in-memory
        insert and every published epoch is persisted from the publish
        hook, so a restarted service recovers bit-identical to one that
        never died.  The store must already be recovered (its journal
        rotates on the construction-time publish).  The key directory is
        *not* persisted — after a warm restart ``top_k`` ranks only keys
        ingested since (documented caveat in ``docs/api.md``).
    start_epoch / start_items:
        Warm-restart seeding forwarded to the epoch writer (see
        :class:`~repro.serve.snapshots.EpochWriter`).
    """

    def __init__(
        self,
        sketch: Sketch,
        factory: Callable[[], Sketch] | None = None,
        publish_every_items: int = DEFAULT_PUBLISH_EVERY_ITEMS,
        publish_every_seconds: float | None = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        track_keys: bool = True,
        max_tracked_keys: int | None = None,
        store=None,
        start_epoch: int = 0,
        start_items: int = 0,
    ) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if max_tracked_keys is not None and max_tracked_keys <= 0:
            raise ValueError("max_tracked_keys must be positive (or None)")
        self.cache_size = cache_size
        self._cache: OrderedDict = OrderedDict()
        self._cache_lock = threading.Lock()
        self._cache_epoch = -1
        self.cache_hits = 0
        self.cache_misses = 0
        self._track_keys = track_keys
        self.max_tracked_keys = max_tracked_keys
        #: Number of times the bounded directory was pruned.
        self.directory_prunes = 0
        # First-contact-ordered key directory (dict-as-ordered-set).
        self._keys: dict = {}
        # Set before the writer exists: the construction-time publish fires
        # _on_publish, which must already see the store to persist epoch 0
        # (or the warm-restart epoch) and rotate its journal.
        self._store = store
        self._writer = EpochWriter(
            sketch,
            factory=factory,
            publish_every_items=publish_every_items,
            publish_every_seconds=publish_every_seconds,
            on_publish=self._on_publish,
            start_epoch=start_epoch,
            start_items=start_items,
        )

    # ------------------------------------------------------------ write side
    def ingest(self, keys: Sequence[object], values: Sequence[int] | int | None = None) -> None:
        """Absorb one batch (single-writer contract, see the epoch writer)."""
        if self._store is not None:
            # Journal first: a batch is either durably in the WAL before it
            # can affect an answer, or (post-crash) absent from both the
            # journal and the sketch — never in one without the other in a
            # direction that loses acknowledged state.
            self._store.append_batch(keys, values)
        if self._track_keys:
            directory = self._keys
            for key in keys:
                directory[key] = None
            cap = self.max_tracked_keys
            if cap is not None and len(directory) > cap + max(64, cap // 8):
                self._prune_directory()
        self._writer.ingest(keys, values)

    def _prune_directory(self) -> None:
        """Shrink the directory to the ``max_tracked_keys`` heaviest keys.

        Ranked by current-epoch estimate (items absorbed since the last
        publish are not yet visible — a freshly ingested heavy key can be
        pruned once, and re-enters the directory on its next ingest), ties
        kept in first-contact order.
        """
        candidates = list(self._keys)
        estimates = self._writer.current.sketch.query_batch(candidates)
        order = np.argsort(-estimates, kind="stable")[: self.max_tracked_keys]
        # Re-sort the survivors by position to preserve first-contact order.
        self._keys = {candidates[i]: None for i in sorted(order.tolist())}
        self.directory_prunes += 1

    def flush(self) -> EpochSnapshot:
        """Force an epoch publish so reads catch up with all absorbed items."""
        return self._writer.publish()

    def _on_publish(self, epoch: EpochSnapshot) -> None:
        # A new epoch invalidates every cached answer: answers are per-epoch
        # facts, and the next probe repopulates against the new replica.
        with self._cache_lock:
            self._cache.clear()
            self._cache_epoch = epoch.epoch_id
        if self._store is not None:
            # Persist the frozen replica (not the live sketch): the hook
            # runs inside the writer lock, but the replica is immutable so
            # the store reads a consistent state no matter how long the
            # disk takes.  Degradation is handled inside the store.
            self._store.publish_epoch(epoch.epoch_id, epoch.items, epoch.sketch)

    # ------------------------------------------------------------- read side
    @property
    def current_epoch(self) -> EpochSnapshot:
        """The epoch reads are currently served from."""
        return self._writer.current

    def serve_batch(self, keys: Sequence[object]) -> tuple[np.ndarray, int]:
        """Estimates for ``keys`` plus the id of the epoch that answered.

        The epoch is captured once, so all estimates of one call come from
        the same frozen replica even if a publish lands mid-call — the
        wire-level ``QueryResponse`` carries this epoch id.
        """
        epoch = self._writer.current
        return epoch.sketch.query_batch(keys), epoch.epoch_id

    def query_batch(self, keys: Sequence[object]) -> np.ndarray:
        """Point estimates from the latest published epoch."""
        return self.serve_batch(keys)[0]

    def query(self, key: object) -> int:
        """Point estimate of one key (LRU-cached within the current epoch)."""
        if not self.cache_size:
            return int(self._writer.current.sketch.query(key))
        cache_key = ("q", key)
        epoch = self._writer.current
        with self._cache_lock:
            if self._cache_epoch == epoch.epoch_id and cache_key in self._cache:
                self._cache.move_to_end(cache_key)
                self.cache_hits += 1
                return self._cache[cache_key]
        estimate = int(epoch.sketch.query(key))
        self._cache_store(epoch.epoch_id, cache_key, estimate)
        return estimate

    def top_k(self, k: int) -> list[tuple[object, int]]:
        """The ``k`` heaviest directory keys by current-epoch estimate.

        Candidates are the keys the service has ingested (the directory);
        ranking is by estimate descending, ties by first-contact order —
        deterministic, so remote and local top-k agree exactly.
        """
        return self.serve_top_k(k)[0]

    def serve_top_k(self, k: int) -> tuple[list[tuple[object, int]], int]:
        """:meth:`top_k` plus the id of the epoch that ranked it.

        Like :meth:`serve_batch`, the epoch is captured once so the ranking
        and the stamp cannot straddle a publish.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        if not self._track_keys:
            raise ValueError(
                "top_k needs the key directory; this service was built with "
                "track_keys=False"
            )
        cache_key = ("topk", k)
        epoch = self._writer.current
        if self.cache_size:
            with self._cache_lock:
                if self._cache_epoch == epoch.epoch_id and cache_key in self._cache:
                    self._cache.move_to_end(cache_key)
                    self.cache_hits += 1
                    return list(self._cache[cache_key]), epoch.epoch_id
        candidates = list(self._keys)
        if candidates:
            estimates = epoch.sketch.query_batch(candidates)
            # stable sort on -estimate keeps first-contact order within ties
            order = np.argsort(-estimates, kind="stable")[:k]
            ranking = [(candidates[i], int(estimates[i])) for i in order.tolist()]
        else:
            ranking = []
        self._cache_store(epoch.epoch_id, cache_key, ranking)
        return list(ranking), epoch.epoch_id

    def _cache_store(self, epoch_id: int, cache_key, answer) -> None:
        if not self.cache_size:
            return
        with self._cache_lock:
            self.cache_misses += 1
            if self._cache_epoch != epoch_id:
                # A publish raced this computation: the answer belongs to an
                # older epoch and must not be cached against the new one.
                return
            self._cache[cache_key] = answer
            self._cache.move_to_end(cache_key)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)

    # ------------------------------------------------------------ accounting
    def stats(self) -> dict:
        """Service counters (JSON-serializable; the STATS wire payload)."""
        epoch = self._writer.current
        writer = self._writer
        intervals = writer.publish_count
        stats = {
            "epoch_id": epoch.epoch_id,
            "epoch_items": epoch.items,
            "items_ingested": writer.items_ingested,
            "staleness_items": writer.staleness_items,
            "publish_every_items": writer.publish_every_items,
            "publishes": intervals,
            "mean_interval_items": (
                writer.total_interval_items / intervals if intervals else 0.0
            ),
            "max_interval_items": writer.max_interval_items,
            "memory_bytes": float(writer.live_sketch.memory_bytes()),
            "distinct_keys_tracked": len(self._keys),
            "max_tracked_keys": self.max_tracked_keys,
            "directory_prunes": self.directory_prunes,
            "cache_size": self.cache_size,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "algorithm": writer.live_sketch.name,
        }
        if self._store is not None:
            stats["store"] = self._store.stats()
        return stats

    # --------------------------------------------------------------- teardown
    def close(self) -> None:
        """Release the durable store's journal handle (no-op without one)."""
        if self._store is not None:
            self._store.close()

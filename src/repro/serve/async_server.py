"""Async multiplexed serving: thousands of concurrent readers, one event loop.

:func:`~repro.serve.server.serve_forever` accepts and serves one TCP
session at a time — fine for a demo, a non-starter for "heavy traffic".
:class:`AsyncSketchServer` is the concurrent front end: a
``selectors``-based event loop that multiplexes every live connection over
one shared :class:`~repro.serve.service.SketchService`.

The moving parts, in the order a request meets them::

    accept ──► frame reassembly ──► admission ──► bounded in-flight ──► service
      │        (per-connection       (BUSY when     FIFO queue           │
      │         read buffer,          the global                         ▼
      │         incremental           bound is hit)              in-order reply
      │         header+payload)                                  slots ──► write
      │                                                                   buffer
      └── non-blocking listener; graceful drain stops it first

* **Frame reassembly** is incremental: each connection owns a read buffer;
  a ``recv`` appends whatever the kernel has, and whole frames are peeled
  off as their declared length fills in.  A client dribbling one byte at a
  time (slowloris) just parks cheap buffered state — it never blocks the
  loop or any other connection.  A declared length beyond
  :data:`~repro.distributed.wire.MAX_PAYLOAD_BYTES`, garbage magic, or a
  disconnect mid-frame closes *that* connection with a counted error.
* **Pipelining**: a connection may have any number of requests in flight;
  every parsed query claims a *reply slot* in arrival order, and slots are
  written out strictly in order — so answers (including BUSY rejections)
  always match the request sequence, exactly like a sequential session.
* **Admission control**: at most ``max_inflight`` queries may be queued
  globally.  A query parsed beyond the bound is answered immediately with
  a typed :data:`~repro.distributed.wire.STATUS_BUSY` reply (wire v2) and
  never touches the service — bounded memory, bounded queueing delay, and
  an explicit retry signal instead of silent latency.
* **The single-writer epoch path is untouched**: the event loop is the one
  thread that calls ``service.ingest``/``flush``, and reads are answered
  from the latest published :class:`~repro.serve.snapshots.EpochSnapshot`
  via the same :func:`~repro.serve.server.answer_request` as the
  sequential server — answers are bit-identical by construction (pinned by
  ``tests/serve/test_async_server.py``).
* **Graceful drain** (:meth:`AsyncSketchServer.shutdown`): stop accepting,
  finish every queued request, flush every write buffer (bounded by
  ``drain_timeout``), then close.

``MSG_BATCH`` ingest frames flow through the same per-connection order as
queries (never rejected — a fire-and-forget write has no reply to carry a
BUSY), so a pipelined ``ingest … flush … query`` sequence keeps its
read-your-writes meaning.
"""

from __future__ import annotations

import selectors
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.distributed.transport import SocketChannel
from repro.distributed.wire import (
    FRAME_HEADER_SIZE,
    MSG_BATCH,
    MSG_QUERY,
    MSG_QUERY_REPLY,
    MSG_SHUTDOWN,
    STATUS_BUSY,
    WireFormatError,
    decode_batch,
    decode_query_request,
    encode_frame,
    encode_query_response,
    parse_frame_header,
)
from repro.serve.server import QueryClient, answer_request, create_listener
from repro.serve.service import SketchService

#: Default bound on globally queued (parsed, not yet served) queries.
DEFAULT_MAX_INFLIGHT = 1024
#: Default bound on how long a graceful drain may take, in seconds.
DEFAULT_DRAIN_TIMEOUT = 10.0
#: Queries served per event-loop tick before the loop polls the sockets
#: again — bounds how long a burst can starve new I/O.
DEFAULT_SERVICE_BATCH = 128

_RECV_CHUNK = 256 * 1024


@dataclass
class AsyncServerStats:
    """Global counters of one :class:`AsyncSketchServer` run."""

    accepted: int = 0
    active: int = 0
    closed_clean: int = 0
    closed_error: int = 0
    queries_served: int = 0
    batches_ingested: int = 0
    busy_rejected: int = 0
    frame_errors: int = 0
    oversized_rejected: int = 0
    truncated_disconnects: int = 0
    bytes_received: int = 0
    bytes_sent: int = 0
    max_inflight_observed: int = 0
    drained: bool = False

    def to_dict(self) -> dict:
        """JSON-serializable view (lands in ``BENCH_serving.json`` rows)."""
        return dict(self.__dict__)


@dataclass
class ConnectionStats:
    """Per-connection counters (exposed for tests and debugging)."""

    peer: tuple = ()
    queries_served: int = 0
    batches_ingested: int = 0
    busy_rejected: int = 0
    bytes_received: int = 0
    bytes_sent: int = 0
    error: str | None = None


class _ReplySlot:
    """One in-order reply position of a connection (filled now or later)."""

    __slots__ = ("frame",)

    def __init__(self) -> None:
        self.frame: bytes | None = None


class _Connection:
    """Per-connection multiplexing state: buffers, slots, counters."""

    def __init__(self, sock: socket.socket, peer: tuple) -> None:
        self.sock = sock
        self.read_buffer = bytearray()
        self.write_buffer = bytearray()
        #: Reply slots in request-arrival order; the head is written first.
        self.reply_slots: deque[_ReplySlot] = deque()
        self.stats = ConnectionStats(peer=peer)
        self.closed = False
        #: Set when MSG_SHUTDOWN arrives: close once all replies are out.
        self.close_after_replies = False
        self.want_write = False


class _Task:
    """One parsed message awaiting service, in global arrival order."""

    __slots__ = ("connection", "msg_type", "payload", "slot")

    def __init__(
        self,
        connection: _Connection,
        msg_type: int,
        payload: bytes,
        slot: _ReplySlot | None,
    ) -> None:
        self.connection = connection
        self.msg_type = msg_type
        self.payload = payload
        self.slot = slot


class AsyncSketchServer:
    """Concurrent TCP front end over one :class:`SketchService`.

    Parameters
    ----------
    service:
        The shared service; the event loop is its single writer.
    host / port:
        Listen address (``port=0`` picks a free port; see :attr:`address`).
    max_inflight:
        Global bound on queued queries; excess requests get BUSY replies.
    backlog:
        Listener backlog (pending-accept queue length).
    drain_timeout:
        Upper bound on the graceful-drain phase of a shutdown, seconds.
    service_batch:
        Queries served per loop tick before the sockets are polled again.

    ``serve_forever()`` blocks until :meth:`shutdown` (thread-safe) or
    ``KeyboardInterrupt``, drains, and returns the final stats.
    """

    def __init__(
        self,
        service: SketchService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        backlog: int = 128,
        drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
        service_batch: int = DEFAULT_SERVICE_BATCH,
    ) -> None:
        if max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        if service_batch <= 0:
            raise ValueError("service_batch must be positive")
        if backlog <= 0:
            raise ValueError("backlog must be positive")
        if drain_timeout < 0:
            raise ValueError("drain_timeout must be >= 0")
        self.service = service
        self.max_inflight = max_inflight
        self.drain_timeout = drain_timeout
        self.service_batch = service_batch
        self.stats = AsyncServerStats()
        self._listener = create_listener(host, port, backlog=backlog)
        self._listener.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, "accept")
        # Self-pipe: shutdown() from any thread wakes a blocked select().
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._selector.register(self._wake_recv, selectors.EVENT_READ, "wake")
        self._pending: deque[_Task] = deque()
        self._inflight_queries = 0
        self._connections: set[_Connection] = set()
        self._shutdown_requested = False
        self._accepting = True

    # ------------------------------------------------------------ lifecycle
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` of the listener."""
        return self._listener.getsockname()[:2]

    def shutdown(self) -> None:
        """Request a graceful drain (safe to call from any thread)."""
        self._shutdown_requested = True
        try:
            self._wake_send.send(b"x")
        except OSError:  # pragma: no cover - loop already gone
            pass

    def serve_forever(self) -> AsyncServerStats:
        """Run the event loop until shutdown, then drain and close."""
        try:
            while not self._shutdown_requested:
                self._tick(timeout=None if self._idle() else 0.0)
        except KeyboardInterrupt:
            pass  # treated exactly like shutdown(): drain below
        finally:
            self._drain()
            self._close_all()
        return self.stats

    def _idle(self) -> bool:
        return not self._pending and not any(
            conn.want_write for conn in self._connections
        )

    # ------------------------------------------------------------ event loop
    def _tick(self, timeout: float | None) -> None:
        for key, mask in self._selector.select(timeout):
            if key.data == "accept":
                self._accept_ready()
            elif key.data == "wake":
                try:
                    self._wake_recv.recv(4096)
                except OSError:  # pragma: no cover - spurious wakeup
                    pass
            else:
                connection: _Connection = key.data
                if mask & selectors.EVENT_READ:
                    self._read_ready(connection)
                if mask & selectors.EVENT_WRITE and not connection.closed:
                    self._write_ready(connection)
        self._service_pending(self.service_batch)

    def _accept_ready(self) -> None:
        while self._accepting:
            try:
                sock, peer = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - non-TCP sockets in tests
                pass
            connection = _Connection(sock, peer)
            self._connections.add(connection)
            self._selector.register(sock, selectors.EVENT_READ, connection)
            self.stats.accepted += 1
            self.stats.active += 1

    def _read_ready(self, connection: _Connection) -> None:
        try:
            chunk = connection.sock.recv(_RECV_CHUNK)
        except BlockingIOError:  # pragma: no cover - spurious readiness
            return
        except OSError:
            self._close_connection(connection, error="connection reset")
            return
        if not chunk:
            if connection.read_buffer:
                # Peer vanished with a partial frame buffered: a truncated
                # frame, counted, fatal to this connection only.
                self.stats.truncated_disconnects += 1
                self._close_connection(connection, error="disconnected mid-frame")
            else:
                self._close_connection(connection, error=None)
            return
        connection.stats.bytes_received += len(chunk)
        self.stats.bytes_received += len(chunk)
        connection.read_buffer += chunk
        self._parse_frames(connection)

    def _parse_frames(self, connection: _Connection) -> None:
        """Peel whole frames off the read buffer; enqueue or reject each."""
        buffer = connection.read_buffer
        while not connection.closed and not connection.close_after_replies:
            if len(buffer) < FRAME_HEADER_SIZE:
                return
            try:
                msg_type, payload_length = parse_frame_header(
                    bytes(buffer[:FRAME_HEADER_SIZE])
                )
            except WireFormatError as error:
                if "bound" in str(error):
                    self.stats.oversized_rejected += 1
                else:
                    self.stats.frame_errors += 1
                self._close_connection(connection, error=str(error))
                return
            if len(buffer) < FRAME_HEADER_SIZE + payload_length:
                return  # wait for the rest of the payload
            payload = bytes(
                buffer[FRAME_HEADER_SIZE : FRAME_HEADER_SIZE + payload_length]
            )
            del buffer[: FRAME_HEADER_SIZE + payload_length]
            self._dispatch(connection, msg_type, payload)

    def _dispatch(self, connection: _Connection, msg_type: int, payload: bytes) -> None:
        if msg_type == MSG_QUERY:
            slot = _ReplySlot()
            connection.reply_slots.append(slot)
            if self._inflight_queries >= self.max_inflight:
                # Admission control: reject *now*, in reply order, without
                # ever touching the service.  Echo the request id and kind
                # so pipelined clients can match and retry.
                try:
                    request = decode_query_request(payload)
                except WireFormatError as error:
                    self.stats.frame_errors += 1
                    self._close_connection(connection, error=str(error))
                    return
                slot.frame = encode_frame(
                    MSG_QUERY_REPLY,
                    encode_query_response(
                        request.request_id,
                        request.kind,
                        self.service.current_epoch.epoch_id,
                        status=STATUS_BUSY,
                    ),
                )
                connection.stats.busy_rejected += 1
                self.stats.busy_rejected += 1
                self._flush_ready_replies(connection)
                return
            self._inflight_queries += 1
            self.stats.max_inflight_observed = max(
                self.stats.max_inflight_observed, self._inflight_queries
            )
            self._pending.append(_Task(connection, msg_type, payload, slot))
        elif msg_type == MSG_BATCH:
            # Writes are never BUSY-rejected (no reply to carry the status;
            # dropping them would silently lose data) but stay in the global
            # FIFO, so a later flush on this connection still covers them.
            self._pending.append(_Task(connection, msg_type, payload, None))
        elif msg_type == MSG_SHUTDOWN:
            connection.close_after_replies = True
            self._maybe_finish(connection)
        else:
            self.stats.frame_errors += 1
            self._close_connection(
                connection, error=f"unexpected message type {msg_type}"
            )

    def _service_pending(self, budget: int) -> None:
        while budget > 0 and self._pending:
            budget -= 1
            task = self._pending.popleft()
            connection = task.connection
            if task.msg_type == MSG_QUERY:
                self._inflight_queries -= 1
            if connection.closed:
                continue  # the client is gone; drop its queued work
            try:
                if task.msg_type == MSG_BATCH:
                    batch, values = decode_batch(task.payload)
                    self.service.ingest(batch, values)
                    connection.stats.batches_ingested += 1
                    self.stats.batches_ingested += 1
                else:
                    task.slot.frame = encode_frame(
                        MSG_QUERY_REPLY, answer_request(self.service, task.payload)
                    )
                    connection.stats.queries_served += 1
                    self.stats.queries_served += 1
            except WireFormatError as error:
                self.stats.frame_errors += 1
                self._close_connection(connection, error=str(error))
                continue
            self._flush_ready_replies(connection)

    # ------------------------------------------------------------ write side
    def _flush_ready_replies(self, connection: _Connection) -> None:
        """Move the filled slot prefix to the write buffer and try to send."""
        slots = connection.reply_slots
        while slots and slots[0].frame is not None:
            connection.write_buffer += slots.popleft().frame
        if connection.write_buffer:
            self._try_send(connection)
        else:
            self._maybe_finish(connection)

    def _try_send(self, connection: _Connection) -> None:
        buffer = connection.write_buffer
        try:
            while buffer:
                sent = connection.sock.send(buffer)
                if sent == 0:  # pragma: no cover - defensive
                    break
                connection.stats.bytes_sent += sent
                self.stats.bytes_sent += sent
                del buffer[:sent]
        except BlockingIOError:
            pass  # kernel buffer full; finish when the socket drains
        except OSError:
            self._close_connection(connection, error="send failed")
            return
        self._set_write_interest(connection, bool(buffer))
        if not buffer:
            self._maybe_finish(connection)

    def _set_write_interest(self, connection: _Connection, want: bool) -> None:
        if connection.closed or want == connection.want_write:
            return
        connection.want_write = want
        events = selectors.EVENT_READ | (selectors.EVENT_WRITE if want else 0)
        self._selector.modify(connection.sock, events, connection)

    def _write_ready(self, connection: _Connection) -> None:
        self._try_send(connection)

    def _maybe_finish(self, connection: _Connection) -> None:
        """Close a draining connection once every reply has been written."""
        if (
            connection.close_after_replies
            and not connection.reply_slots
            and not connection.write_buffer
        ):
            self._close_connection(connection, error=None)

    # -------------------------------------------------------------- teardown
    def _close_connection(self, connection: _Connection, error: str | None) -> None:
        if connection.closed:
            return
        connection.closed = True
        connection.stats.error = error
        try:
            self._selector.unregister(connection.sock)
        except (KeyError, ValueError):  # pragma: no cover - already gone
            pass
        try:
            connection.sock.close()
        except OSError:  # pragma: no cover
            pass
        self._connections.discard(connection)
        self.stats.active -= 1
        if error is None:
            self.stats.closed_clean += 1
        else:
            self.stats.closed_error += 1

    def _drain(self) -> None:
        """Stop accepting, serve everything queued, flush every buffer."""
        self._accepting = False
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):  # pragma: no cover
            pass
        self._listener.close()
        deadline = time.perf_counter() + self.drain_timeout
        self._service_pending(len(self._pending))
        while time.perf_counter() < deadline and any(
            conn.want_write or conn.write_buffer for conn in self._connections
        ):
            self._tick(timeout=min(0.05, max(0.0, deadline - time.perf_counter())))
        self.stats.drained = not self._pending and not any(
            conn.write_buffer for conn in self._connections
        )

    def _close_all(self) -> None:
        for connection in list(self._connections):
            self._close_connection(connection, error=None)
        self._selector.close()
        self._wake_recv.close()
        self._wake_send.close()


class AsyncServingSession:
    """An :class:`AsyncSketchServer` on a background thread, plus dialing.

    The test/benchmark harness shape: build the service, run the event loop
    on a daemon thread, hand out as many concurrent
    :class:`~repro.serve.server.QueryClient` connections as the caller
    wants.  Exit = graceful drain + join.
    """

    def __init__(self, service: SketchService, **server_kwargs) -> None:
        self.server = AsyncSketchServer(service, **server_kwargs)
        self._thread = threading.Thread(
            target=self.server.serve_forever, name="async-sketch-server", daemon=True
        )
        self._thread.start()

    @property
    def address(self) -> tuple[str, int]:
        return self.server.address

    def connect(self) -> QueryClient:
        """Dial one new client connection to the server."""
        host, port = self.server.address
        sock = socket.create_connection((host, port), timeout=30.0)
        sock.settimeout(None)
        return QueryClient(SocketChannel(sock))

    def shutdown(self) -> AsyncServerStats:
        self.server.shutdown()
        self._thread.join(timeout=30)
        return self.server.stats

    def __enter__(self) -> "AsyncServingSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

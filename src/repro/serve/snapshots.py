"""Epoch-based snapshot rotation: the write side of the serving layer.

One writer owns the live sketch and ingests batches through the normal
``insert_batch`` datapath.  Every ``publish_every_items`` absorbed items (or
``publish_every_seconds``, whichever fires first — both checked at batch
boundaries) it *publishes* an epoch: an immutable
:class:`EpochSnapshot` holding a frozen replica of the sketch.  Readers
only ever touch published replicas, never the live sketch, which gives the
serving layer its two core properties:

* **Snapshot isolation** — an answer served at epoch ``E`` is bit-identical
  to querying a frozen copy of the sketch as it stood when ``E`` was
  published, no matter how much ingest has happened since (pinned by
  ``tests/serve/``).  There are no torn reads by construction: a replica is
  fully materialised *before* the epoch pointer moves.
* **No read/write contention** — queries read the replica's arrays; inserts
  mutate the live sketch's arrays.  The only shared mutation is the epoch
  pointer swap, a single attribute assignment.

Replication uses the snapshot half of the merge contract when the sketch
supports it (``state_snapshot`` into a factory-built empty peer — array
copies, no Python-object traversal) and falls back to ``copy.deepcopy``
otherwise, so *any* sketch can be served; snapshotable ones are just
cheaper to rotate.

The trade is staleness: readers lag the live sketch by at most one publish
interval.  :attr:`EpochWriter.staleness_items` exposes the current lag and
the publish-interval aggregates feed ``BENCH_serving.json``.
"""

from __future__ import annotations

import copy
import threading
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.sketches.base import Sketch

#: Default epoch length, in absorbed items.
DEFAULT_PUBLISH_EVERY_ITEMS = 8192


def replicate_sketch(sketch: Sketch, factory: Callable[[], Sketch] | None = None) -> Sketch:
    """A frozen replica of ``sketch``: equal answers, disjoint state.

    With a ``factory`` building a structurally identical empty peer (same
    registry configuration and seed) and a snapshotable sketch, the replica
    is ``factory()`` restored from ``sketch.state_snapshot()`` — the cheap
    path, pure array copies.  Otherwise ``copy.deepcopy``.  Either way the
    replica answers every query bit-identically to the donor at the moment
    of replication and shares no mutable state with it.
    """
    if factory is not None and getattr(sketch, "snapshotable", False):
        replica = factory()
        replica.state_restore(sketch.state_snapshot())
        return replica
    return copy.deepcopy(sketch)


@dataclass(frozen=True)
class EpochSnapshot:
    """One published epoch: an immutable, consistent point-in-time replica.

    ``sketch`` is frozen by contract — readers must treat it as read-only
    (the service layer only ever calls its query methods).  ``items`` is the
    number of items the writer had absorbed when the epoch was published.
    """

    epoch_id: int
    items: int
    sketch: Sketch
    published_at: float

    def query_batch(self, keys: Sequence[object]):
        """Convenience passthrough to the frozen replica."""
        return self.sketch.query_batch(keys)


class EpochWriter:
    """Single-writer ingest front end publishing immutable epoch snapshots.

    Parameters
    ----------
    sketch:
        The live sketch; the writer takes ownership of its mutation.
    factory:
        Optional zero-argument builder of structurally identical empty peers
        (same registry config/seed); enables the cheap snapshot-restore
        replication path for snapshotable sketches.
    publish_every_items:
        Publish a new epoch once at least this many items accumulated since
        the last publish (checked at batch boundaries, so an epoch can run
        longer by at most one batch).
    publish_every_seconds:
        Optional wall-clock bound: publish at the first batch boundary after
        this much time elapsed since the last publish, even if the item
        budget has not filled (for trickling streams).
    on_publish:
        Optional callback receiving every published :class:`EpochSnapshot`,
        invoked just *before* the epoch becomes visible to readers — so
        subscribers maintaining derived state (cache invalidation, frozen
        references, metrics) are never behind a reader that already sees
        the new epoch.

    start_epoch / start_items:
        Warm-restart seeding: the first published epoch takes id
        ``start_epoch`` and the item counter starts at ``start_items``.
        The durable store's recovery path hands a restarted writer the
        recovered sketch plus these, so the epoch/item sequence resumes
        where the dead process left off instead of restarting at zero.

    Epoch ``start_epoch`` (0 by default — the empty sketch) is published at
    construction, so readers always have a consistent epoch to query — a
    service is never "not yet ready", it is simply at its first epoch.
    """

    def __init__(
        self,
        sketch: Sketch,
        factory: Callable[[], Sketch] | None = None,
        publish_every_items: int = DEFAULT_PUBLISH_EVERY_ITEMS,
        publish_every_seconds: float | None = None,
        on_publish: Callable[[EpochSnapshot], None] | None = None,
        start_epoch: int = 0,
        start_items: int = 0,
    ) -> None:
        if publish_every_items <= 0:
            raise ValueError("publish_every_items must be positive")
        if publish_every_seconds is not None and publish_every_seconds <= 0:
            raise ValueError("publish_every_seconds must be positive")
        if start_epoch < 0:
            raise ValueError("start_epoch must be non-negative")
        if start_items < 0:
            raise ValueError("start_items must be non-negative")
        self._sketch = sketch
        self._factory = factory
        self.publish_every_items = publish_every_items
        self.publish_every_seconds = publish_every_seconds
        self._on_publish = on_publish
        self._start_epoch = start_epoch
        self._lock = threading.Lock()
        self.items_ingested = start_items
        #: Publish-interval accounting (items between consecutive publishes);
        #: the staleness series of ``BENCH_serving.json``.
        self.publish_count = 0
        self.total_interval_items = 0
        self.max_interval_items = 0
        self._current: EpochSnapshot | None = None
        with self._lock:
            self._publish_locked()

    # ---------------------------------------------------------------- reads
    @property
    def current(self) -> EpochSnapshot:
        """The latest published epoch (atomic reference read, never blocks)."""
        return self._current

    @property
    def live_sketch(self) -> Sketch:
        """The writer-owned live sketch (introspection; not for readers)."""
        return self._sketch

    @property
    def staleness_items(self) -> int:
        """Items absorbed since the current epoch was published.

        Lock-free monitoring read: a publish can land between the two loads,
        which would make the raw difference transiently negative — clamp to
        zero (the true staleness at that instant) instead of taking the
        writer lock and stalling stats behind an in-flight batch insert.
        """
        return max(0, self.items_ingested - self._current.items)

    # --------------------------------------------------------------- writes
    def ingest(self, keys: Sequence[object], values: Sequence[int] | int | None = None) -> None:
        """Absorb one batch into the live sketch, rotating epochs as due."""
        with self._lock:
            self._sketch.insert_batch(keys, values)
            self.items_ingested += len(keys)
            due = self.items_ingested - self._current.items >= self.publish_every_items
            if not due and self.publish_every_seconds is not None:
                due = time.perf_counter() - self._current.published_at >= self.publish_every_seconds
            if due:
                self._publish_locked()

    def publish(self) -> EpochSnapshot:
        """Force-publish a new epoch now (the flush/drain operation)."""
        with self._lock:
            return self._publish_locked()

    def _publish_locked(self) -> EpochSnapshot:
        previous = self._current
        epoch = EpochSnapshot(
            epoch_id=self._start_epoch if previous is None else previous.epoch_id + 1,
            items=self.items_ingested,
            sketch=replicate_sketch(self._sketch, self._factory),
            published_at=time.perf_counter(),
        )
        if previous is not None:
            interval = epoch.items - previous.items
            self.publish_count += 1
            self.total_interval_items += interval
            self.max_interval_items = max(self.max_interval_items, interval)
        # The hook runs BEFORE the epoch becomes visible, so a subscriber
        # maintaining derived state (cache invalidation, frozen references)
        # is never behind a reader that already sees the new epoch.
        if self._on_publish is not None:
            self._on_publish(epoch)
        # The replica is complete before this assignment, so a reader that
        # grabbed `current` a nanosecond earlier keeps a fully consistent
        # older epoch and one that reads after sees the new one — never a
        # mixture.  Attribute assignment is atomic under the GIL.
        self._current = epoch
        return epoch

"""Command-line interface: regenerate any table or figure of the paper.

Examples
--------
Run the default (small-scale) version of Figure 4b::

    repro-cli fig4 --tolerance 25

Run Figure 10 at a larger scale::

    repro-cli fig10 --scale 0.05

Run the memory sweep or the throughput comparison on the batch datapath::

    repro-cli fig4 --batch-size 4096
    repro-cli fig10 --batch-size 4096

Pin the update-kernel backend of the order-dependent sketches (results are
bit-identical across backends; ``REPRO_KERNEL`` is the env-var equivalent)::

    repro-cli fig10 --batch-size 4096 --kernel numpy-grouped
    repro-cli fig10 --batch-size 4096 --kernel numba

Fan a sweep out over worker processes (bit-identical results) or run the
sketches sharded (hash-partitioned distributed-ingest model: S full-budget
replicas over a key partition, so accuracy and memory describe that
deployment, not the monolithic sketch)::

    repro-cli fig5 --workers 0          # 0 = one worker per CPU core
    repro-cli fig10 --batch-size 4096 --shards 4

Run a sweep with the sharded fills executed on remote ingest workers
(bit-identical results; ``--transport`` picks the backend)::

    repro-cli fig4 --shards 4 --transport inproc

Run a distributed ingest end to end — one self-hosted command, or a
collector plus standalone TCP workers in separate terminals/hosts::

    repro-cli ingest-collect --transport pipe --shards 4 --verify
    repro-cli ingest-collect --transport tcp --shards 2 --bind 0.0.0.0:29461
    repro-cli ingest-worker --connect collector-host:29461   # run twice

Serve a sketch online (snapshot-isolated reads concurrent with ingest) and
query it from another terminal/host::

    repro-cli serve --bind 0.0.0.0:29462 --algorithm Ours
    repro-cli query --connect host:29462 --count 100000      # demo writer
    repro-cli query --connect host:29462 --keys 17,42 --top-k 5 --stats

Time-travel against the server's epoch ring (pin a past epoch, estimate
over a sliding window of recent epochs, or watch the heavy-hitter ranking
for changes)::

    repro-cli serve --algorithm CM_fast --ring-epochs 16
    repro-cli query --keys 17,42 --epoch 3        # pinned; EPOCH_GONE if evicted
    repro-cli query --keys 17,42 --window 4       # last 4 epochs only (CM/Count)
    repro-cli query --top-k 5 --watch 10 --interval 0.5

Serve with a crash-safe durable store (WAL + checksummed epoch snapshots;
restarting over the same directory warm-starts bit-identically), and audit
or maintain a store directory offline::

    repro-cli serve --algorithm Ours --store /var/lib/repro/ours
    repro-cli store-inspect --store /var/lib/repro/ours
    repro-cli store-verify --store /var/lib/repro/ours
    repro-cli store-compact --store /var/lib/repro/ours --store-retain 2

Print the three tables::

    repro-cli table1
    repro-cli table3
    repro-cli table4
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.experiments import deployment, error, outliers, parameters, sensing, speed, tables
from repro.experiments.datasets import DEFAULT_SCALE
from repro.kernels import (
    BACKEND_NAMES,
    KERNEL_ENV_VAR,
    KernelUnavailableError,
    set_default_backend,
)
from repro.metrics.memory import BYTES_PER_KB


def _print_curves(curves, value_name: str) -> None:
    for curve in curves:
        memories = ", ".join(f"{m / BYTES_PER_KB:.1f}KB" for m in curve.memory_bytes)
        values = ", ".join(str(v) for v in getattr(curve, value_name))
        print(f"{curve.algorithm:>10}: memory=[{memories}] {value_name}=[{values}]")


def _cmd_table1(args) -> None:
    print(tables.complexity_table_text())


def _cmd_table3(args) -> None:
    print(tables.fpga_table_text())


def _cmd_table4(args) -> None:
    print(tables.tofino_table_text())


def _cmd_fig4(args) -> None:
    curves = outliers.outliers_vs_memory(
        dataset_name=args.dataset,
        tolerance=args.tolerance,
        scale=args.scale,
        seed=args.seed,
        batch_size=args.batch_size,
        shards=args.shards,
        workers=args.workers,
        transport=args.transport,
    )
    _print_curves(curves, "outliers")


def _cmd_fig5(args) -> None:
    result = outliers.zero_outlier_memory(
        scale=args.scale, tolerance=args.tolerance, seed=args.seed, workers=args.workers
    )
    for dataset_name, per_algorithm in result.items():
        print(f"[{dataset_name}]")
        for algorithm, memory in per_algorithm.items():
            text = "not reached" if memory is None else f"{memory / BYTES_PER_KB:.1f} KB"
            print(f"  {algorithm:>10}: {text}")


def _cmd_fig6(args) -> None:
    for dataset_name in ("web", "datacenter", "zipf-0.3", "zipf-3.0"):
        print(f"[{dataset_name}]")
        curves = outliers.outliers_vs_memory(
            dataset_name=dataset_name, tolerance=args.tolerance, scale=args.scale,
            seed=args.seed, batch_size=args.batch_size, shards=args.shards,
            workers=args.workers, transport=args.transport,
        )
        _print_curves(curves, "outliers")


def _cmd_fig7(args) -> None:
    for threshold in (100, 1000):
        print(f"[frequent keys, T={threshold}]")
        curves = outliers.frequent_key_outliers(
            threshold=threshold, scale=args.scale, tolerance=args.tolerance,
            seed=args.seed, workers=args.workers,
        )
        _print_curves(curves, "outliers")


def _cmd_fig8(args) -> None:
    for dataset_name in ("ip", "zipf-3.0"):
        print(f"[{dataset_name}] AAE")
        curves = error.average_error_sweep(
            dataset_name=dataset_name, scale=args.scale, seed=args.seed,
            batch_size=args.batch_size, shards=args.shards, workers=args.workers,
            transport=args.transport,
        )
        for curve in curves:
            print(f"  {curve.algorithm:>10}: {[round(v, 3) for v in curve.aae]}")


def _cmd_fig9(args) -> None:
    for dataset_name in ("ip", "zipf-3.0"):
        print(f"[{dataset_name}] ARE")
        curves = error.average_error_sweep(
            dataset_name=dataset_name, scale=args.scale, seed=args.seed,
            batch_size=args.batch_size, shards=args.shards, workers=args.workers,
            transport=args.transport,
        )
        for curve in curves:
            print(f"  {curve.algorithm:>10}: {[round(v, 4) for v in curve.are]}")


def _cmd_fig10(args) -> None:
    rows = speed.throughput_comparison(
        dataset_name=args.dataset, scale=args.scale, seed=args.seed,
        batch_size=args.batch_size, shards=args.shards,
    )
    print(tables.format_table(
        ["Algorithm", "Insert Mops", "Query Mops"],
        [[row.algorithm, f"{row.insert_mops:.3f}", f"{row.query_mops:.3f}"] for row in rows],
    ))
    if args.shards > 1:
        print("per-shard ingest accounting:")
        for row in rows:
            load = row.shard_load
            print(
                f"  {row.algorithm:>10}: items={list(load.items_per_shard)} "
                f"imbalance={load.load_imbalance:.3f}"
            )


def _cmd_fig11(args) -> None:
    curves = parameters.rw_sweep(
        scale=args.scale, tolerance=args.tolerance, seed=args.seed, workers=args.workers
    )
    for curve in curves:
        readings = [
            (p.parameter, None if p.memory_bytes is None else round(p.memory_bytes / BYTES_PER_KB, 1))
            for p in curve.points
        ]
        print(f"R_lambda={curve.fixed_value}: {readings}")


def _cmd_fig13(args) -> None:
    curves = parameters.rlambda_sweep(
        scale=args.scale, tolerance=args.tolerance, seed=args.seed, workers=args.workers
    )
    for curve in curves:
        readings = [
            (p.parameter, None if p.memory_bytes is None else round(p.memory_bytes / BYTES_PER_KB, 1))
            for p in curve.points
        ]
        print(f"R_w={curve.fixed_value}: {readings}")


def _cmd_fig15(args) -> None:
    result = parameters.lambda_sweep(scale=args.scale, seed=args.seed, workers=args.workers)
    for dataset_name, points in result.items():
        readings = [
            (p.parameter, None if p.memory_bytes is None else round(p.memory_bytes / BYTES_PER_KB, 1))
            for p in points
        ]
        print(f"{dataset_name}: {readings}")


def _cmd_fig16(args) -> None:
    curves = speed.hash_call_profile(scale=args.scale, seed=args.seed, workers=args.workers)
    for curve in curves:
        print(
            f"{curve.algorithm:>10}: insert={[round(v, 2) for v in curve.insert_calls]} "
            f"query={[round(v, 2) for v in curve.query_calls]}"
        )


def _cmd_fig17(args) -> None:
    mice, elephants = sensing.sensed_intervals(scale=args.scale, seed=args.seed)
    contained = sum(1 for i in mice + elephants if i.contains_truth)
    print(f"sampled intervals: {len(mice) + len(elephants)}, containing truth: {contained}")


def _cmd_fig18(args) -> None:
    points = sensing.sensed_vs_actual(scale=args.scale, seed=args.seed)
    for point in points[:20]:
        print(f"actual={point.actual_error:>4}  sensed(avg)={point.mean_sensed_error:.2f}  keys={point.keys}")


def _cmd_fig19(args) -> None:
    for distribution in sensing.layer_distribution(scale=args.scale, seed=args.seed):
        print(f"{distribution.memory_bytes / BYTES_PER_KB:.1f}KB: {distribution.keys_per_layer}")


def _cmd_fig20(args) -> None:
    for trace in ("ip", "hadoop"):
        curve = deployment.testbed_accuracy(trace_name=trace, seed=args.seed)
        print(f"[{trace}]")
        for result in curve.results:
            print(
                f"  SRAM={result.sram_bytes / BYTES_PER_KB:.1f}KB  outliers={result.outliers}  "
                f"AAE={result.aae_kbps:.2f}Kbps"
            )


def _parse_address(text: str) -> tuple[str, int]:
    """Split a ``host:port`` CLI address."""
    host, separator, port = text.rpartition(":")
    if not separator or not host or not port.isdigit():
        raise ValueError(f"address must look like host:port, got {text!r}")
    return host, int(port)


def _parse_keys(text: str) -> list[object]:
    """Parse the comma-separated ``--keys`` list (ints where they look it)."""
    keys: list[object] = []
    for piece in text.split(","):
        piece = piece.strip()
        if not piece:
            continue
        try:
            keys.append(int(piece))
        except ValueError:
            keys.append(piece)
    if not keys:
        raise ValueError("--keys needs at least one key")
    return keys


def _cmd_serve(args) -> None:
    """Serve one sketch online over TCP (sequential sessions or --async)."""
    from repro.serve.server import ServeConfig, create_listener, serve_forever

    host, port = _parse_address(args.bind or "127.0.0.1:29462")
    algorithm = args.algorithm or "CM_fast"
    memory_bytes = args.memory_bytes if args.memory_bytes is not None else 64 * 1024
    publish_every = args.publish_every if args.publish_every is not None else 8192
    backlog = args.backlog if args.backlog is not None else 128
    config = ServeConfig(
        algorithm,
        memory_bytes,
        seed=args.seed,
        shards=args.shards,
        publish_every_items=publish_every,
        max_tracked_keys=args.max_tracked_keys,
        store_dir=args.store,
        **({"ring_epochs": args.ring_epochs} if args.ring_epochs is not None else {}),
    )
    service = config.build_service()
    if args.store is not None:
        store_stats = service.stats().get("store", {})
        epoch = store_stats.get("last_snapshot_epoch")
        print(
            f"durable store at {args.store}: "
            + (f"warm start from epoch {epoch}" if epoch else "cold start")
        )
    if args.async_mode:
        from repro.serve.async_server import AsyncSketchServer

        server = AsyncSketchServer(
            service,
            host,
            port,
            max_inflight=args.max_inflight if args.max_inflight is not None else 1024,
            backlog=backlog,
            drain_timeout=(
                args.drain_timeout if args.drain_timeout is not None else 10.0
            ),
        )
        bound_host, bound_port = server.address
        print(
            f"serving {algorithm} ({memory_bytes:.0f} B budget, epoch every "
            f"{publish_every} items) on {bound_host}:{bound_port} "
            f"[async, max {server.max_inflight} in-flight]"
        )
        # serve_forever treats KeyboardInterrupt as shutdown(): stop
        # accepting, finish in-flight requests, flush, close — then report.
        async_stats = server.serve_forever()
        print(
            f"served {async_stats.queries_served} queries over "
            f"{async_stats.accepted} connection(s); "
            f"{async_stats.busy_rejected} busy-rejected, "
            f"{async_stats.frame_errors + async_stats.oversized_rejected} "
            f"frame errors, drained={async_stats.drained}"
        )
    else:
        # SO_REUSEADDR listener: restarting on the same port must not fail
        # while old connections sit in TIME_WAIT.
        listener = create_listener(host, port, backlog=backlog)
        try:
            bound_port = listener.getsockname()[1]
            print(
                f"serving {algorithm} ({memory_bytes:.0f} B budget, epoch every "
                f"{publish_every} items) on {host}:{bound_port}"
            )
            # Clients are served sequentially over one shared service, so state
            # a writer session loads persists for later reader sessions.
            sessions = serve_forever(listener, service, max_sessions=args.max_sessions)
        except KeyboardInterrupt:
            sessions = 0
            print("interrupted; closing the listener")
        finally:
            listener.close()
        stats = service.stats()
        print(
            f"served {sessions} client session(s); epoch {stats['epoch_id']}, "
            f"{stats['items_ingested']} items absorbed, "
            f"{stats['distinct_keys_tracked']} distinct keys"
        )
    service.close()
    if args.store is not None:
        store_stats = service.stats().get("store", {})
        if store_stats.get("degraded"):
            print(
                f"WARNING: store degraded ({store_stats.get('degrade_reason')}); "
                f"{store_stats.get('dropped_batches')} batch(es) and "
                f"{store_stats.get('dropped_publishes')} publish(es) not persisted"
            )


def _cmd_query(args) -> None:
    """Talk to a running ``repro-cli serve`` endpoint."""
    import json as json_module

    from repro.distributed.transport import connect_worker
    from repro.serve.server import QueryClient
    from repro.streams.synthetic import zipf_stream

    if not (args.keys or args.top_k or args.stats or args.count):
        raise ValueError(
            "query needs at least one of --keys / --top-k / --stats / --count"
        )
    host, port = _parse_address(args.connect or "127.0.0.1:29462")
    client = QueryClient(connect_worker(host, port))
    try:
        if args.count:
            skew = args.skew if args.skew is not None else 1.1
            stream = zipf_stream(args.count, skew=skew, seed=args.seed + 1)
            for chunk_start in range(0, len(stream), 8192):
                chunk = stream.items[chunk_start : chunk_start + 8192]
                client.ingest([item.key for item in chunk], [item.value for item in chunk])
            epoch = client.flush()
            print(f"ingested {len(stream)} items; service now at epoch {epoch}")
        if args.keys:
            keys = _parse_keys(args.keys)
            if args.pipeline:
                # One request per key, up to --pipeline in flight on this
                # single connection; replies come back in order (BUSY
                # rejections are retried transparently).
                answers = client.query_batches_pipelined(
                    [[key] for key in keys], max_inflight=args.pipeline
                )
                epochs = set()
                for key, (estimates, epoch) in zip(keys, answers):
                    print(f"{key}: {int(estimates[0])}")
                    epochs.add(epoch)
                print(
                    f"(pipelined {len(keys)} requests, depth {args.pipeline}; "
                    f"epochs {sorted(epochs)})"
                )
            else:
                estimates, epoch = client.query_batch(
                    keys, epoch=args.epoch, window=args.window
                )
                for key, estimate in zip(keys, estimates.tolist()):
                    print(f"{key}: {estimate}")
                if args.window is not None:
                    print(f"(window of {args.window} epoch(s) ending at epoch {epoch})")
                elif args.epoch is not None:
                    print(f"(pinned to epoch {epoch})")
                else:
                    print(f"(answered at epoch {epoch})")
        if args.top_k and args.watch:
            # Client-side change detection: poll the ranking and diff
            # successive answers.  A key absent from one ranking has an
            # unknown remote estimate (treated as 0 — deltas are lower
            # bounds); the server-side diff (service.diff_epochs) is exact.
            from repro.temporal import diff_rankings

            interval = args.interval if args.interval is not None else 1.0
            previous = None
            previous_epoch = None
            for round_index in range(args.watch):
                if round_index and interval:
                    time.sleep(interval)
                ranking, epoch = client.top_k(args.top_k)
                if previous is not None:
                    report = diff_rankings(
                        previous, ranking,
                        earlier_epoch=previous_epoch, later_epoch=epoch,
                    )
                    print(json_module.dumps(report.to_dict(), default=str))
                previous, previous_epoch = ranking, epoch
            print(f"(watched {args.watch} round(s), ending at epoch {previous_epoch})")
        elif args.top_k:
            ranking, epoch = client.top_k(args.top_k, epoch=args.epoch)
            for rank, (key, estimate) in enumerate(ranking, start=1):
                print(f"#{rank}: {key} = {estimate}")
            if args.epoch is not None:
                print(f"(pinned to epoch {epoch})")
            else:
                print(f"(answered at epoch {epoch})")
        if args.stats:
            print(json_module.dumps(client.stats(), indent=2, default=str))
    finally:
        client.close()


def _cmd_store_inspect(args) -> None:
    """Audit a durable store directory without modifying anything."""
    import json as json_module

    from repro.store import SketchStore

    with SketchStore(args.store) as store:
        print(json_module.dumps(store.inspect(), indent=2, default=str))


def _cmd_store_verify(args) -> None:
    """Run a full recovery pass and report what a warm start would load.

    This is recovery, not a dry run: torn journals are repaired (the
    original preserved in ``quarantine/``) and corrupt files quarantined,
    exactly as ``serve --store`` would on startup.
    """
    from repro.store import SketchStore

    with SketchStore(args.store) as store:
        report = store.recover()
        if report is None:
            print(f"{args.store}: empty store (cold start)")
            return
        print(
            f"{args.store}: recoverable at epoch {report.epoch_id} "
            f"({report.algorithm}, {report.items} items in the snapshot, "
            f"{report.wal_frames} journal frame(s) / {report.wal_items} item(s) "
            f"to replay)"
        )
        if report.wal_tail_error:
            print(f"  journal tail repaired: {report.wal_tail_error}")
        for name in report.quarantined:
            print(f"  quarantined: {name}")


def _cmd_store_compact(args) -> None:
    """Apply the retention policy to a store directory."""
    from repro.store import DEFAULT_RETENTION_EPOCHS, SketchStore

    retain = args.store_retain if args.store_retain is not None else DEFAULT_RETENTION_EPOCHS
    with SketchStore(args.store, retention_epochs=retain) as store:
        removed = store.compact()
        audit = store.inspect()
        print(
            f"{args.store}: removed {removed} file(s); "
            f"{len(audit['snapshots'])} snapshot(s) and {len(audit['wals'])} "
            f"journal(s) retained (newest epoch: {audit['recoverable_epoch']})"
        )


def _cmd_ingest_worker(args) -> None:
    """Run one standalone TCP ingest worker until the collector shuts it down."""
    from repro.distributed.ingest import dynamic_worker_main, worker_main
    from repro.distributed.transport import connect_worker

    host, port = _parse_address(args.connect or "127.0.0.1:29461")
    print(f"connecting to collector at {host}:{port} ...")
    channel = connect_worker(host, port)
    if args.dynamic:
        print("connected; dynamic worker (resharding protocol) until shutdown")
        dynamic_worker_main(channel)
    else:
        print("connected; ingesting until the collector shuts down")
        worker_main(channel)
    print("collector closed the session; exiting")


def _cmd_ingest_collect(args) -> None:
    """Distribute a synthetic stream over ingest workers and merge the result."""
    from repro.distributed.ingest import run_distributed_ingest
    from repro.distributed.transport import TcpTransport
    from repro.sketches.registry import build_sketch
    from repro.streams.synthetic import zipf_stream

    algorithm = args.algorithm or "CM_fast"
    memory_bytes = args.memory_bytes if args.memory_bytes is not None else 64 * 1024
    count = args.count if args.count is not None else 200_000
    skew = args.skew if args.skew is not None else 1.1
    chunk_size = args.batch_size or 8192

    transport_name = args.transport or "inproc"
    if transport_name == "tcp":
        host, port = _parse_address(args.bind) if args.bind else ("127.0.0.1", 0)
        # An explicit --bind waits for external `repro-cli ingest-worker`
        # processes; without it the transport self-hosts worker threads.
        backend: object = TcpTransport(host, port, self_hosted=args.bind is None)
    else:
        backend = transport_name

    stream = zipf_stream(count, skew=skew, seed=args.seed + 1)
    print(
        f"stream: {len(stream)} items, {stream.distinct_keys()} distinct keys; "
        f"{args.shards} workers over {transport_name}"
    )
    if isinstance(backend, TcpTransport) and not backend.self_hosted:
        print(f"waiting for {args.shards} workers on {args.bind} ...")

    if args.reshard or args.partitions is not None:
        _ingest_collect_dynamic(args, algorithm, memory_bytes, chunk_size,
                                stream, backend)
        return

    start = time.perf_counter()
    result = run_distributed_ingest(
        algorithm,
        memory_bytes,
        stream,
        workers=args.shards,
        transport=backend,
        chunk_size=chunk_size,
        seed=args.seed,
    )
    wall = time.perf_counter() - start
    print(
        f"ingested {result.total_items} items in {result.ingest_seconds:.3f}s "
        f"({result.total_items / max(result.ingest_seconds, 1e-9):,.0f} items/s); "
        f"wire: {result.bytes_sent:,} B out, {result.bytes_received:,} B back"
    )
    print(f"per-worker items: {list(result.items_per_worker)}")
    if result.merged is not None:
        print(f"tree-merged {args.shards} snapshots in {result.merge_seconds * 1e3:.2f} ms")
    else:
        print(
            f"collected {args.shards} snapshots into a routed sharded sketch "
            "(this family snapshots but has no lossless merge)"
        )
    if args.verify:
        keys = stream.keys()
        if result.merged is not None:
            single = build_sketch(algorithm, memory_bytes, seed=args.seed)
            single.insert_stream(stream, batch_size=chunk_size)
            identical = bool(
                (result.merged.query_batch(keys) == single.query_batch(keys)).all()
            )
            print(f"merged result bit-identical to single-node ingest: {identical}")
            if not identical and algorithm.startswith("CU"):
                # CU's documented merge guarantee: never below the true value
                # sums, never below the routed per-shard answers.
                counts = stream.counts()
                truth = [counts[key] for key in keys]
                never_underestimates = bool(
                    (result.merged.query_batch(keys) >= truth).all()
                )
                print(
                    "  (CU upper-bound merge semantics; never underestimates the "
                    f"true counts: {never_underestimates})"
                )
        else:
            from repro.sketches.sharded import ShardedSketch

            local = ShardedSketch.from_registry(
                algorithm, memory_bytes, args.shards, seed=args.seed
            )
            local.insert_stream(stream, batch_size=chunk_size)
            identical = bool(
                (result.sharded().query_batch(keys) == local.query_batch(keys)).all()
            )
            print(f"routed answers bit-identical to local sharded ingest: {identical}")
    print(f"total wall-clock {wall:.3f}s")


def _ingest_collect_dynamic(args, algorithm, memory_bytes, chunk_size,
                            stream, backend) -> None:
    """The dynamic-fleet form of ingest-collect: reshard while ingesting.

    ``--reshard`` splits the busiest worker a third of the way into the
    stream and folds it back at two thirds, so one command demonstrates
    the full quiesce -> snapshot -> epoch flip -> handoff cycle; with
    ``--verify`` the final partitions are checked bit-identical to a local
    static ``--partitions``-shard fleet.  External tcp workers must be
    started with ``repro-cli ingest-worker --dynamic``.
    """
    from repro.distributed.ingest import run_dynamic_ingest
    from repro.sketches.sharded import ShardedSketch

    partitions = args.partitions if args.partitions is not None else max(args.shards, 2)
    chunks_total = max(1, -(-len(stream) // chunk_size))
    actions = {}
    if args.reshard:
        new_ids = []

        def split(coordinator):
            busiest = max(
                coordinator.alive_workers(),
                key=lambda w: len(coordinator.router.partitions_of(w)),
            )
            new_ids.append(coordinator.split_worker(busiest))
            print(f"  [chunk {chunks_total // 3}] split worker {busiest} "
                  f"-> new worker {new_ids[-1]} (epoch {coordinator.epoch})")

        def merge(coordinator):
            if new_ids and new_ids[-1] in coordinator.alive_workers():
                target = coordinator._least_loaded(exclude={new_ids[-1]})
                coordinator.merge_workers(new_ids[-1], target)
                print(f"  [chunk {2 * chunks_total // 3}] merged worker "
                      f"{new_ids[-1]} into {target} (epoch {coordinator.epoch})")

        actions = {max(1, chunks_total // 3): split,
                   max(2, 2 * chunks_total // 3): merge}

    if args.store is not None:
        print(f"persisting partition checkpoints to {args.store}")
    start = time.perf_counter()
    result = run_dynamic_ingest(
        algorithm,
        memory_bytes,
        stream,
        workers=args.shards,
        partitions=partitions,
        transport=backend,
        chunk_size=chunk_size,
        seed=args.seed,
        heartbeat_interval=args.heartbeat_interval,
        heartbeat_timeout=args.heartbeat_timeout,
        store_dir=args.store,
        actions=actions,
    )
    wall = time.perf_counter() - start
    print(
        f"ingested {result.total_items} items in {result.ingest_seconds:.3f}s "
        f"({result.total_items / max(result.ingest_seconds, 1e-9):,.0f} items/s) "
        f"across {partitions} partitions; final epoch {result.epoch}; "
        f"wire: {result.bytes_sent:,} B out, {result.bytes_received:,} B back"
    )
    for record in result.handoffs:
        print(
            f"  handoff: partition {record['partition']} "
            f"worker {record['from_worker']} -> {record['to_worker']} "
            f"({record['items']} items, {record['seconds'] * 1e3:.2f} ms, "
            f"epoch {record['epoch']})"
        )
    if args.verify:
        local = ShardedSketch.from_registry(
            algorithm, memory_bytes, partitions, seed=args.seed
        )
        local.insert_stream(stream, batch_size=chunk_size)
        keys = stream.keys()
        identical = bool(
            (result.sharded().query_batch(keys) == local.query_batch(keys)).all()
        )
        print(f"resharded answers bit-identical to static {partitions}-shard "
              f"fleet: {identical}")
    print(f"total wall-clock {wall:.3f}s")


_COMMANDS = {
    "ingest-collect": _cmd_ingest_collect,
    "ingest-worker": _cmd_ingest_worker,
    "serve": _cmd_serve,
    "query": _cmd_query,
    "store-inspect": _cmd_store_inspect,
    "store-verify": _cmd_store_verify,
    "store-compact": _cmd_store_compact,
    "table1": _cmd_table1,
    "table3": _cmd_table3,
    "table4": _cmd_table4,
    "fig4": _cmd_fig4,
    "fig5": _cmd_fig5,
    "fig6": _cmd_fig6,
    "fig7": _cmd_fig7,
    "fig8": _cmd_fig8,
    "fig9": _cmd_fig9,
    "fig10": _cmd_fig10,
    "fig11": _cmd_fig11,
    "fig12": _cmd_fig11,  # same sweep with --target-aae, see parameters.rw_sweep
    "fig13": _cmd_fig13,
    "fig14": _cmd_fig13,
    "fig15": _cmd_fig15,
    "fig16": _cmd_fig16,
    "fig17": _cmd_fig17,
    "fig18": _cmd_fig18,
    "fig19": _cmd_fig19,
    "fig20": _cmd_fig20,
}


#: Commands whose sketches can run sharded.  --shards changes measured
#: results (distributed-ingest model), so commands that cannot honour it
#: must reject it rather than silently ignore it; --batch-size and
#: --workers are bit-identical knobs and are safe to ignore.
_SHARDS_COMMANDS = frozenset(
    {"fig4", "fig6", "fig8", "fig9", "fig10", "ingest-collect", "serve"}
)

#: Commands that can execute sharded fills over a remote transport.
#: --transport never changes results (remote routing equals local routing),
#: but commands that would silently ignore it must reject it.
_TRANSPORT_COMMANDS = frozenset({"fig4", "fig6", "fig8", "fig9", "ingest-collect"})

#: Which commands honour each connection-oriented flag.  Same policy as
#: --shards/--transport: a flag a command would silently ignore must be
#: rejected, never swallowed.
_FLAG_COMMANDS = {
    "--algorithm": frozenset({"ingest-collect", "serve"}),
    "--memory-bytes": frozenset({"ingest-collect", "serve"}),
    "--count": frozenset({"ingest-collect", "query"}),
    "--skew": frozenset({"ingest-collect", "query"}),
    "--bind": frozenset({"ingest-collect", "serve"}),
    "--connect": frozenset({"ingest-worker", "query"}),
    "--verify": frozenset({"ingest-collect"}),
    "--partitions": frozenset({"ingest-collect"}),
    "--reshard": frozenset({"ingest-collect"}),
    "--dynamic": frozenset({"ingest-worker"}),
    "--publish-every": frozenset({"serve"}),
    "--max-sessions": frozenset({"serve"}),
    "--async": frozenset({"serve"}),
    "--max-inflight": frozenset({"serve"}),
    "--drain-timeout": frozenset({"serve"}),
    "--backlog": frozenset({"serve"}),
    "--max-tracked-keys": frozenset({"serve"}),
    "--keys": frozenset({"query"}),
    "--top-k": frozenset({"query"}),
    "--stats": frozenset({"query"}),
    "--pipeline": frozenset({"query"}),
    "--epoch": frozenset({"query"}),
    "--window": frozenset({"query"}),
    "--watch": frozenset({"query"}),
    "--interval": frozenset({"query"}),
    "--ring-epochs": frozenset({"serve"}),
    "--store": frozenset(
        {"serve", "ingest-collect", "store-inspect", "store-verify", "store-compact"}
    ),
    "--store-retain": frozenset({"store-compact"}),
    "--heartbeat-interval": frozenset({"ingest-collect"}),
    "--heartbeat-timeout": frozenset({"ingest-collect"}),
}


def build_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``repro-cli`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-cli", description="Regenerate tables and figures of the ReliableSketch paper."
    )
    parser.add_argument("experiment", choices=sorted(_COMMANDS), help="table/figure to regenerate")
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                        help="stream scale relative to the paper (default: %(default)s)")
    parser.add_argument("--tolerance", type=float, default=25.0, help="error tolerance Lambda")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--dataset", default="ip",
                        help="dataset for the single-dataset experiments fig4 and fig10; "
                             "other figures sweep their own fixed dataset lists "
                             "(default: %(default)s)")
    parser.add_argument("--batch-size", type=int, default=None, dest="batch_size",
                        help="chunk size for the batch datapath; omit for the scalar loop "
                             "(results are bit-identical, only speed changes)")
    parser.add_argument("--shards", type=int, default=1,
                        help="hash-partitioned shards per sketch; each shard is a "
                             "full-budget replica, so results model the distributed "
                             "deployment (S x memory, typically fewer collisions) and "
                             "are not comparable to --shards 1 curves "
                             "(default: %(default)s)")
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool width for grid sweeps; 0 = one per CPU core "
                             "(results are bit-identical, only speed changes; "
                             "default: %(default)s)")
    parser.add_argument("--transport", choices=("inproc", "pipe", "tcp"), default=None,
                        help="run sharded fills on remote ingest workers over this "
                             "backend (results are bit-identical: remote routing "
                             "equals local routing); required form of ingest-collect")
    parser.add_argument("--kernel", choices=("auto",) + BACKEND_NAMES, default=None,
                        help="update-kernel backend for the order-dependent insert "
                             "paths (CU / mice filter / ReliableSketch / Elastic); "
                             "every backend is bit-identical to the scalar loop, so "
                             "this only changes speed (default: REPRO_KERNEL or auto)")
    # Connection-oriented flags default to None sentinels so main() can
    # reject their use on commands that would silently ignore them (the
    # --shards policy); the commands fill in the documented defaults.
    ingest = parser.add_argument_group(
        "distributed ingest", "options of ingest-collect / ingest-worker"
    )
    ingest.add_argument("--algorithm", default=None,
                        help="registry name of the sketch to ingest into / serve "
                             "(snapshotable families: CM_*/CU_*/Count/Ours/Ours(Raw); "
                             "default: CM_fast)")
    ingest.add_argument("--memory-bytes", type=float, default=None, dest="memory_bytes",
                        help="per-worker / served sketch memory budget (default: 65536)")
    ingest.add_argument("--count", type=int, default=None,
                        help="synthetic stream length: ingest-collect's stream, or the "
                             "demo write stream of query (default: 200000 / off)")
    ingest.add_argument("--skew", type=float, default=None,
                        help="Zipf skew of the synthetic stream (default: 1.1)")
    ingest.add_argument("--bind", default=None, metavar="HOST:PORT",
                        help="ingest-collect (tcp): wait for external ingest-worker "
                             "processes on this address instead of self-hosting "
                             "threads; serve: listen address (default: 127.0.0.1:29462)")
    ingest.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="ingest-worker: collector address to dial "
                             "(default: 127.0.0.1:29461); query: server address "
                             "(default: 127.0.0.1:29462)")
    ingest.add_argument("--verify", action="store_true",
                        help="ingest-collect: re-ingest locally and check the merged "
                             "sketch against single-node ingest")
    ingest.add_argument("--partitions", type=int, default=None,
                        help="ingest-collect: run the dynamic fleet with this many "
                             "fixed partitions (>= --shards); partitions, not "
                             "workers, are the unit of state migration "
                             "(default: static fleet, or max(shards, 2) with "
                             "--reshard)")
    ingest.add_argument("--reshard", action="store_true",
                        help="ingest-collect: split the busiest worker a third of "
                             "the way into the stream and merge it back at two "
                             "thirds — a live quiesce/snapshot/epoch-flip/handoff "
                             "demo (combine with --verify for the bit-identity "
                             "check)")
    ingest.add_argument("--dynamic", action="store_true",
                        help="ingest-worker: speak the dynamic resharding protocol "
                             "(required when the collector runs with --partitions/"
                             "--reshard)")
    serving = parser.add_argument_group(
        "online serving", "options of serve / query"
    )
    serving.add_argument("--publish-every", type=int, default=None, dest="publish_every",
                         help="serve: epoch length in items — readers lag ingest by at "
                              "most this many items (default: 8192)")
    serving.add_argument("--max-sessions", type=int, default=None, dest="max_sessions",
                         help="serve: exit after this many client sessions "
                              "(default: serve until interrupted; sequential mode only)")
    serving.add_argument("--async", action="store_true", dest="async_mode",
                         help="serve: multiplex concurrent connections on one "
                              "event loop (pipelined frames, bounded in-flight "
                              "queries, graceful drain) instead of sequential "
                              "sessions")
    serving.add_argument("--max-inflight", type=int, default=None, dest="max_inflight",
                         help="serve --async: bound on globally queued queries; "
                              "excess requests get a typed BUSY reply "
                              "(default: 1024)")
    serving.add_argument("--drain-timeout", type=float, default=None, dest="drain_timeout",
                         help="serve --async: upper bound in seconds on the "
                              "graceful drain at shutdown (default: 10)")
    serving.add_argument("--backlog", type=int, default=None,
                         help="serve: listener pending-accept queue length "
                              "(default: 128)")
    serving.add_argument("--max-tracked-keys", type=int, default=None,
                         dest="max_tracked_keys",
                         help="serve: bound the top-k key directory to this many "
                              "heavy-hitter candidates (min-estimate pruning; "
                              "default: unbounded)")
    serving.add_argument("--keys", default=None, metavar="K1,K2,...",
                         help="query: comma-separated keys to estimate")
    serving.add_argument("--top-k", type=int, default=None, dest="top_k",
                         help="query: print the server's k heaviest keys")
    serving.add_argument("--stats", action="store_true",
                         help="query: print the service's epoch/cache/staleness stats")
    serving.add_argument("--pipeline", type=int, default=None,
                         help="query: issue the --keys estimates as pipelined "
                              "single-key requests with this many in flight "
                              "(demonstrates in-order pipelined replies)")
    serving.add_argument("--epoch", type=int, default=None,
                         help="query: pin --keys/--top-k to this published epoch "
                              "instead of the latest one; an epoch evicted from "
                              "the server's ring is a typed EPOCH_GONE rejection")
    serving.add_argument("--window", type=int, default=None,
                         help="query: estimate --keys over the last N epochs only "
                              "(exact epoch-delta subtraction; CM/Count families)")
    serving.add_argument("--watch", type=int, default=None,
                         help="query: poll --top-k this many rounds and print a "
                              "JSON change report (surges/drops/churn) per round")
    serving.add_argument("--interval", type=float, default=None,
                         help="query --watch: seconds between polls (default: 1)")
    serving.add_argument("--ring-epochs", type=int, default=None, dest="ring_epochs",
                         help="serve: how many published epochs stay pinnable for "
                              "--epoch/--window reads (default: 8)")
    durability = parser.add_argument_group(
        "durability", "options of serve --store / ingest-collect --store / store-*"
    )
    durability.add_argument("--store", default=None, metavar="DIR",
                            help="serve: journal every ingest batch and persist every "
                                 "published epoch under DIR, warm-starting from it on "
                                 "restart; ingest-collect (dynamic fleet): persist "
                                 "partition checkpoints under DIR and resume from "
                                 "them; store-*: the directory to operate on")
    durability.add_argument("--store-retain", type=int, default=None, dest="store_retain",
                            help="store-compact: keep this many newest epoch "
                                 "snapshots (default: 2)")
    durability.add_argument("--heartbeat-interval", type=float, default=None,
                            dest="heartbeat_interval",
                            help="ingest-collect (dynamic fleet): probe worker "
                                 "liveness between chunks at this wall-clock cadence "
                                 "in seconds (default: only on failure signals)")
    durability.add_argument("--heartbeat-timeout", type=float, default=None,
                            dest="heartbeat_timeout",
                            help="ingest-collect (dynamic fleet): declare a worker "
                                 "dead if a heartbeat ack takes longer than this "
                                 "many seconds — hung workers are recovered like "
                                 "dead ones (default: wait forever)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.batch_size is not None and args.batch_size <= 0:
        parser.error("--batch-size must be a positive integer")
    if args.shards <= 0:
        parser.error("--shards must be a positive integer")
    if args.shards > 1 and args.experiment not in _SHARDS_COMMANDS:
        parser.error(
            f"--shards is not supported by {args.experiment} "
            f"(supported: {', '.join(sorted(_SHARDS_COMMANDS))})"
        )
    if args.workers < 0:
        parser.error("--workers must be >= 0 (0 = one per CPU core)")
    if args.max_tracked_keys is not None and args.max_tracked_keys <= 0:
        parser.error("--max-tracked-keys must be a positive integer")
    if args.kernel is not None:
        # Bit-identical knob, honoured by every command.  Setting both the
        # process default and the environment variable makes the choice
        # reach process-pool workers regardless of their start method.
        try:
            set_default_backend(args.kernel)
        except KernelUnavailableError as error:
            parser.error(str(error))
        os.environ[KERNEL_ENV_VAR] = args.kernel
    if args.transport is not None and args.experiment not in _TRANSPORT_COMMANDS:
        parser.error(
            f"--transport is not supported by {args.experiment} "
            f"(supported: {', '.join(sorted(_TRANSPORT_COMMANDS))})"
        )
    flag_values = {
        "--algorithm": args.algorithm,
        "--memory-bytes": args.memory_bytes,
        "--count": args.count,
        "--skew": args.skew,
        "--bind": args.bind,
        "--connect": args.connect,
        "--verify": args.verify or None,
        "--partitions": args.partitions,
        "--reshard": args.reshard or None,
        "--dynamic": args.dynamic or None,
        "--publish-every": args.publish_every,
        "--max-sessions": args.max_sessions,
        "--async": args.async_mode or None,
        "--max-inflight": args.max_inflight,
        "--drain-timeout": args.drain_timeout,
        "--backlog": args.backlog,
        "--max-tracked-keys": args.max_tracked_keys,
        "--keys": args.keys,
        "--top-k": args.top_k,
        "--stats": args.stats or None,
        "--pipeline": args.pipeline,
        "--epoch": args.epoch,
        "--window": args.window,
        "--watch": args.watch,
        "--interval": args.interval,
        "--ring-epochs": args.ring_epochs,
        "--store": args.store,
        "--store-retain": args.store_retain,
        "--heartbeat-interval": args.heartbeat_interval,
        "--heartbeat-timeout": args.heartbeat_timeout,
    }
    for flag, value in flag_values.items():
        if value is not None and args.experiment not in _FLAG_COMMANDS[flag]:
            parser.error(
                f"{flag} is only supported by "
                f"{' / '.join(sorted(_FLAG_COMMANDS[flag]))}"
            )
    if args.experiment == "ingest-collect" and args.bind is not None and args.transport != "tcp":
        parser.error("--bind requires --transport tcp")
    if args.partitions is not None and args.partitions < max(args.shards, 1):
        parser.error("--partitions must be at least --shards")
    if args.publish_every is not None and args.publish_every <= 0:
        parser.error("--publish-every must be a positive integer")
    if args.max_sessions is not None and args.max_sessions <= 0:
        parser.error("--max-sessions must be a positive integer")
    if args.max_sessions is not None and args.async_mode:
        parser.error("--max-sessions applies to sequential serving only")
    if args.max_inflight is not None and args.max_inflight <= 0:
        parser.error("--max-inflight must be a positive integer")
    if args.drain_timeout is not None and args.drain_timeout <= 0:
        parser.error("--drain-timeout must be positive")
    if args.backlog is not None and args.backlog <= 0:
        parser.error("--backlog must be a positive integer")
    if (args.max_inflight is not None or args.drain_timeout is not None) and not args.async_mode:
        parser.error("--max-inflight/--drain-timeout require serve --async")
    if args.top_k is not None and args.top_k <= 0:
        parser.error("--top-k must be a positive integer")
    if args.pipeline is not None and args.pipeline <= 0:
        parser.error("--pipeline must be a positive integer")
    if args.pipeline is not None and not args.keys:
        parser.error("--pipeline requires --keys")
    if args.epoch is not None and args.epoch < 0:
        parser.error("--epoch must be a non-negative epoch id")
    if args.window is not None and args.window <= 0:
        parser.error("--window must be a positive number of epochs")
    if args.epoch is not None and args.window is not None:
        parser.error("--epoch and --window are mutually exclusive")
    if args.window is not None and not args.keys:
        parser.error("--window requires --keys")
    if (args.epoch is not None or args.window is not None) and args.pipeline is not None:
        parser.error("--epoch/--window cannot be combined with --pipeline")
    if args.epoch is not None and not (args.keys or args.top_k):
        parser.error("--epoch requires --keys or --top-k")
    if args.watch is not None and args.watch <= 0:
        parser.error("--watch must be a positive number of rounds")
    if args.watch is not None and not args.top_k:
        parser.error("--watch requires --top-k")
    if args.watch is not None and args.epoch is not None:
        parser.error("--watch polls the live ranking; it cannot pin --epoch")
    if args.interval is not None and args.interval < 0:
        parser.error("--interval must be non-negative")
    if args.interval is not None and args.watch is None:
        parser.error("--interval requires --watch")
    if args.ring_epochs is not None and args.ring_epochs <= 0:
        parser.error("--ring-epochs must be a positive integer")
    if args.experiment.startswith("store-") and args.store is None:
        parser.error(f"{args.experiment} requires --store DIR")
    if args.store_retain is not None and args.store_retain <= 0:
        parser.error("--store-retain must be a positive integer")
    if args.heartbeat_interval is not None and args.heartbeat_interval <= 0:
        parser.error("--heartbeat-interval must be positive")
    if args.heartbeat_timeout is not None and args.heartbeat_timeout <= 0:
        parser.error("--heartbeat-timeout must be positive")
    dynamic_only = {
        "--heartbeat-interval": args.heartbeat_interval,
        "--heartbeat-timeout": args.heartbeat_timeout,
    }
    if args.experiment == "ingest-collect":
        dynamic_only["--store"] = args.store
    if not (args.reshard or args.partitions is not None):
        for flag, value in dynamic_only.items():
            if value is not None:
                parser.error(
                    f"{flag} requires the dynamic fleet "
                    "(combine with --partitions or --reshard)"
                )
    if args.experiment == "ingest-collect" and args.store is not None and args.verify:
        parser.error(
            "--verify cannot be combined with --store: a resumed fleet "
            "carries prior runs' history, which local re-ingest cannot mirror"
        )
    if args.experiment in ("ingest-collect", "serve"):
        from repro.sketches.registry import supports_snapshots

        algorithm = args.algorithm or "CM_fast"
        try:
            snapshotable = supports_snapshots(algorithm)
        except ValueError as error:
            parser.error(str(error))
        if args.experiment == "ingest-collect" and not snapshotable:
            parser.error(
                f"--algorithm {algorithm} cannot be collected remotely; pick a "
                "snapshotable family (CM_fast, CM_acc, CU_fast, CU_acc, Count, "
                "Ours, Ours(Raw))"
            )
        if args.experiment == "serve" and args.store is not None and not snapshotable:
            parser.error(
                f"--store needs a snapshotable algorithm, and {algorithm} is not "
                "(pick CM_fast, CM_acc, CU_fast, CU_acc, Count, Ours, or Ours(Raw))"
            )
    command = _COMMANDS[args.experiment]
    if args.experiment.startswith(("ingest-", "store-")) or args.experiment in ("serve", "query"):
        # Bad addresses, unreachable peers, ports in use, workers that never
        # dial in, an unrecoverable store directory, or a typed server
        # rejection (an --epoch pin the ring has evicted) surface as clean
        # argparse errors, not tracebacks (ValueError from parsing,
        # OSError/timeout from sockets and pipes, StoreError from recovery,
        # QueryRejectedError from the serving protocol).
        from repro.serve.errors import QueryRejectedError
        from repro.store import StoreError

        try:
            command(args)
        except (ValueError, OSError, StoreError, QueryRejectedError) as error:
            parser.error(str(error) or type(error).__name__)
    else:
        command(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

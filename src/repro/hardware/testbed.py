"""Testbed deployment experiment (§6.5.3, Figure 20).

The paper sends 40 million packets from the IP-trace and Hadoop datasets at
40 Gbps through a Tofino switch running ReliableSketch with different SRAM
budgets, and reports the per-flow byte-rate AAE (in Kbps) and the number of
outliers.

This module reproduces the experiment against the behavioural
:class:`repro.hardware.tofino.DataPlaneReliableSketch`: the surrogate trace is
generated with a byte-volume value model, replayed through the data-plane
sketch, and the per-flow byte errors are converted to rate errors using the
replay duration implied by the 40 Gbps link speed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.tofino import DataPlaneReliableSketch
from repro.metrics.accuracy import evaluate_accuracy
from repro.streams.items import Stream
from repro.streams.traces import load_trace

#: Link speed of the testbed (bits per second).
LINK_SPEED_BPS = 40e9


@dataclass(frozen=True)
class TestbedResult:
    """One point of Figure 20: SRAM size vs accuracy."""

    sram_bytes: float
    outliers: int
    aae_bytes: float
    aae_kbps: float
    replay_seconds: float
    recirculations: int
    insert_failures: int


class TestbedDeployment:
    """Replays a byte-volume trace through the data-plane sketch.

    (The class is experiment infrastructure, not a pytest test case, hence
    ``__test__ = False``.)

    Parameters
    ----------
    trace_name:
        ``"ip"`` or ``"hadoop"``, the two traces of Figure 20.
    scale:
        Trace scale factor (1.0 = the paper's packet counts).
    tolerance:
        Error tolerance in bytes used for outlier counting; the paper's
        Λ = 25 packets is translated to bytes via the mean packet size.
    seed:
        RNG seed for the surrogate trace and the sketch hash functions.
    """

    __test__ = False  # prevents pytest from collecting this as a test class

    def __init__(self, trace_name: str = "ip", scale: float = 0.005,
                 tolerance_bytes: float | None = None, seed: int = 0) -> None:
        self.trace_name = trace_name
        self.scale = scale
        self.seed = seed
        self._stream: Stream = load_trace(trace_name, scale=scale, seed=seed,
                                          value_model="bytes")
        if tolerance_bytes is None:
            mean_packet = self._stream.total_value() / len(self._stream)
            tolerance_bytes = 25.0 * mean_packet
        self.tolerance_bytes = tolerance_bytes

    @property
    def stream(self) -> Stream:
        """The byte-volume trace being replayed."""
        return self._stream

    @property
    def replay_seconds(self) -> float:
        """Duration of the replay at the testbed's 40 Gbps link speed."""
        total_bits = self._stream.total_value() * 8
        return total_bits / LINK_SPEED_BPS

    def _to_kbps(self, aae_bytes: float) -> float:
        """Convert a byte-volume error into a rate error over the replay window."""
        seconds = max(self.replay_seconds, 1e-12)
        return aae_bytes * 8 / seconds / 1e3

    def run(self, sram_bytes: float) -> TestbedResult:
        """Deploy with ``sram_bytes`` of switch memory and measure accuracy."""
        sketch = DataPlaneReliableSketch.from_sram(
            sram_bytes, tolerance=self.tolerance_bytes, seed=self.seed
        )
        sketch.insert_stream(self._stream)
        report = evaluate_accuracy(self._stream.counts(), sketch.query, self.tolerance_bytes)
        return TestbedResult(
            sram_bytes=sram_bytes,
            outliers=report.outliers,
            aae_bytes=report.aae,
            aae_kbps=self._to_kbps(report.aae),
            replay_seconds=self.replay_seconds,
            recirculations=sketch.recirculations,
            insert_failures=sketch.insert_failures,
        )

    def sweep(self, sram_sizes: list[float]) -> list[TestbedResult]:
        """Run the deployment for every SRAM size (one Figure 20 panel)."""
        return [self.run(size) for size in sram_sizes]

"""Generic synchronous pipeline model.

Both hardware targets of the paper are fully pipelined: a new item can enter
every clock cycle and the result emerges a fixed number of cycles later.
Throughput is therefore governed by the clock frequency alone, and latency by
the pipeline depth — which is what Table 3's "340 MHz, 41 clocks" numbers
express for the FPGA.  This tiny model captures exactly that relationship so
the FPGA/Tofino reports can derive throughput figures consistently.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PipelineReport:
    """Timing summary for processing ``operations`` items through a pipeline."""

    operations: int
    clock_mhz: float
    latency_cycles: int

    @property
    def total_cycles(self) -> int:
        """Cycles until the last result emerges (fill latency + streaming)."""
        if self.operations == 0:
            return 0
        return self.latency_cycles + (self.operations - 1)

    @property
    def seconds(self) -> float:
        """Wall-clock time at the configured frequency."""
        return self.total_cycles / (self.clock_mhz * 1e6)

    @property
    def throughput_mops(self) -> float:
        """Sustained throughput in million operations per second."""
        if self.operations == 0:
            return 0.0
        return self.operations / self.seconds / 1e6


@dataclass(frozen=True)
class PipelineModel:
    """A fully pipelined datapath: one new operation per clock."""

    clock_mhz: float
    latency_cycles: int

    def __post_init__(self) -> None:
        if self.clock_mhz <= 0:
            raise ValueError("clock frequency must be positive")
        if self.latency_cycles <= 0:
            raise ValueError("latency must be positive")

    @property
    def peak_throughput_mops(self) -> float:
        """Asymptotic throughput: one operation per clock."""
        return self.clock_mhz

    def process(self, operations: int) -> PipelineReport:
        """Timing report for a burst of ``operations`` back-to-back items."""
        if operations < 0:
            raise ValueError("operations must be non-negative")
        return PipelineReport(
            operations=operations,
            clock_mhz=self.clock_mhz,
            latency_cycles=self.latency_cycles,
        )

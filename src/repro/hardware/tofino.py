"""Programmable-switch (Tofino) model (§5.2, Table 4, Figure 20).

Two things are modelled here:

1.  :class:`TofinoResourceModel` — a static resource-usage estimate (hash
    bits, SRAM, map RAM, stateful ALUs, VLIW instructions, match crossbar)
    calibrated so the paper's default configuration reproduces Table 4.  The
    per-layer costs let the model report usage for other depths/sizes too.

2.  :class:`DataPlaneReliableSketch` — a behavioural implementation of the
    *constrained* algorithm that actually runs on the switch, honouring the
    three challenges of §5.2:

    * **Challenge I (circular dependency)** — a bucket cannot hold three
      mutually dependent fields in one stage, so the data plane stores
      ``DIFF = YES − NO`` together with ``ID`` in one stage and ``NO`` in the
      next stage.
    * **Challenge II (backward modification)** — the packet that first pushes
      ``NO`` over the layer threshold cannot set the lock flag in the same
      pass; it is *recirculated* and sets the flag on its second pass.  The
      model counts these recirculations.
    * **Challenge III (three-branch update)** — when the arriving key does
      not match ``ID``, ``DIFF`` is updated by saturating subtraction; a
      replacement is deferred until a later packet observes ``DIFF == 0``.

    Queries run in the control plane, reconstructing ``YES = DIFF + NO``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ReliableConfig
from repro.hashing import HashFamily
from repro.sketches.base import Sketch

#: Per-resource totals of one Tofino pipeline, in the units of Table 4
#: ("usage" counts; percentages in the table are usage / total).
TOFINO_TOTALS = {
    "Hash Bits": 4992,
    "SRAM": 960,
    "Map RAM": 576,
    "TCAM": 288,
    "Stateful ALU": 48,
    "VLIW Instr": 384,
    "Match Xbar": 1536,
}

#: Resource usage of the paper's default deployment (Table 4).
PAPER_USAGE = {
    "Hash Bits": 541,
    "SRAM": 138,
    "Map RAM": 119,
    "TCAM": 0,
    "Stateful ALU": 12,
    "VLIW Instr": 23,
    "Match Xbar": 109,
}

#: Number of bucket layers the paper's Tofino deployment uses (each layer
#: needs two stateful ALUs: one for ID/DIFF, one for NO).
PAPER_DATAPLANE_LAYERS = 6


@dataclass(frozen=True)
class TofinoResourceRow:
    """One row of Table 4: a resource, its usage and the percentage used."""

    resource: str
    usage: int
    total: int

    @property
    def percentage(self) -> float:
        """Usage as a fraction of the pipeline's total quota."""
        return self.usage / self.total if self.total else 0.0


class TofinoResourceModel:
    """Static per-layer resource model of the switch deployment."""

    def __init__(self, layers: int = PAPER_DATAPLANE_LAYERS) -> None:
        if layers <= 0:
            raise ValueError("layers must be positive")
        self.layers = layers

    def usage(self) -> dict[str, int]:
        """Estimated usage of each resource for ``layers`` bucket layers.

        Costs are linear per layer, calibrated so ``layers == 6`` reproduces
        the published Table 4 numbers exactly.
        """
        scale = self.layers / PAPER_DATAPLANE_LAYERS
        usage = {}
        for resource, paper_value in PAPER_USAGE.items():
            usage[resource] = int(round(paper_value * scale))
        return usage

    def rows(self) -> list[TofinoResourceRow]:
        """Table 4 rows for the configured number of layers."""
        return [
            TofinoResourceRow(resource, used, TOFINO_TOTALS[resource])
            for resource, used in self.usage().items()
        ]

    def fits(self) -> bool:
        """Whether the deployment fits within one pipeline's resources."""
        return all(row.usage <= row.total for row in self.rows())


class _DataPlaneBucket:
    """Switch-friendly bucket: ``ID``+``DIFF`` in one stage, ``NO`` in the next."""

    __slots__ = ("key", "diff", "no", "locked")

    def __init__(self) -> None:
        self.key = None
        self.diff = 0
        self.no = 0
        self.locked = False


class DataPlaneReliableSketch(Sketch):
    """Behavioural ReliableSketch under Tofino data-plane constraints.

    Accuracy of this variant on byte-volume traces is what Figure 20
    reports.  It differs from the CPU version in three ways (deferred
    replacement, saturating DIFF updates, lock via recirculation), all of
    which slightly increase error but keep the per-layer MPE bounded by the
    layer threshold.
    """

    name = "Ours(Tofino)"

    def __init__(self, config: ReliableConfig, seed: int = 0) -> None:
        self.config = config
        self._family = HashFamily(seed)
        self._hashes = [self._family.draw(layer.width) for layer in config.layers]
        self._layers = [
            [_DataPlaneBucket() for _ in range(layer.width)] for layer in config.layers
        ]
        self._thresholds = [layer.threshold for layer in config.layers]
        #: Packets sent through the recirculation port (Challenge II).
        self.recirculations = 0
        #: Items whose value escaped every layer.
        self.insert_failures = 0
        self.failed_value = 0

    @classmethod
    def from_sram(cls, sram_bytes: float, tolerance: float = 25.0,
                  depth: int = PAPER_DATAPLANE_LAYERS, seed: int = 0) -> "DataPlaneReliableSketch":
        """Build a deployment that fits in ``sram_bytes`` of switch SRAM."""
        config = ReliableConfig.from_memory(
            memory_bytes=sram_bytes,
            tolerance=tolerance,
            depth=depth,
            use_mice_filter=False,
        )
        return cls(config, seed=seed)

    def insert(self, key: object, value: int = 1) -> None:
        self._check_insert(value)
        remaining = value
        for buckets, hash_fn, threshold in zip(self._layers, self._hashes, self._thresholds):
            bucket = buckets[hash_fn(key)]
            if bucket.key is None:
                bucket.key = key
                bucket.diff = remaining
                return
            if bucket.key == key:
                bucket.diff += remaining
                return
            if bucket.locked:
                if bucket.diff == 0:
                    # Replacement is still allowed when DIFF has collapsed to
                    # zero (the YES == NO case of the lock mechanism).
                    bucket.key = key
                    bucket.diff = remaining
                    return
                # Otherwise nothing can be absorbed; go one layer deeper.
                continue
            headroom = threshold - bucket.no
            if remaining > headroom:
                # Lock will trigger: absorb the headroom, recirculate to set
                # the flag (Challenge II), and push the excess downwards.
                bucket.no = threshold
                bucket.diff = max(0, bucket.diff - headroom)
                bucket.locked = True
                self.recirculations += 1
                remaining -= headroom
                if remaining == 0:
                    return
                continue
            # Normal negative vote with saturating DIFF update (Challenge III):
            # DIFF shrinks towards zero instead of performing an exact swap.
            bucket.no += remaining
            if bucket.diff <= remaining:
                # Deferred replacement: DIFF has collapsed to zero, so the
                # arriving key claims the bucket and restarts DIFF from its
                # own value (modelling "replaced by the next packet that
                # observes DIFF == 0").
                bucket.key = key
                bucket.diff = remaining
            else:
                bucket.diff -= remaining
            return
        self.insert_failures += 1
        self.failed_value += remaining

    def query(self, key: object) -> int:
        estimate = 0
        for buckets, hash_fn, threshold in zip(self._layers, self._hashes, self._thresholds):
            bucket = buckets[hash_fn(key)]
            if bucket.key == key:
                estimate += bucket.diff + bucket.no
            else:
                estimate += bucket.no
            if not bucket.locked or bucket.key == key or bucket.diff == 0:
                break
        return estimate

    def memory_bytes(self) -> float:
        return self.config.bucket_bytes

    def hash_calls(self) -> int:
        return self._family.total_calls()

    def reset_hash_calls(self) -> None:
        self._family.reset_counters()

    def parameters(self) -> dict:
        return {"depth": self.config.depth, "widths": list(self.config.widths)}

"""Hardware platform models (§5 of the paper).

The paper implements ReliableSketch on three platforms: CPU servers, an FPGA
(Virtex-7 VC709) and a programmable switch (Tofino).  The CPU implementation
is the main library; this package provides *models* of the other two:

* :mod:`repro.hardware.pipeline` — a generic synchronous pipeline simulator
  (one operation enters per clock, fixed latency).
* :mod:`repro.hardware.fpga` — resource and timing model reproducing the
  synthesis report of Table 3.
* :mod:`repro.hardware.tofino` — stage/SALU resource model reproducing
  Table 4, plus a behavioural data-plane variant of ReliableSketch that obeys
  the switch constraints described in §5.2 (DIFF encoding, recirculation).
* :mod:`repro.hardware.testbed` — the testbed deployment experiment of
  Figure 20 driven by the data-plane variant.
"""

from repro.hardware.pipeline import PipelineModel, PipelineReport
from repro.hardware.fpga import FpgaModel, FpgaModuleReport, FpgaReport
from repro.hardware.tofino import (
    TofinoResourceModel,
    TofinoResourceRow,
    DataPlaneReliableSketch,
)
from repro.hardware.testbed import TestbedDeployment, TestbedResult

__all__ = [
    "PipelineModel",
    "PipelineReport",
    "FpgaModel",
    "FpgaModuleReport",
    "FpgaReport",
    "TofinoResourceModel",
    "TofinoResourceRow",
    "DataPlaneReliableSketch",
    "TestbedDeployment",
    "TestbedResult",
]

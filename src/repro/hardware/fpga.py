"""FPGA implementation model (§5.1, Table 3).

The paper synthesises ReliableSketch for a Virtex-7 VC709 board
(xc7vx690tffg1761-2).  We cannot run Vivado here, so this module provides an
analytical resource/timing model calibrated against the published synthesis
report: three hardware modules (hash computation, Error-Sensible bucket
arrays, emergency stack), their LUT/register/BRAM usage, and a fully
pipelined datapath at 340 MHz with 41 cycles of insertion latency.

The bucket-array BRAM usage scales with the configured sketch memory (one
36 Kbit block RAM per 4.5 KB of bucket state), so the model can also report
resource usage for non-default configurations, which the ablation benchmarks
exercise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ReliableConfig
from repro.hardware.pipeline import PipelineModel, PipelineReport

#: Device totals of the xc7vx690tffg1761-2 part (from §5.1).
DEVICE_LUTS = 433_200
DEVICE_REGISTERS = 866_400
DEVICE_BRAM_TILES = 1470

#: Published design constants (Table 3).
CLOCK_MHZ = 340.0
INSERT_LATENCY_CYCLES = 41

#: Bytes of bucket state one 36 Kbit BRAM tile holds (36 Kbit = 4.5 KB).
_BYTES_PER_BRAM_TILE = 4608


@dataclass(frozen=True)
class FpgaModuleReport:
    """Resource usage of one hardware module (one row of Table 3)."""

    module: str
    clb_luts: int
    clb_registers: int
    block_ram: int
    frequency_mhz: float


@dataclass(frozen=True)
class FpgaReport:
    """Full synthesis-style report: per-module rows plus device utilisation."""

    modules: tuple[FpgaModuleReport, ...]
    clock_mhz: float
    insert_latency_cycles: int

    @property
    def total_luts(self) -> int:
        """Total CLB LUTs across modules."""
        return sum(m.clb_luts for m in self.modules)

    @property
    def total_registers(self) -> int:
        """Total CLB registers across modules."""
        return sum(m.clb_registers for m in self.modules)

    @property
    def total_bram(self) -> int:
        """Total block-RAM tiles across modules."""
        return sum(m.block_ram for m in self.modules)

    @property
    def lut_utilisation(self) -> float:
        """Fraction of the device's LUTs used."""
        return self.total_luts / DEVICE_LUTS

    @property
    def register_utilisation(self) -> float:
        """Fraction of the device's registers used."""
        return self.total_registers / DEVICE_REGISTERS

    @property
    def bram_utilisation(self) -> float:
        """Fraction of the device's BRAM tiles used."""
        return self.total_bram / DEVICE_BRAM_TILES

    @property
    def throughput_mops(self) -> float:
        """Peak insertion throughput: one insertion per clock."""
        return self.clock_mhz

    def rows(self) -> list[dict]:
        """Table rows (module name plus resource columns), for printing."""
        table = [
            {
                "Module": m.module,
                "CLB LUTs": m.clb_luts,
                "CLB Registers": m.clb_registers,
                "Block RAM": m.block_ram,
                "Frequency (MHz)": m.frequency_mhz,
            }
            for m in self.modules
        ]
        table.append(
            {
                "Module": "Total",
                "CLB LUTs": self.total_luts,
                "CLB Registers": self.total_registers,
                "Block RAM": self.total_bram,
                "Frequency (MHz)": self.clock_mhz,
            }
        )
        return table


class FpgaModel:
    """Analytical resource model of the ReliableSketch FPGA implementation.

    The per-module LUT/register constants reproduce Table 3 for the paper's
    default 1 MB configuration; BRAM scales with the configured bucket
    memory so other configurations report proportionally more or fewer
    tiles.
    """

    #: (LUTs, registers) calibrated from the paper's synthesis report.
    _HASH_COST = (85, 130)
    _BUCKET_BASE_COST = (2521, 2592)
    _EMERGENCY_COST = (48, 112)

    def __init__(self, clock_mhz: float = CLOCK_MHZ,
                 insert_latency_cycles: int = INSERT_LATENCY_CYCLES) -> None:
        self.clock_mhz = clock_mhz
        self.insert_latency_cycles = insert_latency_cycles
        self._pipeline = PipelineModel(clock_mhz, insert_latency_cycles)

    def synthesize(self, config: ReliableConfig) -> FpgaReport:
        """Produce the Table 3 style report for a sketch configuration."""
        bucket_bytes = config.bucket_bytes + config.mice_filter_bytes
        bram_tiles = max(1, round(bucket_bytes / _BYTES_PER_BRAM_TILE))
        modules = (
            FpgaModuleReport("Hash", *self._HASH_COST, 0, self.clock_mhz),
            FpgaModuleReport("ESbucket", *self._BUCKET_BASE_COST, bram_tiles, self.clock_mhz),
            FpgaModuleReport("Emergency", *self._EMERGENCY_COST, 1, self.clock_mhz),
        )
        return FpgaReport(
            modules=modules,
            clock_mhz=self.clock_mhz,
            insert_latency_cycles=self.insert_latency_cycles,
        )

    def process(self, operations: int) -> PipelineReport:
        """Timing of a burst of insertions through the pipelined datapath."""
        return self._pipeline.process(operations)

    def fits(self, config: ReliableConfig) -> bool:
        """Whether the configuration fits on the modelled device."""
        report = self.synthesize(config)
        return (
            report.total_luts <= DEVICE_LUTS
            and report.total_registers <= DEVICE_REGISTERS
            and report.total_bram <= DEVICE_BRAM_TILES
        )

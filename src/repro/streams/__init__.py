"""Stream model and workload generators.

The paper evaluates on four real traces (CAIDA IP trace, a web document
stream, a university data-center trace and a Hadoop traffic trace) plus
synthetic Zipf streams.  The real traces are not redistributable, so this
package provides deterministic synthetic surrogates with matching
item-count / distinct-key / skew characteristics (see DESIGN.md for the
substitution rationale), alongside the Zipf generator the paper itself uses.
"""

from repro.streams.items import Item, Stream, chunked, exact_counts, total_value
from repro.streams.synthetic import ZipfGenerator, zipf_stream, uniform_stream
from repro.streams.traces import (
    TraceSpec,
    TRACE_SPECS,
    ip_trace,
    web_stream,
    datacenter_trace,
    hadoop_trace,
    load_trace,
)
from repro.streams.readers import (
    write_trace_file,
    read_trace_file,
    iter_trace_items,
    iter_trace_batches,
)

__all__ = [
    "Item",
    "Stream",
    "chunked",
    "exact_counts",
    "total_value",
    "ZipfGenerator",
    "zipf_stream",
    "uniform_stream",
    "TraceSpec",
    "TRACE_SPECS",
    "ip_trace",
    "web_stream",
    "datacenter_trace",
    "hadoop_trace",
    "load_trace",
    "write_trace_file",
    "read_trace_file",
    "iter_trace_items",
    "iter_trace_batches",
]

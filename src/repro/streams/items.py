"""Key-value stream items and ground-truth helpers.

A stream is simply an iterable of :class:`Item` objects.  Keeping the model
this small lets the sketches accept plain ``(key, value)`` tuples as well,
which matters for throughput experiments where attribute access would
dominate the measurement.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, TypeVar

_T = TypeVar("_T")


def chunked(items: Iterable[_T], chunk_size: int) -> Iterator[list[_T]]:
    """Yield ``items`` as consecutive lists of at most ``chunk_size`` elements.

    The single chunking primitive behind the batch datapath: stream and
    trace iteration, batched stream insertion and batch throughput
    measurement all share it, so the chunk contract (order preserved, last
    chunk short, positive size required) lives in exactly one place.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    chunk: list[_T] = []
    for item in items:
        chunk.append(item)
        if len(chunk) >= chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


@dataclass(frozen=True)
class Item:
    """One stream element: a key and its (positive) value increment.

    The paper's default experiments use ``value == 1`` (frequency
    estimation); weighted streams are exercised by dedicated tests and the
    byte-volume testbed experiment (Figure 20).
    """

    key: object
    value: int = 1

    def __iter__(self) -> Iterator[object]:
        # Allows ``key, value = item`` unpacking.
        return iter((self.key, self.value))


class Stream:
    """A materialised key-value stream with cached ground truth.

    Wrapping a list of items rather than a generator lets every sketch in a
    comparison consume the *same* data, and lets metrics be computed from an
    exact frequency table without a second pass over a generator.
    """

    def __init__(self, items: Sequence[Item] | Iterable[Item], name: str = "stream") -> None:
        self._items: list[Item] = [
            it if isinstance(it, Item) else Item(it[0], it[1]) for it in items
        ]
        self.name = name
        self._counts: Counter | None = None

    def __iter__(self) -> Iterator[Item]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Item:
        return self._items[index]

    @property
    def items(self) -> list[Item]:
        """The underlying item list (do not mutate)."""
        return self._items

    def iter_batches(self, chunk_size: int) -> Iterator[list[Item]]:
        """Yield the stream as consecutive chunks of at most ``chunk_size`` items.

        Chunks preserve stream order, so feeding every chunk to
        ``Sketch.insert_batch`` is equivalent to a scalar pass; the last
        chunk may be shorter (and a chunk size beyond ``len(self)`` yields
        one chunk holding the whole stream).
        """
        yield from chunked(self._items, chunk_size)

    def counts(self) -> Counter:
        """Exact per-key value sums ``f(e)`` (computed once, then cached)."""
        if self._counts is None:
            counter: Counter = Counter()
            for item in self._items:
                counter[item.key] += item.value
            self._counts = counter
        return self._counts

    def total_value(self) -> int:
        """The L1 norm ``N = sum_e f(e)`` used throughout the analysis."""
        return sum(self.counts().values())

    def distinct_keys(self) -> int:
        """Number of distinct keys in the stream."""
        return len(self.counts())

    def keys(self) -> list[object]:
        """All distinct keys (order unspecified but deterministic)."""
        return list(self.counts().keys())

    def frequent_keys(self, threshold: int) -> list[object]:
        """Keys whose exact value sum exceeds ``threshold`` (paper's T)."""
        return [key for key, count in self.counts().items() if count > threshold]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Stream(name={self.name!r}, items={len(self._items)}, "
            f"distinct={self.distinct_keys()})"
        )


def exact_counts(items: Iterable[Item]) -> Counter:
    """Exact value sums for an arbitrary iterable of items."""
    counter: Counter = Counter()
    for item in items:
        key, value = item
        counter[key] += value
    return counter


def total_value(items: Iterable[Item]) -> int:
    """Total inserted value ``N`` for an arbitrary iterable of items."""
    return sum(value for _, value in items)

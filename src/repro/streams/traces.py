"""Synthetic surrogates for the paper's real-world traces.

The evaluation uses four real traces that cannot be redistributed (CAIDA IP
trace, a crawled web-document stream, a university data-center packet trace
and a Hadoop traffic trace).  Only their aggregate statistics matter for the
experiments: the number of items, the number of distinct keys, and — most
importantly for ReliableSketch — the heavy-tailed *shape* of the key
frequency distribution (a few elephant keys carry most of the traffic while
the majority of keys are mice that appear only a handful of times).

Each surrogate is generated deterministically from a Zipf rank-frequency
law: key of rank ``k`` receives ``f_k = max(1, C / k^s)`` occurrences, with
``C`` solved numerically so the total item count matches the target.  The
exponent ``s`` is chosen per trace so that the mice/elephant mix resembles
the real workload (packet traces are strongly skewed; the Hadoop trace has
very few, very heavy keys).  The item order is a seeded shuffle.

==================  ==========  ==============  =========
trace               paper items paper distinct  exponent s
==================  ==========  ==============  =========
IP trace (CAIDA)    10 M        ~0.4 M          1.20
Web stream          10 M        ~0.3 M          1.25
University DC       10 M        ~1.0 M          1.10
Hadoop              10 M        ~20 K           1.40
==================  ==========  ==============  =========

All generators accept a ``scale`` parameter; ``scale=1.0`` reproduces the
paper's 10 M-item streams, while the default used in tests and benchmarks is
much smaller so the pure-Python harness stays fast.  Both the item count and
the key count shrink together, preserving the items-per-key ratio (and so
the collision pressure per byte of sketch memory).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.streams.items import Item, Stream


@dataclass(frozen=True)
class TraceSpec:
    """Statistical description of a real trace and its surrogate generator."""

    name: str
    paper_items: int
    paper_distinct: int
    #: Zipf rank-frequency exponent of the surrogate.
    exponent: float
    #: Value model: "unit" for packet counts, "bytes" for byte volumes.
    value_model: str = "unit"

    @property
    def items_per_key(self) -> float:
        """Average number of items per distinct key in the paper's trace."""
        return self.paper_items / self.paper_distinct


TRACE_SPECS: dict[str, TraceSpec] = {
    "ip": TraceSpec("IP Trace", 10_000_000, 400_000, exponent=1.20),
    "web": TraceSpec("Web Stream", 10_000_000, 300_000, exponent=1.25),
    "datacenter": TraceSpec("University Data Center", 10_000_000, 1_000_000, exponent=1.10),
    "hadoop": TraceSpec("Hadoop Stream", 10_000_000, 20_000, exponent=1.40),
}


def zipf_rank_frequencies(distinct_keys: int, total_items: int, exponent: float) -> np.ndarray:
    """Frequencies ``f_k = max(1, C / k^s)`` with ``C`` solved so they sum to ``total_items``.

    This is the rank-frequency construction behind the surrogate traces: it
    fixes the number of distinct keys exactly and matches the item count to
    within rounding, while producing the long tail of frequency-1 "mice"
    keys that real packet traces exhibit.
    """
    if distinct_keys <= 0 or total_items <= 0:
        raise ValueError("distinct_keys and total_items must be positive")
    if total_items < distinct_keys:
        raise ValueError("total_items must be at least distinct_keys")
    ranks = np.arange(1, distinct_keys + 1, dtype=np.float64)
    weights = ranks ** (-exponent)

    def total_for(constant: float) -> float:
        return float(np.maximum(1.0, np.floor(constant * weights)).sum())

    # Bisection on C: total(C) is monotone non-decreasing.
    low, high = 1.0, 2.0
    while total_for(high) < total_items:
        high *= 2.0
        if high > 1e18:  # pragma: no cover - defensive
            break
    for _ in range(64):
        middle = (low + high) / 2.0
        if total_for(middle) < total_items:
            low = middle
        else:
            high = middle
    frequencies = np.maximum(1.0, np.floor(high * weights)).astype(np.int64)
    # Trim the (small) rounding overshoot off the largest keys so totals match.
    overshoot = int(frequencies.sum()) - total_items
    index = 0
    while overshoot > 0 and index < distinct_keys:
        removable = min(overshoot, int(frequencies[index]) - 1)
        frequencies[index] -= removable
        overshoot -= removable
        index += 1
    return frequencies


def _generate(spec: TraceSpec, scale: float, seed: int, value_model: str | None) -> Stream:
    """Draw a surrogate stream for ``spec`` at the requested scale."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    n_items = max(2, int(round(spec.paper_items * scale)))
    n_keys = max(1, min(n_items, int(round(spec.paper_distinct * scale))))
    rng = np.random.default_rng(seed)

    frequencies = zipf_rank_frequencies(n_keys, n_items, spec.exponent)
    # Assign random (but deterministic) key identifiers so that hash functions
    # see realistic key material rather than small consecutive integers.
    key_ids = rng.choice(np.iinfo(np.int64).max // 2, size=n_keys, replace=False)
    keys = np.repeat(key_ids, frequencies)
    order = rng.permutation(keys.shape[0])
    keys = keys[order]

    model = value_model or spec.value_model
    count = keys.shape[0]
    if model == "unit":
        values = np.ones(count, dtype=np.int64)
    elif model == "bytes":
        # Packet sizes: mixture of small control packets and ~MTU data packets,
        # a standard synthetic model of internet packet-length distributions.
        small = rng.integers(40, 100, size=count)
        large = rng.integers(1000, 1500, size=count)
        pick_large = rng.random(count) < 0.45
        values = np.where(pick_large, large, small).astype(np.int64)
    else:
        raise ValueError(f"unknown value model: {model!r}")

    items = [Item(int(k), int(v)) for k, v in zip(keys, values)]
    return Stream(items, name=f"{spec.name} (scale={scale:g})")


def ip_trace(scale: float = 0.01, seed: int = 1, value_model: str | None = None) -> Stream:
    """Surrogate of the default CAIDA IP trace (10 M packets, ~0.4 M flows)."""
    return _generate(TRACE_SPECS["ip"], scale, seed, value_model)


def web_stream(scale: float = 0.01, seed: int = 2, value_model: str | None = None) -> Stream:
    """Surrogate of the crawled web-document stream (10 M items, ~0.3 M keys)."""
    return _generate(TRACE_SPECS["web"], scale, seed, value_model)


def datacenter_trace(scale: float = 0.01, seed: int = 3, value_model: str | None = None) -> Stream:
    """Surrogate of the university data-center trace (10 M packets, ~1 M flows)."""
    return _generate(TRACE_SPECS["datacenter"], scale, seed, value_model)


def hadoop_trace(scale: float = 0.01, seed: int = 4, value_model: str | None = None) -> Stream:
    """Surrogate of the Hadoop traffic trace (10 M packets, ~20 K flows)."""
    return _generate(TRACE_SPECS["hadoop"], scale, seed, value_model)


_LOADERS = {
    "ip": ip_trace,
    "web": web_stream,
    "datacenter": datacenter_trace,
    "hadoop": hadoop_trace,
}


def load_trace(name: str, scale: float = 0.01, seed: int | None = None,
               value_model: str | None = None) -> Stream:
    """Load a surrogate trace by short name (``ip``, ``web``, ``datacenter``, ``hadoop``)."""
    try:
        loader = _LOADERS[name]
    except KeyError:
        raise ValueError(
            f"unknown trace {name!r}; expected one of {sorted(_LOADERS)}"
        ) from None
    if seed is None:
        return loader(scale=scale, value_model=value_model)
    return loader(scale=scale, seed=seed, value_model=value_model)

"""Synthetic Zipf workloads.

The paper generates synthetic datasets "according to a Zipf distribution with
different skewness" (§6.1.2) using Web Polygraph.  We reproduce the same
statistical shape with a seeded NumPy-based generator: keys are drawn from a
Zipf(skew) distribution over a fixed key universe, so low skew gives a nearly
uniform stream (hard for every sketch — Figure 6c) and high skew gives a few
dominant elephants (Figure 6d).
"""

from __future__ import annotations

import numpy as np

from repro.streams.items import Item, Stream


class ZipfGenerator:
    """Draws keys from a (finite-universe) Zipf distribution.

    Parameters
    ----------
    skew:
        Zipf exponent.  ``skew == 0`` degenerates to the uniform distribution.
    universe:
        Number of distinct candidate keys (rank 1..universe).
    seed:
        RNG seed; the same seed always produces the same stream.
    """

    def __init__(self, skew: float, universe: int = 100_000, seed: int = 1) -> None:
        if skew < 0:
            raise ValueError("skew must be non-negative")
        if universe <= 0:
            raise ValueError("universe must be positive")
        self.skew = skew
        self.universe = universe
        self.seed = seed
        ranks = np.arange(1, universe + 1, dtype=np.float64)
        weights = ranks ** (-skew) if skew > 0 else np.ones_like(ranks)
        self._probabilities = weights / weights.sum()
        self._rng = np.random.default_rng(seed)

    def draw(self, count: int) -> np.ndarray:
        """Draw ``count`` keys (integers in ``[0, universe)``)."""
        return self._rng.choice(
            self.universe, size=count, p=self._probabilities
        )

    def stream(self, count: int, value: int = 1, name: str | None = None) -> Stream:
        """Materialise a stream of ``count`` items with constant ``value``."""
        keys = self.draw(count)
        items = [Item(int(key), value) for key in keys]
        return Stream(items, name=name or f"zipf-{self.skew:g}")


def zipf_stream(
    count: int,
    skew: float,
    universe: int = 100_000,
    seed: int = 1,
    value: int = 1,
) -> Stream:
    """Convenience wrapper: one-shot Zipf stream (paper's synthetic datasets)."""
    return ZipfGenerator(skew, universe=universe, seed=seed).stream(count, value=value)


def uniform_stream(count: int, universe: int = 100_000, seed: int = 1) -> Stream:
    """A skew-0 stream — the adversarial low-skew case of Figure 6(c)."""
    return zipf_stream(count, skew=0.0, universe=universe, seed=seed)

"""Trace file round-trip.

Real deployments feed sketches from capture files.  To keep the repository
self-contained we use a trivial text format — one ``key value`` pair per
line — which is enough to snapshot a generated surrogate trace to disk, share
it between experiments, and reload it deterministically.
"""

from __future__ import annotations

from pathlib import Path

from repro.streams.items import Item, Stream


def write_trace_file(stream: Stream, path: str | Path) -> Path:
    """Write ``stream`` to ``path`` as ``key value`` lines; returns the path."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for item in stream:
            handle.write(f"{item.key} {item.value}\n")
    return path


def read_trace_file(path: str | Path, name: str | None = None) -> Stream:
    """Read a stream previously written by :func:`write_trace_file`.

    Keys that look like integers are parsed back to ``int`` so that the
    round-trip is exact for the surrogate traces; everything else stays a
    string key.
    """
    path = Path(path)
    items: list[Item] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"{path}:{line_number}: expected 'key value', got {line!r}")
            raw_key, raw_value = parts
            key: object
            try:
                key = int(raw_key)
            except ValueError:
                key = raw_key
            items.append(Item(key, int(raw_value)))
    return Stream(items, name=name or path.stem)

"""Trace file round-trip.

Real deployments feed sketches from capture files.  To keep the repository
self-contained we use a trivial text format — one ``key value`` pair per
line — which is enough to snapshot a generated surrogate trace to disk, share
it between experiments, and reload it deterministically.

Reading is streaming-first: :func:`iter_trace_items` parses the file line by
line (the file handle buffers; whole-file materialisation never happens), and
:func:`iter_trace_batches` chunks that iterator for the batch datapath, so a
trace much larger than memory can be fed straight into
``Sketch.insert_batch``.  :func:`read_trace_file` remains the convenience
wrapper that materialises a :class:`Stream` (with its cached ground truth)
from the same iterator.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.streams.items import Item, Stream, chunked


def write_trace_file(stream: Stream, path: str | Path) -> Path:
    """Write ``stream`` to ``path`` as ``key value`` lines; returns the path."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for item in stream:
            handle.write(f"{item.key} {item.value}\n")
    return path


def _parse_trace_line(line: str, path: Path, line_number: int) -> Item | None:
    """Parse one trace line; ``None`` for blank lines and ``#`` comments."""
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    parts = line.split()
    if len(parts) != 2:
        raise ValueError(f"{path}:{line_number}: expected 'key value', got {line!r}")
    raw_key, raw_value = parts
    key: object
    try:
        key = int(raw_key)
    except ValueError:
        key = raw_key
    return Item(key, int(raw_value))


def iter_trace_items(path: str | Path) -> Iterator[Item]:
    """Stream the items of a trace file one by one, without materialising it.

    Keys that look like integers are parsed back to ``int`` so that the
    round-trip is exact for the surrogate traces; everything else stays a
    string key.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            item = _parse_trace_line(line, path, line_number)
            if item is not None:
                yield item


def iter_trace_batches(path: str | Path, chunk_size: int) -> Iterator[list[Item]]:
    """Stream a trace file as chunks of at most ``chunk_size`` items.

    Only one chunk is resident at a time, so arbitrarily large traces can be
    pumped through ``Sketch.insert_batch`` with bounded memory.
    """
    yield from chunked(iter_trace_items(path), chunk_size)


def read_trace_file(path: str | Path, name: str | None = None) -> Stream:
    """Read a whole trace into a :class:`Stream` (cached ground truth etc.).

    Built on :func:`iter_trace_items`; use that directly (or
    :func:`iter_trace_batches`) when the trace should not be materialised.
    """
    path = Path(path)
    return Stream(iter_trace_items(path), name=name or path.stem)

"""Emergency stores for insertion failures (§3.3 and Theorem 4).

If an item's value is not fully absorbed by the ``d`` bucket layers, the
insertion has *failed*; the paper proves this is extremely unlikely but still
offers two remedies, both implemented here:

* :class:`ExactEmergencyStore` — a plain hash table recording the exact
  leftover per key.  Easy on a CPU; unbounded in the worst case but in
  practice it holds at most a handful of keys.
* :class:`SpaceSavingEmergencyStore` — the bounded SpaceSaving structure of
  size ``Δ₂ ln(1/Δ)`` used as the (d+1)-th layer in Theorem 4.

Matching the paper's evaluation, ReliableSketch keeps the emergency layer
*out* of the accuracy numbers by default (``use_emergency=False``); the
theory-oriented tests enable it explicitly.
"""

from __future__ import annotations

import abc

from repro.sketches.spacesaving import SpaceSaving


class EmergencyStore(abc.ABC):
    """Interface of the overflow store appended after the last layer."""

    @abc.abstractmethod
    def insert(self, key: object, value: int) -> None:
        """Record leftover value that escaped every bucket layer."""

    @abc.abstractmethod
    def query(self, key: object) -> int:
        """Return the stored leftover estimate for ``key`` (0 if absent)."""

    @abc.abstractmethod
    def memory_bytes(self) -> float:
        """Memory footprint of the store."""

    @property
    @abc.abstractmethod
    def stored_keys(self) -> int:
        """Number of keys currently held by the store."""


class ExactEmergencyStore(EmergencyStore):
    """Dictionary-backed exact overflow store (the CPU-server remedy)."""

    def __init__(self) -> None:
        self._table: dict[object, int] = {}

    def insert(self, key: object, value: int) -> None:
        if value <= 0:
            raise ValueError("inserted value must be positive")
        self._table[key] = self._table.get(key, 0) + value

    def query(self, key: object) -> int:
        return self._table.get(key, 0)

    def memory_bytes(self) -> float:
        # key (32 bit) + counter (32 bit) per entry, mirroring the C++ layout.
        return len(self._table) * 8.0

    @property
    def stored_keys(self) -> int:
        return len(self._table)


class SpaceSavingEmergencyStore(EmergencyStore):
    """SpaceSaving-backed bounded overflow store (Theorem 4's (d+1)-th layer)."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._summary = SpaceSaving(capacity=capacity)

    def insert(self, key: object, value: int) -> None:
        self._summary.insert(key, value)

    def query(self, key: object) -> int:
        return self._summary.query(key)

    def memory_bytes(self) -> float:
        return self._summary.memory_bytes()

    @property
    def stored_keys(self) -> int:
        return len(self._summary.monitored_keys())

    @property
    def capacity(self) -> int:
        """Maximum number of monitored overflow keys."""
        return self._summary.capacity

"""The Error-Sensible Bucket (§3.1) — ReliableSketch's basic counting unit.

A bucket holds a candidate key (``ID``) and two vote counters (``YES`` and
``NO``).  Insertions of the candidate key vote positively, any other key
votes negatively, and whenever the negative votes catch up with the positive
votes a *replacement* occurs: the newcomer becomes the candidate and the two
counters swap.

The crucial property (proved by induction in the paper and by the property
tests in ``tests/core/test_bucket_properties.py``) is that after any
insertion sequence:

* if ``ID == e``  then ``f(e) ∈ [YES − NO, YES]``,
* if ``ID != e``  then ``f(e) ∈ [0, NO]``,

so ``NO`` is always a sound Maximum Possible Error (MPE) for every key, which
is exactly the error signal ReliableSketch's lock mechanism needs.

Two representations live here:

* :class:`ErrorSensibleBucket` — the single-bucket object, kept as the
  didactic reference (and for the per-bucket property tests);
* :class:`BucketArrayLayer` — the struct-of-arrays layout ReliableSketch
  actually uses since the batch-first datapath rework: one layer holds its
  candidate keys in a Python list and its ``YES``/``NO`` counters in NumPy
  ``int64`` arrays, so queries and diagnostics over a whole layer are
  vectorizable while per-bucket views stay available for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.kernels.scalar import EMPTY_ID


@dataclass(frozen=True)
class BucketQueryResult:
    """Result of querying one bucket: an estimate and its error bound."""

    estimate: int
    mpe: int

    @property
    def lower_bound(self) -> int:
        """Guaranteed lower bound on the true value sum."""
        return max(0, self.estimate - self.mpe)

    @property
    def upper_bound(self) -> int:
        """Guaranteed upper bound on the true value sum (the estimate itself)."""
        return self.estimate

    def contains(self, truth: int) -> bool:
        """Whether the sensed interval contains a candidate true value."""
        return self.lower_bound <= truth <= self.upper_bound


class ErrorSensibleBucket:
    """One Error-Sensible Bucket: ``ID`` / ``YES`` / ``NO``.

    The bucket on its own implements the unconstrained insertion of Figures 1
    and 2; the layer-threshold (lock) logic lives in
    :class:`repro.core.reliable_sketch.ReliableSketch`, which manipulates the
    bucket fields directly because the lock decision depends on the layer's
    threshold ``λ_i``, not on the bucket alone.
    """

    __slots__ = ("key", "yes", "no")

    def __init__(self) -> None:
        self.key: object | None = None
        self.yes: int = 0
        self.no: int = 0

    # ------------------------------------------------------------------ API
    def insert(self, key: object, value: int = 1) -> None:
        """Insert ``<key, value>`` following the voting + replacement rules."""
        if value <= 0:
            raise ValueError("inserted value must be positive")
        if self.key is None:
            # An empty bucket adopts the first key directly (equivalent to a
            # negative vote followed by an immediate replacement).
            self.key = key
            self.yes = value
            self.no = 0
            return
        if self.key == key:
            self.yes += value
            return
        self.no += value
        if self.no >= self.yes:
            self.key = key
            self.yes, self.no = self.no, self.yes

    def query(self, key: object) -> BucketQueryResult:
        """Estimate the value sum of ``key`` with its Maximum Possible Error."""
        if self.key == key:
            return BucketQueryResult(estimate=self.yes, mpe=self.no)
        return BucketQueryResult(estimate=self.no, mpe=self.no)

    # ------------------------------------------------------------- helpers
    @property
    def is_empty(self) -> bool:
        """True when the bucket has never absorbed any value."""
        return self.key is None and self.yes == 0 and self.no == 0

    @property
    def total_value(self) -> int:
        """Total value absorbed by this bucket (``YES + NO``)."""
        return self.yes + self.no

    def clear(self) -> None:
        """Reset the bucket to its initial empty state."""
        self.key = None
        self.yes = 0
        self.no = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ErrorSensibleBucket(key={self.key!r}, yes={self.yes}, no={self.no})"


class BucketView:
    """Read-only view of one bucket inside a :class:`BucketArrayLayer`.

    Exposes the ``key`` / ``yes`` / ``no`` / ``total_value`` surface of
    :class:`ErrorSensibleBucket` backed by the layer's arrays, so diagnostics
    and invariant tests (e.g. the value-conservation check in
    ``tests/core/test_reliable_properties.py``) can keep treating a layer as
    a sequence of buckets.  Deliberately read-only: all mutation goes through
    the array-level insert paths in :mod:`repro.core.reliable_sketch`.
    """

    __slots__ = ("_layer", "_index")

    def __init__(self, layer: "BucketArrayLayer", index: int) -> None:
        self._layer = layer
        self._index = index

    @property
    def key(self) -> object | None:
        return self._layer.keys[self._index]

    @property
    def yes(self) -> int:
        return int(self._layer.yes[self._index])

    @property
    def no(self) -> int:
        return int(self._layer.no[self._index])

    @property
    def total_value(self) -> int:
        return self.yes + self.no

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BucketView(key={self.key!r}, yes={self.yes}, no={self.no})"


class BucketArrayLayer:
    """One ReliableSketch layer in struct-of-arrays form.

    ``keys`` is a plain Python list (stream keys are arbitrary hashable
    objects); ``yes`` and ``no`` are ``int64`` arrays so that whole-layer
    reads — batch queries, occupancy, lock counts — are single vectorized
    expressions.  ``key_ids`` mirrors ``keys`` as the sketch's interned
    integer ids (``EMPTY_ID`` where unset): the conflict-free update
    kernels and the batch query path compare candidate keys as plain
    ``int64`` arrays and never touch the objects; the owning sketch keeps
    the two representations in sync whenever a bucket adopts a new key.
    """

    __slots__ = ("keys", "key_ids", "yes", "no")

    def __init__(self, width: int) -> None:
        if width <= 0:
            raise ValueError("layer width must be positive")
        self.keys: list[object | None] = [None] * width
        self.key_ids = np.full(width, EMPTY_ID, dtype=np.int64)
        self.yes = np.zeros(width, dtype=np.int64)
        self.no = np.zeros(width, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.keys)

    def __iter__(self) -> Iterator[BucketView]:
        for index in range(len(self.keys)):
            yield BucketView(self, index)

    def occupied_count(self) -> int:
        """Number of non-empty buckets (a bucket is empty iff its key is unset)."""
        return sum(1 for key in self.keys if key is not None)

    def locked_count(self, threshold: float) -> int:
        """Buckets whose ``NO`` reached the threshold while ``YES`` exceeds it."""
        return int(np.count_nonzero((self.no >= threshold) & (self.yes > threshold)))

    def total_value(self) -> int:
        """Total value absorbed by the layer (``Σ YES + Σ NO``)."""
        return int(self.yes.sum() + self.no.sum())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BucketArrayLayer(width={len(self.keys)}, occupied={self.occupied_count()})"

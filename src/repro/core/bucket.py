"""The Error-Sensible Bucket (§3.1) — ReliableSketch's basic counting unit.

A bucket holds a candidate key (``ID``) and two vote counters (``YES`` and
``NO``).  Insertions of the candidate key vote positively, any other key
votes negatively, and whenever the negative votes catch up with the positive
votes a *replacement* occurs: the newcomer becomes the candidate and the two
counters swap.

The crucial property (proved by induction in the paper and by the property
tests in ``tests/core/test_bucket_properties.py``) is that after any
insertion sequence:

* if ``ID == e``  then ``f(e) ∈ [YES − NO, YES]``,
* if ``ID != e``  then ``f(e) ∈ [0, NO]``,

so ``NO`` is always a sound Maximum Possible Error (MPE) for every key, which
is exactly the error signal ReliableSketch's lock mechanism needs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BucketQueryResult:
    """Result of querying one bucket: an estimate and its error bound."""

    estimate: int
    mpe: int

    @property
    def lower_bound(self) -> int:
        """Guaranteed lower bound on the true value sum."""
        return max(0, self.estimate - self.mpe)

    @property
    def upper_bound(self) -> int:
        """Guaranteed upper bound on the true value sum (the estimate itself)."""
        return self.estimate

    def contains(self, truth: int) -> bool:
        """Whether the sensed interval contains a candidate true value."""
        return self.lower_bound <= truth <= self.upper_bound


class ErrorSensibleBucket:
    """One Error-Sensible Bucket: ``ID`` / ``YES`` / ``NO``.

    The bucket on its own implements the unconstrained insertion of Figures 1
    and 2; the layer-threshold (lock) logic lives in
    :class:`repro.core.reliable_sketch.ReliableSketch`, which manipulates the
    bucket fields directly because the lock decision depends on the layer's
    threshold ``λ_i``, not on the bucket alone.
    """

    __slots__ = ("key", "yes", "no")

    def __init__(self) -> None:
        self.key: object | None = None
        self.yes: int = 0
        self.no: int = 0

    # ------------------------------------------------------------------ API
    def insert(self, key: object, value: int = 1) -> None:
        """Insert ``<key, value>`` following the voting + replacement rules."""
        if value <= 0:
            raise ValueError("inserted value must be positive")
        if self.key is None:
            # An empty bucket adopts the first key directly (equivalent to a
            # negative vote followed by an immediate replacement).
            self.key = key
            self.yes = value
            self.no = 0
            return
        if self.key == key:
            self.yes += value
            return
        self.no += value
        if self.no >= self.yes:
            self.key = key
            self.yes, self.no = self.no, self.yes

    def query(self, key: object) -> BucketQueryResult:
        """Estimate the value sum of ``key`` with its Maximum Possible Error."""
        if self.key == key:
            return BucketQueryResult(estimate=self.yes, mpe=self.no)
        return BucketQueryResult(estimate=self.no, mpe=self.no)

    # ------------------------------------------------------------- helpers
    @property
    def is_empty(self) -> bool:
        """True when the bucket has never absorbed any value."""
        return self.key is None and self.yes == 0 and self.no == 0

    @property
    def total_value(self) -> int:
        """Total value absorbed by this bucket (``YES + NO``)."""
        return self.yes + self.no

    def clear(self) -> None:
        """Reset the bucket to its initial empty state."""
        self.key = None
        self.yes = 0
        self.no = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ErrorSensibleBucket(key={self.key!r}, yes={self.yes}, no={self.no})"

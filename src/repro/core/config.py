"""Layer configuration: the Double Exponential Control schedule (§3.2).

ReliableSketch has ``d`` layers.  Layer ``i`` (1-indexed) holds

* ``w_i = ceil(W (R_w − 1) / R_w^i)`` Error-Sensible buckets, and
* a lock threshold ``λ_i = Λ (R_λ − 1) / R_λ^i``.

Both sequences decrease geometrically; their products sum to roughly ``W`` and
``Λ`` respectively.  The paper proves (Theorem 4) that with this schedule the
probability that any key escapes all ``d`` layers decays double
exponentially in ``d``.

Two sizing modes are supported, matching §3.2 "Parameter Configurations":

* **From (N, Λ)** — the recommended practical sizing
  ``W = (R_w R_λ)^2 / ((R_w−1)(R_λ−1)) · N/Λ``.
* **From a memory budget** — derive ``Λ`` from the bucket count by the
  inverse formula, exactly what the paper does when "the memory size is given
  without a given Λ".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.metrics.memory import RELIABLE_BUCKET


#: Paper defaults (§6.1.1): R_w = 2, R_λ = 2.5, d ≥ 7, 20% of memory for the
#: mice filter, 2-bit filter counters.
DEFAULT_R_W = 2.0
DEFAULT_R_LAMBDA = 2.5
DEFAULT_DEPTH = 12
MIN_RECOMMENDED_DEPTH = 7
DEFAULT_MICE_FILTER_FRACTION = 0.20
DEFAULT_MICE_FILTER_BITS = 2
DEFAULT_MICE_FILTER_ARRAYS = 2


def _fit_filter_bits(requested_bits: int, tolerance: float) -> int:
    """Shrink the mice-filter counter width so its cap fits the error budget.

    The 2-bit default (cap 3) is tuned for the paper's Λ = 25; with a very
    tight tolerance a cap of 3 would consume most of the budget, so the
    counter width is reduced until the cap is at most a quarter of Λ (never
    below 1 bit).
    """
    bits = max(1, requested_bits)
    while bits > 1 and ((1 << bits) - 1) > tolerance / 4.0:
        bits -= 1
    return bits


def recommended_total_buckets(total_value: float, tolerance: float,
                              r_w: float = DEFAULT_R_W,
                              r_lambda: float = DEFAULT_R_LAMBDA) -> int:
    """Practical recommended ``W`` for a stream of total value ``N`` (§3.2)."""
    if total_value <= 0 or tolerance <= 0:
        raise ValueError("total_value and tolerance must be positive")
    factor = (r_w * r_lambda) ** 2 / ((r_w - 1.0) * (r_lambda - 1.0))
    return max(1, math.ceil(factor * total_value / tolerance))


def theoretical_total_buckets(total_value: float, tolerance: float,
                              r_w: float = DEFAULT_R_W,
                              r_lambda: float = DEFAULT_R_LAMBDA) -> int:
    """The large-constant ``W`` used in the proofs (Theorem 4)."""
    if total_value <= 0 or tolerance <= 0:
        raise ValueError("total_value and tolerance must be positive")
    factor = 4.0 * (r_w * r_lambda) ** 6 / ((r_w - 1.0) * (r_lambda - 1.0))
    return max(1, math.ceil(factor * total_value / tolerance))


def tolerance_for_buckets(total_value: float, total_buckets: int,
                          r_w: float = DEFAULT_R_W,
                          r_lambda: float = DEFAULT_R_LAMBDA) -> float:
    """Derive Λ when only a memory budget (bucket count) is given (§3.2)."""
    if total_value <= 0 or total_buckets <= 0:
        raise ValueError("total_value and total_buckets must be positive")
    factor = (r_w * r_lambda) ** 2 / ((r_w - 1.0) * (r_lambda - 1.0))
    return factor * total_value / total_buckets


@dataclass(frozen=True)
class LayerSpec:
    """Geometry of one layer: its width and lock threshold.

    A threshold of 0 is legal and meaningful: such a layer adds nothing to
    any key's error (its buckets lock immediately) and only serves to catch
    keys in empty or matching buckets, which is exactly the role of the
    deepest layers in the double-exponential schedule.
    """

    index: int
    width: int
    threshold: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("layer width must be positive")
        if self.threshold < 0:
            raise ValueError("layer threshold must be non-negative")


@dataclass(frozen=True)
class ReliableConfig:
    """Complete static configuration of a ReliableSketch instance."""

    layers: tuple[LayerSpec, ...]
    tolerance: float
    r_w: float
    r_lambda: float
    mice_filter_fraction: float
    mice_filter_bits: int
    mice_filter_arrays: int
    mice_filter_bytes: float

    # ------------------------------------------------------------ factories
    @classmethod
    def build(
        cls,
        total_buckets: int,
        tolerance: float,
        depth: int = DEFAULT_DEPTH,
        r_w: float = DEFAULT_R_W,
        r_lambda: float = DEFAULT_R_LAMBDA,
        mice_filter_fraction: float = 0.0,
        mice_filter_bits: int = DEFAULT_MICE_FILTER_BITS,
        mice_filter_arrays: int = DEFAULT_MICE_FILTER_ARRAYS,
        mice_filter_bytes: float = 0.0,
        threshold_budget: float | None = None,
    ) -> "ReliableConfig":
        """Construct the layer schedule for ``total_buckets`` buckets.

        ``threshold_budget`` is the error mass distributed over the layer
        thresholds; it defaults to ``tolerance`` but is reduced by the mice
        filter cap when a filter is enabled, so that the worst-case error
        (filter cap + Σ λ_i) never exceeds Λ.  Thresholds are floored, so
        deep layers may have threshold 0 (see :class:`LayerSpec`); the sum
        of thresholds is therefore strictly below the budget.
        """
        if total_buckets <= 0:
            raise ValueError("total_buckets must be positive")
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if depth <= 0:
            raise ValueError("depth must be positive")
        if r_w <= 1.0 or r_lambda <= 1.0:
            raise ValueError("R_w and R_lambda must be greater than 1")
        if threshold_budget is None:
            threshold_budget = tolerance
        if threshold_budget <= 0:
            raise ValueError("threshold budget must be positive")

        layers: list[LayerSpec] = []
        for i in range(1, depth + 1):
            width = math.ceil(total_buckets * (r_w - 1.0) / (r_w ** i))
            threshold = math.floor(threshold_budget * (r_lambda - 1.0) / (r_lambda ** i))
            if width <= 0:
                break
            layers.append(LayerSpec(index=i, width=width, threshold=max(0, threshold)))
        if not layers:
            layers.append(LayerSpec(index=1, width=total_buckets, threshold=max(1, int(threshold_budget))))
        return cls(
            layers=tuple(layers),
            tolerance=tolerance,
            r_w=r_w,
            r_lambda=r_lambda,
            mice_filter_fraction=mice_filter_fraction,
            mice_filter_bits=mice_filter_bits,
            mice_filter_arrays=mice_filter_arrays,
            mice_filter_bytes=mice_filter_bytes,
        )

    @classmethod
    def from_stream_statistics(
        cls,
        total_value: float,
        tolerance: float,
        depth: int = DEFAULT_DEPTH,
        r_w: float = DEFAULT_R_W,
        r_lambda: float = DEFAULT_R_LAMBDA,
        use_mice_filter: bool = True,
        mice_filter_fraction: float = DEFAULT_MICE_FILTER_FRACTION,
    ) -> "ReliableConfig":
        """Size the sketch from the stream's total value ``N`` and Λ (§3.2)."""
        total_buckets = recommended_total_buckets(total_value, tolerance, r_w, r_lambda)
        bucket_bytes = RELIABLE_BUCKET.bytes_for(total_buckets)
        filter_bytes = 0.0
        fraction = 0.0
        threshold_budget = tolerance
        filter_bits = DEFAULT_MICE_FILTER_BITS
        if use_mice_filter:
            fraction = mice_filter_fraction
            filter_bytes = bucket_bytes * fraction / (1.0 - fraction)
            filter_bits = _fit_filter_bits(DEFAULT_MICE_FILTER_BITS, tolerance)
            threshold_budget = max(1.0, tolerance - ((1 << filter_bits) - 1))
        return cls.build(
            total_buckets=total_buckets,
            tolerance=tolerance,
            depth=depth,
            r_w=r_w,
            r_lambda=r_lambda,
            mice_filter_fraction=fraction,
            mice_filter_bits=filter_bits,
            mice_filter_bytes=filter_bytes,
            threshold_budget=threshold_budget,
        )

    @classmethod
    def from_memory(
        cls,
        memory_bytes: float,
        tolerance: float | None = None,
        total_value: float | None = None,
        depth: int = DEFAULT_DEPTH,
        r_w: float = DEFAULT_R_W,
        r_lambda: float = DEFAULT_R_LAMBDA,
        use_mice_filter: bool = True,
        mice_filter_fraction: float = DEFAULT_MICE_FILTER_FRACTION,
        mice_filter_bits: int = DEFAULT_MICE_FILTER_BITS,
        mice_filter_arrays: int = DEFAULT_MICE_FILTER_ARRAYS,
    ) -> "ReliableConfig":
        """Size the sketch from a memory budget, the paper's usual mode.

        The mice filter takes ``mice_filter_fraction`` of the budget (20 % by
        default, §6.1.1); the rest is converted into Error-Sensible buckets.
        If ``tolerance`` is omitted, ``total_value`` (an estimate of the
        stream's N) must be given so Λ can be derived by the inverse sizing
        formula.
        """
        if memory_bytes <= 0:
            raise ValueError("memory budget must be positive")
        fraction = mice_filter_fraction if use_mice_filter else 0.0
        filter_bytes = memory_bytes * fraction
        bucket_bytes = memory_bytes - filter_bytes
        total_buckets = RELIABLE_BUCKET.entries_for(bucket_bytes)
        if tolerance is None:
            if total_value is None:
                raise ValueError("provide tolerance or total_value to derive it")
            tolerance = tolerance_for_buckets(total_value, total_buckets, r_w, r_lambda)
        threshold_budget = tolerance
        if use_mice_filter:
            mice_filter_bits = _fit_filter_bits(mice_filter_bits, tolerance)
            threshold_budget = max(1.0, tolerance - ((1 << mice_filter_bits) - 1))
        return cls.build(
            total_buckets=total_buckets,
            tolerance=tolerance,
            depth=depth,
            r_w=r_w,
            r_lambda=r_lambda,
            mice_filter_fraction=fraction,
            mice_filter_bits=mice_filter_bits,
            mice_filter_arrays=mice_filter_arrays,
            mice_filter_bytes=filter_bytes,
            threshold_budget=threshold_budget,
        )

    # ------------------------------------------------------------ properties
    @property
    def depth(self) -> int:
        """Number of bucket layers ``d``."""
        return len(self.layers)

    @property
    def total_buckets(self) -> int:
        """Total Error-Sensible buckets across all layers."""
        return sum(layer.width for layer in self.layers)

    @property
    def widths(self) -> tuple[int, ...]:
        """Layer widths ``w_1 ... w_d``."""
        return tuple(layer.width for layer in self.layers)

    @property
    def thresholds(self) -> tuple[int, ...]:
        """Layer lock thresholds ``λ_1 ... λ_d``."""
        return tuple(layer.threshold for layer in self.layers)

    @property
    def threshold_sum(self) -> int:
        """``Σ λ_i`` — the worst-case in-structure error (≤ Λ by construction)."""
        return sum(layer.threshold for layer in self.layers)

    @property
    def bucket_bytes(self) -> float:
        """Memory consumed by the bucket layers."""
        return RELIABLE_BUCKET.bytes_for(self.total_buckets)

    @property
    def memory_bytes(self) -> float:
        """Total memory: bucket layers plus the mice filter."""
        return self.bucket_bytes + self.mice_filter_bytes

    @property
    def use_mice_filter(self) -> bool:
        """Whether the configuration reserves memory for a mice filter."""
        return self.mice_filter_bytes > 0

    def describe(self) -> dict:
        """Dictionary summary used by experiment reports."""
        return {
            "depth": self.depth,
            "widths": list(self.widths),
            "thresholds": list(self.thresholds),
            "tolerance": self.tolerance,
            "r_w": self.r_w,
            "r_lambda": self.r_lambda,
            "mice_filter_bytes": self.mice_filter_bytes,
            "memory_bytes": self.memory_bytes,
        }

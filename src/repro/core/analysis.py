"""Closed-form theoretical results of §4 (Theorems 2-5) and Table 1.

These functions implement the paper's formulas directly so that:

* the complexity-comparison table (Table 1) can be regenerated numerically,
* the sizing recommendations (Theorem 4: the proof-grade ``W``, the depth
  ``d`` solving the double-exponential equation, the emergency-layer size
  ``Δ₂ ln(1/Δ)``) are available programmatically, and
* the property tests can check that the implementation's observed behaviour
  (e.g. per-layer decay of settled items) is consistent with the predicted
  double-exponential schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import DEFAULT_R_LAMBDA, DEFAULT_R_W


# --------------------------------------------------------------------------
# Theorem 4 constants and sizing
# --------------------------------------------------------------------------
def delta1_constant(r_w: float = DEFAULT_R_W, r_lambda: float = DEFAULT_R_LAMBDA) -> float:
    """``Δ₁ = 2 R_w² R_λ² (R_λ − 1)`` from Theorem 4."""
    return 2.0 * (r_w ** 2) * (r_lambda ** 2) * (r_lambda - 1.0)


def delta2_constant(r_w: float = DEFAULT_R_W, r_lambda: float = DEFAULT_R_LAMBDA) -> float:
    """``Δ₂ = 6 R_w³ R_λ⁴`` from Theorem 4."""
    return 6.0 * (r_w ** 3) * (r_lambda ** 4)


def emergency_layer_capacity(delta: float, r_w: float = DEFAULT_R_W,
                             r_lambda: float = DEFAULT_R_LAMBDA) -> int:
    """Size ``Δ₂ ln(1/Δ)`` of the SpaceSaving (d+1)-th layer (Theorem 4)."""
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must be in (0, 1)")
    return max(1, math.ceil(delta2_constant(r_w, r_lambda) * math.log(1.0 / delta)))


def required_depth(total_value: float, tolerance: float, delta: float,
                   r_w: float = DEFAULT_R_W, r_lambda: float = DEFAULT_R_LAMBDA,
                   max_depth: int = 64) -> int:
    """Smallest integer depth ``d`` satisfying Theorem 4's equation.

    Theorem 4 defines ``d`` as the root of
    ``R_λ^d / (R_w R_λ)^(2^d + d) = Δ₁ (Λ/N) ln(1/Δ)``.
    The left-hand side decreases (double exponentially) in ``d``, so the
    smallest integer ``d`` for which it drops to or below the right-hand side
    is the depth that delivers the overall confidence ``1 − Δ``.
    """
    if total_value <= 0 or tolerance <= 0:
        raise ValueError("total_value and tolerance must be positive")
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must be in (0, 1)")
    target = delta1_constant(r_w, r_lambda) * (tolerance / total_value) * math.log(1.0 / delta)
    base = r_w * r_lambda
    for depth in range(1, max_depth + 1):
        # Compute in log space: the raw value underflows for modest depths.
        log_lhs = depth * math.log(r_lambda) - (2 ** depth + depth) * math.log(base)
        if log_lhs <= math.log(target) if target > 0 else False:
            return depth
    return max_depth


def failure_probability_upper_bound(depth: int, r_w: float = DEFAULT_R_W,
                                    r_lambda: float = DEFAULT_R_LAMBDA) -> float:
    """Heuristic upper bound on the escape probability after ``depth`` layers.

    §3.2 ("Key Technique II") summarises the analysis as: with geometric
    widths and thresholds the probability that a key survives ``d`` layers is
    roughly ``(R_w R_λ)^−(2^d − 1)`` — a double-exponential decay — compared
    with ``2^−d`` for the naive halving argument.
    """
    if depth <= 0:
        raise ValueError("depth must be positive")
    base = r_w * r_lambda
    exponent = (2 ** depth) - 1
    # Guard against underflow for large depths.
    log_p = -exponent * math.log(base)
    if log_p < -700:
        return 0.0
    return math.exp(log_p)


# --------------------------------------------------------------------------
# Complexity expressions (Table 1)
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class ComplexityRow:
    """One row of Table 1: asymptotic behaviour of a sketch family."""

    family: str
    overall_confidence: str
    time: str
    space: str
    compatibility: str
    time_estimate: float
    space_estimate: float


def _l2_norm_estimate(total_value: float, distinct_keys: float) -> float:
    """Crude N₂ estimate assuming the mass is spread over the distinct keys."""
    if distinct_keys <= 0:
        return total_value
    return total_value / math.sqrt(distinct_keys)


def complexity_table(
    total_value: float,
    tolerance: float,
    delta: float,
    distinct_keys: float | None = None,
    individual_delta: float | None = None,
) -> list[ComplexityRow]:
    """Numeric instantiation of Table 1 for a concrete workload.

    ``individual_delta`` is the per-key failure probability a counter-based
    sketch must target to reach overall confidence ``1 − Δ`` over ``N`` keys
    (``δ = Δ / N_keys``); by default it is derived from ``distinct_keys``.
    """
    if distinct_keys is None:
        distinct_keys = max(1.0, total_value / 25.0)
    if individual_delta is None:
        individual_delta = max(1e-300, delta / distinct_keys)
    n_over_lambda = total_value / tolerance
    ln_inv_delta_small = math.log(1.0 / individual_delta)
    ln_inv_delta = math.log(1.0 / delta)
    n2 = _l2_norm_estimate(total_value, distinct_keys)

    rows = [
        ComplexityRow(
            family="Counter-based (L1)",
            overall_confidence="(1 - delta)^N",
            time="O(ln(1/delta))",
            space="O(N/Lambda * ln(1/delta))",
            compatibility="High",
            time_estimate=ln_inv_delta_small,
            space_estimate=n_over_lambda * ln_inv_delta_small,
        ),
        ComplexityRow(
            family="Counter-based (L2)",
            overall_confidence="(1 - delta)^N",
            time="O(ln(1/delta))",
            space="O(N2^2/Lambda^2 * ln(1/delta))",
            compatibility="High",
            time_estimate=ln_inv_delta_small,
            space_estimate=(n2 ** 2 / tolerance ** 2) * ln_inv_delta_small,
        ),
        ComplexityRow(
            family="Heap-based",
            overall_confidence="100%",
            time="O(ln(N/Lambda))",
            space="O(N/Lambda)",
            compatibility="Low",
            time_estimate=math.log(max(2.0, n_over_lambda)),
            space_estimate=n_over_lambda,
        ),
        ComplexityRow(
            family="ReliableSketch (Ours)",
            overall_confidence="1 - Delta",
            time="O(1 + Delta ln ln(N/Lambda))",
            space="O(N/Lambda + ln(1/Delta))",
            compatibility="High",
            time_estimate=1.0 + delta * math.log(max(2.0, math.log(max(2.0, n_over_lambda)))),
            space_estimate=n_over_lambda + ln_inv_delta,
        ),
    ]
    return rows


def amortized_time_bound(total_value: float, tolerance: float, delta: float) -> float:
    """Theorem 5's amortized insertion cost ``O(1 + Δ ln ln(N/Λ))``."""
    if total_value <= 0 or tolerance <= 0:
        raise ValueError("total_value and tolerance must be positive")
    inner = max(2.0, total_value / tolerance)
    return 1.0 + delta * math.log(max(2.0, math.log(inner)))


def space_bound(total_value: float, tolerance: float, delta: float) -> float:
    """Theorem 5's space bound ``O(N/Λ + ln(1/Δ))`` (in buckets)."""
    if total_value <= 0 or tolerance <= 0:
        raise ValueError("total_value and tolerance must be positive")
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must be in (0, 1)")
    return total_value / tolerance + math.log(1.0 / delta)


# --------------------------------------------------------------------------
# Double-exponential schedule predictions (used by property tests)
# --------------------------------------------------------------------------
def predicted_escape_fractions(depth: int, r_w: float = DEFAULT_R_W,
                               r_lambda: float = DEFAULT_R_LAMBDA) -> list[float]:
    """Predicted fraction of mass reaching each layer (1-indexed list).

    Layer 1 receives everything; layer ``i`` receives roughly
    ``(R_w R_λ)^-(2^(i-1) − 1)`` of the mass — the ``γ_i`` denominator of the
    analysis.  Used to sanity-check the observed per-layer settled counts.
    """
    base = r_w * r_lambda
    fractions = []
    for i in range(1, depth + 1):
        exponent = (2 ** (i - 1)) - 1
        log_f = -exponent * math.log(base)
        fractions.append(math.exp(log_f) if log_f > -700 else 0.0)
    return fractions

"""ReliableSketch (§3.2): multi-layer error-controlled stream summary.

The sketch stacks ``d`` layers of Error-Sensible buckets whose widths and
lock thresholds both shrink geometrically (Double Exponential Control).  An
item is inserted layer by layer; a bucket whose ``NO`` counter would exceed
its layer threshold is *locked* and passes only the excess value to the next
layer, so no bucket's Maximum Possible Error ever exceeds its threshold and
therefore no key's total error can exceed ``Σ λ_i ≤ Λ`` — unless the item
escapes all ``d`` layers, which the analysis (§4) shows happens with
probability at most Δ.

Optional components (both from §3.3):

* a **mice filter** in front of layer 1 (enabled by default, as in §6.1.1);
* an **emergency store** behind layer ``d`` (disabled by default to match the
  paper's accuracy evaluation, which counts failures instead).

Batch-first datapath
--------------------

Layers are stored struct-of-arrays (:class:`repro.core.bucket.BucketArrayLayer`:
a Python key list, its interned ``int64`` id mirror, and NumPy ``int64``
``YES``/``NO`` arrays), and the sketch exposes ``insert_batch`` /
``query_batch`` alongside the scalar API.  Because lock/replace decisions
are order-dependent *within a layer*, the batch insert mirrors the hardware
pipeline: all survivors of layer ``i`` (in stream order) are hashed for
layer ``i+1`` in one vectorized call — keeping hash-call accounting
identical to the scalar path — and the order-dependent bucket transitions
of each layer are applied by a conflict-free update kernel
(:mod:`repro.kernels`), bit-identical to replaying the survivors one by
one.  Keys are *interned* into dense integer ids on first contact, so both
the kernels and ``query_batch`` compare candidate keys as plain ``int64``
arrays instead of looping over Python objects; ``query_batch`` retires keys
as soon as their stopping condition (Algorithm 2) fires, exactly like the
scalar :meth:`query_with_error`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.bucket import BucketArrayLayer
from repro.core.config import (
    DEFAULT_DEPTH,
    DEFAULT_R_LAMBDA,
    DEFAULT_R_W,
    ReliableConfig,
)
from repro.core.emergency import EmergencyStore, ExactEmergencyStore
from repro.core.mice_filter import MiceFilter
from repro.hashing import EncodedKeyBatch, HashFamily
from repro.hashing.families import keys_from_arrays, keys_to_arrays
from repro.kernels import resolve_backend
from repro.kernels.interning import KeyInterner
from repro.kernels.scalar import EMPTY_ID, bucket_apply
from repro.sketches.base import Sketch, UnmergeableSketchError


@dataclass(frozen=True)
class QueryResult:
    """Full query answer: estimate, error bound and the layer reached."""

    estimate: int
    mpe: int
    layers_visited: int

    @property
    def lower_bound(self) -> int:
        """Guaranteed lower bound on the true value sum."""
        return max(0, self.estimate - self.mpe)

    @property
    def upper_bound(self) -> int:
        """Guaranteed upper bound on the true value sum."""
        return self.estimate

    def contains(self, truth: int) -> bool:
        """Whether the sensed interval covers ``truth`` (Figure 17)."""
        return self.lower_bound <= truth <= self.upper_bound


class ReliableSketch(Sketch):
    """The ReliableSketch stream summary.

    Construct either from an explicit :class:`ReliableConfig`, from stream
    statistics (:meth:`from_stream`), or from a memory budget
    (:meth:`from_memory`) the way the paper's experiments do.
    """

    name = "Ours"
    #: Layer tables, candidate keys (via the reversible key codec of
    #: ``repro.hashing.families``), filter counters and failure statistics
    #: all round-trip through named arrays — see :meth:`state_snapshot`.
    #: ``merge`` stays unsupported: lock/replace decisions are
    #: order-dependent, so two independently-fed sketches have no lossless
    #: combination.  Snapshots alone are what remote ingest (each key's whole
    #: history reaches one worker) and the serving layer need.
    snapshotable = True

    def __init__(
        self,
        config: ReliableConfig,
        seed: int = 0,
        emergency: EmergencyStore | None = None,
        use_emergency: bool = False,
        kernel: str | None = None,
        max_interned_keys: int | None = None,
        interner_eviction: str | None = None,
    ) -> None:
        self.config = config
        self.seed = seed
        self._family = HashFamily(seed)
        self._hashes = [self._family.draw(layer.width) for layer in config.layers]
        self._layers = [BucketArrayLayer(layer.width) for layer in config.layers]
        self._thresholds = [layer.threshold for layer in config.layers]
        # Lock comparisons reduce exactly to int64 arithmetic against the
        # threshold floors (see repro.kernels.scalar), which is what both
        # the scalar path and every kernel backend use.
        self._lam_floors = [int(threshold) for threshold in self._thresholds]
        self._kernel = resolve_backend(kernel)
        # Key interning: dense integer ids shared by all layers, assigned on
        # first contact; the kernels' changed-bucket sync reads the inverse
        # map (`id_to_key`).  ``max_interned_keys`` bounds it against
        # adversarial key spaces (KeyInternerOverflowError past the bound,
        # or LRU id recycling with ``interner_eviction="lru"``).
        self._interner = KeyInterner(
            max_keys=max_interned_keys, evict=interner_eviction
        )
        self.max_interned_keys = max_interned_keys
        self.interner_eviction = interner_eviction
        self._filter: MiceFilter | None = None
        if config.use_mice_filter:
            self._filter = MiceFilter(
                config.mice_filter_bytes,
                counter_bits=config.mice_filter_bits,
                arrays=config.mice_filter_arrays,
                seed=seed + 1,
                kernel=self._kernel,
            )
        self.use_emergency = use_emergency or emergency is not None
        self._emergency: EmergencyStore | None = emergency
        if self.use_emergency and self._emergency is None:
            self._emergency = ExactEmergencyStore()
        # --- statistics -------------------------------------------------
        #: Number of insert operations whose value was not fully absorbed.
        self.insert_failures = 0
        #: Total value that escaped all layers (dropped or sent to emergency).
        self.failed_value = 0
        #: items_settled_at[i] counts inserts that terminated in layer i+1
        #: (index depth means "filter only"); used by Figure 19a.
        self.inserts_settled_per_layer = [0] * (config.depth + 1)
        self._insert_count = 0
        self._query_count = 0

    # ------------------------------------------------------------ factories
    @classmethod
    def from_stream(
        cls,
        total_value: float,
        tolerance: float,
        depth: int = DEFAULT_DEPTH,
        r_w: float = DEFAULT_R_W,
        r_lambda: float = DEFAULT_R_LAMBDA,
        use_mice_filter: bool = True,
        seed: int = 0,
        use_emergency: bool = False,
        kernel: str | None = None,
        max_interned_keys: int | None = None,
        interner_eviction: str | None = None,
    ) -> "ReliableSketch":
        """Size the sketch from the stream's total value ``N`` and Λ."""
        config = ReliableConfig.from_stream_statistics(
            total_value=total_value,
            tolerance=tolerance,
            depth=depth,
            r_w=r_w,
            r_lambda=r_lambda,
            use_mice_filter=use_mice_filter,
        )
        return cls(config, seed=seed, use_emergency=use_emergency, kernel=kernel,
                   max_interned_keys=max_interned_keys,
                   interner_eviction=interner_eviction)

    @classmethod
    def from_memory(
        cls,
        memory_bytes: float,
        tolerance: float | None = None,
        total_value: float | None = None,
        depth: int = DEFAULT_DEPTH,
        r_w: float = DEFAULT_R_W,
        r_lambda: float = DEFAULT_R_LAMBDA,
        use_mice_filter: bool = True,
        seed: int = 0,
        use_emergency: bool = False,
        kernel: str | None = None,
        max_interned_keys: int | None = None,
        interner_eviction: str | None = None,
    ) -> "ReliableSketch":
        """Size the sketch from a memory budget (the experiments' usual mode).

        When ``tolerance`` is omitted, the paper's default Λ = 25 is used
        unless ``total_value`` is supplied, in which case Λ is derived from
        the sizing formula of §3.2.
        """
        if tolerance is None and total_value is None:
            tolerance = 25.0  # Paper default (§6.1.1).
        config = ReliableConfig.from_memory(
            memory_bytes=memory_bytes,
            tolerance=tolerance,
            total_value=total_value,
            depth=depth,
            r_w=r_w,
            r_lambda=r_lambda,
            use_mice_filter=use_mice_filter,
        )
        return cls(config, seed=seed, use_emergency=use_emergency, kernel=kernel,
                   max_interned_keys=max_interned_keys,
                   interner_eviction=interner_eviction)

    # ------------------------------------------------------------ insertion
    def insert(self, key: object, value: int = 1) -> None:
        """Insert ``<key, value>`` (Algorithm 1, plus filter and emergency)."""
        self._check_insert(value)
        self._insert_count += 1
        remaining = value
        if self._filter is not None:
            remaining = self._filter.absorb(key, remaining)
            if remaining == 0:
                self.inserts_settled_per_layer[self.config.depth] += 1
                return

        for layer_index, (layer, hash_fn, lam_floor) in enumerate(
            zip(self._layers, self._hashes, self._lam_floors)
        ):
            index = hash_fn(key)
            remaining = self._apply_to_bucket(layer, index, key, remaining, lam_floor)
            if remaining is None:
                self.inserts_settled_per_layer[layer_index] += 1
                return

        # Value survived every layer: insertion failure (§3.2).
        self.insert_failures += 1
        self.failed_value += remaining
        if self._emergency is not None:
            self._emergency.insert(key, remaining)

    def _apply_to_bucket(
        self, layer: BucketArrayLayer, index: int, key: object, remaining: int,
        lam_floor: int,
    ) -> int | None:
        """Apply one ``<key, remaining>`` arrival to one bucket (Algorithm 1).

        Returns ``None`` when the value settled in this layer, or the excess
        value to push to the next layer when the bucket's lock triggered.
        The transition itself (:func:`repro.kernels.scalar.bucket_apply`) is
        shared with the update kernels, so the scalar and batch paths cannot
        drift apart; this wrapper adds the interning and the object-key sync.
        """
        item_id = self._interner.intern(key)
        excess, changed = bucket_apply(
            layer.key_ids, layer.yes, layer.no, index, item_id, remaining, lam_floor
        )
        if changed:
            layer.keys[index] = key
        return excess

    def insert_batch(self, keys: Sequence[object], values: Sequence[int] | int | None = None) -> None:
        """Batch insert, bit-identical to scalar inserts in stream order.

        Vectorized: key encoding and interning (once per item) and the
        per-layer hash evaluations — layer ``i`` hashes exactly the items
        that reach layer ``i``, in one call, so hash-call accounting matches
        the scalar path.  The order-dependent mice-filter updates and
        bucket vote/lock/replace transitions run through the dispatched
        conflict-free update kernel (see module docstring).
        """
        batch = EncodedKeyBatch(keys)
        count = len(batch)
        value_array = self._batch_values(values, count)
        self._insert_count += count
        if not count:
            return

        item_ids = self._interner.intern_batch(batch.keys, batch.int_key_array)
        if self._filter is not None:
            remaining = self._filter.absorb_batch(batch, value_array)
            active = np.flatnonzero(remaining > 0)
            self.inserts_settled_per_layer[self.config.depth] += count - len(active)
        else:
            remaining = value_array.copy()
            active = np.arange(count, dtype=np.intp)

        kernel = self._kernel
        id_to_key = self._interner.id_to_key
        for layer_index, (layer, hash_fn, lam_floor) in enumerate(
            zip(self._layers, self._hashes, self._lam_floors)
        ):
            if not active.size:
                return
            sub = batch if len(active) == count else batch.take(active)
            indexes = hash_fn.index_batch(sub)
            survivors, excess, changed = kernel.reliable_layer_update(
                layer.key_ids, layer.yes, layer.no, lam_floor,
                indexes, item_ids[active], remaining[active],
            )
            if changed.size:
                layer_keys = layer.keys
                layer_ids = layer.key_ids
                for bucket in changed.tolist():
                    layer_keys[bucket] = id_to_key[layer_ids[bucket]]
            self.inserts_settled_per_layer[layer_index] += len(active) - len(survivors)
            active = active[survivors]
            remaining[active] = excess

        if active.size:
            # Values that survived every layer: insertion failures (§3.2).
            self.insert_failures += len(active)
            self.failed_value += int(remaining[active].sum())
            if self._emergency is not None:
                key_list = batch.keys
                for item in active.tolist():
                    self._emergency.insert(key_list[item], int(remaining[item]))

    # -------------------------------------------------------------- queries
    def query_with_error(self, key: object) -> QueryResult:
        """Estimate ``f(key)`` together with its Maximum Possible Error.

        Implements Algorithm 2: accumulate layer readings until a stopping
        condition shows the key cannot have reached deeper layers.
        """
        self._query_count += 1
        estimate = 0
        mpe = 0
        if self._filter is not None:
            filtered = self._filter.query(key)
            estimate += filtered
            mpe += filtered

        layers_visited = 0
        for layer, hash_fn, threshold in zip(self._layers, self._hashes, self._thresholds):
            index = hash_fn(key)
            layers_visited += 1
            matches = layer.keys[index] == key
            yes = int(layer.yes[index])
            no = int(layer.no[index])
            estimate += yes if matches else no
            mpe += no
            if no < threshold or yes == no or matches:
                break
        if self._emergency is not None:
            estimate += self._emergency.query(key)
        return QueryResult(estimate=estimate, mpe=mpe, layers_visited=layers_visited)

    def query(self, key: object) -> int:
        """Estimated value sum of ``key`` (the point estimate only)."""
        return self.query_with_error(key).estimate

    def query_batch(self, keys: Sequence[object]) -> np.ndarray:
        """Batch point estimates, bit-identical to scalar :meth:`query` calls.

        Processes the batch layer by layer with vectorized hashing,
        whole-array counter reads and interned-id key matching (no per-key
        Python comparisons); a key retires from the batch as soon as its
        stopping condition (Algorithm 2) fires, so per-layer hash-call
        counts match the scalar path exactly.
        """
        batch = EncodedKeyBatch(keys)
        count = len(batch)
        self._query_count += count
        estimates = np.zeros(count, dtype=np.int64)
        if self._filter is not None:
            estimates += self._filter.query_batch(batch)

        item_ids = self._interner.lookup_batch(batch.keys, batch.int_key_array)
        active = np.arange(count, dtype=np.intp)
        for layer, hash_fn, threshold in zip(self._layers, self._hashes, self._thresholds):
            if not active.size:
                break
            sub = batch if len(active) == count else batch.take(active)
            indexes = hash_fn.index_batch(sub)
            yes_readings = layer.yes[indexes]
            no_readings = layer.no[indexes]
            matches = layer.key_ids[indexes] == item_ids[active]
            estimates[active] += np.where(matches, yes_readings, no_readings)
            stopped = (no_readings < threshold) | (yes_readings == no_readings) | matches
            active = active[~stopped]

        if self._emergency is not None:
            for position, key in enumerate(batch.keys):
                estimates[position] += self._emergency.query(key)
        return estimates

    def sensed_error(self, key: object) -> int:
        """The Maximum Possible Error the sketch reports for ``key``."""
        return self.query_with_error(key).mpe

    # ------------------------------------------------------------- snapshots
    def _check_no_emergency(self, operation: str) -> None:
        if self._emergency is not None:
            raise UnmergeableSketchError(
                f"ReliableSketch with an emergency store does not support "
                f"{operation}: the store holds an exact per-key dict that has "
                "no array form (disable use_emergency to snapshot)"
            )

    def state_snapshot(self) -> dict[str, np.ndarray]:
        """Whole mutable state as named arrays — layers, filter, statistics.

        Per layer: the ``YES``/``NO`` counter arrays plus the candidate keys
        serialized through the reversible key codec
        (:func:`repro.hashing.families.keys_to_arrays` — type tags, encoded
        lengths and one byte blob), so arbitrary ``int``/``str``/``bytes``
        keys survive the array-only snapshot contract and the distributed
        wire format unchanged.  ``filter_tables`` carries the mice-filter
        counters, ``settled``/``stats`` the failure and operation accounting.
        Hash-call counters are measurement state, not sketch state, and are
        deliberately excluded (exactly as for CM/CU/Count).

        A replica built with the same configuration and seed restores into a
        sketch that answers every query — estimates *and* sensed error
        bounds — bit-identically to the donor, and that continues ingesting
        identically (interned ids are reassigned locally; they are
        representation, not state).
        """
        self._check_no_emergency("state_snapshot()")
        state: dict[str, np.ndarray] = {}
        for index, layer in enumerate(self._layers):
            key_arrays = keys_to_arrays(layer.keys)
            state[f"layer{index}_yes"] = layer.yes.copy()
            state[f"layer{index}_no"] = layer.no.copy()
            state[f"layer{index}_key_tags"] = key_arrays["tags"]
            state[f"layer{index}_key_lengths"] = key_arrays["lengths"]
            state[f"layer{index}_key_blob"] = key_arrays["blob"]
        if self._filter is not None:
            state["filter_tables"] = self._filter.state_snapshot()
        state["settled"] = np.asarray(self.inserts_settled_per_layer, dtype=np.int64)
        state["stats"] = np.asarray(
            [self.insert_failures, self.failed_value, self._insert_count, self._query_count],
            dtype=np.int64,
        )
        return state

    def state_restore(self, state: dict[str, np.ndarray]) -> None:
        """Inverse of :meth:`state_snapshot` (validate first, then commit).

        Every array is shape-checked and the key blobs decoded *before* any
        sketch state changes, so a malformed snapshot raises ``ValueError``
        (or ``KeyInternerOverflowError`` for a bounded interner) and leaves
        the sketch untouched.  Restored candidate keys are interned into a
        *fresh* id space that replaces this instance's interner at commit —
        ids are local by construction, so donor and replica agree on every
        observable answer without sharing an interner, and restoring into a
        previously-used sketch does not accumulate stale ids.
        """
        self._check_no_emergency("state_restore()")
        decoded = []
        interner = KeyInterner(
            max_keys=self.max_interned_keys, evict=self.interner_eviction
        )
        for index, layer in enumerate(self._layers):
            width = (len(layer),)
            yes = self._check_snapshot_shape(state, f"layer{index}_yes", width)
            no = self._check_snapshot_shape(state, f"layer{index}_no", width)
            tags = self._check_snapshot_shape(state, f"layer{index}_key_tags", width)
            lengths = self._check_snapshot_shape(state, f"layer{index}_key_lengths", width)
            try:
                blob = state[f"layer{index}_key_blob"]
            except KeyError:
                raise ValueError(
                    f"snapshot is missing the 'layer{index}_key_blob' array"
                ) from None
            keys = keys_from_arrays(tags, lengths, blob)
            key_ids = np.full(len(keys), EMPTY_ID, dtype=np.int64)
            for position, key in enumerate(keys):
                if key is not None:
                    key_ids[position] = interner.intern(key)
            decoded.append((yes, no, keys, key_ids))
        settled = self._check_snapshot_shape(state, "settled", (self.config.depth + 1,))
        stats = self._check_snapshot_shape(state, "stats", (4,))
        filter_tables = None
        if self._filter is not None:
            filter_tables = self._check_snapshot_shape(
                state, "filter_tables", self._filter.state_snapshot().shape
            )

        self._interner = interner
        for layer, (yes, no, keys, key_ids) in zip(self._layers, decoded):
            layer.yes = yes.astype(np.int64, copy=True)
            layer.no = no.astype(np.int64, copy=True)
            layer.keys = list(keys)
            layer.key_ids = key_ids
        if filter_tables is not None:
            self._filter.state_restore(filter_tables)
        self.inserts_settled_per_layer = [int(value) for value in settled]
        self.insert_failures = int(stats[0])
        self.failed_value = int(stats[1])
        self._insert_count = int(stats[2])
        self._query_count = int(stats[3])

    # --------------------------------------------------------- introspection
    @property
    def depth(self) -> int:
        """Number of bucket layers."""
        return self.config.depth

    @property
    def tolerance(self) -> float:
        """The configured error tolerance Λ."""
        return self.config.tolerance

    @property
    def has_mice_filter(self) -> bool:
        """Whether the mice filter is enabled."""
        return self._filter is not None

    @property
    def mice_filter(self) -> MiceFilter | None:
        """The mice filter instance (None when disabled)."""
        return self._filter

    @property
    def emergency(self) -> EmergencyStore | None:
        """The emergency store instance (None when disabled)."""
        return self._emergency

    @property
    def guarantee_intact(self) -> bool:
        """True while no insertion failure has occurred (zero-outlier regime).

        With the emergency store enabled the guarantee also survives
        failures, because the overflow value is still recorded exactly.
        """
        return self.insert_failures == 0 or self._emergency is not None

    def layer_occupancy(self) -> list[float]:
        """Fraction of non-empty buckets per layer (diagnostics)."""
        return [layer.occupied_count() / len(layer) for layer in self._layers]

    def locked_buckets(self) -> list[int]:
        """Number of locked buckets per layer (NO at threshold, YES above it)."""
        return [
            layer.locked_count(threshold)
            for layer, threshold in zip(self._layers, self._thresholds)
        ]

    def settled_layer_of(self, key: object) -> int:
        """The deepest layer a query for ``key`` needs to visit (1-indexed)."""
        return self.query_with_error(key).layers_visited

    def memory_bytes(self) -> float:
        total = self.config.bucket_bytes
        if self._filter is not None:
            total += self._filter.memory_bytes()
        return total

    def hash_calls(self) -> int:
        total = self._family.total_calls()
        if self._filter is not None:
            total += self._filter.hash_calls()
        return total

    def reset_hash_calls(self) -> None:
        self._family.reset_counters()
        if self._filter is not None:
            self._filter.reset_hash_calls()

    def operation_counts(self) -> tuple[int, int]:
        """Number of insert and query operations performed so far."""
        return self._insert_count, self._query_count

    def parameters(self) -> dict:
        params = self.config.describe()
        params["use_mice_filter"] = self.has_mice_filter
        params["use_emergency"] = self._emergency is not None
        return params

"""ReliableSketch — the paper's primary contribution.

The public API is :class:`ReliableSketch` plus the configuration and
analysis helpers:

* :class:`repro.core.bucket.ErrorSensibleBucket` — the election-based basic
  unit whose ``NO`` counter bounds the collision error (§3.1).
* :class:`repro.core.config.ReliableConfig` — the double-exponential layer
  schedule (widths ``w_i`` and lock thresholds ``λ_i``, §3.2).
* :class:`repro.core.mice_filter.MiceFilter` — the CU-based first-layer
  replacement that absorbs mice keys (§3.3).
* :class:`repro.core.emergency.EmergencyStore` — overflow handling for
  insertion failures (§3.3).
* :mod:`repro.core.analysis` — the closed-form bounds of §4 (Theorems 4-5)
  and the complexity comparison of Table 1.
"""

from repro.core.bucket import ErrorSensibleBucket, BucketQueryResult
from repro.core.config import ReliableConfig, LayerSpec
from repro.core.mice_filter import MiceFilter
from repro.core.emergency import EmergencyStore, ExactEmergencyStore, SpaceSavingEmergencyStore
from repro.core.reliable_sketch import ReliableSketch, QueryResult
from repro.core import analysis

__all__ = [
    "ErrorSensibleBucket",
    "BucketQueryResult",
    "ReliableConfig",
    "LayerSpec",
    "MiceFilter",
    "EmergencyStore",
    "ExactEmergencyStore",
    "SpaceSavingEmergencyStore",
    "ReliableSketch",
    "QueryResult",
    "analysis",
]

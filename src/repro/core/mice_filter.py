"""The mice filter: a saturating CU sketch replacing the first layer (§3.3).

Most keys in a skewed stream are "mice" — their total value is tiny, yet each
of them casts negative votes that push layer-1 buckets towards their lock
threshold.  The accuracy optimisation of §3.3 therefore replaces the first
(largest) layer with a compact CU-style filter whose counters saturate at a
small cap: mice keys are absorbed entirely by the filter, while any value
beyond the cap overflows into the Error-Sensible layers.

The filter counter plays the role of a ``NO`` counter: its reading is both an
estimate contribution and an error contribution, and because it can never
exceed the cap the extra error it introduces is bounded (the paper's
"small, manageable errors").  With 2-bit counters (the evaluation default) a
bucket of the first layer is replaced by a counter 36× narrower.
"""

from __future__ import annotations

import numpy as np

from repro.hashing import EncodedKeyBatch, HashFamily
from repro.kernels import resolve_backend
from repro.kernels.dispatch import KernelBackend
from repro.kernels.scalar import saturating_apply


class MiceFilter:
    """Saturating conservative-update filter in front of the bucket layers.

    Parameters
    ----------
    memory_bytes:
        Memory reserved for the filter (20 % of the sketch budget by default).
    counter_bits:
        Width of each counter; the cap is ``2^bits − 1`` (2 bits → cap 3).
    arrays:
        Number of CU arrays (2 in the evaluation, see Figure 16's
        "2-array mice filter").
    seed:
        Hash-family seed.
    kernel:
        Update-kernel backend for ``absorb_batch`` — a name, a resolved
        :class:`~repro.kernels.dispatch.KernelBackend` (ReliableSketch
        passes its own down so sketch and filter always agree), or ``None``
        for the configured default.
    """

    def __init__(self, memory_bytes: float, counter_bits: int = 2, arrays: int = 2,
                 seed: int = 0, kernel: str | KernelBackend | None = None) -> None:
        if memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if counter_bits <= 0 or counter_bits > 32:
            raise ValueError("counter_bits must be in 1..32")
        if arrays <= 0:
            raise ValueError("arrays must be positive")
        total_counters = max(arrays, int(memory_bytes * 8 // counter_bits))
        self.counter_bits = counter_bits
        self.cap = (1 << counter_bits) - 1
        self.arrays = arrays
        self.width = max(1, total_counters // arrays)
        self._family = HashFamily(seed)
        self._hashes = self._family.draw_many(arrays, self.width)
        self._tables = np.zeros((arrays, self.width), dtype=np.int64)
        if not isinstance(kernel, KernelBackend):
            kernel = resolve_backend(kernel)
        self._kernel = kernel

    # ------------------------------------------------------------------ API
    def absorb(self, key: object, value: int) -> int:
        """Absorb up to ``cap`` units of ``<key, value>``; return the leftover.

        The filter performs a conservative update towards ``min + taken`` so
        that, like CU, it never overestimates more than necessary.  The
        returned leftover (possibly 0) must be inserted into the bucket
        layers by the caller.
        """
        if value <= 0:
            raise ValueError("inserted value must be positive")
        return saturating_apply(
            self._tables, [hash_fn(key) for hash_fn in self._hashes], value, self.cap
        )

    def query(self, key: object) -> int:
        """The filter's contribution to the estimate (and to the MPE)."""
        return int(
            min(row[hash_fn(key)] for row, hash_fn in zip(self._tables, self._hashes))
        )

    def absorb_batch(self, batch: EncodedKeyBatch, values: np.ndarray) -> np.ndarray:
        """Batch :meth:`absorb`: vectorized hashing, kernel-applied updates.

        The saturating conservative update is order-dependent (an item's
        leftover depends on the counters its predecessors left behind), so
        the counter updates go through the conflict-free update kernel,
        which keeps the leftovers bit-identical to scalar absorbs in stream
        order.

        Returns the leftover value of every item as an ``int64`` array.
        """
        if values.size and int(values.min()) <= 0:
            raise ValueError("inserted value must be positive")
        indexes = np.stack([hash_fn.index_batch(batch) for hash_fn in self._hashes])
        return self._kernel.saturating_update(self._tables, indexes, values, self.cap)

    def query_batch(self, batch: EncodedKeyBatch) -> np.ndarray:
        """Batch :meth:`query`: the filter readings of every key, vectorized."""
        readings = np.stack(
            [
                row[hash_fn.index_batch(batch)]
                for row, hash_fn in zip(self._tables, self._hashes)
            ]
        )
        return readings.min(axis=0)

    # ------------------------------------------------------------- helpers
    def state_snapshot(self) -> np.ndarray:
        """The counter matrix — the whole mutable state of the filter (a copy)."""
        return self._tables.copy()

    def state_restore(self, tables: np.ndarray) -> None:
        """Overwrite the counters from a snapshot (shape-validated, copied)."""
        tables = np.asarray(tables)
        if tables.shape != self._tables.shape:
            raise ValueError(
                f"cannot restore mice-filter snapshot: tables have shape "
                f"{tables.shape}, expected {self._tables.shape}"
            )
        self._tables = tables.astype(np.int64, copy=True)

    def memory_bytes(self) -> float:
        """Actual memory used by the filter counters."""
        return self.arrays * self.width * self.counter_bits / 8

    def hash_calls(self) -> int:
        """Hash evaluations performed so far (2 per filtered operation)."""
        return self._family.total_calls()

    def reset_hash_calls(self) -> None:
        """Zero the hash-call counters."""
        self._family.reset_counters()

    def saturation(self) -> float:
        """Fraction of counters at the cap — a diagnostic of filter pressure."""
        total = self._tables.size
        if not total:
            return 0.0
        return int(np.count_nonzero(self._tables >= self.cap)) / total

    def parameters(self) -> dict:
        """Filter geometry for experiment reports."""
        return {
            "arrays": self.arrays,
            "width": self.width,
            "counter_bits": self.counter_bits,
            "cap": self.cap,
        }

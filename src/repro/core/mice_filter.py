"""The mice filter: a saturating CU sketch replacing the first layer (§3.3).

Most keys in a skewed stream are "mice" — their total value is tiny, yet each
of them casts negative votes that push layer-1 buckets towards their lock
threshold.  The accuracy optimisation of §3.3 therefore replaces the first
(largest) layer with a compact CU-style filter whose counters saturate at a
small cap: mice keys are absorbed entirely by the filter, while any value
beyond the cap overflows into the Error-Sensible layers.

The filter counter plays the role of a ``NO`` counter: its reading is both an
estimate contribution and an error contribution, and because it can never
exceed the cap the extra error it introduces is bounded (the paper's
"small, manageable errors").  With 2-bit counters (the evaluation default) a
bucket of the first layer is replaced by a counter 36× narrower.
"""

from __future__ import annotations

import numpy as np

from repro.hashing import EncodedKeyBatch, HashFamily


class MiceFilter:
    """Saturating conservative-update filter in front of the bucket layers.

    Parameters
    ----------
    memory_bytes:
        Memory reserved for the filter (20 % of the sketch budget by default).
    counter_bits:
        Width of each counter; the cap is ``2^bits − 1`` (2 bits → cap 3).
    arrays:
        Number of CU arrays (2 in the evaluation, see Figure 16's
        "2-array mice filter").
    seed:
        Hash-family seed.
    """

    def __init__(self, memory_bytes: float, counter_bits: int = 2, arrays: int = 2,
                 seed: int = 0) -> None:
        if memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if counter_bits <= 0 or counter_bits > 32:
            raise ValueError("counter_bits must be in 1..32")
        if arrays <= 0:
            raise ValueError("arrays must be positive")
        total_counters = max(arrays, int(memory_bytes * 8 // counter_bits))
        self.counter_bits = counter_bits
        self.cap = (1 << counter_bits) - 1
        self.arrays = arrays
        self.width = max(1, total_counters // arrays)
        self._family = HashFamily(seed)
        self._hashes = self._family.draw_many(arrays, self.width)
        self._tables = [[0] * self.width for _ in range(arrays)]
        # Read-only NumPy mirror of the tables for query_batch, rebuilt
        # lazily after absorbs (all mutations go through _absorb_at).
        self._tables_array: np.ndarray | None = None

    # ------------------------------------------------------------------ API
    def absorb(self, key: object, value: int) -> int:
        """Absorb up to ``cap`` units of ``<key, value>``; return the leftover.

        The filter performs a conservative update towards ``min + taken`` so
        that, like CU, it never overestimates more than necessary.  The
        returned leftover (possibly 0) must be inserted into the bucket
        layers by the caller.
        """
        if value <= 0:
            raise ValueError("inserted value must be positive")
        return self._absorb_at([hash_fn(key) for hash_fn in self._hashes], value)

    def _absorb_at(self, indexes: list[int], value: int) -> int:
        """Saturating conservative update at pre-computed per-array indexes.

        Shared verbatim by the scalar and batch absorb paths, so the two
        cannot drift apart; returns the leftover value.
        """
        current = min(table[idx] for table, idx in zip(self._tables, indexes))
        taken = min(value, self.cap - current)
        if taken > 0:
            target = current + taken
            for table, idx in zip(self._tables, indexes):
                if table[idx] < target:
                    table[idx] = target
            self._tables_array = None
        return value - taken

    def query(self, key: object) -> int:
        """The filter's contribution to the estimate (and to the MPE)."""
        return min(table[hash_fn(key)] for table, hash_fn in zip(self._tables, self._hashes))

    def absorb_batch(self, batch: EncodedKeyBatch, values: np.ndarray) -> np.ndarray:
        """Batch :meth:`absorb`: hash vectorized, updates replayed in order.

        The saturating conservative update is order-dependent (an item's
        leftover depends on the counters its predecessors left behind), so
        only the hashing is vectorized; the counter updates run in stream
        order, which keeps the leftovers bit-identical to scalar absorbs.

        Returns the leftover value of every item as an ``int64`` array.
        """
        if values.size and int(values.min()) <= 0:
            raise ValueError("inserted value must be positive")
        index_rows = [hash_fn.index_batch(batch).tolist() for hash_fn in self._hashes]
        leftovers = np.empty(len(batch), dtype=np.int64)
        for position, value in enumerate(values.tolist()):
            leftovers[position] = self._absorb_at(
                [row[position] for row in index_rows], value
            )
        return leftovers

    def query_batch(self, batch: EncodedKeyBatch) -> np.ndarray:
        """Batch :meth:`query`: the filter readings of every key, vectorized."""
        if self._tables_array is None:
            self._tables_array = np.asarray(self._tables, dtype=np.int64)
        readings = np.stack(
            [
                table[hash_fn.index_batch(batch)]
                for table, hash_fn in zip(self._tables_array, self._hashes)
            ]
        )
        return readings.min(axis=0)

    # ------------------------------------------------------------- helpers
    def memory_bytes(self) -> float:
        """Actual memory used by the filter counters."""
        return self.arrays * self.width * self.counter_bits / 8

    def hash_calls(self) -> int:
        """Hash evaluations performed so far (2 per filtered operation)."""
        return self._family.total_calls()

    def reset_hash_calls(self) -> None:
        """Zero the hash-call counters."""
        self._family.reset_counters()

    def saturation(self) -> float:
        """Fraction of counters at the cap — a diagnostic of filter pressure."""
        total = self.arrays * self.width
        saturated = sum(
            1 for table in self._tables for counter in table if counter >= self.cap
        )
        return saturated / total if total else 0.0

    def parameters(self) -> dict:
        """Filter geometry for experiment reports."""
        return {
            "arrays": self.arrays,
            "width": self.width,
            "counter_bits": self.counter_bits,
            "cap": self.cap,
        }

"""Conflict-free update kernels for the order-dependent insert paths.

The batch-first datapath (PR 1) vectorized hashing and the whole-array
sketches (CM, Count), but the order-dependent families — CU's conservative
update, the mice filter, ReliableSketch's bucket layers, Elastic's heavy
part — still replayed their counter updates item by item in Python.  This
package removes that last per-item loop while staying bit-identical to the
scalar insert order:

* :mod:`repro.kernels.scalar` — the shared single-item transitions (and
  the interned-key-id sentinels) every backend is pinned to;
* :mod:`repro.kernels.python_backend` — per-item replay, the reference;
* :mod:`repro.kernels.numpy_backend` — pure-NumPy conflict-free grouping:
  a batch is drained in rounds in which no two updates collide on any
  counter cell, each round applied as closed-form array expressions;
* :mod:`repro.kernels.numba_backend` — optional JIT-compiled replay;
* :mod:`repro.kernels.dispatch` — the runtime registry
  (``REPRO_KERNEL`` env var, ``--kernel`` CLI flag,
  ``ExperimentSettings.kernel``, per-sketch ``kernel=`` argument).
"""

from repro.kernels.dispatch import (
    AUTO,
    BACKEND_NAMES,
    KERNEL_ENV_VAR,
    KernelBackend,
    KernelUnavailableError,
    available_backends,
    default_backend_name,
    is_backend_available,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.kernels.interning import KeyInterner, KeyInternerOverflowError
from repro.kernels.scalar import EMPTY_ID, UNKNOWN_ID

__all__ = [
    "KeyInterner",
    "KeyInternerOverflowError",
    "AUTO",
    "BACKEND_NAMES",
    "KERNEL_ENV_VAR",
    "KernelBackend",
    "KernelUnavailableError",
    "available_backends",
    "default_backend_name",
    "is_backend_available",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
    "EMPTY_ID",
    "UNKNOWN_ID",
]

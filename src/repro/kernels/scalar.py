"""Shared single-item state transitions of the order-dependent sketches.

Every conflict-free update kernel in this package — the pure-Python replay
backend, the NumPy grouped backend and the optional Numba backend — must be
bit-identical to inserting the same items one by one.  The functions here
*are* that per-item semantics, expressed over the numeric struct-of-arrays
state the sketches now carry (``int64`` counter arrays plus interned key-id
arrays):

* :func:`cu_apply` — one conservative update (CU sketch);
* :func:`saturating_apply` — one capped conservative update (mice filter);
* :func:`bucket_apply` — one Error-Sensible bucket arrival with the layer
  lock of Algorithm 1 (ReliableSketch);
* :func:`elastic_apply` — one Elastic heavy-part arrival (vote / evict);
* :func:`coco_apply` — one CocoSketch arrival (probabilistic replacement);
* :func:`precision_apply` — one PRECISION arrival (probabilistic
  recirculation);
* :func:`hashpipe_apply` — one HashPipe arrival (d-stage eviction walk),
  composed from :func:`hashpipe_stage1_apply` and
  :func:`hashpipe_token_apply`.

Randomized transitions (Coco, PRECISION) draw from :func:`counter_rand`, a
counter-based generator keyed on ``(seed, stream position)``: the draw of
an item depends only on its position, never on how many earlier draws were
actually evaluated, so a vectorized backend can compute a whole round's
draws in one shot and still match the scalar replay bit for bit.  Their
acceptance thresholds are computed as ``float64(value) / float64(count)``
— both operands converted to float64 *before* the division — which is the
one form that is bit-identical across Python scalars, NumPy arrays and
Numba (Python's exact-rational int/int division differs once counters pass
2^53).

The sketches' scalar ``insert`` paths call these directly and the
``python-replay`` backend loops over them, so the scalar loop and the
slowest kernel backend cannot drift apart; the vectorized backends are
pinned to them by the kernel-parity test matrix.

Key identity is integer-encoded: each sketch interns keys into dense ids
(``dict`` lookups use ``==``/``hash``, exactly the equality the previous
object-holding buckets used), and the sentinels below mark the two "no id"
cases.  ``EMPTY_ID`` and ``UNKNOWN_ID`` are distinct so that a query for a
never-inserted key can never match an empty bucket.

Integer thresholds
------------------

ReliableSketch's lock threshold λ is a float, but every comparison the
scalar path makes reduces exactly to ``int64`` arithmetic against
``lam_floor = int(λ)``: for integers ``a`` and ``λ ≥ 0``, ``a > λ`` iff
``a > floor(λ)`` (for integral λ trivially; for fractional λ because an
integer exceeds λ iff it exceeds the next integer down), the absorbed value
``int(λ - no)`` equals ``floor(λ) - no`` whenever it is positive, and the
``no = λ`` lock write truncates to ``floor(λ)`` inside an ``int64`` array.
Working in ``int64`` keeps all three backends exact (no float rounding at
counters beyond 2^53) and makes the kernels Numba-friendly.
"""

from __future__ import annotations

import numpy as np

#: ``key_ids`` value of a bucket that holds no key.
EMPTY_ID = -1
#: Batch id of a query key that was never interned (matches no bucket).
UNKNOWN_ID = -2

_MASK64 = 0xFFFFFFFFFFFFFFFF
#: splitmix64 increment — the same constant ``derive_seed`` uses, so the
#: per-position draw stream is a splitmix64 output sequence.
_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15


def counter_rand(seed: int, position: int) -> float:
    """Uniform draw in [0, 1) keyed on ``(seed, stream position)``.

    One splitmix64 output: the counter ``position + 1`` is multiplied by
    the golden-gamma increment and finalized, and the top 53 bits become
    the mantissa.  All arithmetic wraps mod 2^64, so the identical bit
    pattern falls out of Python ints (masked), NumPy ``uint64`` arrays
    (silent wraparound) and Numba ``uint64`` locals; ``z >> 11 < 2^53``
    makes the float conversion exact everywhere.
    """
    z = (seed + (position + 1) * _SPLITMIX_GAMMA) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    z ^= z >> 31
    return (z >> 11) * (2.0**-53)


def cu_apply(tables: np.ndarray, indexes, value: int) -> None:
    """One conservative update at pre-computed per-row indexes.

    Raises every counter only up to the new lower bound (min + value);
    counters already above it are left untouched.
    """
    depth = tables.shape[0]
    target = int(tables[0, indexes[0]])
    for row in range(1, depth):
        reading = int(tables[row, indexes[row]])
        if reading < target:
            target = reading
    target += value
    for row in range(depth):
        if tables[row, indexes[row]] < target:
            tables[row, indexes[row]] = target


def saturating_apply(tables: np.ndarray, indexes, value: int, cap: int) -> int:
    """One capped conservative update; returns the leftover value.

    Absorbs up to ``cap - min`` units towards ``min + taken`` (the mice
    filter's saturating CU, §3.3) and leaves the rest to the caller.
    """
    depth = tables.shape[0]
    current = int(tables[0, indexes[0]])
    for row in range(1, depth):
        reading = int(tables[row, indexes[row]])
        if reading < current:
            current = reading
    taken = min(value, cap - current)
    if taken > 0:
        target = current + taken
        for row in range(depth):
            if tables[row, indexes[row]] < target:
                tables[row, indexes[row]] = target
    return value - taken


def bucket_apply(
    key_ids: np.ndarray,
    yes: np.ndarray,
    no: np.ndarray,
    index: int,
    item_id: int,
    value: int,
    lam_floor: int,
) -> tuple[int | None, bool]:
    """One ``<key, value>`` arrival at one Error-Sensible bucket (Algorithm 1).

    Returns ``(excess, changed)``: ``excess`` is ``None`` when the value
    settled in this layer or the positive amount to push to the next layer
    when the bucket's lock triggered; ``changed`` is True when the bucket's
    candidate key changed (adoption or replacement), so the caller can keep
    the object-key list in sync with ``key_ids``.
    """
    bucket_id = int(key_ids[index])
    if bucket_id == EMPTY_ID:
        # Empty bucket: adopt the key outright (first arrival).
        key_ids[index] = item_id
        yes[index] = value
        no[index] = 0
        return None, True
    if bucket_id == item_id:
        yes[index] += value
        return None, False
    no_votes = int(no[index])
    if no_votes + value > lam_floor and yes[index] > lam_floor:
        # Lock triggered: absorb only what keeps NO at the threshold,
        # and push the excess to the next layer.
        absorbed = lam_floor - no_votes
        if absorbed > 0:
            no[index] = lam_floor
            value -= absorbed
        return value, False
    # Normal negative vote, possibly followed by a replacement.
    no_votes += value
    if no_votes >= yes[index]:
        key_ids[index] = item_id
        no[index] = yes[index]
        yes[index] = no_votes
        return None, True
    no[index] = no_votes
    return None, False


def elastic_apply(
    key_ids: np.ndarray,
    positive: np.ndarray,
    negative: np.ndarray,
    flags: np.ndarray,
    index: int,
    item_id: int,
    value: int,
    eviction_ratio: int,
) -> tuple[bool, tuple[int, int] | None, bool]:
    """One Elastic heavy-part arrival at a pre-computed bucket index.

    Returns ``(light_self, evicted, changed)``: ``light_self`` is True when
    the item's own ``<key, value>`` must go to the light part, ``evicted``
    carries ``(incumbent_id, incumbent_votes)`` when the arrival evicted the
    incumbent (the caller light-inserts it), and ``changed`` flags a new
    candidate key for the object-list sync.
    """
    bucket_id = int(key_ids[index])
    if bucket_id == EMPTY_ID:
        key_ids[index] = item_id
        positive[index] = value
        negative[index] = 0
        flags[index] = False
        return False, None, True
    if bucket_id == item_id:
        positive[index] += value
        return False, None, False
    negative[index] += value
    if negative[index] >= eviction_ratio * positive[index]:
        # Evict the incumbent to the light part and install the newcomer.
        evicted = (bucket_id, int(positive[index]))
        key_ids[index] = item_id
        positive[index] = value
        negative[index] = 1  # Elastic resets the vote-all counter.
        flags[index] = True
        return False, evicted, True
    return True, None, False


def coco_apply(
    key_ids: np.ndarray,
    counts: np.ndarray,
    cells,
    item_id: int,
    value: int,
    seed: int,
    position: int,
) -> int:
    """One CocoSketch arrival at pre-computed per-row cells.

    Scan the rows in order: a matching cell absorbs the value outright;
    otherwise the first strictly-smallest cell among all rows takes it —
    installed when empty, or counted with a ``value / new_count``
    probabilistic key replacement (unbiased per-cell sum, as in CocoSketch).
    Returns the changed row (new candidate key) or ``-1``.
    """
    depth = key_ids.shape[0]
    min_row = 0
    min_count = -1
    for row in range(depth):
        cell = cells[row]
        if key_ids[row, cell] == item_id:
            counts[row, cell] += value
            return -1
        reading = int(counts[row, cell])
        if min_count < 0 or reading < min_count:
            min_row = row
            min_count = reading
    cell = cells[min_row]
    if key_ids[min_row, cell] == EMPTY_ID:
        key_ids[min_row, cell] = item_id
        counts[min_row, cell] = value
        return min_row
    new_count = min_count + value
    counts[min_row, cell] = new_count
    if counter_rand(seed, position) < float(value) / float(new_count):
        key_ids[min_row, cell] = item_id
        return min_row
    return -1


def precision_apply(
    key_ids: np.ndarray,
    counts: np.ndarray,
    cells,
    item_id: int,
    value: int,
    seed: int,
    position: int,
) -> tuple[int, bool]:
    """One PRECISION arrival at pre-computed per-row cells.

    The first row that matches absorbs the value; the first empty row
    adopts the key.  When every row holds a foreign key, the entry with
    the strictly-smallest count recirculates the packet with probability
    ``value / (min + value)`` — on success the key is replaced and the
    counter jumps to ``min + value``; on failure nothing changes.
    Returns ``(changed_row or -1, recirculated)``.
    """
    depth = key_ids.shape[0]
    min_row = 0
    min_count = -1
    for row in range(depth):
        cell = cells[row]
        held = int(key_ids[row, cell])
        if held == item_id:
            counts[row, cell] += value
            return -1, False
        if held == EMPTY_ID:
            key_ids[row, cell] = item_id
            counts[row, cell] = value
            return row, False
        reading = int(counts[row, cell])
        if min_count < 0 or reading < min_count:
            min_row = row
            min_count = reading
    if counter_rand(seed, position) < float(value) / float(min_count + value):
        cell = cells[min_row]
        key_ids[min_row, cell] = item_id
        counts[min_row, cell] = min_count + value
        return min_row, True
    return -1, False


def hashpipe_stage1_apply(
    key_ids_row: np.ndarray,
    counts_row: np.ndarray,
    cell: int,
    item_id: int,
    value: int,
) -> tuple[tuple[int, int] | None, bool]:
    """HashPipe's always-install first stage at one cell.

    A match adds in place; otherwise the arriving key is installed
    unconditionally and the previous occupant (if any) is carried into the
    eviction walk.  Returns ``(carried (id, count) or None, key_changed)``.
    """
    held = int(key_ids_row[cell])
    if held == item_id:
        counts_row[cell] += value
        return None, False
    carried = None if held == EMPTY_ID else (held, int(counts_row[cell]))
    key_ids_row[cell] = item_id
    counts_row[cell] = value
    return carried, True


def hashpipe_token_apply(
    key_ids_row: np.ndarray,
    counts_row: np.ndarray,
    cell: int,
    token_id: int,
    token_count: int,
) -> tuple[tuple[int, int] | None, bool]:
    """One carried key visiting one walk-stage cell (HashPipe stages 2..d).

    A match merges the carried count; an empty cell settles it; a smaller
    incumbent is swapped out and carried onward; a larger-or-equal
    incumbent passes the token through unchanged.  Returns ``(carry
    (id, count) or None, key_changed)``.
    """
    held = int(key_ids_row[cell])
    if held == token_id:
        counts_row[cell] += token_count
        return None, False
    if held == EMPTY_ID:
        key_ids_row[cell] = token_id
        counts_row[cell] = token_count
        return None, True
    incumbent_count = int(counts_row[cell])
    if incumbent_count < token_count:
        key_ids_row[cell] = token_id
        counts_row[cell] = token_count
        return (held, incumbent_count), True
    return (token_id, token_count), False


def hashpipe_apply(
    key_ids: np.ndarray,
    counts: np.ndarray,
    stage_cells: np.ndarray,
    item_id: int,
    value: int,
) -> tuple[list[tuple[int, int]], int]:
    """One full HashPipe arrival: stage 1 plus the eviction walk.

    ``stage_cells[row, id]`` is the pre-computed cell of every interned key
    at every stage.  Returns ``(changed (row, cell) pairs, walk_stages)``
    where ``walk_stages`` counts the stages 2..d the carried key actually
    entered (the walk stages are contiguous, so the caller can charge one
    hash call to each).
    """
    changed: list[tuple[int, int]] = []
    cell = int(stage_cells[0, item_id])
    carried, key_changed = hashpipe_stage1_apply(
        key_ids[0], counts[0], cell, item_id, value
    )
    if key_changed:
        changed.append((0, cell))
    walk_stages = 0
    if carried is not None:
        token_id, token_count = carried
        depth = key_ids.shape[0]
        for row in range(1, depth):
            walk_stages += 1
            cell = int(stage_cells[row, token_id])
            carry, key_changed = hashpipe_token_apply(
                key_ids[row], counts[row], cell, token_id, token_count
            )
            if key_changed:
                changed.append((row, cell))
            if carry is None:
                break
            token_id, token_count = carry
    return changed, walk_stages

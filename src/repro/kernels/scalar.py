"""Shared single-item state transitions of the order-dependent sketches.

Every conflict-free update kernel in this package — the pure-Python replay
backend, the NumPy grouped backend and the optional Numba backend — must be
bit-identical to inserting the same items one by one.  The functions here
*are* that per-item semantics, expressed over the numeric struct-of-arrays
state the sketches now carry (``int64`` counter arrays plus interned key-id
arrays):

* :func:`cu_apply` — one conservative update (CU sketch);
* :func:`saturating_apply` — one capped conservative update (mice filter);
* :func:`bucket_apply` — one Error-Sensible bucket arrival with the layer
  lock of Algorithm 1 (ReliableSketch);
* :func:`elastic_apply` — one Elastic heavy-part arrival (vote / evict).

The sketches' scalar ``insert`` paths call these directly and the
``python-replay`` backend loops over them, so the scalar loop and the
slowest kernel backend cannot drift apart; the vectorized backends are
pinned to them by the kernel-parity test matrix.

Key identity is integer-encoded: each sketch interns keys into dense ids
(``dict`` lookups use ``==``/``hash``, exactly the equality the previous
object-holding buckets used), and the sentinels below mark the two "no id"
cases.  ``EMPTY_ID`` and ``UNKNOWN_ID`` are distinct so that a query for a
never-inserted key can never match an empty bucket.

Integer thresholds
------------------

ReliableSketch's lock threshold λ is a float, but every comparison the
scalar path makes reduces exactly to ``int64`` arithmetic against
``lam_floor = int(λ)``: for integers ``a`` and ``λ ≥ 0``, ``a > λ`` iff
``a > floor(λ)`` (for integral λ trivially; for fractional λ because an
integer exceeds λ iff it exceeds the next integer down), the absorbed value
``int(λ - no)`` equals ``floor(λ) - no`` whenever it is positive, and the
``no = λ`` lock write truncates to ``floor(λ)`` inside an ``int64`` array.
Working in ``int64`` keeps all three backends exact (no float rounding at
counters beyond 2^53) and makes the kernels Numba-friendly.
"""

from __future__ import annotations

import numpy as np

#: ``key_ids`` value of a bucket that holds no key.
EMPTY_ID = -1
#: Batch id of a query key that was never interned (matches no bucket).
UNKNOWN_ID = -2


def cu_apply(tables: np.ndarray, indexes, value: int) -> None:
    """One conservative update at pre-computed per-row indexes.

    Raises every counter only up to the new lower bound (min + value);
    counters already above it are left untouched.
    """
    depth = tables.shape[0]
    target = int(tables[0, indexes[0]])
    for row in range(1, depth):
        reading = int(tables[row, indexes[row]])
        if reading < target:
            target = reading
    target += value
    for row in range(depth):
        if tables[row, indexes[row]] < target:
            tables[row, indexes[row]] = target


def saturating_apply(tables: np.ndarray, indexes, value: int, cap: int) -> int:
    """One capped conservative update; returns the leftover value.

    Absorbs up to ``cap - min`` units towards ``min + taken`` (the mice
    filter's saturating CU, §3.3) and leaves the rest to the caller.
    """
    depth = tables.shape[0]
    current = int(tables[0, indexes[0]])
    for row in range(1, depth):
        reading = int(tables[row, indexes[row]])
        if reading < current:
            current = reading
    taken = min(value, cap - current)
    if taken > 0:
        target = current + taken
        for row in range(depth):
            if tables[row, indexes[row]] < target:
                tables[row, indexes[row]] = target
    return value - taken


def bucket_apply(
    key_ids: np.ndarray,
    yes: np.ndarray,
    no: np.ndarray,
    index: int,
    item_id: int,
    value: int,
    lam_floor: int,
) -> tuple[int | None, bool]:
    """One ``<key, value>`` arrival at one Error-Sensible bucket (Algorithm 1).

    Returns ``(excess, changed)``: ``excess`` is ``None`` when the value
    settled in this layer or the positive amount to push to the next layer
    when the bucket's lock triggered; ``changed`` is True when the bucket's
    candidate key changed (adoption or replacement), so the caller can keep
    the object-key list in sync with ``key_ids``.
    """
    bucket_id = int(key_ids[index])
    if bucket_id == EMPTY_ID:
        # Empty bucket: adopt the key outright (first arrival).
        key_ids[index] = item_id
        yes[index] = value
        no[index] = 0
        return None, True
    if bucket_id == item_id:
        yes[index] += value
        return None, False
    no_votes = int(no[index])
    if no_votes + value > lam_floor and yes[index] > lam_floor:
        # Lock triggered: absorb only what keeps NO at the threshold,
        # and push the excess to the next layer.
        absorbed = lam_floor - no_votes
        if absorbed > 0:
            no[index] = lam_floor
            value -= absorbed
        return value, False
    # Normal negative vote, possibly followed by a replacement.
    no_votes += value
    if no_votes >= yes[index]:
        key_ids[index] = item_id
        no[index] = yes[index]
        yes[index] = no_votes
        return None, True
    no[index] = no_votes
    return None, False


def elastic_apply(
    key_ids: np.ndarray,
    positive: np.ndarray,
    negative: np.ndarray,
    flags: np.ndarray,
    index: int,
    item_id: int,
    value: int,
    eviction_ratio: int,
) -> tuple[bool, tuple[int, int] | None, bool]:
    """One Elastic heavy-part arrival at a pre-computed bucket index.

    Returns ``(light_self, evicted, changed)``: ``light_self`` is True when
    the item's own ``<key, value>`` must go to the light part, ``evicted``
    carries ``(incumbent_id, incumbent_votes)`` when the arrival evicted the
    incumbent (the caller light-inserts it), and ``changed`` flags a new
    candidate key for the object-list sync.
    """
    bucket_id = int(key_ids[index])
    if bucket_id == EMPTY_ID:
        key_ids[index] = item_id
        positive[index] = value
        negative[index] = 0
        flags[index] = False
        return False, None, True
    if bucket_id == item_id:
        positive[index] += value
        return False, None, False
    negative[index] += value
    if negative[index] >= eviction_ratio * positive[index]:
        # Evict the incumbent to the light part and install the newcomer.
        evicted = (bucket_id, int(positive[index]))
        key_ids[index] = item_id
        positive[index] = value
        negative[index] = 1  # Elastic resets the vote-all counter.
        flags[index] = True
        return False, evicted, True
    return True, None, False

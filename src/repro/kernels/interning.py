"""Key interning: dense integer ids for the kernel and batch-query paths.

The conflict-free update kernels compare candidate keys as ``int64``
arrays, so every key a sketch touches is assigned a dense id on first
contact.  ``dict`` lookup defines identity (``==``/``hash`` — exactly the
equality the object-holding buckets used), and a NumPy side table
accelerates the common case: batches of small non-negative ints (the
paper's flow IDs) intern through one vectorized gather instead of one
dict probe per item.

The side table is a pure cache of the dict (the dict stays the source of
truth, so scalar inserts and batch inserts interleave consistently) and
is only grown for keys below :data:`_TABLE_KEY_LIMIT` — an ``int64``
entry per key caps it at 32 MiB, transiently up to twice that while a
doubling re-allocation is in flight; everything else takes the dict path.
Like the dict, it grows with the distinct keys ingested — the deliberate
speed-for-memory trade of the batch datapath.
"""

from __future__ import annotations

from itertools import repeat
from typing import Sequence

import numpy as np

from repro.kernels.scalar import UNKNOWN_ID

#: Int keys below this may enter the vectorized id table (32 MiB of int64
#: ids at most, excluding the transient doubling copy).
_TABLE_KEY_LIMIT = 1 << 22


class KeyInternerOverflowError(RuntimeError):
    """A bounded :class:`KeyInterner` ran out of ids (``max_keys`` reached).

    Raised *before* any state changes, so the interner (and the sketch that
    owns it) stays consistent: every id handed out so far remains valid and
    queries keep answering.  Catch it to fail a hostile ingest loudly instead
    of letting an adversarial key space grow the id maps without bound.
    """


class KeyInterner:
    """Assigns dense ids to keys on first contact, in stream order.

    ``max_keys`` bounds the number of distinct keys that may ever be
    interned; the default ``None`` keeps the historical unbounded behaviour
    (the deliberate speed-for-memory trade of the batch datapath).  With a
    bound set, interning the ``max_keys + 1``-th distinct key raises
    :class:`KeyInternerOverflowError` — a clear failure mode for adversarial
    key spaces instead of silent unbounded dict growth.

    ``evict="lru"`` (requires ``max_keys``) recycles ids instead of
    raising: interning a new key while full reassigns the id of the
    least-recently-interned key, whose dict/table entries are dropped.
    Recency advances on interning, not on queries, and batch interns touch
    at batch granularity (every id in the batch gets the same clock tick).
    Eviction is a *bounded-memory* mode, not a free lunch: a bucket may
    still hold the recycled id, so the sketch then reports the new owner
    key for that bucket — acceptable for the heavy-hitter sketches, whose
    buckets track recently-frequent keys anyway.  A single batch
    containing more distinct keys than ``max_keys`` will alias ids within
    the batch; size the bound well above the expected working set.

    ``on_assign`` (an optional ``(key, item_id)`` callable) fires whenever
    an id is (re)assigned — sketches use it to maintain per-id caches.
    """

    __slots__ = (
        "_ids",
        "id_to_key",
        "_table",
        "max_keys",
        "evict",
        "on_assign",
        "_last_touch",
        "_touch_clock",
        "_int_only",
    )

    def __init__(
        self, max_keys: int | None = None, evict: str | None = None
    ) -> None:
        if max_keys is not None and max_keys <= 0:
            raise ValueError("max_keys must be positive (or None for unbounded)")
        if evict not in (None, "lru"):
            raise ValueError(f"unknown eviction policy {evict!r}; expected 'lru'")
        if evict == "lru" and max_keys is None:
            raise ValueError("evict='lru' requires max_keys")
        self._ids: dict = {}
        #: Inverse map; ``id_to_key[i]`` is the key that owns id ``i``.
        self.id_to_key: list = []
        self._table: np.ndarray | None = None
        self.max_keys = max_keys
        self.evict = evict
        #: Optional ``(key, item_id)`` hook fired on every id assignment.
        self.on_assign = None
        self._last_touch = (
            np.zeros(max_keys, dtype=np.int64) if evict == "lru" else None
        )
        self._touch_clock = 0
        #: True while every interned key is a plain ``int`` — the invariant
        #: that lets batch misses skip the per-key dict probe (no ``==``-equal
        #: non-int alias can exist, and every covered int key is mirrored in
        #: the table by ``_assign`` / ``_ensure_table`` back-fill).
        self._int_only = True

    def __len__(self) -> int:
        return len(self.id_to_key)

    def intern(self, key: object) -> int:
        """The id of ``key``, assigning the next dense id on first contact."""
        item_id = self._ids.get(key)
        if item_id is None:
            item_id = self._assign(key)
        elif self._last_touch is not None:
            self._touch_clock += 1
            self._last_touch[item_id] = self._touch_clock
        return item_id

    def _assign(self, key: object) -> int:
        if type(key) is not int:
            self._int_only = False
        item_id = len(self.id_to_key)
        if self.max_keys is not None and item_id >= self.max_keys:
            if self.evict != "lru":
                raise KeyInternerOverflowError(
                    f"key interner is full: {self.max_keys} distinct keys "
                    f"already interned, cannot intern {key!r} (raise max_keys, "
                    "leave it unbounded, or enable evict='lru')"
                )
            item_id = self._evict_one()
            self._ids[key] = item_id
            self.id_to_key[item_id] = key
        else:
            self._ids[key] = item_id
            self.id_to_key.append(key)
        if self._last_touch is not None:
            self._touch_clock += 1
            self._last_touch[item_id] = self._touch_clock
        table = self._table
        if table is not None and type(key) is int and 0 <= key < len(table):
            table[key] = item_id
        if self.on_assign is not None:
            self.on_assign(key, item_id)
        return item_id

    def _evict_one(self) -> int:
        """Drop the least-recently-interned key and return its freed id."""
        victim = int(np.argmin(self._last_touch))
        old_key = self.id_to_key[victim]
        del self._ids[old_key]
        table = self._table
        if table is not None and type(old_key) is int and 0 <= old_key < len(table):
            table[old_key] = UNKNOWN_ID
        return victim

    # ------------------------------------------------------------- batches
    def intern_batch(
        self, keys: Sequence[object], int_keys: np.ndarray | None = None
    ) -> np.ndarray:
        """Ids for a whole batch as ``int64``, assigning new ids in order.

        ``int_keys`` is the batch's vectorized int-key array when the
        encoding fast path applies (``EncodedKeyBatch.int_key_array``);
        with it, known keys resolve through one table gather.
        """
        if int_keys is not None and int_keys.size and int(int_keys.max()) < _TABLE_KEY_LIMIT:
            table = self._ensure_table(int(int_keys.max()))
            ids = table[int_keys]
            missing = np.flatnonzero(ids < 0)
            if missing.size:
                if (
                    self.max_keys is None
                    and self.on_assign is None
                    and self._last_touch is None
                ):
                    self._assign_batch(int_keys, ids, missing, table)
                else:
                    # Bounded / hooked interners take the scalar path so
                    # eviction, overflow and assignment hooks fire per key.
                    get = self._ids.get
                    for position in missing.tolist():
                        key = int(int_keys[position])
                        item_id = get(key)
                        if item_id is None:
                            item_id = self._assign(key)
                        table[key] = item_id
                        ids[position] = item_id
            self._touch_batch(ids)
            return ids
        ids = list(map(self._ids.get, keys))
        if None in ids:
            get = self._ids.get
            for position, item_id in enumerate(ids):
                if item_id is None:
                    key = keys[position]
                    item_id = get(key)
                    if item_id is None:
                        item_id = self._assign(key)
                    ids[position] = item_id
        id_array = np.asarray(ids, dtype=np.int64)
        self._touch_batch(id_array)
        return id_array

    def _assign_batch(
        self,
        int_keys: np.ndarray,
        ids: np.ndarray,
        missing: np.ndarray,
        table: np.ndarray,
    ) -> None:
        """Bulk-assign the batch's table misses in first-contact order.

        Only for the unhooked, unbounded interner (no ``max_keys``, no
        ``on_assign``, no LRU clock): ids are dense stream-order integers,
        so each distinct new key takes the next id at its first occurrence.
        While the interner has only ever seen plain ``int`` keys
        (``_int_only``), a table miss is provably a brand-new key, so the
        whole batch of misses assigns through bulk ``dict.update`` /
        ``list.extend``; otherwise the dict is consulted per distinct key —
        a miss may be a key interned under an ``==``-equal non-int object.
        """
        miss_keys = int_keys[missing]
        uniq, first_seen = np.unique(miss_keys, return_index=True)
        contact_order = np.argsort(first_seen, kind="stable")
        if self._int_only:
            new_keys = uniq[contact_order]
            start = len(self.id_to_key)
            key_list = new_keys.tolist()
            self._ids.update(zip(key_list, range(start, start + len(key_list))))
            self.id_to_key.extend(key_list)
            table[new_keys] = np.arange(start, start + len(key_list), dtype=np.int64)
        else:
            get = self._ids.get
            ids_map = self._ids
            id_to_key = self.id_to_key
            for key in uniq[contact_order].tolist():
                item_id = get(key)
                if item_id is None:
                    item_id = len(id_to_key)
                    ids_map[key] = item_id
                    id_to_key.append(key)
                table[key] = item_id
        ids[missing] = table[miss_keys]

    def _touch_batch(self, ids: np.ndarray) -> None:
        """LRU touch at batch granularity: one clock tick for the whole batch."""
        if self._last_touch is not None and ids.size:
            self._touch_clock += 1
            self._last_touch[np.unique(ids)] = self._touch_clock

    def lookup_batch(
        self, keys: Sequence[object], int_keys: np.ndarray | None = None
    ) -> np.ndarray:
        """Ids for a query batch; unknown keys map to ``UNKNOWN_ID``.

        Queries must never grow the interner: an unknown key cannot match
        any bucket (every incumbent is interned by construction).
        """
        if (
            int_keys is not None
            and int_keys.size
            and self._table is not None
            and int(int_keys.max()) < len(self._table)
        ):
            ids = self._table[int_keys]
            missing = np.flatnonzero(ids < 0)
            if missing.size:
                # A key may be known to the dict but not yet cached (it was
                # interned before the table grew past it, or via an object
                # that is == an int); resolve the leftovers through the dict.
                get = self._ids.get
                for position in missing.tolist():
                    ids[position] = get(int(int_keys[position]), UNKNOWN_ID)
            return ids
        return np.asarray(
            list(map(self._ids.get, keys, repeat(UNKNOWN_ID))), dtype=np.int64
        )

    def _ensure_table(self, top_key: int) -> np.ndarray:
        """Grow the id table to cover ``top_key``, back-filling known ints."""
        table = self._table
        needed = top_key + 1
        if table is None or len(table) < needed:
            size = max(needed, 1024, 0 if table is None else 2 * len(table))
            grown = np.full(size, UNKNOWN_ID, dtype=np.int64)
            if table is not None:
                grown[: len(table)] = table
                start = len(table)
            else:
                start = 0
            # Back-fill ids assigned before the table covered their keys.
            for key, item_id in self._ids.items():
                if type(key) is int and start <= key < size:
                    grown[key] = item_id
            self._table = table = grown
        return table

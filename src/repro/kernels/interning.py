"""Key interning: dense integer ids for the kernel and batch-query paths.

The conflict-free update kernels compare candidate keys as ``int64``
arrays, so every key a sketch touches is assigned a dense id on first
contact.  ``dict`` lookup defines identity (``==``/``hash`` — exactly the
equality the object-holding buckets used), and a NumPy side table
accelerates the common case: batches of small non-negative ints (the
paper's flow IDs) intern through one vectorized gather instead of one
dict probe per item.

The side table is a pure cache of the dict (the dict stays the source of
truth, so scalar inserts and batch inserts interleave consistently) and
is only grown for keys below :data:`_TABLE_KEY_LIMIT` — an ``int64``
entry per key caps it at 32 MiB, transiently up to twice that while a
doubling re-allocation is in flight; everything else takes the dict path.
Like the dict, it grows with the distinct keys ingested — the deliberate
speed-for-memory trade of the batch datapath.
"""

from __future__ import annotations

from itertools import repeat
from typing import Sequence

import numpy as np

from repro.kernels.scalar import UNKNOWN_ID

#: Int keys below this may enter the vectorized id table (32 MiB of int64
#: ids at most, excluding the transient doubling copy).
_TABLE_KEY_LIMIT = 1 << 22


class KeyInternerOverflowError(RuntimeError):
    """A bounded :class:`KeyInterner` ran out of ids (``max_keys`` reached).

    Raised *before* any state changes, so the interner (and the sketch that
    owns it) stays consistent: every id handed out so far remains valid and
    queries keep answering.  Catch it to fail a hostile ingest loudly instead
    of letting an adversarial key space grow the id maps without bound.
    """


class KeyInterner:
    """Assigns dense ids to keys on first contact, in stream order.

    ``max_keys`` bounds the number of distinct keys that may ever be
    interned; the default ``None`` keeps the historical unbounded behaviour
    (the deliberate speed-for-memory trade of the batch datapath).  With a
    bound set, interning the ``max_keys + 1``-th distinct key raises
    :class:`KeyInternerOverflowError` — a clear failure mode for adversarial
    key spaces instead of silent unbounded dict growth.
    """

    __slots__ = ("_ids", "id_to_key", "_table", "max_keys")

    def __init__(self, max_keys: int | None = None) -> None:
        if max_keys is not None and max_keys <= 0:
            raise ValueError("max_keys must be positive (or None for unbounded)")
        self._ids: dict = {}
        #: Inverse map; ``id_to_key[i]`` is the key that owns id ``i``.
        self.id_to_key: list = []
        self._table: np.ndarray | None = None
        self.max_keys = max_keys

    def __len__(self) -> int:
        return len(self.id_to_key)

    def intern(self, key: object) -> int:
        """The id of ``key``, assigning the next dense id on first contact."""
        item_id = self._ids.get(key)
        if item_id is None:
            item_id = self._assign(key)
        return item_id

    def _assign(self, key: object) -> int:
        item_id = len(self.id_to_key)
        if self.max_keys is not None and item_id >= self.max_keys:
            raise KeyInternerOverflowError(
                f"key interner is full: {self.max_keys} distinct keys already "
                f"interned, cannot intern {key!r} (raise max_keys or leave it "
                "unbounded)"
            )
        self._ids[key] = item_id
        self.id_to_key.append(key)
        table = self._table
        if table is not None and type(key) is int and 0 <= key < len(table):
            table[key] = item_id
        return item_id

    # ------------------------------------------------------------- batches
    def intern_batch(
        self, keys: Sequence[object], int_keys: np.ndarray | None = None
    ) -> np.ndarray:
        """Ids for a whole batch as ``int64``, assigning new ids in order.

        ``int_keys`` is the batch's vectorized int-key array when the
        encoding fast path applies (``EncodedKeyBatch.int_key_array``);
        with it, known keys resolve through one table gather.
        """
        if int_keys is not None and int_keys.size and int(int_keys.max()) < _TABLE_KEY_LIMIT:
            table = self._ensure_table(int(int_keys.max()))
            ids = table[int_keys]
            missing = np.flatnonzero(ids < 0)
            if missing.size:
                # The table is only a cache: consult the dict before
                # assigning, so ids agree with any scalar-path interning.
                get = self._ids.get
                for position in missing.tolist():
                    key = int(int_keys[position])
                    item_id = get(key)
                    if item_id is None:
                        item_id = self._assign(key)
                        table[key] = item_id
                    else:
                        table[key] = item_id
                    ids[position] = item_id
            return ids
        ids = list(map(self._ids.get, keys))
        if None in ids:
            get = self._ids.get
            for position, item_id in enumerate(ids):
                if item_id is None:
                    key = keys[position]
                    item_id = get(key)
                    if item_id is None:
                        item_id = self._assign(key)
                    ids[position] = item_id
        return np.asarray(ids, dtype=np.int64)

    def lookup_batch(
        self, keys: Sequence[object], int_keys: np.ndarray | None = None
    ) -> np.ndarray:
        """Ids for a query batch; unknown keys map to ``UNKNOWN_ID``.

        Queries must never grow the interner: an unknown key cannot match
        any bucket (every incumbent is interned by construction).
        """
        if (
            int_keys is not None
            and int_keys.size
            and self._table is not None
            and int(int_keys.max()) < len(self._table)
        ):
            ids = self._table[int_keys]
            missing = np.flatnonzero(ids < 0)
            if missing.size:
                # A key may be known to the dict but not yet cached (it was
                # interned before the table grew past it, or via an object
                # that is == an int); resolve the leftovers through the dict.
                get = self._ids.get
                for position in missing.tolist():
                    ids[position] = get(int(int_keys[position]), UNKNOWN_ID)
            return ids
        return np.asarray(
            list(map(self._ids.get, keys, repeat(UNKNOWN_ID))), dtype=np.int64
        )

    def _ensure_table(self, top_key: int) -> np.ndarray:
        """Grow the id table to cover ``top_key``, back-filling known ints."""
        table = self._table
        needed = top_key + 1
        if table is None or len(table) < needed:
            size = max(needed, 1024, 0 if table is None else 2 * len(table))
            grown = np.full(size, UNKNOWN_ID, dtype=np.int64)
            if table is not None:
                grown[: len(table)] = table
                start = len(table)
            else:
                start = 0
            # Back-fill ids assigned before the table covered their keys.
            for key, item_id in self._ids.items():
                if type(key) is int and start <= key < size:
                    grown[key] = item_id
            self._table = table = grown
        return table

"""The ``python-replay`` kernel backend: per-item loops over the shared
scalar transitions.

This is the reference implementation of the kernel contract (see
:mod:`repro.kernels.dispatch`): it replays the batch item by item in stream
order through the exact transition functions the sketches' scalar ``insert``
paths use, so it is bit-identical to scalar inserts *by construction*.  The
vectorized backends are pinned to it (and to the scalar path) by the
kernel-parity tests.

It is also the fallback of last resort: always available, no dependencies
beyond NumPy, and roughly as fast as the pre-kernel per-item batch loops.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.scalar import (
    bucket_apply,
    coco_apply,
    cu_apply,
    elastic_apply,
    hashpipe_apply,
    precision_apply,
    saturating_apply,
)


def cu_update(tables: np.ndarray, indexes: np.ndarray, values: np.ndarray) -> None:
    """Conservative updates for a whole batch, replayed in stream order."""
    index_rows = [row.tolist() for row in indexes]
    for position, value in enumerate(values.tolist()):
        cu_apply(tables, [row[position] for row in index_rows], value)


def saturating_update(
    tables: np.ndarray, indexes: np.ndarray, values: np.ndarray, cap: int
) -> np.ndarray:
    """Capped conservative updates in stream order; returns the leftovers."""
    index_rows = [row.tolist() for row in indexes]
    leftovers = np.empty(len(values), dtype=np.int64)
    for position, value in enumerate(values.tolist()):
        leftovers[position] = saturating_apply(
            tables, [row[position] for row in index_rows], value, cap
        )
    return leftovers


def reliable_layer_update(
    key_ids: np.ndarray,
    yes: np.ndarray,
    no: np.ndarray,
    lam_floor: int,
    indexes: np.ndarray,
    item_ids: np.ndarray,
    remaining: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One ReliableSketch layer's bucket replay for a batch of survivors.

    Returns ``(survivors, excess, changed)``: the positions (ascending, i.e.
    stream order) of the items whose value did not settle in this layer, the
    excess value each pushes to the next layer, and the bucket indexes whose
    candidate key changed.
    """
    survivors: list[int] = []
    excess: list[int] = []
    changed: list[int] = []
    index_list = indexes.tolist()
    id_list = item_ids.tolist()
    for position, value in enumerate(remaining.tolist()):
        index = index_list[position]
        leftover, adopted = bucket_apply(
            key_ids, yes, no, index, id_list[position], value, lam_floor
        )
        if adopted:
            changed.append(index)
        if leftover is not None:
            survivors.append(position)
            excess.append(leftover)
    return (
        np.asarray(survivors, dtype=np.intp),
        np.asarray(excess, dtype=np.int64),
        np.unique(np.asarray(changed, dtype=np.int64)),
    )


def elastic_update(
    key_ids: np.ndarray,
    positive: np.ndarray,
    negative: np.ndarray,
    flags: np.ndarray,
    eviction_ratio: int,
    indexes: np.ndarray,
    item_ids: np.ndarray,
    values: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Elastic heavy-part replay for a whole batch.

    Returns ``(light_positions, evicted_ids, evicted_values, changed)``:
    the positions whose own ``<key, value>`` goes to the light part
    (ascending), the interned ids and vote counts of evicted incumbents
    (one light insert each, in eviction order), and the changed buckets.
    """
    light_positions: list[int] = []
    evicted_ids: list[int] = []
    evicted_values: list[int] = []
    changed: list[int] = []
    index_list = indexes.tolist()
    id_list = item_ids.tolist()
    for position, value in enumerate(values.tolist()):
        index = index_list[position]
        light_self, evicted, adopted = elastic_apply(
            key_ids, positive, negative, flags, index, id_list[position], value,
            eviction_ratio,
        )
        if adopted:
            changed.append(index)
        if light_self:
            light_positions.append(position)
        if evicted is not None:
            evicted_ids.append(evicted[0])
            evicted_values.append(evicted[1])
    return (
        np.asarray(light_positions, dtype=np.intp),
        np.asarray(evicted_ids, dtype=np.int64),
        np.asarray(evicted_values, dtype=np.int64),
        np.unique(np.asarray(changed, dtype=np.int64)),
    )


def coco_update(
    key_ids: np.ndarray,
    counts: np.ndarray,
    indexes: np.ndarray,
    item_ids: np.ndarray,
    values: np.ndarray,
    positions: np.ndarray,
    seed: int,
) -> tuple[np.ndarray, np.ndarray]:
    """CocoSketch replay for a whole batch, in stream order.

    ``positions`` carries each item's absolute RNG position (the sketch's
    running draw counter), so replaying any sub-slice of a stream draws the
    same numbers the full scalar run would.  Returns the ``(rows, cells)``
    whose candidate key changed.
    """
    changed_rows: list[int] = []
    changed_cells: list[int] = []
    index_rows = [row.tolist() for row in indexes]
    position_list = positions.tolist()
    id_list = item_ids.tolist()
    for item, value in enumerate(values.tolist()):
        cells = [row[item] for row in index_rows]
        row = coco_apply(
            key_ids, counts, cells, id_list[item], value, seed, position_list[item]
        )
        if row >= 0:
            changed_rows.append(row)
            changed_cells.append(cells[row])
    return (
        np.asarray(changed_rows, dtype=np.int64),
        np.asarray(changed_cells, dtype=np.int64),
    )


def precision_update(
    key_ids: np.ndarray,
    counts: np.ndarray,
    indexes: np.ndarray,
    item_ids: np.ndarray,
    values: np.ndarray,
    positions: np.ndarray,
    seed: int,
) -> tuple[np.ndarray, np.ndarray, int]:
    """PRECISION replay for a whole batch, in stream order.

    Returns ``(changed_rows, changed_cells, recirculations)``.
    """
    changed_rows: list[int] = []
    changed_cells: list[int] = []
    recirculations = 0
    index_rows = [row.tolist() for row in indexes]
    position_list = positions.tolist()
    id_list = item_ids.tolist()
    for item, value in enumerate(values.tolist()):
        cells = [row[item] for row in index_rows]
        row, recirculated = precision_apply(
            key_ids, counts, cells, id_list[item], value, seed, position_list[item]
        )
        if recirculated:
            recirculations += 1
        if row >= 0:
            changed_rows.append(row)
            changed_cells.append(cells[row])
    return (
        np.asarray(changed_rows, dtype=np.int64),
        np.asarray(changed_cells, dtype=np.int64),
        recirculations,
    )


def hashpipe_update(
    key_ids: np.ndarray,
    counts: np.ndarray,
    stage_cells: np.ndarray,
    item_ids: np.ndarray,
    values: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """HashPipe replay for a whole batch, in stream order.

    ``stage_cells[row, id]`` pre-computes every interned key's cell at
    every stage (the walk needs the *evicted* key's cells, which a plain
    per-item index batch cannot supply).  Returns ``(changed_rows,
    changed_cells, stage_entries)`` where ``stage_entries[row]`` counts the
    carried keys that entered walk stage ``row`` — the per-stage hash-call
    accounting of the scalar loop.
    """
    changed_rows: list[int] = []
    changed_cells: list[int] = []
    stage_entries = np.zeros(key_ids.shape[0], dtype=np.int64)
    id_list = item_ids.tolist()
    for item, value in enumerate(values.tolist()):
        changed, walk_stages = hashpipe_apply(
            key_ids, counts, stage_cells, id_list[item], value
        )
        for row, cell in changed:
            changed_rows.append(row)
            changed_cells.append(cell)
        if walk_stages:
            stage_entries[1 : 1 + walk_stages] += 1
    return (
        np.asarray(changed_rows, dtype=np.int64),
        np.asarray(changed_cells, dtype=np.int64),
        stage_entries,
    )

"""The ``numpy-grouped`` kernel backend: conflict-free grouping engine.

Order-dependent sketches (CU, the mice filter, ReliableSketch's bucket
layers, Elastic's heavy part) cannot blindly vectorize a batch: each item's
update depends on the counters its predecessors left behind.  But that
dependency only exists *between items that touch the same counter cell*,
and this backend removes the per-item Python loop with two exact
strategies, one per update algebra:

* **Conservative updates (CU, mice filter)** are pure ``max`` writes, so
  the whole batch reduces to a monotone *fixpoint relaxation* over the
  per-item write targets — a few segmented-scan passes, no sequencing at
  all (see :func:`_grouped_conservative`).

* **Bucket state machines (ReliableSketch layers, Elastic's heavy part)**
  are grouped by key (same key implies same bucket) and *scheduled into
  conflict-free rounds*: along every bucket's toucher sequence, round
  numbers never decrease and strictly increase whenever the key changes.
  Each round's touchers of any bucket therefore form one contiguous
  same-key block — every foreign toucher lands in an earlier or later
  round, blocks apply in stream order, and a block's whole run collapses
  into a closed form (segmented cumulative sums locate the lock /
  replacement / eviction crossing).  The minimal schedule is one segmented
  scan (``round[i] = max(round[i-1] + key_changed, 1)`` along each
  bucket's sequence), so a hot key costs one closed-form update per round
  it straddles, not one update per occurrence.

Correctness rests on two facts, both pinned by the kernel-parity tests:
items that share no cell commute (their updates read and write disjoint
state), so reordering the stream by round number is a sequence of legal
swaps; and a key's consecutive arrivals at one bucket reduce to the closed
forms derived in the function docstrings.  All arithmetic is ``int64``
(see :mod:`repro.kernels.scalar` for why the float lock threshold reduces
exactly to its floor).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.scalar import EMPTY_ID


def _cell_argsort(cells: np.ndarray) -> np.ndarray:
    """Stable argsort of non-negative cell/round indexes.

    Values below 2¹⁶ take NumPy's radix path (an order of magnitude faster
    than the comparison sort); anything larger falls back to the general
    stable sort.
    """
    if cells.size and int(cells.max()) < 65536:
        return cells.astype(np.uint16).argsort(kind="stable")
    return cells.argsort(kind="stable")


def _tuple_groups(indexes: np.ndarray) -> np.ndarray:
    """Group ids by full per-row index tuple (same tuple, same update).

    An LSD sort — one stable per-row pass, least-significant row first —
    keeps every pass on the radix path for ordinary table widths.
    """
    count = indexes.shape[1]
    order = _cell_argsort(indexes[-1])
    for row in indexes[-2::-1]:
        order = order[_cell_argsort(row[order])]
    cols = indexes[:, order]
    distinct = (cols[:, 1:] != cols[:, :-1]).any(axis=0)
    sorted_ids = np.empty(count, dtype=np.int64)
    sorted_ids[0] = 0
    sorted_ids[1:] = np.cumsum(distinct)
    groups = np.empty(count, dtype=np.int64)
    groups[order] = sorted_ids
    return groups


def _schedule(buckets: np.ndarray, groups: np.ndarray) -> np.ndarray:
    """Round number of every item of a single-row (bucket) kernel.

    Along each bucket's toucher sequence (stable cell sort keeps stream
    order), the round is the index of the item's *run* of consecutive
    same-group arrivals: ``round[i] = round[i-1] + (group changed)``,
    i.e. one plus the number of group boundaries before the item within
    its bucket's sequence — a segmented prefix count.
    """
    count = len(buckets)
    rounds = np.ones(count, dtype=np.int64)
    if count < 2:
        return rounds
    order = _cell_argsort(buckets)
    sorted_cells = buckets[order]
    new_cell = np.empty(count, dtype=bool)
    new_cell[0] = True
    np.not_equal(sorted_cells[1:], sorted_cells[:-1], out=new_cell[1:])
    sorted_groups = groups[order]
    boundary = np.zeros(count, dtype=np.int64)
    boundary[1:] = ~new_cell[1:] & (sorted_groups[1:] != sorted_groups[:-1])
    boundary_count = np.cumsum(boundary)
    segment = np.cumsum(new_cell) - 1
    segment_base = boundary_count[np.flatnonzero(new_cell)][segment]
    rounds[order] = 1 + boundary_count - segment_base
    return rounds


#: Round sizes below this replay per item instead of paying the fixed cost
#: of a closed-form round (a few dozen small array operations).
_SCALAR_TAIL = 24


def _round_slices(rounds: np.ndarray, buckets: np.ndarray):
    """Items ordered by (round, bucket, stream position), sliced per round.

    Within a round every bucket is touched by exactly one group, so the
    bucket index doubles as the segment key — it is small enough for the
    radix sort path, unlike the interned key ids.

    Yields ``(positions, is_tail)`` pairs.  Once a round shrinks below
    :data:`_SCALAR_TAIL` items, all still-pending items are emitted as one
    final tail (``is_tail=True``, in stream order) for per-item replay:
    the schedule guarantees no pending item shares a bucket with an
    already-applied item that follows it in the stream (that would force
    the pending item into an earlier round), so replaying the pending
    suffix item by item is exactly the scalar semantics — and far cheaper
    than running dozens of near-empty closed-form rounds.
    """
    order = _cell_argsort(buckets)
    order = order[_cell_argsort((rounds - 1)[order])]
    sorted_rounds = rounds[order]
    starts = np.flatnonzero(
        np.concatenate(([True], sorted_rounds[1:] != sorted_rounds[:-1]))
    )
    ends = np.append(starts[1:], len(order))
    for start, end in zip(starts, ends):
        if end - start < _SCALAR_TAIL:
            yield np.sort(order[start:]), True
            return
        yield order[start:end], False


def _segments(sorted_groups: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Segment boundaries of a group-sorted selection.

    Returns ``(seg_starts, seg_ends, seg_id)``: the first and last sorted
    position of each segment and, per item, the segment it belongs to.
    """
    count = len(sorted_groups)
    starts = np.empty(count, dtype=bool)
    starts[0] = True
    np.not_equal(sorted_groups[1:], sorted_groups[:-1], out=starts[1:])
    seg_starts = np.flatnonzero(starts)
    seg_ends = np.append(seg_starts[1:], count) - 1
    seg_id = np.cumsum(starts) - 1
    return seg_starts, seg_ends, seg_id


#: Relaxation passes before the conservative fixpoint falls back to the
#: per-item replay (only reachable on adversarial cross-row chains).
_MAX_FIXPOINT_PASSES = 60

#: Block size of the conservative fixpoint.  Interference chains cannot
#: span blocks (each block commits its counters before the next starts),
#: so the pass count — the depth of the longest cross-group raise chain —
#: stays small and roughly constant instead of growing with the batch.
_FIXPOINT_BLOCK = 8192


def _grouped_conservative(
    tables: np.ndarray, indexes: np.ndarray, values: np.ndarray, cap: int | None
) -> np.ndarray | None:
    """Blocked driver of :func:`_conservative_block` (see its docstring)."""
    count = values.shape[0]
    if count == 0:
        return np.zeros(0, dtype=np.int64) if cap is not None else None
    if count <= _FIXPOINT_BLOCK:
        return _conservative_block(tables, indexes, values, cap)
    leftovers = np.empty(count, dtype=np.int64) if cap is not None else None
    for start in range(0, count, _FIXPOINT_BLOCK):
        stop = min(start + _FIXPOINT_BLOCK, count)
        block = _conservative_block(tables, indexes[:, start:stop], values[start:stop], cap)
        if leftovers is not None:
            leftovers[start:stop] = block
    return leftovers


def _conservative_block(
    tables: np.ndarray, indexes: np.ndarray, values: np.ndarray, cap: int | None
) -> np.ndarray | None:
    """Shared CU / mice-filter engine: monotone fixpoint relaxation.

    Replaying conservative updates in stream order computes, for item
    ``i``, the write target ``t_i = min(cap, v_i + m_i)`` where ``m_i`` is
    the minimum over the item's cells of ``max(T₀[c], max{t_j : j < i
    touching c})`` — each counter's value at time ``i`` is its initial
    value raised by every earlier target written there, because the update
    is a pure ``max``.  Those equations have a unique solution (induction
    over stream position), and the operator behind them is monotone, so
    iterating it from below converges to exactly the sequential result —
    no round scheduling needed:

    * per row, the inner ``max{t_j : j < i at the same cell}`` is one
      *exclusive segmented running maximum* over the items sorted by
      (cell, stream position) — a whole cell chain propagates in a single
      pass, which is why a handful of passes suffice (each extra pass only
      resolves dependencies that hop between rows);
    * the final counters are ``max(T₀[c], max over t at c)``, one
      segmented maximum per row;
    * per-item leftovers (the mice filter's output) are ``v_i − (t_i −
      m_i)``, read off the converged fixpoint.

    The running maxima are segmented by adding ``segment · (max t + 1)``
    before one global ``np.maximum.accumulate``; if the needed offset would
    overflow ``int64`` (counters beyond ~2⁴⁶ in a 64Ki batch), or the
    passes fail to converge, the call falls back to the bit-identical
    per-item replay.
    """
    count = values.shape[0]
    if count == 0:
        return np.zeros(0, dtype=np.int64) if cap is not None else None
    depth = indexes.shape[0]
    int_min = np.int64(np.iinfo(np.int64).min)

    # Per-row, one-off: items sorted by (cell, stream position), segment
    # structure, and the initial counter reading of every touched cell.
    metas = []
    for row in range(depth):
        cells = indexes[row]
        order = _cell_argsort(cells)
        sorted_cells = cells[order]
        new_cell = np.empty(count, dtype=bool)
        new_cell[0] = True
        np.not_equal(sorted_cells[1:], sorted_cells[:-1], out=new_cell[1:])
        segment = np.cumsum(new_cell) - 1
        seg_starts = np.flatnonzero(new_cell)
        initial = tables[row, sorted_cells]
        metas.append((order, sorted_cells, new_cell, segment, seg_starts, initial))

    # Start the iteration from each tuple group's *own* closed form —
    # ``min(cap, low + S_i)`` with ``low`` the group's entry minimum and
    # ``S`` its value prefix sums.  This is exact absent cross-group
    # interference and always a lower bound on the true targets, so the
    # whole chain of a hot key is resolved before the first pass; the
    # passes only need to propagate the (rare) cross-group raises.
    # A tightly capped table (the 2-bit mice filter) can skip the grouping
    # work: every chain saturates within ``cap`` hops, so the plain
    # per-item lower bound converges just as surely in a handful of passes.
    if cap is not None and cap <= 16:
        low = tables[0, indexes[0]]
        for row in range(1, depth):
            np.minimum(low, tables[row, indexes[row]], out=low)
        targets = np.minimum(low + values, cap)
    else:
        groups = _tuple_groups(indexes)
        group_order = _cell_argsort(groups)
        grouped_values = values[group_order]
        seg_starts_g, _, seg_id_g = _segments(groups[group_order])
        cumulative = np.cumsum(grouped_values)
        base = (cumulative[seg_starts_g] - grouped_values[seg_starts_g])[seg_id_g]
        prefix = cumulative - base
        rep_items = group_order[seg_starts_g]
        rep_cells = indexes[:, rep_items]
        low_rep = tables[np.arange(depth)[:, None], rep_cells].min(axis=0)
        targets = np.empty(count, dtype=np.int64)
        targets[group_order] = low_rep[seg_id_g] + prefix
        if cap is not None:
            np.minimum(targets, cap, out=targets)

    floors = None
    candidate = np.empty((depth, count), dtype=np.int64)
    for _ in range(_MAX_FIXPOINT_PASSES):
        for row, (order, _, new_cell, segment, _, initial) in enumerate(metas):
            sorted_targets = targets[order]
            top = int(sorted_targets.max())
            offset_step = top + 1
            if offset_step > 0 and int(segment[-1]) + 1 > np.iinfo(np.int64).max // offset_step:
                return _replay_conservative(tables, indexes, values, cap)
            scan = sorted_targets + segment * offset_step
            np.maximum.accumulate(scan, out=scan)
            before = np.empty(count, dtype=np.int64)
            before[0] = int_min
            before[1:] = scan[:-1] - segment[1:] * offset_step
            before[new_cell] = int_min  # first toucher of a cell sees no prior target
            candidate[row][order] = np.maximum(initial, before)
        floors = candidate.min(axis=0)
        new_targets = floors + values
        if cap is not None:
            np.minimum(new_targets, cap, out=new_targets)
        if np.array_equal(new_targets, targets):
            break
        targets = new_targets
    else:
        return _replay_conservative(tables, indexes, values, cap)

    # Commit: every touched counter rises to the largest target written to
    # it (max is order-independent, so one segmented maximum per row).
    for row, (order, sorted_cells, _, _, seg_starts, initial) in enumerate(metas):
        sorted_targets = targets[order]
        peaks = np.maximum.reduceat(sorted_targets, seg_starts)
        touched = sorted_cells[seg_starts]
        tables[row, touched] = np.maximum(tables[row, touched], peaks)
    if cap is None:
        return None
    return values - (targets - floors)


def _replay_conservative(
    tables: np.ndarray, indexes: np.ndarray, values: np.ndarray, cap: int | None
) -> np.ndarray | None:
    """Per-item fallback, shared with the python-replay backend."""
    from repro.kernels import python_backend

    if cap is None:
        python_backend.cu_update(tables, indexes, values)
        return None
    return python_backend.saturating_update(tables, indexes, values, cap)


def cu_update(tables: np.ndarray, indexes: np.ndarray, values: np.ndarray) -> None:
    """Conservative updates for a whole batch via fixpoint relaxation."""
    _grouped_conservative(tables, indexes, values, cap=None)


def saturating_update(
    tables: np.ndarray, indexes: np.ndarray, values: np.ndarray, cap: int
) -> np.ndarray:
    """Capped conservative updates; returns per-item leftovers.

    Saturation fast path: an item whose every counter already sits at the
    cap absorbs nothing and leaves no trace — its target is exactly the
    cap, which cannot raise anything, and capped cells can never grow, so
    excluding such items from the fixpoint is exact.  Once a mice filter
    has warmed up this covers most of the stream.
    """
    count = values.shape[0]
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    saturated = tables[0, indexes[0]] >= cap
    for row in range(1, indexes.shape[0]):
        saturated &= tables[row, indexes[row]] >= cap
    if not saturated.any():
        return _grouped_conservative(tables, indexes, values, cap=cap)
    leftovers = np.empty(count, dtype=np.int64)
    leftovers[saturated] = values[saturated]
    live = np.flatnonzero(~saturated)
    if live.size:
        leftovers[live] = _grouped_conservative(
            tables, indexes[:, live], values[live], cap=cap
        )
    return leftovers


def _first_crossing(
    flags: np.ndarray, seg_starts: np.ndarray, sentinel: int
) -> np.ndarray:
    """Per segment, the first sorted position where ``flags`` holds."""
    candidates = np.where(flags, np.arange(len(flags)), sentinel)
    return np.minimum.reduceat(candidates, seg_starts)


def reliable_layer_update(
    key_ids: np.ndarray,
    yes: np.ndarray,
    no: np.ndarray,
    lam_floor: int,
    indexes: np.ndarray,
    item_ids: np.ndarray,
    remaining: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One ReliableSketch layer via conflict-free rounds.

    Groups are keys (same key, same bucket).  A block of ``m`` same-key
    arrivals at one bucket (entry state ``K/Y/N``, prefix sums ``S_i``)
    collapses into one of four closed forms:

    * **empty bucket** — adopt: ``Y = S_m``, ``N = 0``; all settle.
    * **matching key** — ``Y += S_m``; all settle.
    * **foreign key, Y > λ** (lock-eligible; votes can never reach ``Y``
      because they stop at λ < Y): votes accumulate until the first ``i``
      with ``N + S_i > λ``.  No crossing: ``N += S_m``, all settle.
      Crossing at ``i``: the lock absorbs ``max(0, λ - (N + S_{i-1}))``
      from item ``i`` and pins ``N`` at λ; item ``i`` survives with the
      rest and every later item passes through whole (once NO sits at or
      above the floor, nothing more fits under λ).
    * **foreign key, Y ≤ λ** (the lock cannot trigger): votes accumulate
      until the first ``i`` with ``N + S_i ≥ Y`` replaces the incumbent;
      the remaining items then vote YES, leaving ``Y = N + S_m``,
      ``N = Y_old``.  No crossing: ``N += S_m``.  All settle either way.
    """
    count = remaining.shape[0]
    survive = np.zeros(count, dtype=bool)
    excess_out = np.zeros(count, dtype=np.int64)
    changed_parts: list[np.ndarray] = []
    if count == 0:
        return np.empty(0, dtype=np.intp), np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    # Saturation fast path.  A bucket that is already *hard-locked* — NO at
    # or above the threshold floor with YES strictly above it — can never
    # change again within the batch: every foreign arrival takes the lock
    # branch with nothing left to absorb (state untouched, value passes
    # through whole) and every matching arrival only grows YES, which keeps
    # the lock condition true.  Both effects commute, so items landing on
    # such buckets skip the round machinery entirely; this is what keeps
    # steady-state ingest fast once a layer has locked up.
    touched = indexes
    locked_buckets = (no[touched] >= lam_floor) & (yes[touched] > lam_floor)
    if locked_buckets.any():
        on_locked = np.flatnonzero(locked_buckets)
        matching = key_ids[touched[on_locked]] == item_ids[on_locked]
        passing = on_locked[~matching]
        survive[passing] = True
        excess_out[passing] = remaining[passing]
        growing = on_locked[matching]
        if growing.size:
            grow_buckets = indexes[growing]
            order = _cell_argsort(grow_buckets)
            sorted_buckets = grow_buckets[order]
            starts = np.flatnonzero(
                np.concatenate(([True], sorted_buckets[1:] != sorted_buckets[:-1]))
            )
            yes[sorted_buckets[starts]] += np.add.reduceat(
                remaining[growing][order], starts
            )
        live = np.flatnonzero(~locked_buckets)
        if not live.size:
            survivors_out = np.flatnonzero(survive)
            return survivors_out, excess_out[survivors_out], np.empty(0, dtype=np.int64)
        indexes = indexes[live]
        item_ids = item_ids[live]
        live_remaining = remaining[live]
    else:
        live = None
        live_remaining = remaining

    rounds = _schedule(indexes, item_ids)
    for pos, is_tail in _round_slices(rounds, indexes):
        out_pos = pos if live is None else live[pos]
        if is_tail:
            from repro.kernels import python_backend

            tail_survivors, tail_excess, tail_changed = (
                python_backend.reliable_layer_update(
                    key_ids, yes, no, lam_floor,
                    indexes[pos], item_ids[pos], live_remaining[pos],
                )
            )
            survive[out_pos[tail_survivors]] = True
            excess_out[out_pos[tail_survivors]] = tail_excess
            if tail_changed.size:
                changed_parts.append(tail_changed)
            break
        values = live_remaining[pos]
        seg_starts, seg_ends, seg_id = _segments(indexes[pos])
        cumulative = np.cumsum(values)
        base = (cumulative[seg_starts] - values[seg_starts])[seg_id]
        prefix = cumulative - base
        totals = prefix[seg_ends]
        buckets = indexes[pos[seg_starts]]
        group_ids = item_ids[pos[seg_starts]]
        held = key_ids[buckets]
        pos_votes = yes[buckets]
        neg_votes = no[buckets]

        empty = held == EMPTY_ID
        match = held == group_ids
        foreign = ~(empty | match)
        if empty.any():
            adopted = buckets[empty]
            key_ids[adopted] = group_ids[empty]
            yes[adopted] = totals[empty]
            no[adopted] = 0
            changed_parts.append(adopted)
        if match.any():
            yes[buckets[match]] += totals[match]
        if foreign.any():
            sentinel = len(pos)
            item_index = np.arange(sentinel)
            lock_eligible = foreign & (pos_votes > lam_floor)
            # --- lock-eligible segments -------------------------------
            crossed = (neg_votes[seg_id] + prefix) > lam_floor
            first = _first_crossing(crossed, seg_starts, sentinel)
            locked = lock_eligible & (first < sentinel)
            vote_only = lock_eligible & ~locked
            if vote_only.any():
                no[buckets[vote_only]] += totals[vote_only]
            if locked.any():
                safe_first = np.minimum(first, sentinel - 1)
                pre_votes = neg_votes + prefix[safe_first] - values[safe_first]
                absorbed = lam_floor - pre_votes
                no[buckets[locked]] = np.where(
                    absorbed[locked] > 0, lam_floor, pre_votes[locked]
                )
                item_locked = locked[seg_id]
                item_first = first[seg_id]
                survivors = item_locked & (item_index >= item_first)
                item_excess = np.where(
                    item_index == item_first,
                    values - np.maximum(absorbed[seg_id], 0),
                    values,
                )
                survive[out_pos[survivors]] = True
                excess_out[out_pos[survivors]] = item_excess[survivors]
            # --- replacement-eligible segments ------------------------
            vote_eligible = foreign & ~lock_eligible
            reached = (neg_votes[seg_id] + prefix) >= pos_votes[seg_id]
            first_reach = _first_crossing(reached, seg_starts, sentinel)
            replaced = vote_eligible & (first_reach < sentinel)
            outvoted = vote_eligible & ~replaced
            if outvoted.any():
                no[buckets[outvoted]] += totals[outvoted]
            if replaced.any():
                swapped = buckets[replaced]
                key_ids[swapped] = group_ids[replaced]
                no[swapped] = pos_votes[replaced]
                yes[swapped] = (neg_votes + totals)[replaced]
                changed_parts.append(swapped)
    survivors_out = np.flatnonzero(survive)
    changed = (
        np.unique(np.concatenate(changed_parts))
        if changed_parts
        else np.empty(0, dtype=np.int64)
    )
    return survivors_out, excess_out[survivors_out], changed


def elastic_update(
    key_ids: np.ndarray,
    positive: np.ndarray,
    negative: np.ndarray,
    flags: np.ndarray,
    eviction_ratio: int,
    indexes: np.ndarray,
    item_ids: np.ndarray,
    values: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Elastic heavy-part replay via conflict-free rounds.

    Same-key blocks at one bucket collapse like ReliableSketch's, with the
    eviction test ``N + S_i ≥ ratio · P`` in place of the lock: no crossing
    means every item of the block light-inserts itself (``N += S_m``); a
    crossing at ``i`` light-inserts items before ``i``, evicts the
    incumbent (one light insert of ``(K, P)`` for the caller), installs the
    key with ``P = v_i + (S_m - S_i)``, ``N = 1`` and the ejected flag set.
    """
    count = values.shape[0]
    light = np.zeros(count, dtype=bool)
    evicted_ids: list[np.ndarray] = []
    evicted_values: list[np.ndarray] = []
    changed_parts: list[np.ndarray] = []
    if count == 0:
        empty_i64 = np.empty(0, dtype=np.int64)
        return np.empty(0, dtype=np.intp), empty_i64, empty_i64.copy(), empty_i64.copy()
    rounds = _schedule(indexes, item_ids)
    for pos, is_tail in _round_slices(rounds, indexes):
        if is_tail:
            from repro.kernels import python_backend

            tail_light, tail_ids, tail_values, tail_changed = (
                python_backend.elastic_update(
                    key_ids, positive, negative, flags, eviction_ratio,
                    indexes[pos], item_ids[pos], values[pos],
                )
            )
            light[pos[tail_light]] = True
            if tail_ids.size:
                evicted_ids.append(tail_ids)
                evicted_values.append(tail_values)
            if tail_changed.size:
                changed_parts.append(tail_changed)
            break
        item_values = values[pos]
        seg_starts, seg_ends, seg_id = _segments(indexes[pos])
        cumulative = np.cumsum(item_values)
        base = (cumulative[seg_starts] - item_values[seg_starts])[seg_id]
        prefix = cumulative - base
        totals = prefix[seg_ends]
        buckets = indexes[pos[seg_starts]]
        group_ids = item_ids[pos[seg_starts]]
        held = key_ids[buckets]
        incumbency = positive[buckets]
        neg_votes = negative[buckets]

        empty = held == EMPTY_ID
        match = held == group_ids
        foreign = ~(empty | match)
        if empty.any():
            adopted = buckets[empty]
            key_ids[adopted] = group_ids[empty]
            positive[adopted] = totals[empty]
            negative[adopted] = 0
            flags[adopted] = False
            changed_parts.append(adopted)
        if match.any():
            positive[buckets[match]] += totals[match]
        if foreign.any():
            sentinel = len(pos)
            item_index = np.arange(sentinel)
            crossed = (neg_votes[seg_id] + prefix) >= (eviction_ratio * incumbency)[seg_id]
            first = _first_crossing(crossed, seg_starts, sentinel)
            evicting = foreign & (first < sentinel)
            voting = foreign & ~evicting
            if voting.any():
                negative[buckets[voting]] += totals[voting]
            item_foreign = foreign[seg_id]
            item_first = first[seg_id]
            light_here = item_foreign & (item_index < item_first)
            light[pos[light_here]] = True
            if evicting.any():
                swapped = buckets[evicting]
                evicted_ids.append(held[evicting])
                evicted_values.append(incumbency[evicting])
                safe_first = np.minimum(first, sentinel - 1)
                tail = item_values[safe_first] + totals - prefix[safe_first]
                key_ids[swapped] = group_ids[evicting]
                positive[swapped] = tail[evicting]
                negative[swapped] = 1
                flags[swapped] = True
                changed_parts.append(swapped)
    return (
        np.flatnonzero(light),
        np.concatenate(evicted_ids) if evicted_ids else np.empty(0, dtype=np.int64),
        np.concatenate(evicted_values) if evicted_values else np.empty(0, dtype=np.int64),
        np.unique(np.concatenate(changed_parts))
        if changed_parts
        else np.empty(0, dtype=np.int64),
    )

"""The ``numpy-grouped`` kernel backend: conflict-free grouping engine.

Order-dependent sketches (CU, the mice filter, ReliableSketch's bucket
layers, Elastic's heavy part) cannot blindly vectorize a batch: each item's
update depends on the counters its predecessors left behind.  But that
dependency only exists *between items that touch the same counter cell*,
and this backend removes the per-item Python loop with two exact
strategies, one per update algebra:

* **Conservative updates (CU, mice filter)** are pure ``max`` writes, so
  the whole batch reduces to a monotone *fixpoint relaxation* over the
  per-item write targets — a few segmented-scan passes, no sequencing at
  all (see :func:`_grouped_conservative`).

* **Bucket state machines (ReliableSketch layers, Elastic's heavy part)**
  are grouped by key (same key implies same bucket) and *scheduled into
  conflict-free rounds*: along every bucket's toucher sequence, round
  numbers never decrease and strictly increase whenever the key changes.
  Each round's touchers of any bucket therefore form one contiguous
  same-key block — every foreign toucher lands in an earlier or later
  round, blocks apply in stream order, and a block's whole run collapses
  into a closed form (segmented cumulative sums locate the lock /
  replacement / eviction crossing).  The minimal schedule is one segmented
  scan (``round[i] = max(round[i-1] + key_changed, 1)`` along each
  bucket's sequence), so a hot key costs one closed-form update per round
  it straddles, not one update per occurrence.

Correctness rests on two facts, both pinned by the kernel-parity tests:
items that share no cell commute (their updates read and write disjoint
state), so reordering the stream by round number is a sequence of legal
swaps; and a key's consecutive arrivals at one bucket reduce to the closed
forms derived in the function docstrings.  All arithmetic is ``int64``
(see :mod:`repro.kernels.scalar` for why the float lock threshold reduces
exactly to its floor).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.scalar import _MASK64, _SPLITMIX_GAMMA, EMPTY_ID


def _cell_argsort(cells: np.ndarray) -> np.ndarray:
    """Stable argsort of non-negative cell/round indexes.

    Values below 2¹⁶ take NumPy's radix path (an order of magnitude faster
    than the comparison sort); anything larger falls back to the general
    stable sort.
    """
    if cells.size and int(cells.max()) < 65536:
        return cells.astype(np.uint16).argsort(kind="stable")
    return cells.argsort(kind="stable")


#: Shared ramp for position comparisons; grown on demand, sliced read-only
#: (every consumer compares against it without writing).
_IOTA = np.arange(65536)


def _iota(count: int) -> np.ndarray:
    """``np.arange(count)`` without the per-call allocation."""
    global _IOTA
    if count > _IOTA.size:
        _IOTA = np.arange(max(count, 2 * _IOTA.size))
    return _IOTA[:count]


def _tuple_groups(indexes: np.ndarray) -> np.ndarray:
    """Group ids by full per-row index tuple (same tuple, same update).

    An LSD sort — one stable per-row pass, least-significant row first —
    keeps every pass on the radix path for ordinary table widths.
    """
    count = indexes.shape[1]
    order = _cell_argsort(indexes[-1])
    for row in indexes[-2::-1]:
        order = order[_cell_argsort(row[order])]
    cols = indexes[:, order]
    distinct = (cols[:, 1:] != cols[:, :-1]).any(axis=0)
    sorted_ids = np.empty(count, dtype=np.int64)
    sorted_ids[0] = 0
    sorted_ids[1:] = np.cumsum(distinct)
    groups = np.empty(count, dtype=np.int64)
    groups[order] = sorted_ids
    return groups


def _schedule(buckets: np.ndarray, groups: np.ndarray) -> np.ndarray:
    """Round number of every item of a single-row (bucket) kernel.

    Along each bucket's toucher sequence (stable cell sort keeps stream
    order), the round is the index of the item's *run* of consecutive
    same-group arrivals: ``round[i] = round[i-1] + (group changed)``,
    i.e. one plus the number of group boundaries before the item within
    its bucket's sequence — a segmented prefix count.
    """
    count = len(buckets)
    rounds = np.ones(count, dtype=np.int64)
    if count < 2:
        return rounds
    order = _cell_argsort(buckets)
    sorted_cells = buckets[order]
    new_cell = np.empty(count, dtype=bool)
    new_cell[0] = True
    np.not_equal(sorted_cells[1:], sorted_cells[:-1], out=new_cell[1:])
    sorted_groups = groups[order]
    boundary = np.zeros(count, dtype=np.int64)
    boundary[1:] = ~new_cell[1:] & (sorted_groups[1:] != sorted_groups[:-1])
    boundary_count = np.cumsum(boundary)
    segment = np.cumsum(new_cell) - 1
    segment_base = boundary_count[np.flatnonzero(new_cell)][segment]
    rounds[order] = 1 + boundary_count - segment_base
    return rounds


#: Round sizes below this replay per item instead of paying the fixed cost
#: of a closed-form round (a few dozen small array operations).
_SCALAR_TAIL = 24

#: Per-family frontier tuning: (internal sub-chunk length, replay-tail
#: threshold).  The frontier round count tracks the longest key-alternation
#: chain per cell, which grows with the batch length, so an unbounded batch
#: pays quadratically in rounds; stream-order sub-chunks are bit-invisible
#: (the table mutates in place and RNG positions are absolute).  Deeper
#: tables (stricter frontiers, smaller rounds) prefer shorter chunks and
#: earlier replay bails; both pairs sit on the measured 1M-item Zipf
#: throughput plateau.
_COCO_CHUNK, _COCO_TAIL = 8192, 64
_PRECISION_CHUNK, _PRECISION_TAIL = 4096, 128

#: HashPipe's eviction-walk tail threshold.  The pass-only filter already
#: prunes the walk down to contended cells, so closed-form rounds stay
#: densely populated and replay only pays off for the very last stragglers.
_HASHPIPE_TAIL = 8


def _round_slices(rounds: np.ndarray, buckets: np.ndarray):
    """Items ordered by (round, bucket, stream position), sliced per round.

    Within a round every bucket is touched by exactly one group, so the
    bucket index doubles as the segment key — it is small enough for the
    radix sort path, unlike the interned key ids.

    Yields ``(positions, is_tail)`` pairs.  Once a round shrinks below
    :data:`_SCALAR_TAIL` items, all still-pending items are emitted as one
    final tail (``is_tail=True``, in stream order) for per-item replay:
    the schedule guarantees no pending item shares a bucket with an
    already-applied item that follows it in the stream (that would force
    the pending item into an earlier round), so replaying the pending
    suffix item by item is exactly the scalar semantics — and far cheaper
    than running dozens of near-empty closed-form rounds.
    """
    order = _cell_argsort(buckets)
    order = order[_cell_argsort((rounds - 1)[order])]
    sorted_rounds = rounds[order]
    starts = np.flatnonzero(
        np.concatenate(([True], sorted_rounds[1:] != sorted_rounds[:-1]))
    )
    ends = np.append(starts[1:], len(order))
    for start, end in zip(starts, ends):
        if end - start < _SCALAR_TAIL:
            yield np.sort(order[start:]), True
            return
        yield order[start:end], False


def _segments(sorted_groups: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Segment boundaries of a group-sorted selection.

    Returns ``(seg_starts, seg_ends, seg_id)``: the first and last sorted
    position of each segment and, per item, the segment it belongs to.
    """
    count = len(sorted_groups)
    starts = np.empty(count, dtype=bool)
    starts[0] = True
    np.not_equal(sorted_groups[1:], sorted_groups[:-1], out=starts[1:])
    seg_starts = np.flatnonzero(starts)
    seg_ends = np.append(seg_starts[1:], count) - 1
    seg_id = np.cumsum(starts) - 1
    return seg_starts, seg_ends, seg_id


#: Relaxation passes before the conservative fixpoint falls back to the
#: per-item replay (only reachable on adversarial cross-row chains).
_MAX_FIXPOINT_PASSES = 60

#: Block size of the conservative fixpoint.  Interference chains cannot
#: span blocks (each block commits its counters before the next starts),
#: so the pass count — the depth of the longest cross-group raise chain —
#: stays small and roughly constant instead of growing with the batch.
_FIXPOINT_BLOCK = 8192


def _grouped_conservative(
    tables: np.ndarray, indexes: np.ndarray, values: np.ndarray, cap: int | None
) -> np.ndarray | None:
    """Blocked driver of :func:`_conservative_block` (see its docstring)."""
    count = values.shape[0]
    if count == 0:
        return np.zeros(0, dtype=np.int64) if cap is not None else None
    if count <= _FIXPOINT_BLOCK:
        return _conservative_block(tables, indexes, values, cap)
    leftovers = np.empty(count, dtype=np.int64) if cap is not None else None
    for start in range(0, count, _FIXPOINT_BLOCK):
        stop = min(start + _FIXPOINT_BLOCK, count)
        block = _conservative_block(tables, indexes[:, start:stop], values[start:stop], cap)
        if leftovers is not None:
            leftovers[start:stop] = block
    return leftovers


def _conservative_block(
    tables: np.ndarray, indexes: np.ndarray, values: np.ndarray, cap: int | None
) -> np.ndarray | None:
    """Shared CU / mice-filter engine: monotone fixpoint relaxation.

    Replaying conservative updates in stream order computes, for item
    ``i``, the write target ``t_i = min(cap, v_i + m_i)`` where ``m_i`` is
    the minimum over the item's cells of ``max(T₀[c], max{t_j : j < i
    touching c})`` — each counter's value at time ``i`` is its initial
    value raised by every earlier target written there, because the update
    is a pure ``max``.  Those equations have a unique solution (induction
    over stream position), and the operator behind them is monotone, so
    iterating it from below converges to exactly the sequential result —
    no round scheduling needed:

    * per row, the inner ``max{t_j : j < i at the same cell}`` is one
      *exclusive segmented running maximum* over the items sorted by
      (cell, stream position) — a whole cell chain propagates in a single
      pass, which is why a handful of passes suffice (each extra pass only
      resolves dependencies that hop between rows);
    * the final counters are ``max(T₀[c], max over t at c)``, one
      segmented maximum per row;
    * per-item leftovers (the mice filter's output) are ``v_i − (t_i −
      m_i)``, read off the converged fixpoint.

    The running maxima are segmented by adding ``segment · (max t + 1)``
    before one global ``np.maximum.accumulate``; if the needed offset would
    overflow ``int64`` (counters beyond ~2⁴⁶ in a 64Ki batch), or the
    passes fail to converge, the call falls back to the bit-identical
    per-item replay.
    """
    count = values.shape[0]
    if count == 0:
        return np.zeros(0, dtype=np.int64) if cap is not None else None
    depth = indexes.shape[0]
    int_min = np.int64(np.iinfo(np.int64).min)

    # Per-row, one-off: items sorted by (cell, stream position), segment
    # structure, and the initial counter reading of every touched cell.
    metas = []
    for row in range(depth):
        cells = indexes[row]
        order = _cell_argsort(cells)
        sorted_cells = cells[order]
        new_cell = np.empty(count, dtype=bool)
        new_cell[0] = True
        np.not_equal(sorted_cells[1:], sorted_cells[:-1], out=new_cell[1:])
        segment = np.cumsum(new_cell) - 1
        seg_starts = np.flatnonzero(new_cell)
        initial = tables[row, sorted_cells]
        metas.append((order, sorted_cells, new_cell, segment, seg_starts, initial))

    # Start the iteration from each tuple group's *own* closed form —
    # ``min(cap, low + S_i)`` with ``low`` the group's entry minimum and
    # ``S`` its value prefix sums.  This is exact absent cross-group
    # interference and always a lower bound on the true targets, so the
    # whole chain of a hot key is resolved before the first pass; the
    # passes only need to propagate the (rare) cross-group raises.
    # A tightly capped table (the 2-bit mice filter) can skip the grouping
    # work: every chain saturates within ``cap`` hops, so the plain
    # per-item lower bound converges just as surely in a handful of passes.
    if cap is not None and cap <= 16:
        low = tables[0, indexes[0]]
        for row in range(1, depth):
            np.minimum(low, tables[row, indexes[row]], out=low)
        targets = np.minimum(low + values, cap)
    else:
        groups = _tuple_groups(indexes)
        group_order = _cell_argsort(groups)
        grouped_values = values[group_order]
        seg_starts_g, _, seg_id_g = _segments(groups[group_order])
        cumulative = np.cumsum(grouped_values)
        base = (cumulative[seg_starts_g] - grouped_values[seg_starts_g])[seg_id_g]
        prefix = cumulative - base
        rep_items = group_order[seg_starts_g]
        rep_cells = indexes[:, rep_items]
        low_rep = tables[np.arange(depth)[:, None], rep_cells].min(axis=0)
        targets = np.empty(count, dtype=np.int64)
        targets[group_order] = low_rep[seg_id_g] + prefix
        if cap is not None:
            np.minimum(targets, cap, out=targets)

    floors = None
    candidate = np.empty((depth, count), dtype=np.int64)
    for _ in range(_MAX_FIXPOINT_PASSES):
        for row, (order, _, new_cell, segment, _, initial) in enumerate(metas):
            sorted_targets = targets[order]
            top = int(sorted_targets.max())
            offset_step = top + 1
            if offset_step > 0 and int(segment[-1]) + 1 > np.iinfo(np.int64).max // offset_step:
                return _replay_conservative(tables, indexes, values, cap)
            scan = sorted_targets + segment * offset_step
            np.maximum.accumulate(scan, out=scan)
            before = np.empty(count, dtype=np.int64)
            before[0] = int_min
            before[1:] = scan[:-1] - segment[1:] * offset_step
            before[new_cell] = int_min  # first toucher of a cell sees no prior target
            candidate[row][order] = np.maximum(initial, before)
        floors = candidate.min(axis=0)
        new_targets = floors + values
        if cap is not None:
            np.minimum(new_targets, cap, out=new_targets)
        if np.array_equal(new_targets, targets):
            break
        targets = new_targets
    else:
        return _replay_conservative(tables, indexes, values, cap)

    # Commit: every touched counter rises to the largest target written to
    # it (max is order-independent, so one segmented maximum per row).
    for row, (order, sorted_cells, _, _, seg_starts, initial) in enumerate(metas):
        sorted_targets = targets[order]
        peaks = np.maximum.reduceat(sorted_targets, seg_starts)
        touched = sorted_cells[seg_starts]
        tables[row, touched] = np.maximum(tables[row, touched], peaks)
    if cap is None:
        return None
    return values - (targets - floors)


def _replay_conservative(
    tables: np.ndarray, indexes: np.ndarray, values: np.ndarray, cap: int | None
) -> np.ndarray | None:
    """Per-item fallback, shared with the python-replay backend."""
    from repro.kernels import python_backend

    if cap is None:
        python_backend.cu_update(tables, indexes, values)
        return None
    return python_backend.saturating_update(tables, indexes, values, cap)


def cu_update(tables: np.ndarray, indexes: np.ndarray, values: np.ndarray) -> None:
    """Conservative updates for a whole batch via fixpoint relaxation."""
    _grouped_conservative(tables, indexes, values, cap=None)


def saturating_update(
    tables: np.ndarray, indexes: np.ndarray, values: np.ndarray, cap: int
) -> np.ndarray:
    """Capped conservative updates; returns per-item leftovers.

    Saturation fast path: an item whose every counter already sits at the
    cap absorbs nothing and leaves no trace — its target is exactly the
    cap, which cannot raise anything, and capped cells can never grow, so
    excluding such items from the fixpoint is exact.  Once a mice filter
    has warmed up this covers most of the stream.
    """
    count = values.shape[0]
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    saturated = tables[0, indexes[0]] >= cap
    for row in range(1, indexes.shape[0]):
        saturated &= tables[row, indexes[row]] >= cap
    if not saturated.any():
        return _grouped_conservative(tables, indexes, values, cap=cap)
    leftovers = np.empty(count, dtype=np.int64)
    leftovers[saturated] = values[saturated]
    live = np.flatnonzero(~saturated)
    if live.size:
        leftovers[live] = _grouped_conservative(
            tables, indexes[:, live], values[live], cap=cap
        )
    return leftovers


def _first_crossing(
    flags: np.ndarray, seg_starts: np.ndarray, sentinel: int
) -> np.ndarray:
    """Per segment, the first sorted position where ``flags`` holds."""
    candidates = np.where(flags, _iota(len(flags)), sentinel)
    return np.minimum.reduceat(candidates, seg_starts)


def reliable_layer_update(
    key_ids: np.ndarray,
    yes: np.ndarray,
    no: np.ndarray,
    lam_floor: int,
    indexes: np.ndarray,
    item_ids: np.ndarray,
    remaining: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One ReliableSketch layer via conflict-free rounds.

    Groups are keys (same key, same bucket).  A block of ``m`` same-key
    arrivals at one bucket (entry state ``K/Y/N``, prefix sums ``S_i``)
    collapses into one of four closed forms:

    * **empty bucket** — adopt: ``Y = S_m``, ``N = 0``; all settle.
    * **matching key** — ``Y += S_m``; all settle.
    * **foreign key, Y > λ** (lock-eligible; votes can never reach ``Y``
      because they stop at λ < Y): votes accumulate until the first ``i``
      with ``N + S_i > λ``.  No crossing: ``N += S_m``, all settle.
      Crossing at ``i``: the lock absorbs ``max(0, λ - (N + S_{i-1}))``
      from item ``i`` and pins ``N`` at λ; item ``i`` survives with the
      rest and every later item passes through whole (once NO sits at or
      above the floor, nothing more fits under λ).
    * **foreign key, Y ≤ λ** (the lock cannot trigger): votes accumulate
      until the first ``i`` with ``N + S_i ≥ Y`` replaces the incumbent;
      the remaining items then vote YES, leaving ``Y = N + S_m``,
      ``N = Y_old``.  No crossing: ``N += S_m``.  All settle either way.
    """
    count = remaining.shape[0]
    survive = np.zeros(count, dtype=bool)
    excess_out = np.zeros(count, dtype=np.int64)
    changed_parts: list[np.ndarray] = []
    if count == 0:
        return np.empty(0, dtype=np.intp), np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    # Saturation fast path.  A bucket that is already *hard-locked* — NO at
    # or above the threshold floor with YES strictly above it — can never
    # change again within the batch: every foreign arrival takes the lock
    # branch with nothing left to absorb (state untouched, value passes
    # through whole) and every matching arrival only grows YES, which keeps
    # the lock condition true.  Both effects commute, so items landing on
    # such buckets skip the round machinery entirely; this is what keeps
    # steady-state ingest fast once a layer has locked up.
    touched = indexes
    locked_buckets = (no[touched] >= lam_floor) & (yes[touched] > lam_floor)
    if locked_buckets.any():
        on_locked = np.flatnonzero(locked_buckets)
        matching = key_ids[touched[on_locked]] == item_ids[on_locked]
        passing = on_locked[~matching]
        survive[passing] = True
        excess_out[passing] = remaining[passing]
        growing = on_locked[matching]
        if growing.size:
            grow_buckets = indexes[growing]
            order = _cell_argsort(grow_buckets)
            sorted_buckets = grow_buckets[order]
            starts = np.flatnonzero(
                np.concatenate(([True], sorted_buckets[1:] != sorted_buckets[:-1]))
            )
            yes[sorted_buckets[starts]] += np.add.reduceat(
                remaining[growing][order], starts
            )
        live = np.flatnonzero(~locked_buckets)
        if not live.size:
            survivors_out = np.flatnonzero(survive)
            return survivors_out, excess_out[survivors_out], np.empty(0, dtype=np.int64)
        indexes = indexes[live]
        item_ids = item_ids[live]
        live_remaining = remaining[live]
    else:
        live = None
        live_remaining = remaining

    rounds = _schedule(indexes, item_ids)
    for pos, is_tail in _round_slices(rounds, indexes):
        out_pos = pos if live is None else live[pos]
        if is_tail:
            from repro.kernels import python_backend

            tail_survivors, tail_excess, tail_changed = (
                python_backend.reliable_layer_update(
                    key_ids, yes, no, lam_floor,
                    indexes[pos], item_ids[pos], live_remaining[pos],
                )
            )
            survive[out_pos[tail_survivors]] = True
            excess_out[out_pos[tail_survivors]] = tail_excess
            if tail_changed.size:
                changed_parts.append(tail_changed)
            break
        values = live_remaining[pos]
        seg_starts, seg_ends, seg_id = _segments(indexes[pos])
        cumulative = np.cumsum(values)
        base = (cumulative[seg_starts] - values[seg_starts])[seg_id]
        prefix = cumulative - base
        totals = prefix[seg_ends]
        buckets = indexes[pos[seg_starts]]
        group_ids = item_ids[pos[seg_starts]]
        held = key_ids[buckets]
        pos_votes = yes[buckets]
        neg_votes = no[buckets]

        empty = held == EMPTY_ID
        match = held == group_ids
        foreign = ~(empty | match)
        if empty.any():
            adopted = buckets[empty]
            key_ids[adopted] = group_ids[empty]
            yes[adopted] = totals[empty]
            no[adopted] = 0
            changed_parts.append(adopted)
        if match.any():
            yes[buckets[match]] += totals[match]
        if foreign.any():
            sentinel = len(pos)
            item_index = _iota(sentinel)
            lock_eligible = foreign & (pos_votes > lam_floor)
            # --- lock-eligible segments -------------------------------
            crossed = (neg_votes[seg_id] + prefix) > lam_floor
            first = _first_crossing(crossed, seg_starts, sentinel)
            locked = lock_eligible & (first < sentinel)
            vote_only = lock_eligible & ~locked
            if vote_only.any():
                no[buckets[vote_only]] += totals[vote_only]
            if locked.any():
                safe_first = np.minimum(first, sentinel - 1)
                pre_votes = neg_votes + prefix[safe_first] - values[safe_first]
                absorbed = lam_floor - pre_votes
                no[buckets[locked]] = np.where(
                    absorbed[locked] > 0, lam_floor, pre_votes[locked]
                )
                item_locked = locked[seg_id]
                item_first = first[seg_id]
                survivors = item_locked & (item_index >= item_first)
                item_excess = np.where(
                    item_index == item_first,
                    values - np.maximum(absorbed[seg_id], 0),
                    values,
                )
                survive[out_pos[survivors]] = True
                excess_out[out_pos[survivors]] = item_excess[survivors]
            # --- replacement-eligible segments ------------------------
            vote_eligible = foreign & ~lock_eligible
            reached = (neg_votes[seg_id] + prefix) >= pos_votes[seg_id]
            first_reach = _first_crossing(reached, seg_starts, sentinel)
            replaced = vote_eligible & (first_reach < sentinel)
            outvoted = vote_eligible & ~replaced
            if outvoted.any():
                no[buckets[outvoted]] += totals[outvoted]
            if replaced.any():
                swapped = buckets[replaced]
                key_ids[swapped] = group_ids[replaced]
                no[swapped] = pos_votes[replaced]
                yes[swapped] = (neg_votes + totals)[replaced]
                changed_parts.append(swapped)
    survivors_out = np.flatnonzero(survive)
    changed = (
        np.unique(np.concatenate(changed_parts))
        if changed_parts
        else np.empty(0, dtype=np.int64)
    )
    return survivors_out, excess_out[survivors_out], changed


def elastic_update(
    key_ids: np.ndarray,
    positive: np.ndarray,
    negative: np.ndarray,
    flags: np.ndarray,
    eviction_ratio: int,
    indexes: np.ndarray,
    item_ids: np.ndarray,
    values: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Elastic heavy-part replay via conflict-free rounds.

    Same-key blocks at one bucket collapse like ReliableSketch's, with the
    eviction test ``N + S_i ≥ ratio · P`` in place of the lock: no crossing
    means every item of the block light-inserts itself (``N += S_m``); a
    crossing at ``i`` light-inserts items before ``i``, evicts the
    incumbent (one light insert of ``(K, P)`` for the caller), installs the
    key with ``P = v_i + (S_m - S_i)``, ``N = 1`` and the ejected flag set.
    """
    count = values.shape[0]
    light = np.zeros(count, dtype=bool)
    evicted_ids: list[np.ndarray] = []
    evicted_values: list[np.ndarray] = []
    changed_parts: list[np.ndarray] = []
    if count == 0:
        empty_i64 = np.empty(0, dtype=np.int64)
        return np.empty(0, dtype=np.intp), empty_i64, empty_i64.copy(), empty_i64.copy()
    rounds = _schedule(indexes, item_ids)
    for pos, is_tail in _round_slices(rounds, indexes):
        if is_tail:
            from repro.kernels import python_backend

            tail_light, tail_ids, tail_values, tail_changed = (
                python_backend.elastic_update(
                    key_ids, positive, negative, flags, eviction_ratio,
                    indexes[pos], item_ids[pos], values[pos],
                )
            )
            light[pos[tail_light]] = True
            if tail_ids.size:
                evicted_ids.append(tail_ids)
                evicted_values.append(tail_values)
            if tail_changed.size:
                changed_parts.append(tail_changed)
            break
        item_values = values[pos]
        seg_starts, seg_ends, seg_id = _segments(indexes[pos])
        cumulative = np.cumsum(item_values)
        base = (cumulative[seg_starts] - item_values[seg_starts])[seg_id]
        prefix = cumulative - base
        totals = prefix[seg_ends]
        buckets = indexes[pos[seg_starts]]
        group_ids = item_ids[pos[seg_starts]]
        held = key_ids[buckets]
        incumbency = positive[buckets]
        neg_votes = negative[buckets]

        empty = held == EMPTY_ID
        match = held == group_ids
        foreign = ~(empty | match)
        if empty.any():
            adopted = buckets[empty]
            key_ids[adopted] = group_ids[empty]
            positive[adopted] = totals[empty]
            negative[adopted] = 0
            flags[adopted] = False
            changed_parts.append(adopted)
        if match.any():
            positive[buckets[match]] += totals[match]
        if foreign.any():
            sentinel = len(pos)
            item_index = _iota(sentinel)
            crossed = (neg_votes[seg_id] + prefix) >= (eviction_ratio * incumbency)[seg_id]
            first = _first_crossing(crossed, seg_starts, sentinel)
            evicting = foreign & (first < sentinel)
            voting = foreign & ~evicting
            if voting.any():
                negative[buckets[voting]] += totals[voting]
            item_foreign = foreign[seg_id]
            item_first = first[seg_id]
            light_here = item_foreign & (item_index < item_first)
            light[pos[light_here]] = True
            if evicting.any():
                swapped = buckets[evicting]
                evicted_ids.append(held[evicting])
                evicted_values.append(incumbency[evicting])
                safe_first = np.minimum(first, sentinel - 1)
                tail = item_values[safe_first] + totals - prefix[safe_first]
                key_ids[swapped] = group_ids[evicting]
                positive[swapped] = tail[evicting]
                negative[swapped] = 1
                flags[swapped] = True
                changed_parts.append(swapped)
    return (
        np.flatnonzero(light),
        np.concatenate(evicted_ids) if evicted_ids else np.empty(0, dtype=np.int64),
        np.concatenate(evicted_values) if evicted_values else np.empty(0, dtype=np.int64),
        np.unique(np.concatenate(changed_parts))
        if changed_parts
        else np.empty(0, dtype=np.int64),
    )


def counter_rand_batch(seed: int, positions: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.kernels.scalar.counter_rand`.

    ``uint64`` wraparound is NumPy's native modular arithmetic, so every
    intermediate matches the masked Python-int computation bit for bit, and
    ``z >> 11 < 2^53`` makes the float conversion exact.
    """
    one = np.uint64(1)
    z = np.uint64(seed & _MASK64) + (positions.astype(np.uint64) + one) * np.uint64(
        _SPLITMIX_GAMMA
    )
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    z ^= z >> np.uint64(31)
    return (z >> np.uint64(11)).astype(np.float64) * (2.0**-53)


def _frontier(
    indexes: np.ndarray,
    item_ids: np.ndarray,
    row_orders: list[np.ndarray],
    eligible: np.ndarray,
) -> np.ndarray:
    """Clear ``eligible`` down to a multi-row frontier round (Coco / PRECISION).

    An item is *eligible* when, in every row, it sits inside the leading
    same-key run of its cell's pending queue (sorted by cell, ties in
    stream order).  Eligible items of one key form a prefix of that key's
    pending arrivals, and no two eligible keys share a cell (a shared
    cell's leading run holds one key), so all eligible groups commute and
    each collapses with its closed form; the earliest pending item heads
    every queue it is in, so at least one item is always eligible.

    ``row_orders[row]`` lists the pending items sorted by (cell, stream
    position); ``eligible`` arrives as the pending mask.  The orders are
    computed once per chunk and *filtered* as rounds retire items — a
    sorted array stays sorted under filtering — so no round re-sorts.
    """
    for row, order in enumerate(row_orders):
        seg_starts, _, seg_id = _segments(indexes[row][order])
        sorted_ids = item_ids[order]
        foreign = sorted_ids != sorted_ids[seg_starts][seg_id]
        first = _first_crossing(foreign, seg_starts, order.size)
        eligible[order[_iota(order.size) >= first[seg_id]]] = False
    return eligible


def _row_min(stack: np.ndarray, offset: np.ndarray | int = 0) -> np.ndarray:
    """Per column of ``(d, n) + offset/k`` forms: ``min_k max(s_k, ...)``.

    The water-filling level of Coco's contended runs: with ``stack`` the
    ascending per-column entry counts ``s`` and their prefix sums ``P``,
    the minimum counter after ``w`` unit pours is
    ``min_{k=1..d} max(s_k, (P_k + w) // k)`` (pours fill the lowest
    counters first; the k-th term is the level assuming the k smallest
    counters share the pours).
    """
    s, prefix = stack
    level = None
    for k in range(s.shape[0]):
        candidate = np.maximum(s[k], (prefix[k] + offset) // (k + 1))
        level = candidate if level is None else np.minimum(level, candidate)
    return level


def coco_update(
    key_ids: np.ndarray,
    counts: np.ndarray,
    indexes: np.ndarray,
    item_ids: np.ndarray,
    values: np.ndarray,
    positions: np.ndarray,
    seed: int,
) -> tuple[np.ndarray, np.ndarray]:
    """CocoSketch batch update via conflict-free frontier rounds.

    Each round takes the :func:`_frontier` of the pending items and
    collapses every eligible same-key run with a closed form against the
    run's d entry cells:

    * **some row matches** — the first matching row absorbs the whole run.
    * **no match, some row empty** — the first empty row is the first
      strict minimum (empties read 0, occupied cells are ≥ 1), so it
      adopts the key with the run total.
    * **all rows foreign, unit values** — the run is a sequence of unit
      pours into the current first-minimum cell, each followed by the
      ``1 / (min + 1)`` replacement draw.  Water-filling gives the minimum
      after ``w`` pours in closed form (:func:`_row_min`), the per-item
      draws come from :func:`counter_rand_batch`, and the final counters
      are the entry counts leveled up to the failure level plus the
      leftover pours in table order; the first successful draw installs
      the key at the then-minimum cell and the rest of the run merges
      there.
    * **all rows foreign, weighted values** — a weighted pour moves the
      minimum in value-dependent jumps that have no closed level formula,
      so these (rare) groups replay per item.

    Rounds whose pending or eligible set drops below the family's replay
    tail replay the whole pending suffix in stream order instead (legal
    for the same reason as :func:`_round_slices`'s tail).

    Batches longer than :data:`_COCO_CHUNK` run as stream-order
    sub-chunks: the round count tracks the longest key-alternation chain
    per cell, which grows with the batch, so bounding the chunk bounds the
    rounds.  Sequential sub-batches compose (the table mutates in place)
    and ``positions`` carries absolute RNG indexes, so the split is
    bit-invisible.
    """
    count = item_ids.shape[0]
    changed_rows_parts: list[np.ndarray] = []
    changed_cells_parts: list[np.ndarray] = []
    if count == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    if count > _COCO_CHUNK:
        for lo in range(0, count, _COCO_CHUNK):
            hi = min(lo + _COCO_CHUNK, count)
            rows, cells = coco_update(
                key_ids, counts, indexes[:, lo:hi], item_ids[lo:hi],
                values[lo:hi], positions[lo:hi], seed,
            )
            changed_rows_parts.append(rows)
            changed_cells_parts.append(cells)
        return (
            np.concatenate(changed_rows_parts),
            np.concatenate(changed_cells_parts),
        )
    depth = indexes.shape[0]
    row_index = np.arange(depth)

    def replay(items: np.ndarray) -> None:
        from repro.kernels import python_backend

        rows, cells = python_backend.coco_update(
            key_ids, counts, indexes[:, items], item_ids[items],
            values[items], positions[items], seed,
        )
        changed_rows_parts.append(rows)
        changed_cells_parts.append(cells)

    # Sorted orders (per-row by cell, global by key id; ties in stream
    # order) are computed once and filtered as rounds retire items.
    row_orders = [_cell_argsort(row_cells) for row_cells in indexes]
    key_order = _cell_argsort(item_ids)
    alive = np.ones(count, dtype=bool)
    pending = count
    while pending:
        if pending < _COCO_TAIL:
            replay(np.flatnonzero(alive))
            break
        eligible = _frontier(indexes, item_ids, row_orders, alive.copy())
        sel = key_order[eligible[key_order]]
        if sel.size < _COCO_TAIL:
            replay(np.flatnonzero(alive))
            break
        ids = item_ids[sel]
        vals = values[sel]
        seg_starts, seg_ends, seg_id = _segments(ids)
        cumulative = np.cumsum(vals)
        base = (cumulative[seg_starts] - vals[seg_starts])[seg_id]
        prefix = cumulative - base
        totals = prefix[seg_ends]
        reps = sel[seg_starts]
        group_count = reps.size
        g_index = _iota(group_count)
        gcells = indexes[:, reps]
        gids = ids[seg_starts]
        held = key_ids[row_index[:, None], gcells]

        match_row = np.full(group_count, depth, dtype=np.int64)
        empty_row = np.full(group_count, depth, dtype=np.int64)
        for row in range(depth - 1, -1, -1):
            match_row = np.where(held[row] == gids, row, match_row)
            empty_row = np.where(held[row] == EMPTY_ID, row, empty_row)

        matched = match_row < depth
        if matched.any():
            rows_m = match_row[matched]
            cells_m = gcells[rows_m, g_index[matched]]
            counts[rows_m, cells_m] += totals[matched]
        fresh = ~matched & (empty_row < depth)
        if fresh.any():
            rows_f = empty_row[fresh]
            cells_f = gcells[rows_f, g_index[fresh]]
            key_ids[rows_f, cells_f] = gids[fresh]
            counts[rows_f, cells_f] = totals[fresh]
            changed_rows_parts.append(rows_f)
            changed_cells_parts.append(cells_f)
        contended = ~matched & (empty_row == depth)
        if contended.any():
            all_unit = np.maximum.reduceat(vals, seg_starts) == 1
            hard = contended & ~all_unit
            if hard.any():
                replay(np.sort(sel[hard[seg_id]]))
            easy = contended & all_unit
            if easy.any():
                idx = np.flatnonzero(easy)
                bins = counts[row_index[:, None], gcells[:, idx]]
                stack = np.sort(bins, axis=0)
                stack = (stack, np.cumsum(stack, axis=0))
                run_len = (seg_ends - seg_starts + 1)[idx]
                # Per-item replacement draws against the closed-form minimum.
                e_items = np.flatnonzero(easy[seg_id])
                e_local = np.full(group_count, -1, dtype=np.int64)
                e_local[idx] = np.arange(idx.size)
                pours = (np.arange(len(sel)) - seg_starts[seg_id])[e_items]
                gl = e_local[seg_id[e_items]]
                minima = _row_min((stack[0][:, gl], stack[1][:, gl]), pours)
                draws = counter_rand_batch(seed, positions[sel[e_items]])
                flags = np.zeros(len(sel), dtype=bool)
                flags[e_items] = draws < 1.0 / (minima + 1).astype(np.float64)
                first = _first_crossing(flags, seg_starts, len(sel))[idx]
                succeeded = first <= seg_ends[idx]
                poured = np.where(succeeded, first - seg_starts[idx], run_len)
                # Entry counts after the failed pours: level up to L, then
                # the leftover pours raise the first eligible bins +1 each
                # in table order.
                level = _row_min(stack, poured)
                cost = np.maximum(level[None, :] - bins, 0).sum(axis=0)
                leftover = poured - cost
                eligible_bins = bins <= level[None, :]
                filled = np.maximum(bins, level[None, :])
                rank = np.cumsum(eligible_bins, axis=0)
                filled += eligible_bins & (rank <= leftover[None, :])
                minimum_row = np.argmin(filled, axis=0)
                filled[minimum_row, np.arange(idx.size)] += run_len - poured
                cells_e = gcells[:, idx]
                for row in range(depth):
                    counts[row, cells_e[row]] = filled[row]
                if succeeded.any():
                    sc = np.flatnonzero(succeeded)
                    rows_s = minimum_row[sc]
                    cells_s = cells_e[rows_s, sc]
                    key_ids[rows_s, cells_s] = gids[idx[sc]]
                    changed_rows_parts.append(rows_s)
                    changed_cells_parts.append(cells_s)
        alive &= ~eligible
        pending -= sel.size
        key_order = key_order[~eligible[key_order]]
        row_orders = [order[~eligible[order]] for order in row_orders]
    return (
        np.concatenate(changed_rows_parts)
        if changed_rows_parts
        else np.empty(0, dtype=np.int64),
        np.concatenate(changed_cells_parts)
        if changed_cells_parts
        else np.empty(0, dtype=np.int64),
    )


def precision_update(
    key_ids: np.ndarray,
    counts: np.ndarray,
    indexes: np.ndarray,
    item_ids: np.ndarray,
    values: np.ndarray,
    positions: np.ndarray,
    seed: int,
) -> tuple[np.ndarray, np.ndarray, int]:
    """PRECISION batch update via conflict-free frontier rounds.

    Same frontier machinery as :func:`coco_update`; the closed forms are
    simpler because a failed recirculation draw leaves the table untouched:

    * the winner row (first match or first empty, whichever is earlier)
      absorbs or adopts the whole run;
    * an all-foreign run sees a *constant* minimum entry ``C`` until a draw
      succeeds — items draw against ``value / (C + value)`` independently,
      the first success replaces the minimum entry (``count = C + value``)
      and the rest of the run merges there.  Closed for arbitrary values,
      so there is no weighted replay path.

    Long batches split into stream-order sub-chunks of
    :data:`_PRECISION_CHUNK` items, exactly as in :func:`coco_update`.
    """
    count = item_ids.shape[0]
    changed_rows_parts: list[np.ndarray] = []
    changed_cells_parts: list[np.ndarray] = []
    recirculations = 0
    if count == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 0
    if count > _PRECISION_CHUNK:
        for lo in range(0, count, _PRECISION_CHUNK):
            hi = min(lo + _PRECISION_CHUNK, count)
            rows, cells, recirculated = precision_update(
                key_ids, counts, indexes[:, lo:hi], item_ids[lo:hi],
                values[lo:hi], positions[lo:hi], seed,
            )
            changed_rows_parts.append(rows)
            changed_cells_parts.append(cells)
            recirculations += recirculated
        return (
            np.concatenate(changed_rows_parts),
            np.concatenate(changed_cells_parts),
            recirculations,
        )
    depth = indexes.shape[0]
    row_index = np.arange(depth)

    def replay(items: np.ndarray) -> int:
        from repro.kernels import python_backend

        rows, cells, recirculated = python_backend.precision_update(
            key_ids, counts, indexes[:, items], item_ids[items],
            values[items], positions[items], seed,
        )
        changed_rows_parts.append(rows)
        changed_cells_parts.append(cells)
        return recirculated

    row_orders = [_cell_argsort(row_cells) for row_cells in indexes]
    key_order = _cell_argsort(item_ids)
    alive = np.ones(count, dtype=bool)
    pending = count
    while pending:
        if pending < _PRECISION_TAIL:
            recirculations += replay(np.flatnonzero(alive))
            break
        eligible = _frontier(indexes, item_ids, row_orders, alive.copy())
        sel = key_order[eligible[key_order]]
        if sel.size < _PRECISION_TAIL:
            recirculations += replay(np.flatnonzero(alive))
            break
        ids = item_ids[sel]
        vals = values[sel]
        seg_starts, seg_ends, seg_id = _segments(ids)
        cumulative = np.cumsum(vals)
        base = (cumulative[seg_starts] - vals[seg_starts])[seg_id]
        prefix = cumulative - base
        totals = prefix[seg_ends]
        reps = sel[seg_starts]
        group_count = reps.size
        g_index = _iota(group_count)
        gcells = indexes[:, reps]
        gids = ids[seg_starts]
        held = key_ids[row_index[:, None], gcells]

        match_row = np.full(group_count, depth, dtype=np.int64)
        empty_row = np.full(group_count, depth, dtype=np.int64)
        for row in range(depth - 1, -1, -1):
            match_row = np.where(held[row] == gids, row, match_row)
            empty_row = np.where(held[row] == EMPTY_ID, row, empty_row)

        matched = match_row < empty_row
        if matched.any():
            rows_m = match_row[matched]
            cells_m = gcells[rows_m, g_index[matched]]
            counts[rows_m, cells_m] += totals[matched]
        fresh = empty_row < match_row
        if fresh.any():
            rows_f = empty_row[fresh]
            cells_f = gcells[rows_f, g_index[fresh]]
            key_ids[rows_f, cells_f] = gids[fresh]
            counts[rows_f, cells_f] = totals[fresh]
            changed_rows_parts.append(rows_f)
            changed_cells_parts.append(cells_f)
        contended = np.minimum(match_row, empty_row) == depth
        if contended.any():
            idx = np.flatnonzero(contended)
            sub = counts[row_index[:, None], gcells[:, idx]]
            minimum_row = np.argmin(sub, axis=0)
            entry_min = sub[minimum_row, np.arange(idx.size)]
            c_local = np.full(group_count, -1, dtype=np.int64)
            c_local[idx] = np.arange(idx.size)
            c_items = np.flatnonzero(contended[seg_id])
            gl = c_local[seg_id[c_items]]
            item_vals = vals[c_items]
            draws = counter_rand_batch(seed, positions[sel[c_items]])
            denominator = (entry_min[gl] + item_vals).astype(np.float64)
            flags = np.zeros(len(sel), dtype=bool)
            flags[c_items] = draws < item_vals.astype(np.float64) / denominator
            first = _first_crossing(flags, seg_starts, len(sel))[idx]
            succeeded = first <= seg_ends[idx]
            if succeeded.any():
                sc = np.flatnonzero(succeeded)
                f = first[sc]
                rows_s = minimum_row[sc]
                cells_s = gcells[rows_s, idx[sc]]
                counts[rows_s, cells_s] = (
                    entry_min[sc] + vals[f] + totals[idx[sc]] - prefix[f]
                )
                key_ids[rows_s, cells_s] = gids[idx[sc]]
                changed_rows_parts.append(rows_s)
                changed_cells_parts.append(cells_s)
                recirculations += int(sc.size)
        alive &= ~eligible
        pending -= sel.size
        key_order = key_order[~eligible[key_order]]
        row_orders = [order[~eligible[order]] for order in row_orders]
    return (
        np.concatenate(changed_rows_parts)
        if changed_rows_parts
        else np.empty(0, dtype=np.int64),
        np.concatenate(changed_cells_parts)
        if changed_cells_parts
        else np.empty(0, dtype=np.int64),
        recirculations,
    )


def hashpipe_update(
    key_ids: np.ndarray,
    counts: np.ndarray,
    stage_cells: np.ndarray,
    item_ids: np.ndarray,
    values: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """HashPipe batch update: stage-1 rounds, then a per-stage token pipeline.

    The pipeline stages touch disjoint arrays, so the batch separates into
    phases without changing any outcome: first *all* stage-1 transitions
    (closed per-cell form — stage 1 installs unconditionally, so each
    same-key run installs its total, evicting the previous holder as a
    *token* stamped with the evicting item's stream position, and only the
    last run of a cell survives), then the walk stages in order, each
    processing its tokens in stream-position order with the conflict-free
    round machinery.  A token group at one cell either merges
    (match), settles (empty), or passes tokens through until the first one
    that beats the incumbent — that token swaps in (absorbing the rest of
    the group: they now match) and the incumbent is emitted at its
    position.  Tokens cannot overtake (each stage emits in position
    order), so per-stage position order is exactly the scalar interleaving.

    Returns ``(changed_rows, changed_cells, stage_entries)`` where
    ``stage_entries[row]`` counts tokens entering walk stage ``row`` (the
    scalar per-stage hash-call accounting).
    """
    depth = key_ids.shape[0]
    count = item_ids.shape[0]
    stage_entries = np.zeros(depth, dtype=np.int64)
    changed_rows_parts: list[np.ndarray] = []
    changed_cells_parts: list[np.ndarray] = []
    if count == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), stage_entries

    from repro.kernels.scalar import hashpipe_token_apply

    token_pos_parts: list[np.ndarray] = []
    token_id_parts: list[np.ndarray] = []
    token_count_parts: list[np.ndarray] = []

    # --- Phase A: stage 1 -------------------------------------------------
    # Stage 1 always installs, so a cell's batch outcome is a pure function
    # of its run sequence (consecutive same-key arrivals, stream order kept
    # by the stable cell sort): each run installs its key with its total,
    # evicting the previous holder as a token at the run's first (evicting)
    # item; only the last run survives, and a first run whose key matches
    # the pre-batch incumbent merges instead of evicting.  One sorted pass,
    # no rounds.
    cells0 = stage_cells[0, item_ids]
    order = _cell_argsort(cells0)
    sc = cells0[order]
    sids = item_ids[order]
    svals = values[order]
    new_cell = np.empty(count, dtype=bool)
    new_cell[0] = True
    np.not_equal(sc[1:], sc[:-1], out=new_cell[1:])
    new_run = new_cell.copy()
    new_run[1:] |= sids[1:] != sids[:-1]
    run_starts = np.flatnonzero(new_run)
    run_count = run_starts.size
    run_ends = np.empty(run_count, dtype=np.int64)
    run_ends[:-1] = run_starts[1:] - 1
    run_ends[-1] = count - 1
    cumulative = np.cumsum(svals)
    run_totals = cumulative[run_ends] - cumulative[run_starts] + svals[run_starts]
    run_cells = sc[run_starts]
    run_keys = sids[run_starts]
    run_pos = order[run_starts]
    first_run = new_cell[run_starts]
    held = key_ids[0, run_cells]
    incumbent = counts[0, run_cells]
    merged = first_run & (held == run_keys)
    eff_totals = run_totals + np.where(merged, incumbent, 0)
    evicts_incumbent = first_run & ~merged & (held != EMPTY_ID)
    if evicts_incumbent.any():
        token_pos_parts.append(run_pos[evicts_incumbent])
        token_id_parts.append(held[evicts_incumbent])
        token_count_parts.append(incumbent[evicts_incumbent])
    later = np.flatnonzero(~first_run)
    if later.size:
        token_pos_parts.append(run_pos[later])
        token_id_parts.append(run_keys[later - 1])
        token_count_parts.append(eff_totals[later - 1])
    last_run = np.empty(run_count, dtype=bool)
    last_run[:-1] = first_run[1:]
    last_run[-1] = True
    survivors = np.flatnonzero(last_run)
    key_ids[0, run_cells[survivors]] = run_keys[survivors]
    counts[0, run_cells[survivors]] = eff_totals[survivors]
    installed = ~merged
    if installed.any():
        cells_i = run_cells[installed]
        changed_rows_parts.append(np.zeros(cells_i.size, dtype=np.int64))
        changed_cells_parts.append(cells_i)

    token_pos = np.concatenate(token_pos_parts) if token_pos_parts else np.empty(0, dtype=np.int64)
    token_ids = np.concatenate(token_id_parts) if token_id_parts else np.empty(0, dtype=np.int64)
    token_counts = np.concatenate(token_count_parts) if token_count_parts else np.empty(0, dtype=np.int64)
    order = _cell_argsort(token_pos)
    token_pos, token_ids, token_counts = token_pos[order], token_ids[order], token_counts[order]

    # --- Phase B: the eviction walk, one stage at a time ------------------
    for stage in range(1, depth):
        if not token_ids.size:
            break
        stage_entries[stage] = token_ids.size
        next_pos_parts: list[np.ndarray] = []
        next_id_parts: list[np.ndarray] = []
        next_count_parts: list[np.ndarray] = []
        cells_r = stage_cells[stage, token_ids]
        # Pass-only short-circuit.  Within one stage a cell's counter only
        # ever grows (merges and installs add, a swap installs a strictly
        # larger total), so a cell whose incumbent is non-empty, matches no
        # token key and outranks every token count provably never changes:
        # all of its tokens pass straight through.  Under a skewed stream
        # most cells hold heavy keys while the walking tokens are mice, so
        # the round machinery below typically sees only a small remnant.
        order = _cell_argsort(cells_r)
        sc = cells_r[order]
        seg_starts, _, seg_id = _segments(sc)
        held_c = key_ids[stage, sc[seg_starts]]
        incumbent_c = counts[stage, sc[seg_starts]]
        token_max = np.maximum.reduceat(token_counts[order], seg_starts)
        match_any = np.logical_or.reduceat(
            token_ids[order] == held_c[seg_id], seg_starts
        )
        inactive = (held_c != EMPTY_ID) & ~match_any & (token_max <= incumbent_c)
        active_tokens = ~inactive[seg_id]
        if not active_tokens.any():
            continue  # every token passes; arrays stay position-sorted
        if not active_tokens.all():
            pass_sel = order[~active_tokens]
            next_pos_parts.append(token_pos[pass_sel])
            next_id_parts.append(token_ids[pass_sel])
            next_count_parts.append(token_counts[pass_sel])
        s_sel = order[active_tokens]
        s_cells = sc[active_tokens]
        s_pos = token_pos[s_sel]
        s_ids = token_ids[s_sel]
        s_counts = token_counts[s_sel]
        # Rounds, computed in the (cell, position)-sorted domain the filter
        # already built instead of re-sorting through ``_schedule`` /
        # ``_round_slices``: an item's round is the index of its run of
        # consecutive same-key arrivals within its cell's sequence, and one
        # stable radix pass on the round numbers yields the
        # (round, cell, position) processing order.
        remnant = s_sel.size
        new_cell = np.empty(remnant, dtype=bool)
        new_cell[0] = True
        np.not_equal(s_cells[1:], s_cells[:-1], out=new_cell[1:])
        boundary = np.zeros(remnant, dtype=np.int64)
        boundary[1:] = ~new_cell[1:] & (s_ids[1:] != s_ids[:-1])
        boundary_count = np.cumsum(boundary)
        segment = np.cumsum(new_cell) - 1
        rounds = boundary_count - boundary_count[np.flatnonzero(new_cell)][segment]
        by_round = _cell_argsort(rounds)
        sorted_rounds = rounds[by_round]
        g_cells = s_cells[by_round]
        g_counts = s_counts[by_round]
        g_ids = s_ids[by_round]
        # (round, cell) segment structure and in-segment prefix sums for
        # *all* rounds in one pass; every round's slice below reuses these
        # instead of re-deriving its own segments and cumulative sums.
        new_seg = np.empty(remnant, dtype=bool)
        new_seg[0] = True
        new_seg[1:] = (sorted_rounds[1:] != sorted_rounds[:-1]) | (
            g_cells[1:] != g_cells[:-1]
        )
        g_seg_starts = np.flatnonzero(new_seg)
        g_seg_id = np.cumsum(new_seg) - 1
        g_seg_ends = np.append(g_seg_starts[1:], remnant) - 1
        g_cum = np.cumsum(g_counts)
        g_base = g_cum[g_seg_starts] - g_counts[g_seg_starts]
        g_prefix = g_cum - g_base[g_seg_id]
        g_totals = g_prefix[g_seg_ends]
        slice_starts = np.flatnonzero(
            np.concatenate(([True], sorted_rounds[1:] != sorted_rounds[:-1]))
        )
        slice_ends = np.append(slice_starts[1:], remnant)
        for start, end in zip(slice_starts.tolist(), slice_ends.tolist()):
            if end - start < _HASHPIPE_TAIL:
                pending = by_round[start:]
                pos = pending[_cell_argsort(s_pos[pending])]
                tail_pos = []
                tail_ids = []
                tail_counts = []
                tail_changed = []
                cell_list = s_cells[pos].tolist()
                id_list = s_ids[pos].tolist()
                count_list = s_counts[pos].tolist()
                stream_list = s_pos[pos].tolist()
                for offset in range(len(cell_list)):
                    carry, key_changed = hashpipe_token_apply(
                        key_ids[stage], counts[stage], cell_list[offset],
                        id_list[offset], count_list[offset],
                    )
                    if key_changed:
                        tail_changed.append(cell_list[offset])
                    if carry is not None:
                        tail_pos.append(stream_list[offset])
                        tail_ids.append(carry[0])
                        tail_counts.append(carry[1])
                if tail_changed:
                    cells_t = np.asarray(tail_changed, dtype=np.int64)
                    changed_rows_parts.append(np.full(cells_t.size, stage, dtype=np.int64))
                    changed_cells_parts.append(cells_t)
                next_pos_parts.append(np.asarray(tail_pos, dtype=np.int64))
                next_id_parts.append(np.asarray(tail_ids, dtype=np.int64))
                next_count_parts.append(np.asarray(tail_counts, dtype=np.int64))
                break
            pos = by_round[start:end]
            seg_lo = g_seg_id[start]
            seg_hi = g_seg_id[end - 1] + 1
            seg_starts = g_seg_starts[seg_lo:seg_hi] - start
            seg_ends = g_seg_ends[seg_lo:seg_hi] - start
            seg_id = g_seg_id[start:end] - seg_lo
            group_counts = g_counts[start:end]
            prefix = g_prefix[start:end]
            totals = g_totals[seg_lo:seg_hi]
            gcells = g_cells[g_seg_starts[seg_lo:seg_hi]]
            gids = g_ids[g_seg_starts[seg_lo:seg_hi]]
            held = key_ids[stage, gcells]
            incumbent = counts[stage, gcells]
            match = held == gids
            empty = held == EMPTY_ID
            foreign = ~(match | empty)
            if match.any():
                counts[stage, gcells[match]] += totals[match]
            if empty.any():
                cells_i = gcells[empty]
                key_ids[stage, cells_i] = gids[empty]
                counts[stage, cells_i] = totals[empty]
                changed_rows_parts.append(np.full(cells_i.size, stage, dtype=np.int64))
                changed_cells_parts.append(cells_i)
            if foreign.any():
                sentinel = len(pos)
                crossed = foreign[seg_id] & (group_counts > incumbent[seg_id])
                first = _first_crossing(crossed, seg_starts, sentinel)
                item_index = _iota(sentinel)
                passing = foreign[seg_id] & (item_index < first[seg_id])
                if passing.any():
                    through = pos[passing]
                    next_pos_parts.append(s_pos[through])
                    next_id_parts.append(s_ids[through])
                    next_count_parts.append(s_counts[through])
                swapped = foreign & (first <= seg_ends)
                if swapped.any():
                    si = np.flatnonzero(swapped)
                    f = first[si]
                    cells_s = gcells[si]
                    next_pos_parts.append(s_pos[pos[f]])
                    next_id_parts.append(held[si])
                    next_count_parts.append(incumbent[si])
                    key_ids[stage, cells_s] = gids[si]
                    counts[stage, cells_s] = (
                        group_counts[f] + totals[si] - prefix[f]
                    )
                    changed_rows_parts.append(np.full(cells_s.size, stage, dtype=np.int64))
                    changed_cells_parts.append(cells_s)
        token_pos = np.concatenate(next_pos_parts) if next_pos_parts else np.empty(0, dtype=np.int64)
        token_ids = np.concatenate(next_id_parts) if next_id_parts else np.empty(0, dtype=np.int64)
        token_counts = np.concatenate(next_count_parts) if next_count_parts else np.empty(0, dtype=np.int64)
        order = _cell_argsort(token_pos)
        token_pos, token_ids, token_counts = (
            token_pos[order], token_ids[order], token_counts[order]
        )
    return (
        np.concatenate(changed_rows_parts)
        if changed_rows_parts
        else np.empty(0, dtype=np.int64),
        np.concatenate(changed_cells_parts)
        if changed_cells_parts
        else np.empty(0, dtype=np.int64),
        stage_entries,
    )

"""Runtime dispatch of the conflict-free update kernels.

Three backends implement one contract (seven update functions operating on
the sketches' numeric state; see :mod:`repro.kernels.python_backend` for
the reference semantics):

* ``"numba"`` — JIT-compiled per-item replay (optional dependency);
* ``"numpy-grouped"`` — pure-NumPy conflict-free grouping rounds;
* ``"python-replay"`` — per-item Python loops (the reference).

Selection, in priority order:

1. an explicit name passed to a sketch constructor (``kernel="..."``);
2. a process-wide override (:func:`set_default_backend`, or temporarily
   :func:`use_backend` — this is how ``ExperimentSettings.kernel`` and the
   CLI ``--kernel`` flag apply);
3. the ``REPRO_KERNEL`` environment variable;
4. ``"auto"``: the first available backend in the order above.

Requesting ``"numba"`` explicitly when numba is not installed raises
:class:`KernelUnavailableError` (callers surface a clean error); naming it
via ``REPRO_KERNEL`` only warns once and falls back to the next available
backend, so an environment variable baked into a job template can never
break a numba-free deployment.  Every backend is bit-identical to the
scalar insert loop, so dispatch is purely a performance knob.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.kernels import numpy_backend, python_backend

#: Environment variable naming the default backend.
KERNEL_ENV_VAR = "REPRO_KERNEL"

#: Resolution order of ``"auto"`` (fastest first).
BACKEND_NAMES = ("numba", "numpy-grouped", "python-replay")

AUTO = "auto"


class KernelUnavailableError(RuntimeError):
    """An explicitly requested kernel backend cannot be loaded."""


@dataclass(frozen=True)
class KernelBackend:
    """One kernel implementation: a name plus the update entry points."""

    name: str
    cu_update: Callable
    saturating_update: Callable
    reliable_layer_update: Callable
    elastic_update: Callable
    coco_update: Callable
    hashpipe_update: Callable
    precision_update: Callable


def _backend_from_module(name: str, module) -> KernelBackend:
    return KernelBackend(
        name=name,
        cu_update=module.cu_update,
        saturating_update=module.saturating_update,
        reliable_layer_update=module.reliable_layer_update,
        elastic_update=module.elastic_update,
        coco_update=module.coco_update,
        hashpipe_update=module.hashpipe_update,
        precision_update=module.precision_update,
    )


_LOADED: dict[str, KernelBackend] = {}
_NUMBA_FAILURE: str | None = None
_DEFAULT_OVERRIDE: str | None = None
_WARNED_ENV_FALLBACK = False


def _load(name: str) -> KernelBackend:
    """Load (and cache) one backend by name; raise if it cannot be used."""
    global _NUMBA_FAILURE
    if name in _LOADED:
        return _LOADED[name]
    if name == "numpy-grouped":
        backend = _backend_from_module(name, numpy_backend)
    elif name == "python-replay":
        backend = _backend_from_module(name, python_backend)
    elif name == "numba":
        if _NUMBA_FAILURE is not None:
            raise KernelUnavailableError(_NUMBA_FAILURE)
        try:
            from repro.kernels import numba_backend
        except ImportError as error:
            _NUMBA_FAILURE = (
                "kernel backend 'numba' requires the optional numba package "
                f"(pip install numba): {error}"
            )
            raise KernelUnavailableError(_NUMBA_FAILURE) from error
        backend = _backend_from_module(name, numba_backend)
    else:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of "
            f"{(AUTO,) + BACKEND_NAMES}"
        )
    _LOADED[name] = backend
    return backend


def is_backend_available(name: str) -> bool:
    """Whether ``name`` can be loaded in this environment."""
    try:
        _load(name)
    except KernelUnavailableError:
        return False
    return True


def available_backends() -> tuple[str, ...]:
    """The loadable backend names, in ``"auto"`` resolution order."""
    return tuple(name for name in BACKEND_NAMES if is_backend_available(name))


def _auto_backend() -> KernelBackend:
    for name in BACKEND_NAMES:
        try:
            return _load(name)
        except KernelUnavailableError:
            continue
    raise RuntimeError("no kernel backend available")  # pragma: no cover


def resolve_backend(name: str | None = None) -> KernelBackend:
    """Resolve a backend name (or the configured default) to an implementation.

    ``None`` follows the default chain (override → ``REPRO_KERNEL`` →
    auto); ``"auto"`` picks the first available backend.  An unknown name
    raises ``ValueError``; an explicitly named but unloadable backend
    raises :class:`KernelUnavailableError`.
    """
    global _WARNED_ENV_FALLBACK
    if name is None:
        if _DEFAULT_OVERRIDE is not None:
            name = _DEFAULT_OVERRIDE
        else:
            env_name = os.environ.get(KERNEL_ENV_VAR)
            if env_name:
                try:
                    return resolve_backend(env_name)
                except KernelUnavailableError as error:
                    # A baked-in REPRO_KERNEL=numba must never break a
                    # numba-free install: warn once and fall back.
                    if not _WARNED_ENV_FALLBACK:
                        warnings.warn(
                            f"{KERNEL_ENV_VAR}={env_name!r} is unavailable "
                            f"({error}); falling back to the next backend",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                        _WARNED_ENV_FALLBACK = True
            return _auto_backend()
    if name == AUTO:
        return _auto_backend()
    return _load(name)


def set_default_backend(name: str | None) -> None:
    """Set (or with ``None`` clear) the process-wide default backend.

    The name is validated eagerly so misconfiguration surfaces at the call
    site, not at the first insert.
    """
    if name is not None and name != AUTO:
        _load(name)
    global _DEFAULT_OVERRIDE
    _DEFAULT_OVERRIDE = name


def default_backend_name() -> str:
    """The name the default chain currently resolves to."""
    return resolve_backend(None).name


@contextmanager
def use_backend(name: str | None) -> Iterator[None]:
    """Temporarily override the default backend (``None`` is a no-op).

    Only affects sketches *constructed* inside the context — each sketch
    binds its backend at construction time.
    """
    if name is None:
        yield
        return
    global _DEFAULT_OVERRIDE
    previous = _DEFAULT_OVERRIDE
    set_default_backend(name)
    try:
        yield
    finally:
        _DEFAULT_OVERRIDE = previous

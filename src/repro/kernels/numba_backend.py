"""The ``numba`` kernel backend: JIT-compiled per-item replay.

Importing this module requires the optional ``numba`` package (the core
dependencies stay numba-free; the dispatch registry gates the import and
falls back to ``numpy-grouped`` when it is missing).

Because the sketches now hold their hot state as pure numeric arrays
(``int64`` counters plus interned key ids — see
:mod:`repro.kernels.scalar`), the fastest correct kernel is simply the
scalar replay compiled to machine code: no grouping bookkeeping, one pass
in stream order, trivially bit-identical control flow.  Each ``@njit``
function below mirrors its counterpart in :mod:`repro.kernels.scalar`
line for line; the kernel-parity tests pin them together.

Functions compile lazily on first use (a one-off cost of a few hundred
milliseconds per signature) and are cached for the process lifetime.
"""

from __future__ import annotations

import numpy as np
from numba import njit

from repro.kernels.scalar import EMPTY_ID

_EMPTY = EMPTY_ID


@njit(cache=False)
def _cu_update(tables, indexes, values):  # pragma: no cover - compiled
    depth = tables.shape[0]
    for position in range(values.shape[0]):
        target = tables[0, indexes[0, position]]
        for row in range(1, depth):
            reading = tables[row, indexes[row, position]]
            if reading < target:
                target = reading
        target += values[position]
        for row in range(depth):
            if tables[row, indexes[row, position]] < target:
                tables[row, indexes[row, position]] = target


@njit(cache=False)
def _saturating_update(tables, indexes, values, cap):  # pragma: no cover
    depth = tables.shape[0]
    count = values.shape[0]
    leftovers = np.empty(count, dtype=np.int64)
    for position in range(count):
        current = tables[0, indexes[0, position]]
        for row in range(1, depth):
            reading = tables[row, indexes[row, position]]
            if reading < current:
                current = reading
        value = values[position]
        taken = min(value, cap - current)
        if taken > 0:
            target = current + taken
            for row in range(depth):
                if tables[row, indexes[row, position]] < target:
                    tables[row, indexes[row, position]] = target
            leftovers[position] = value - taken
        else:
            leftovers[position] = value
    return leftovers


@njit(cache=False)
def _reliable_layer_update(
    key_ids, yes, no, lam_floor, indexes, item_ids, remaining
):  # pragma: no cover - compiled
    count = remaining.shape[0]
    survivors = np.empty(count, dtype=np.intp)
    excess = np.empty(count, dtype=np.int64)
    changed = np.empty(count, dtype=np.int64)
    survivor_count = 0
    changed_count = 0
    for position in range(count):
        index = indexes[position]
        item_id = item_ids[position]
        value = remaining[position]
        bucket_id = key_ids[index]
        if bucket_id == _EMPTY:
            key_ids[index] = item_id
            yes[index] = value
            no[index] = 0
            changed[changed_count] = index
            changed_count += 1
            continue
        if bucket_id == item_id:
            yes[index] += value
            continue
        no_votes = no[index]
        if no_votes + value > lam_floor and yes[index] > lam_floor:
            absorbed = lam_floor - no_votes
            if absorbed > 0:
                no[index] = lam_floor
                value -= absorbed
            survivors[survivor_count] = position
            excess[survivor_count] = value
            survivor_count += 1
            continue
        no_votes += value
        if no_votes >= yes[index]:
            key_ids[index] = item_id
            no[index] = yes[index]
            yes[index] = no_votes
            changed[changed_count] = index
            changed_count += 1
        else:
            no[index] = no_votes
    return (
        survivors[:survivor_count].copy(),
        excess[:survivor_count].copy(),
        changed[:changed_count].copy(),
    )


@njit(cache=False)
def _elastic_update(
    key_ids, positive, negative, flags, eviction_ratio, indexes, item_ids, values
):  # pragma: no cover - compiled
    count = values.shape[0]
    light = np.empty(count, dtype=np.intp)
    evicted_ids = np.empty(count, dtype=np.int64)
    evicted_values = np.empty(count, dtype=np.int64)
    changed = np.empty(count, dtype=np.int64)
    light_count = 0
    evicted_count = 0
    changed_count = 0
    for position in range(count):
        index = indexes[position]
        item_id = item_ids[position]
        value = values[position]
        bucket_id = key_ids[index]
        if bucket_id == _EMPTY:
            key_ids[index] = item_id
            positive[index] = value
            negative[index] = 0
            flags[index] = False
            changed[changed_count] = index
            changed_count += 1
            continue
        if bucket_id == item_id:
            positive[index] += value
            continue
        negative[index] += value
        if negative[index] >= eviction_ratio * positive[index]:
            evicted_ids[evicted_count] = bucket_id
            evicted_values[evicted_count] = positive[index]
            evicted_count += 1
            key_ids[index] = item_id
            positive[index] = value
            negative[index] = 1
            flags[index] = True
            changed[changed_count] = index
            changed_count += 1
        else:
            light[light_count] = position
            light_count += 1
    return (
        light[:light_count].copy(),
        evicted_ids[:evicted_count].copy(),
        evicted_values[:evicted_count].copy(),
        changed[:changed_count].copy(),
    )


@njit(cache=False)
def _counter_rand(seed, position):  # pragma: no cover - compiled
    # Mirrors repro.kernels.scalar.counter_rand on uint64 locals.
    z = (np.uint64(seed) + (np.uint64(position) + np.uint64(1)) * np.uint64(
        0x9E3779B97F4A7C15
    ))
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    z = z ^ (z >> np.uint64(31))
    return np.float64(z >> np.uint64(11)) * (2.0**-53)


@njit(cache=False)
def _coco_update(
    key_ids, counts, indexes, item_ids, values, positions, seed
):  # pragma: no cover - compiled
    depth = key_ids.shape[0]
    count = item_ids.shape[0]
    changed_rows = np.empty(count, dtype=np.int64)
    changed_cells = np.empty(count, dtype=np.int64)
    changed_count = 0
    for position in range(count):
        item_id = item_ids[position]
        value = values[position]
        matched = False
        min_row = 0
        min_count = np.int64(-1)
        for row in range(depth):
            cell = indexes[row, position]
            if key_ids[row, cell] == item_id:
                counts[row, cell] += value
                matched = True
                break
            reading = counts[row, cell]
            if min_count < 0 or reading < min_count:
                min_row = row
                min_count = reading
        if matched:
            continue
        cell = indexes[min_row, position]
        if key_ids[min_row, cell] == _EMPTY:
            key_ids[min_row, cell] = item_id
            counts[min_row, cell] = value
            changed_rows[changed_count] = min_row
            changed_cells[changed_count] = cell
            changed_count += 1
            continue
        new_count = min_count + value
        counts[min_row, cell] = new_count
        draw = _counter_rand(seed, positions[position])
        if draw < np.float64(value) / np.float64(new_count):
            key_ids[min_row, cell] = item_id
            changed_rows[changed_count] = min_row
            changed_cells[changed_count] = cell
            changed_count += 1
    return changed_rows[:changed_count].copy(), changed_cells[:changed_count].copy()


@njit(cache=False)
def _precision_update(
    key_ids, counts, indexes, item_ids, values, positions, seed
):  # pragma: no cover - compiled
    depth = key_ids.shape[0]
    count = item_ids.shape[0]
    changed_rows = np.empty(count, dtype=np.int64)
    changed_cells = np.empty(count, dtype=np.int64)
    changed_count = 0
    recirculations = 0
    for position in range(count):
        item_id = item_ids[position]
        value = values[position]
        settled = False
        min_row = 0
        min_count = np.int64(-1)
        for row in range(depth):
            cell = indexes[row, position]
            held = key_ids[row, cell]
            if held == item_id:
                counts[row, cell] += value
                settled = True
                break
            if held == _EMPTY:
                key_ids[row, cell] = item_id
                counts[row, cell] = value
                changed_rows[changed_count] = row
                changed_cells[changed_count] = cell
                changed_count += 1
                settled = True
                break
            reading = counts[row, cell]
            if min_count < 0 or reading < min_count:
                min_row = row
                min_count = reading
        if settled:
            continue
        draw = _counter_rand(seed, positions[position])
        if draw < np.float64(value) / np.float64(min_count + value):
            cell = indexes[min_row, position]
            key_ids[min_row, cell] = item_id
            counts[min_row, cell] = min_count + value
            changed_rows[changed_count] = min_row
            changed_cells[changed_count] = cell
            changed_count += 1
            recirculations += 1
    return (
        changed_rows[:changed_count].copy(),
        changed_cells[:changed_count].copy(),
        recirculations,
    )


@njit(cache=False)
def _hashpipe_update(
    key_ids, counts, stage_cells, item_ids, values
):  # pragma: no cover - compiled
    depth = key_ids.shape[0]
    count = item_ids.shape[0]
    capacity = count * depth
    changed_rows = np.empty(capacity, dtype=np.int64)
    changed_cells = np.empty(capacity, dtype=np.int64)
    changed_count = 0
    stage_entries = np.zeros(depth, dtype=np.int64)
    for position in range(count):
        item_id = item_ids[position]
        value = values[position]
        cell = stage_cells[0, item_id]
        held = key_ids[0, cell]
        if held == item_id:
            counts[0, cell] += value
            continue
        token_count = counts[0, cell]
        key_ids[0, cell] = item_id
        counts[0, cell] = value
        changed_rows[changed_count] = 0
        changed_cells[changed_count] = cell
        changed_count += 1
        if held == _EMPTY:
            continue
        token_id = held
        for row in range(1, depth):
            stage_entries[row] += 1
            cell = stage_cells[row, token_id]
            incumbent = key_ids[row, cell]
            if incumbent == token_id:
                counts[row, cell] += token_count
                break
            if incumbent == _EMPTY:
                key_ids[row, cell] = token_id
                counts[row, cell] = token_count
                changed_rows[changed_count] = row
                changed_cells[changed_count] = cell
                changed_count += 1
                break
            if counts[row, cell] < token_count:
                incumbent_count = counts[row, cell]
                key_ids[row, cell] = token_id
                counts[row, cell] = token_count
                changed_rows[changed_count] = row
                changed_cells[changed_count] = cell
                changed_count += 1
                token_id = incumbent
                token_count = incumbent_count
    return (
        changed_rows[:changed_count].copy(),
        changed_cells[:changed_count].copy(),
        stage_entries,
    )


def cu_update(tables, indexes, values):
    """Conservative updates for a whole batch (compiled replay)."""
    _cu_update(tables, np.ascontiguousarray(indexes), values)


def saturating_update(tables, indexes, values, cap):
    """Capped conservative updates; returns per-item leftovers."""
    return _saturating_update(tables, np.ascontiguousarray(indexes), values, cap)


def reliable_layer_update(key_ids, yes, no, lam_floor, indexes, item_ids, remaining):
    """One ReliableSketch layer replay; see the python backend contract."""
    survivors, excess, changed = _reliable_layer_update(
        key_ids, yes, no, lam_floor, indexes, item_ids, remaining
    )
    return survivors, excess, np.unique(changed)


def elastic_update(
    key_ids, positive, negative, flags, eviction_ratio, indexes, item_ids, values
):
    """Elastic heavy-part replay; see the python backend contract."""
    light, evicted_ids, evicted_values, changed = _elastic_update(
        key_ids, positive, negative, flags, eviction_ratio, indexes, item_ids, values
    )
    return light, evicted_ids, evicted_values, np.unique(changed)


def _seed_bits(seed):
    """Fold a Python-int seed into an int64 whose bit pattern is seed mod 2^64."""
    bits = seed & 0xFFFFFFFFFFFFFFFF
    return bits - (1 << 64) if bits >= 1 << 63 else bits


def coco_update(key_ids, counts, indexes, item_ids, values, positions, seed):
    """CocoSketch compiled replay; see the python backend contract."""
    return _coco_update(
        key_ids, counts, np.ascontiguousarray(indexes), item_ids, values,
        positions, _seed_bits(seed),
    )


def precision_update(key_ids, counts, indexes, item_ids, values, positions, seed):
    """PRECISION compiled replay; see the python backend contract."""
    return _precision_update(
        key_ids, counts, np.ascontiguousarray(indexes), item_ids, values,
        positions, _seed_bits(seed),
    )


def hashpipe_update(key_ids, counts, stage_cells, item_ids, values):
    """HashPipe compiled replay; see the python backend contract."""
    return _hashpipe_update(key_ids, counts, stage_cells, item_ids, values)

"""The durable epoch store: crash-safe persistence for published sketches.

:class:`SketchStore` owns one directory and persists the serving layer's
epoch stream into it with two complementary structures:

* **Snapshot files** — each published epoch's ``state_snapshot()`` written
  whole, checksummed and format-versioned (:mod:`repro.store.format`),
  committed atomically: write to ``*.tmp`` → fsync → ``os.replace`` →
  directory fsync.  A snapshot either exists completely or not at all; a
  crash at any byte of the write leaves the previous epoch untouched.
* **A write-ahead journal** — every ingest batch accepted *after* the last
  snapshot, appended (and by default fsynced) to ``wal-<epoch>.log``
  **before** the in-memory insert.  Recovery is therefore lossless up to
  the last fsynced frame: restored state = newest valid snapshot + replay
  of its journal's valid prefix, and the replay is bit-identical because
  ``insert_batch`` is pinned chunking-stable for every family.

Recovery (:meth:`SketchStore.recover`) trusts nothing: it scans for the
newest epoch whose checksum and version validate, moves everything torn or
corrupt into ``quarantine/`` (files are **never deleted silently** — the
only sanctioned deletions are the compaction policy's, and those are
counted), repairs a torn journal tail by truncating to the last valid
frame after preserving the original in quarantine, and raises a typed
:class:`~repro.store.format.StoreCorruptionError` if state existed but
none of it can be trusted — a cold start only ever happens on a genuinely
empty directory.

A failing disk must not take ingest down with it: any ``OSError`` (disk
full, I/O error) or an fsync slower than ``max_sync_seconds`` **demotes
the store to in-memory-only** — appends and publishes become counted
no-ops (``dropped_batches``/``dropped_publishes``, surfaced through
``stats()`` and the serving layer) and the service keeps answering from
memory.  Degradation is one-way until the operator intervenes: a disk that
failed once is not quietly trusted again.

Every disk operation goes through the :class:`~repro.store.faultfs.FileSystem`
seam, so the crash-injection suites can kill, truncate and garble writes
at scheduled byte offsets and prove all of the above deterministically.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro.store.faultfs import FileSystem
from repro.store.format import (
    StoreCorruptionError,
    StoreError,
    WAL_HEADER_BYTES,
    decode_snapshot_file,
    encode_snapshot_file,
    encode_wal_frame,
    encode_wal_header,
    parse_snapshot_filename,
    parse_wal_filename,
    read_wal,
    snapshot_filename,
    wal_filename,
)

#: Snapshots kept by compaction (newest first).  Two means one full epoch
#: of fallback if the newest file rots on the medium after its fsync.
DEFAULT_RETENTION_EPOCHS = 2

#: Subdirectory receiving torn/corrupt files.  Never touched by compaction.
QUARANTINE_DIR = "quarantine"


@dataclass(frozen=True)
class RecoveryReport:
    """What :meth:`SketchStore.recover` found and did.

    ``items`` counts the snapshot's items; ``wal_items`` the journal items
    replayed on top; ``items_total`` is the warm sketch's true count.
    ``state`` and ``batches`` carry the recovered payload for
    :meth:`SketchStore.restore_into` (excluded from ``repr`` — they are
    arrays, not provenance).

    ``ring_epochs`` holds the *older* retained snapshots that also
    validated — ``(epoch_id, items, state)`` triples, oldest first, at most
    ``retention_epochs - 1`` of them — so a warm restart can rehydrate the
    temporal ring and keep serving time-travel reads for the epochs that
    survived on disk, not just the newest one.
    """

    epoch_id: int
    items: int
    algorithm: str
    wal_frames: int
    wal_items: int
    wal_tail_error: str | None
    quarantined: tuple[str, ...]
    meta: dict = field(repr=False)
    state: dict[str, np.ndarray] = field(repr=False)
    batches: tuple = field(repr=False)
    ring_epochs: tuple = field(repr=False, default=())

    @property
    def items_total(self) -> int:
        return self.items + self.wal_items


class SketchStore:
    """Durable, crash-safe persistence for one sketch's epoch stream.

    Parameters
    ----------
    directory:
        The store's root.  Created (with its ``quarantine/``) if missing.
    algorithm:
        Optional registry name pinning what this store may hold; a
        recovered snapshot naming a different family raises
        :class:`StoreError` (a configuration error, not corruption).
    retention_epochs:
        Snapshots kept by compaction, newest first (≥ 1).
    snapshot_every_epochs:
        Snapshot cadence: write a snapshot file every Nth published epoch,
        letting the journal carry the epochs between — trades recovery
        replay time for snapshot write amplification.
    max_bytes:
        Optional size budget: compaction drops retained snapshots (never
        the newest) oldest-first until under budget.
    sync:
        fsync every journal append (the durability default).  ``False``
        leaves WAL durability to the OS page cache — faster, lossy on
        power failure, still torn-tail-safe.
    max_sync_seconds:
        Optional demotion threshold: an fsync slower than this degrades
        the store to in-memory-only rather than stalling ingest forever.
    fs:
        The disk seam; tests substitute a
        :class:`~repro.store.faultfs.CrashInjectingFileSystem`.
    """

    def __init__(
        self,
        directory: str,
        *,
        algorithm: str | None = None,
        retention_epochs: int = DEFAULT_RETENTION_EPOCHS,
        snapshot_every_epochs: int = 1,
        max_bytes: int | None = None,
        sync: bool = True,
        max_sync_seconds: float | None = None,
        fs: FileSystem | None = None,
    ) -> None:
        if retention_epochs < 1:
            raise ValueError("retention_epochs must be at least 1")
        if snapshot_every_epochs < 1:
            raise ValueError("snapshot_every_epochs must be at least 1")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        if max_sync_seconds is not None and max_sync_seconds <= 0:
            raise ValueError("max_sync_seconds must be positive")
        self.directory = directory
        self.algorithm = algorithm
        self.retention_epochs = retention_epochs
        self.snapshot_every_epochs = snapshot_every_epochs
        self.max_bytes = max_bytes
        self.sync = sync
        self.max_sync_seconds = max_sync_seconds
        self._fs = fs or FileSystem()
        self._fs.makedirs(directory)
        self._fs.makedirs(os.path.join(directory, QUARANTINE_DIR))

        #: One-way demotion flag; see module docstring.
        self.degraded = False
        self.degrade_reason: str | None = None
        # -- loud counters (all surfaced through stats()) -------------------
        self.snapshots_written = 0
        self.wal_frames_appended = 0
        self.wal_items_appended = 0
        self.dropped_batches = 0
        self.dropped_publishes = 0
        self.store_errors = 0
        self.slow_syncs = 0
        self.compacted_files = 0
        self.quarantined_files = 0

        self._wal_handle = None
        self._wal_epoch: int | None = None
        self._last_snapshot_epoch: int | None = None

    # ------------------------------------------------------------- plumbing
    def _path(self, name: str) -> str:
        return os.path.join(self.directory, name)

    def _timed_sync(self, handle) -> None:
        """fsync, demoting (after the sync completes) if it was too slow."""
        started = time.perf_counter()
        self._fs.fsync(handle)
        elapsed = time.perf_counter() - started
        if self.max_sync_seconds is not None and elapsed > self.max_sync_seconds:
            self.slow_syncs += 1
            self._degrade(f"fsync took {elapsed:.3f}s (threshold {self.max_sync_seconds}s)")

    def _degrade(self, reason: str) -> None:
        """Demote to in-memory-only.  One-way; every cause is counted."""
        self.store_errors += 1
        if not self.degraded:
            self.degraded = True
            self.degrade_reason = reason
        if self._wal_handle is not None:
            try:
                self._fs.close(self._wal_handle)
            except OSError:
                pass
            self._wal_handle = None
            self._wal_epoch = None

    def _quarantine(self, name: str, *, copy: bool = False) -> str:
        """Move (or copy) a file into ``quarantine/``, never overwriting."""
        destination = os.path.join(QUARANTINE_DIR, name)
        suffix = 0
        while self._fs.exists(self._path(destination)):
            suffix += 1
            destination = os.path.join(QUARANTINE_DIR, f"{name}.{suffix}")
        if copy:
            self._fs.copy(self._path(name), self._path(destination))
        else:
            self._fs.move(self._path(name), self._path(destination))
        self.quarantined_files += 1
        return destination

    def _scan(self) -> tuple[list[tuple[int, str]], list[tuple[int, str]], list[str]]:
        """Directory contents split into (snapshots, wals, strays), ids descending."""
        snapshots: list[tuple[int, str]] = []
        wals: list[tuple[int, str]] = []
        strays: list[str] = []
        for name in self._fs.listdir(self.directory):
            if name == QUARANTINE_DIR:
                continue
            epoch = parse_snapshot_filename(name)
            if epoch is not None:
                snapshots.append((epoch, name))
                continue
            epoch = parse_wal_filename(name)
            if epoch is not None:
                wals.append((epoch, name))
                continue
            strays.append(name)
        snapshots.sort(reverse=True)
        wals.sort(reverse=True)
        return snapshots, wals, strays

    # ------------------------------------------------------------- recovery
    def recover(self) -> RecoveryReport | None:
        """Scan the directory and return the newest trustworthy state.

        Returns ``None`` for a genuinely empty store (cold start).  If any
        sketch state existed but nothing validates, raises
        :class:`StoreCorruptionError` — silently starting cold over an
        unreadable history would *be* the wrong-counts bug this store
        exists to prevent.

        Besides the chosen epoch, the report carries the older retained
        snapshots that also validated (``ring_epochs``, oldest first) so the
        serving layer can rehydrate its temporal ring on warm restart.
        """
        if self._wal_handle is not None:
            raise StoreError("recover() on a store with an open journal")
        snapshots, wals, strays = self._scan()
        quarantined: list[str] = []
        # Interrupted snapshot writes (never renamed, so never trusted) and
        # anything else unidentifiable goes straight to quarantine.
        for name in strays:
            quarantined.append(self._quarantine(name))

        chosen = None
        chosen_index = -1
        for index, (epoch_id, name) in enumerate(snapshots):
            try:
                blob = self._fs.read_bytes(self._path(name))
                state, algorithm, meta = decode_snapshot_file(blob)
            except StoreCorruptionError:
                quarantined.append(self._quarantine(name))
                continue
            except OSError:
                quarantined.append(self._quarantine(name))
                continue
            if self.algorithm is not None and algorithm != self.algorithm:
                raise StoreError(
                    f"store at {self.directory} holds {algorithm!r}, expected {self.algorithm!r}"
                )
            chosen = (epoch_id, state, algorithm, meta)
            chosen_index = index
            break

        # Older retained snapshots that also validate become ring seeds:
        # warm restart then serves time-travel reads for every epoch that
        # survived on disk, not just the newest.  Invalid older files are
        # *skipped*, not quarantined — they are compaction's responsibility,
        # and recovery of the chosen epoch does not depend on them.
        ring_epochs: list[tuple[int, int, dict]] = []
        if chosen is not None:
            for epoch_id, name in snapshots[chosen_index + 1 :]:
                if len(ring_epochs) >= self.retention_epochs - 1:
                    break
                try:
                    blob = self._fs.read_bytes(self._path(name))
                    state, algorithm, meta = decode_snapshot_file(blob)
                except (StoreCorruptionError, OSError):
                    continue
                if algorithm != chosen[2]:
                    continue
                ring_epochs.append((epoch_id, int(meta.get("items", 0)), state))
            ring_epochs.reverse()  # oldest first, ready to offer() in order

        if chosen is None:
            if snapshots or wals:
                for _, name in wals:
                    quarantined.append(self._quarantine(name))
                raise StoreCorruptionError(
                    f"store at {self.directory} holds state but no epoch validates "
                    f"({len(quarantined)} file(s) quarantined)"
                )
            return None

        epoch_id, state, algorithm, meta = chosen
        # Journals for *other* epochs: newer ones extend a snapshot we could
        # not trust (their frames have no base to replay onto) — quarantine;
        # older ones are subsumed by the chosen snapshot — compaction's job.
        batches: tuple = ()
        wal_tail_error: str | None = None
        wal_seen = False
        for wal_epoch, name in wals:
            if wal_epoch > epoch_id:
                quarantined.append(self._quarantine(name))
            elif wal_epoch == epoch_id:
                wal_seen = True
                try:
                    blob = self._fs.read_bytes(self._path(name))
                    contents = read_wal(blob)
                except (StoreCorruptionError, OSError):
                    # The journal's own header is untrustworthy: keep the
                    # snapshot, lose the journal — loudly.
                    quarantined.append(self._quarantine(name))
                    wal_tail_error = "journal header invalid; journal quarantined"
                    self._create_wal(epoch_id)
                    continue
                if contents.tail_error is not None:
                    # Preserve the torn original, then repair in place by
                    # truncating to the valid prefix (idempotent: shrinking
                    # to a boundary we already validated is crash-safe).
                    quarantined.append(self._quarantine(name, copy=True))
                    self._fs.truncate(self._path(name), contents.valid_bytes)
                    wal_tail_error = contents.tail_error
                batches = contents.batches
        if not wal_seen:
            self._create_wal(epoch_id)

        self._wal_epoch = epoch_id
        self._wal_handle = self._fs.open_append(self._path(wal_filename(epoch_id)))
        self._last_snapshot_epoch = epoch_id
        return RecoveryReport(
            epoch_id=epoch_id,
            items=int(meta.get("items", 0)),
            algorithm=algorithm,
            wal_frames=len(batches),
            wal_items=sum(len(batch) for batch, _ in batches),
            wal_tail_error=wal_tail_error,
            quarantined=tuple(quarantined),
            meta=meta,
            state=state,
            batches=batches,
            ring_epochs=tuple(ring_epochs),
        )

    def restore_into(self, factory) -> tuple[object, RecoveryReport] | None:
        """Recover and materialise the warm sketch: ``factory()`` restored
        from the snapshot, journal replayed through ``insert_batch``.

        Returns ``None`` on a cold start.  The replay is bit-identical to
        the original inserts by the batch datapath's chunking-parity
        contract (including RNG draw counters, which ride in the state).
        """
        report = self.recover()
        if report is None:
            return None
        sketch = factory()
        sketch.state_restore(report.state)
        for batch, values in report.batches:
            sketch.insert_batch(batch, values)
        return sketch, report

    # ----------------------------------------------------------- write path
    def append_batch(self, keys, values=None) -> bool:
        """Journal one ingest batch; call **before** the in-memory insert.

        Returns ``True`` if the frame is durably in the journal, ``False``
        if the store is degraded (the batch is counted, not persisted).
        """
        if self.degraded:
            self.dropped_batches += 1
            return False
        if self._wal_handle is None:
            raise StoreError("append_batch with no open journal (publish or recover first)")
        frame = encode_wal_frame(keys, values)
        try:
            self._fs.write(self._wal_handle, frame)
            if self.sync:
                self._timed_sync(self._wal_handle)
        except OSError as error:
            self._degrade(f"journal append failed: {error}")
            self.dropped_batches += 1
            return False
        self.wal_frames_appended += 1
        self.wal_items_appended += len(keys)
        return True

    def publish_epoch(self, epoch_id: int, items: int, sketch) -> bool:
        """Persist a published epoch: snapshot file, then journal rotation.

        ``sketch`` is the frozen epoch replica (anything with
        ``state_snapshot()``), or a ready state dict.  Epochs between
        snapshot cadence points return ``False`` and keep journaling.
        Ordering is the crash-safety argument: the snapshot *commits*
        (rename + directory fsync) before the old journal is touched, so
        every crash window leaves either (old snapshot + full journal) or
        (new snapshot + empty/absent journal) — both recover exactly.
        """
        if self.degraded:
            self.dropped_publishes += 1
            return False
        if (
            self._last_snapshot_epoch is not None
            and epoch_id - self._last_snapshot_epoch < self.snapshot_every_epochs
        ):
            return False
        state = sketch.state_snapshot() if hasattr(sketch, "state_snapshot") else sketch
        algorithm = self.algorithm or getattr(sketch, "name", "unknown")
        meta = {"epoch_id": epoch_id, "items": int(items), "algorithm": algorithm}
        try:
            self._write_snapshot(epoch_id, state, algorithm, meta)
            if not self.degraded:  # a slow fsync can demote mid-publish
                self._rotate_wal(epoch_id)
        except OSError as error:
            self._degrade(f"snapshot publish failed: {error}")
            self.dropped_publishes += 1
            return False
        if not self.degraded:
            self.compact()
        return True

    def _write_snapshot(self, epoch_id: int, state, algorithm: str, meta: dict) -> None:
        blob = encode_snapshot_file(state, algorithm, meta)
        name = snapshot_filename(epoch_id)
        tmp = self._path(name + ".tmp")
        handle = self._fs.open_write(tmp)
        try:
            self._fs.write(handle, blob)
            self._timed_sync(handle)
        finally:
            self._fs.close(handle)
        self._fs.replace(tmp, self._path(name))
        self._fs.fsync_dir(self.directory)
        self._last_snapshot_epoch = epoch_id
        self.snapshots_written += 1

    def _create_wal(self, epoch_id: int) -> None:
        """Write a fresh journal header durably (no open handle kept)."""
        path = self._path(wal_filename(epoch_id))
        handle = self._fs.open_write(path)
        try:
            self._fs.write(handle, encode_wal_header(epoch_id))
            self._timed_sync(handle)
        finally:
            self._fs.close(handle)
        self._fs.fsync_dir(self.directory)

    def _rotate_wal(self, epoch_id: int) -> None:
        """Open the journal extending the just-committed snapshot."""
        if self._wal_handle is not None:
            self._fs.close(self._wal_handle)
            self._wal_handle = None
        self._create_wal(epoch_id)
        self._wal_handle = self._fs.open_append(self._path(wal_filename(epoch_id)))
        self._wal_epoch = epoch_id

    # ----------------------------------------------------------- maintenance
    def compact(self) -> int:
        """Apply the retention policy; returns the number of files removed.

        Keeps the newest ``retention_epochs`` snapshots, then drops
        retained ones oldest-first (never the newest) while over
        ``max_bytes``.  Journals older than the newest snapshot are
        subsumed by it and removed.  ``quarantine/`` is never touched —
        compaction is the *only* sanctioned deletion path, and every
        removal is counted in ``compacted_files``.
        """
        snapshots, wals, _ = self._scan()
        removed = 0
        if not snapshots:
            return 0
        newest_epoch = snapshots[0][0]
        keep = snapshots[: self.retention_epochs]
        drop = snapshots[self.retention_epochs :]
        if self.max_bytes is not None:
            sizes = {name: self._safe_size(name) for _, name in keep}
            total = sum(sizes.values())
            while len(keep) > 1 and total > self.max_bytes:
                victim = keep.pop()  # oldest retained; never the newest
                total -= sizes[victim[1]]
                drop.append(victim)
        for _, name in drop:
            try:
                self._fs.remove(self._path(name))
                removed += 1
            except OSError:
                self.store_errors += 1
        for wal_epoch, name in wals:
            if wal_epoch < newest_epoch:
                try:
                    self._fs.remove(self._path(name))
                    removed += 1
                except OSError:
                    self.store_errors += 1
        self.compacted_files += removed
        return removed

    def _safe_size(self, name: str) -> int:
        try:
            return self._fs.file_size(self._path(name))
        except OSError:
            return 0

    def inspect(self) -> dict:
        """Read-only audit of every file in the store (the CLI's view).

        Validates each snapshot and journal without moving anything;
        ``ok`` is true when nothing outside quarantine is corrupt and the
        store is either empty or has a recoverable epoch.
        ``ring_resident`` lists (oldest first) the epochs a warm restart
        would rehydrate into the serving layer's temporal ring.
        """
        snapshots, wals, strays = self._scan()
        report: dict = {
            "directory": self.directory,
            "snapshots": [],
            "wals": [],
            "strays": list(strays),
            "quarantine": self._fs.listdir(self._path(QUARANTINE_DIR)),
        }
        corrupt: list[str] = []
        recoverable: int | None = None
        ring_resident: list[int] = []
        for epoch_id, name in snapshots:
            entry = {"file": name, "epoch": epoch_id, "bytes": self._safe_size(name)}
            try:
                _, algorithm, meta = decode_snapshot_file(self._fs.read_bytes(self._path(name)))
            except (StoreCorruptionError, OSError) as error:
                entry.update(valid=False, error=str(error))
                corrupt.append(name)
            else:
                entry.update(valid=True, algorithm=algorithm, items=meta.get("items"))
                if recoverable is None:
                    recoverable = epoch_id
                # Newest retention_epochs valid snapshots are what a warm
                # restart rehydrates into the temporal ring.
                if len(ring_resident) < self.retention_epochs:
                    ring_resident.append(epoch_id)
            report["snapshots"].append(entry)
        ring_resident.reverse()  # oldest first, matching ring order
        for epoch_id, name in wals:
            entry = {"file": name, "epoch": epoch_id, "bytes": self._safe_size(name)}
            try:
                contents = read_wal(self._fs.read_bytes(self._path(name)))
            except (StoreCorruptionError, OSError) as error:
                entry.update(valid=False, error=str(error))
                corrupt.append(name)
            else:
                entry.update(
                    valid=contents.tail_error is None,
                    frames=len(contents.batches),
                    items=contents.items,
                    tail_error=contents.tail_error,
                )
                if contents.tail_error is not None:
                    corrupt.append(name)
            report["wals"].append(entry)
        if strays:
            corrupt.extend(strays)
        report["corrupt"] = corrupt
        report["recoverable_epoch"] = recoverable
        report["ring_resident"] = ring_resident
        report["ok"] = not corrupt and (recoverable is not None or not (snapshots or wals))
        return report

    def stats(self) -> dict:
        """JSON-serializable health counters (surfaced by the service)."""
        return {
            "directory": self.directory,
            "degraded": self.degraded,
            "degrade_reason": self.degrade_reason,
            "snapshots_written": self.snapshots_written,
            "wal_frames_appended": self.wal_frames_appended,
            "wal_items_appended": self.wal_items_appended,
            "dropped_batches": self.dropped_batches,
            "dropped_publishes": self.dropped_publishes,
            "store_errors": self.store_errors,
            "slow_syncs": self.slow_syncs,
            "compacted_files": self.compacted_files,
            "quarantined_files": self.quarantined_files,
            "last_snapshot_epoch": self._last_snapshot_epoch,
        }

    # -------------------------------------------------------------- teardown
    def close(self) -> None:
        if self._wal_handle is not None:
            try:
                if self.sync:
                    self._timed_sync(self._wal_handle)
            except OSError:
                pass
            self._fs.close(self._wal_handle)
            self._wal_handle = None
            self._wal_epoch = None

    def __enter__(self) -> "SketchStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Durable, crash-safe persistence for published sketch epochs.

``repro.store`` is the at-rest layer of the serving stack: checksummed,
format-versioned snapshot files plus a write-ahead journal of
post-snapshot ingest batches, written through a narrow filesystem seam so
deterministic crash injection can prove recovery bit-identical.  See
:mod:`repro.store.store` for the design argument.
"""

from repro.store.faultfs import (
    CrashInjectingFileSystem,
    CrashPlan,
    FileSystem,
    InjectedCrash,
)
from repro.store.format import (
    STORE_FORMAT_VERSION,
    StoreCorruptionError,
    StoreError,
)
from repro.store.partitions import PartitionStore
from repro.store.store import (
    DEFAULT_RETENTION_EPOCHS,
    QUARANTINE_DIR,
    RecoveryReport,
    SketchStore,
)

__all__ = [
    "CrashInjectingFileSystem",
    "CrashPlan",
    "DEFAULT_RETENTION_EPOCHS",
    "FileSystem",
    "InjectedCrash",
    "PartitionStore",
    "QUARANTINE_DIR",
    "RecoveryReport",
    "SketchStore",
    "STORE_FORMAT_VERSION",
    "StoreCorruptionError",
    "StoreError",
]

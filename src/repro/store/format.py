"""On-disk formats of the durable epoch store: snapshot files and the WAL.

Both file kinds reuse the wire codec (`repro.distributed.wire`) for their
bodies — a snapshot body *is* an ``encode_state`` payload, a WAL frame body
*is* an ``encode_batch`` payload — so the store inherits the array-segment
framing, the packed key encodings, and the int fast path that the
distributed layer already pins bit-identical.  What this module adds is the
at-rest armor the wire does not need:

* a magic + **format version** byte per file, so stores survive code
  evolution (an unknown version is a typed error, never a misparse);
* a CRC-32 over every byte that matters, so a flipped bit anywhere —
  header, body, trailer — is detected before a single count is served;
* explicit length framing, so truncation *and* extension are both
  detectable (a snapshot file's size must equal exactly what its header
  promises).

Snapshot file (``epoch-<id>.snap``)::

    magic  b"RSNP"            4 bytes
    version                   1 byte   (STORE_FORMAT_VERSION)
    body length               >Q
    body                      encode_state(state, algorithm, meta)
    crc32(magic..body)        >I

WAL file (``wal-<id>.log``) — an append-only journal of the ingest batches
accepted *after* snapshot ``<id>`` was published::

    magic  b"RWAL"            4 bytes
    version                   1 byte
    epoch id                  >Q       (the snapshot this journal extends)
    frame*                    each: length >I, crc32(payload) >I, payload

WAL frames are individually checksummed and length-framed so a torn tail
(the crash window of an in-flight append) invalidates only the tail: every
frame before it replays, everything from the first bad byte on is
quarantined.  :func:`read_wal` implements exactly that prefix discipline.
"""

from __future__ import annotations

import re
import struct
import zlib
from dataclasses import dataclass

import numpy as np

from repro.distributed.wire import (
    WireFormatError,
    decode_batch,
    decode_state,
    encode_batch,
    encode_state,
)

#: Version byte stamped into every file this package writes.  Bump on any
#: incompatible layout change; readers reject unknown versions loudly.
STORE_FORMAT_VERSION = 1

SNAPSHOT_MAGIC = b"RSNP"
WAL_MAGIC = b"RWAL"

_SNAPSHOT_HEADER = struct.Struct(">4sBQ")  # magic, version, body length
_WAL_HEADER = struct.Struct(">4sBQ")  # magic, version, epoch id
_CRC = struct.Struct(">I")
_FRAME_HEADER = struct.Struct(">II")  # payload length, payload crc32

#: WAL frames above this are rejected as corrupt lengths (matches the wire
#: layer's ceiling — a legitimate frame is a single ingest batch).
MAX_WAL_FRAME_BYTES = 64 * 1024 * 1024

_SNAPSHOT_NAME = re.compile(r"^epoch-(\d{12})\.snap$")
_WAL_NAME = re.compile(r"^wal-(\d{12})\.log$")


class StoreError(RuntimeError):
    """Base error of the durable store (configuration and I/O misuse)."""


class StoreCorruptionError(StoreError):
    """A store file failed validation (bad magic/version/checksum/length).

    Raised when the store cannot produce *any* trustworthy state — a single
    corrupt file that an older epoch can cover never raises, it is
    quarantined and recovery falls back.
    """


# --------------------------------------------------------------------- names
def snapshot_filename(epoch_id: int) -> str:
    """Canonical snapshot filename; zero-padded so lexical order = epoch order."""
    return f"epoch-{epoch_id:012d}.snap"


def wal_filename(epoch_id: int) -> str:
    """Canonical WAL filename for the journal extending ``epoch_id``."""
    return f"wal-{epoch_id:012d}.log"


def parse_snapshot_filename(name: str) -> int | None:
    """Epoch id of a snapshot filename, or ``None`` if not one."""
    match = _SNAPSHOT_NAME.match(name)
    return int(match.group(1)) if match else None


def parse_wal_filename(name: str) -> int | None:
    """Epoch id of a WAL filename, or ``None`` if not one."""
    match = _WAL_NAME.match(name)
    return int(match.group(1)) if match else None


# ----------------------------------------------------------------- snapshots
def encode_snapshot_file(
    state: dict[str, np.ndarray], algorithm: str, meta: dict | None = None
) -> bytes:
    """Serialize one epoch's ``state_snapshot()`` into a snapshot file blob."""
    body = encode_state(state, algorithm, meta)
    header = _SNAPSHOT_HEADER.pack(SNAPSHOT_MAGIC, STORE_FORMAT_VERSION, len(body))
    crc = zlib.crc32(header)
    crc = zlib.crc32(body, crc)
    return header + body + _CRC.pack(crc)


def decode_snapshot_file(blob: bytes) -> tuple[dict[str, np.ndarray], str, dict]:
    """Inverse of :func:`encode_snapshot_file`; raises on *any* damage.

    Every failure mode — short file, wrong magic, unknown version, length
    mismatch (truncated *or* extended), checksum mismatch, malformed body —
    raises :class:`StoreCorruptionError`.  A successful return is a
    byte-verified ``(state, algorithm, meta)``.
    """
    if len(blob) < _SNAPSHOT_HEADER.size + _CRC.size:
        raise StoreCorruptionError("snapshot file shorter than its fixed framing")
    magic, version, body_length = _SNAPSHOT_HEADER.unpack_from(blob)
    if magic != SNAPSHOT_MAGIC:
        raise StoreCorruptionError(f"bad snapshot magic {magic!r}")
    if version != STORE_FORMAT_VERSION:
        raise StoreCorruptionError(
            f"snapshot format version {version} (this build reads {STORE_FORMAT_VERSION})"
        )
    expected = _SNAPSHOT_HEADER.size + body_length + _CRC.size
    if len(blob) != expected:
        raise StoreCorruptionError(
            f"snapshot file is {len(blob)} bytes, header promises {expected}"
        )
    body_end = _SNAPSHOT_HEADER.size + body_length
    (stored_crc,) = _CRC.unpack_from(blob, body_end)
    actual_crc = zlib.crc32(blob[:body_end])
    if stored_crc != actual_crc:
        raise StoreCorruptionError(
            f"snapshot checksum mismatch (stored {stored_crc:#010x}, computed {actual_crc:#010x})"
        )
    try:
        return decode_state(blob[_SNAPSHOT_HEADER.size : body_end])
    except WireFormatError as error:
        # CRC passed but the body does not parse: the file was *written*
        # malformed (or the codec changed without a version bump) — still a
        # corruption from the reader's point of view.
        raise StoreCorruptionError(f"snapshot body malformed: {error}") from None


# ----------------------------------------------------------------------- wal
def encode_wal_header(epoch_id: int) -> bytes:
    """The fixed header opening the journal that extends ``epoch_id``."""
    return _WAL_HEADER.pack(WAL_MAGIC, STORE_FORMAT_VERSION, epoch_id)


#: Size of the fixed WAL header (the minimum size of a valid WAL file).
WAL_HEADER_BYTES = _WAL_HEADER.size


def decode_wal_header(blob: bytes) -> int:
    """Validate a WAL file's fixed header and return its epoch id."""
    if len(blob) < _WAL_HEADER.size:
        raise StoreCorruptionError("WAL file shorter than its fixed header")
    magic, version, epoch_id = _WAL_HEADER.unpack_from(blob)
    if magic != WAL_MAGIC:
        raise StoreCorruptionError(f"bad WAL magic {magic!r}")
    if version != STORE_FORMAT_VERSION:
        raise StoreCorruptionError(
            f"WAL format version {version} (this build reads {STORE_FORMAT_VERSION})"
        )
    return epoch_id


def encode_wal_frame(keys, values=None) -> bytes:
    """One journal frame: an ``encode_batch`` payload with length + CRC."""
    payload = encode_batch(keys, values)
    return _FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass(frozen=True)
class WalContents:
    """Result of scanning a WAL file with the torn-tail prefix discipline.

    ``batches`` are the frames that validated, in append order; all of them
    lie within ``valid_bytes`` of the file start.  ``tail_error`` is ``None``
    for a clean file, otherwise a human-readable account of the first
    invalid byte — everything from ``valid_bytes`` on is untrustworthy and
    the caller must quarantine + truncate before appending again.
    """

    epoch_id: int
    batches: tuple[tuple[object, np.ndarray], ...]
    valid_bytes: int
    tail_error: str | None

    @property
    def items(self) -> int:
        return sum(len(batch) for batch, _ in self.batches)


def read_wal(blob: bytes) -> WalContents:
    """Scan a WAL file, returning its valid prefix.

    The fixed header must validate (a damaged header means the *identity*
    of the journal is unknowable — :class:`StoreCorruptionError`).  Frames
    are then read until the first length/checksum/decode failure; that and
    everything after it is reported as the torn tail, never replayed.
    """
    epoch_id = decode_wal_header(blob)
    offset = _WAL_HEADER.size
    batches: list[tuple[object, np.ndarray]] = []
    tail_error: str | None = None
    while offset < len(blob):
        if offset + _FRAME_HEADER.size > len(blob):
            tail_error = f"torn frame header at byte {offset}"
            break
        length, stored_crc = _FRAME_HEADER.unpack_from(blob, offset)
        if length > MAX_WAL_FRAME_BYTES:
            tail_error = f"frame at byte {offset} claims {length} bytes"
            break
        start = offset + _FRAME_HEADER.size
        end = start + length
        if end > len(blob):
            tail_error = f"torn frame payload at byte {offset}"
            break
        payload = blob[start:end]
        if zlib.crc32(payload) != stored_crc:
            tail_error = f"frame checksum mismatch at byte {offset}"
            break
        try:
            batch, values = decode_batch(payload)
        except WireFormatError as error:
            tail_error = f"frame at byte {offset} malformed: {error}"
            break
        batches.append((batch, values))
        offset = end
    return WalContents(
        epoch_id=epoch_id,
        batches=tuple(batches),
        valid_bytes=offset,
        tail_error=tail_error,
    )

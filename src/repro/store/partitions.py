"""Durable per-partition checkpoints for the dynamic ingest coordinator.

The coordinator already keeps an in-memory snapshot + journal per
partition (its failure-recovery source).  :class:`PartitionStore` mirrors
the snapshot half onto disk — one checksummed, atomically-replaced file
per partition, same format armor as the epoch store — so a coordinator
restart can resume a fleet from disk instead of from a survivor's memory:
``DynamicIngestCoordinator(..., store=PartitionStore(dir))`` persists every
checkpoint/collect/handoff snapshot, and a new coordinator constructed
over the same directory installs the persisted states into its workers
before ingesting another item.

Unlike the epoch store there is no journal here: the coordinator's
checkpoint cadence (``journal_limit``) already bounds the replay window,
and batches between checkpoints remain the *stream's* responsibility —
the durable unit is the fenced, quiesced partition snapshot, which is the
only state the handoff protocol itself trusts.
"""

from __future__ import annotations

import os
import re

import numpy as np

from repro.store.faultfs import FileSystem
from repro.store.format import (
    StoreCorruptionError,
    StoreError,
    decode_snapshot_file,
    encode_snapshot_file,
)

QUARANTINE_DIR = "quarantine"

_PARTITION_NAME = re.compile(r"^partition-(\d{5})\.snap$")


def partition_filename(partition: int) -> str:
    return f"partition-{partition:05d}.snap"


class PartitionStore:
    """One directory of per-partition checkpoint files.

    ``algorithm`` (optional) pins the sketch family; a persisted checkpoint
    naming another family raises :class:`StoreError` on load.  Corrupt
    checkpoint files are quarantined and loading raises
    :class:`StoreCorruptionError` — a fleet must never silently resume
    with a partition's history missing.
    """

    def __init__(
        self,
        directory: str,
        *,
        algorithm: str | None = None,
        sync: bool = True,
        fs: FileSystem | None = None,
    ) -> None:
        self.directory = directory
        self.algorithm = algorithm
        self.sync = sync
        self._fs = fs or FileSystem()
        self._fs.makedirs(directory)
        self._fs.makedirs(os.path.join(directory, QUARANTINE_DIR))
        self.saves = 0
        self.quarantined_files = 0

    def _path(self, name: str) -> str:
        return os.path.join(self.directory, name)

    def _quarantine(self, name: str) -> str:
        destination = os.path.join(QUARANTINE_DIR, name)
        suffix = 0
        while self._fs.exists(self._path(destination)):
            suffix += 1
            destination = os.path.join(QUARANTINE_DIR, f"{name}.{suffix}")
        self._fs.move(self._path(name), self._path(destination))
        self.quarantined_files += 1
        return destination

    # ------------------------------------------------------------------ api
    def save(
        self,
        partition: int,
        state: dict[str, np.ndarray],
        meta: dict,
        algorithm: str,
    ) -> None:
        """Atomically persist one partition's checkpoint (latest wins)."""
        blob = encode_snapshot_file(state, algorithm, {**meta, "partition": partition})
        name = partition_filename(partition)
        tmp = self._path(name + ".tmp")
        handle = self._fs.open_write(tmp)
        try:
            self._fs.write(handle, blob)
            if self.sync:
                self._fs.fsync(handle)
        finally:
            self._fs.close(handle)
        self._fs.replace(tmp, self._path(name))
        self._fs.fsync_dir(self.directory)
        self.saves += 1

    def load_all(self) -> dict[int, tuple[dict[str, np.ndarray], dict]]:
        """Every persisted partition's ``(state, meta)``, keyed by partition.

        Raises :class:`StoreCorruptionError` after quarantining if any
        checkpoint fails validation — partial resume is not offered.
        """
        checkpoints: dict[int, tuple[dict[str, np.ndarray], dict]] = {}
        corrupt: list[str] = []
        for name in self._fs.listdir(self.directory):
            if name == QUARANTINE_DIR:
                continue
            if name.endswith(".tmp"):
                corrupt.append(self._quarantine(name))
                continue
            match = _PARTITION_NAME.match(name)
            if match is None:
                corrupt.append(self._quarantine(name))
                continue
            partition = int(match.group(1))
            try:
                blob = self._fs.read_bytes(self._path(name))
                state, algorithm, meta = decode_snapshot_file(blob)
            except (StoreCorruptionError, OSError):
                corrupt.append(self._quarantine(name))
                continue
            if self.algorithm is not None and algorithm != self.algorithm:
                raise StoreError(
                    f"partition store holds {algorithm!r}, expected {self.algorithm!r}"
                )
            checkpoints[partition] = (state, meta)
        if corrupt:
            raise StoreCorruptionError(
                f"partition store at {self.directory} has corrupt checkpoints "
                f"(quarantined: {', '.join(corrupt)})"
            )
        return checkpoints

    def partitions(self) -> list[int]:
        """Partitions with a persisted checkpoint (no validation)."""
        found = []
        for name in self._fs.listdir(self.directory):
            match = _PARTITION_NAME.match(name)
            if match is not None:
                found.append(int(match.group(1)))
        return sorted(found)

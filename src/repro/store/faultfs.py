"""Deterministic crash injection for the durable store's disk I/O.

The crash-safety claims of :mod:`repro.store.store` are only worth what
their tests can *prove*, and real crashes are not reproducible.  This
module is the at-rest sibling of :mod:`repro.distributed.fault`: the store
performs every disk operation through a :class:`FileSystem` object, and
:class:`CrashInjectingFileSystem` wraps the real one with a
:class:`CrashPlan` — a schedule expressed in **syscall counters and byte
offsets**, not wall clocks, so the same plan produces the same torn file on
every run.

A scheduled crash raises :class:`InjectedCrash`, which deliberately
subclasses ``BaseException``: the store's graceful-degradation handlers
catch ``OSError`` (a *failing* disk is survivable), but a crash is the
process dying mid-syscall — nothing in the store may catch it.  The test
harness catches it at the top, throws the store object away (the "process"
is gone), and reopens the directory with a clean filesystem to exercise
recovery, exactly like the chaos suites reopen a fleet after a link kill.

Every decision is recorded (``writes``, ``bytes_written``, ``fsyncs``,
``replaces``, ``crashed``) so a test can assert the schedule fired before
asserting what recovery did about it.
"""

from __future__ import annotations

import os
import shutil
import time
from dataclasses import dataclass, field


class InjectedCrash(BaseException):
    """The simulated process died mid-syscall.

    ``BaseException`` on purpose: the store catches ``OSError`` to degrade
    gracefully, and a crash must never be mistaken for a survivable disk
    error — it has to unwind through the store untouched.
    """


@dataclass(frozen=True)
class CrashPlan:
    """One store's deterministic crash/corruption schedule.

    All counters are 0-based operation indices as issued by the store.
    ``None`` disables a fault.  Exactly like :class:`~repro.distributed.fault.FaultPlan`,
    counters (not clocks) are what make a plan replayable.
    """

    #: Crash *during* this write call, after letting ``write_prefix`` bytes
    #: through — the torn-write window of a real kill.
    crash_at_write: int | None = None
    #: Bytes of the fatal write that reach the file (0 = none).
    write_prefix: int = 0
    #: Crash when cumulative bytes written would cross this absolute offset;
    #: the partial write up to the offset lands.  Drives kill-at-offset
    #: sweeps over a whole run's write stream.
    crash_at_byte: int | None = None
    #: Crash on this fsync call, *before* anything is made durable.
    crash_at_fsync: int | None = None
    #: Crash on this replace (atomic rename) call; ``replace_completes``
    #: decides whether the rename landed before the process died.
    crash_at_replace: int | None = None
    replace_completes: bool = False
    #: fsync calls that fail with ``OSError`` (disk full / I/O error) —
    #: survivable faults exercising the degradation path, not crashes.
    fail_fsyncs: frozenset[int] = field(default_factory=frozenset)
    #: write calls that fail with ``OSError`` (disk full).
    fail_writes: frozenset[int] = field(default_factory=frozenset)
    #: Deterministic pacing: every fsync takes at least this long (drives
    #: the slow-fsync demotion threshold).
    delay_fsync_seconds: float = 0.0
    #: Silent corruption: on write call ``garble_write``, XOR the byte at
    #: ``garble_offset`` (within that write) with ``garble_mask`` before it
    #: hits the disk.  Models firmware/medium bit rot that fsync cannot see.
    garble_write: int | None = None
    garble_offset: int = 0
    garble_mask: int = 0xFF

    def __post_init__(self) -> None:
        if self.write_prefix < 0:
            raise ValueError("write_prefix must be non-negative")
        if self.delay_fsync_seconds < 0:
            raise ValueError("delay_fsync_seconds must be non-negative")
        if not 0 <= self.garble_mask <= 0xFF:
            raise ValueError("garble_mask must be a byte")


class FileSystem:
    """The store's complete disk surface, one syscall per method.

    The real implementation is a thin veneer over ``os``/``shutil``; its
    value is that every byte the store moves flows through one narrow,
    wrappable interface.  Handles are plain binary file objects — wrappers
    interpose on the *calls*, not the handles.
    """

    def makedirs(self, path: str) -> None:
        os.makedirs(path, exist_ok=True)

    def listdir(self, path: str) -> list[str]:
        return sorted(os.listdir(path))

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def file_size(self, path: str) -> int:
        return os.path.getsize(path)

    def read_bytes(self, path: str) -> bytes:
        with open(path, "rb") as handle:
            return handle.read()

    def open_write(self, path: str):
        """Open for writing, truncating (snapshot temp files).

        Unbuffered on purpose: every :meth:`write` reaches the OS before it
        returns, so a simulated crash between two writes leaves exactly the
        bytes written so far in the file — never a Python-level buffer that
        a leaked handle could flush *after* "death", which would make torn
        files nondeterministic.
        """
        return open(path, "wb", buffering=0)

    def open_append(self, path: str):
        """Open for appending (the live WAL); unbuffered, see :meth:`open_write`."""
        return open(path, "ab", buffering=0)

    def write(self, handle, data: bytes) -> None:
        handle.write(data)

    def fsync(self, handle) -> None:
        handle.flush()
        os.fsync(handle.fileno())

    def close(self, handle) -> None:
        handle.close()

    def replace(self, src: str, dst: str) -> None:
        """Atomic rename — the commit point of a snapshot publish."""
        os.replace(src, dst)

    def remove(self, path: str) -> None:
        os.remove(path)

    def move(self, src: str, dst: str) -> None:
        """Rename across names (quarantine moves); never overwrites."""
        os.rename(src, dst)

    def copy(self, src: str, dst: str) -> None:
        shutil.copyfile(src, dst)

    def truncate(self, path: str, size: int) -> None:
        """Shrink a file in place (torn-tail repair; only ever shrinks)."""
        with open(path, "r+b") as handle:
            handle.truncate(size)
            handle.flush()
            os.fsync(handle.fileno())

    def fsync_dir(self, path: str) -> None:
        """Make a directory entry (create/rename/remove) durable."""
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:
            return  # platform without directory fsync — best effort
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


class CrashInjectingFileSystem(FileSystem):
    """A :class:`FileSystem` decorator executing a :class:`CrashPlan`.

    Once a crash fires the filesystem is *dead*: every further operation
    raises :class:`InjectedCrash`, because a real dead process issues no
    further syscalls — a store that kept going after one would be a bug in
    the harness's model, and this makes it loud.
    """

    def __init__(self, inner: FileSystem | None = None, plan: CrashPlan | None = None) -> None:
        self.inner = inner or FileSystem()
        self.plan = plan or CrashPlan()
        self.writes = 0
        self.bytes_written = 0
        self.fsyncs = 0
        self.replaces = 0
        self.truncates = 0
        self.crashed = False
        self.garbled = False

    # -- schedule execution -------------------------------------------------

    def _crash(self, what: str) -> None:
        self.crashed = True
        raise InjectedCrash(what)

    def _check_dead(self) -> None:
        if self.crashed:
            raise InjectedCrash("filesystem operation after injected crash")

    # -- interposed operations ----------------------------------------------

    def write(self, handle, data: bytes) -> None:
        self._check_dead()
        plan = self.plan
        index = self.writes
        self.writes += 1
        if index in plan.fail_writes:
            raise OSError(28, "injected disk full")  # ENOSPC
        if plan.garble_write == index and data:
            offset = min(plan.garble_offset, len(data) - 1)
            garbled = bytearray(data)
            garbled[offset] ^= plan.garble_mask
            data = bytes(garbled)
            self.garbled = True
        if plan.crash_at_write == index:
            prefix = min(plan.write_prefix, len(data))
            if prefix:
                self.inner.write(handle, data[:prefix])
                self.bytes_written += prefix
            self._crash(f"crash during write #{index}")
        if plan.crash_at_byte is not None and self.bytes_written + len(data) > plan.crash_at_byte:
            prefix = max(0, plan.crash_at_byte - self.bytes_written)
            if prefix:
                self.inner.write(handle, data[:prefix])
                self.bytes_written += prefix
            self._crash(f"crash at byte offset {plan.crash_at_byte}")
        self.inner.write(handle, data)
        self.bytes_written += len(data)

    def fsync(self, handle) -> None:
        self._check_dead()
        index = self.fsyncs
        self.fsyncs += 1
        if self.plan.crash_at_fsync == index:
            self._crash(f"crash during fsync #{index}")
        if index in self.plan.fail_fsyncs:
            raise OSError(5, "injected I/O error on fsync")  # EIO
        if self.plan.delay_fsync_seconds:
            time.sleep(self.plan.delay_fsync_seconds)
        self.inner.fsync(handle)

    def replace(self, src: str, dst: str) -> None:
        self._check_dead()
        index = self.replaces
        self.replaces += 1
        if self.plan.crash_at_replace == index:
            if self.plan.replace_completes:
                self.inner.replace(src, dst)
            self._crash(f"crash during replace #{index}")
        self.inner.replace(src, dst)

    def truncate(self, path: str, size: int) -> None:
        self._check_dead()
        self.truncates += 1
        self.inner.truncate(path, size)

    # -- pass-throughs (guarded: a dead process issues no syscalls) ---------

    def makedirs(self, path: str) -> None:
        self._check_dead()
        self.inner.makedirs(path)

    def listdir(self, path: str) -> list[str]:
        self._check_dead()
        return self.inner.listdir(path)

    def exists(self, path: str) -> bool:
        self._check_dead()
        return self.inner.exists(path)

    def file_size(self, path: str) -> int:
        self._check_dead()
        return self.inner.file_size(path)

    def read_bytes(self, path: str) -> bytes:
        self._check_dead()
        return self.inner.read_bytes(path)

    def open_write(self, path: str):
        self._check_dead()
        return self.inner.open_write(path)

    def open_append(self, path: str):
        self._check_dead()
        return self.inner.open_append(path)

    def close(self, handle) -> None:
        # Closing is allowed even after a crash: the harness's cleanup path
        # (and CPython's GC) closes handles the dead "process" leaked.
        self.inner.close(handle)

    def remove(self, path: str) -> None:
        self._check_dead()
        self.inner.remove(path)

    def move(self, src: str, dst: str) -> None:
        self._check_dead()
        self.inner.move(src, dst)

    def copy(self, src: str, dst: str) -> None:
        self._check_dead()
        self.inner.copy(src, dst)

    def fsync_dir(self, path: str) -> None:
        self._check_dead()
        index = self.fsyncs
        self.fsyncs += 1
        if self.plan.crash_at_fsync == index:
            self._crash(f"crash during directory fsync #{index}")
        if index in self.plan.fail_fsyncs:
            raise OSError(5, "injected I/O error on fsync")
        if self.plan.delay_fsync_seconds:
            time.sleep(self.plan.delay_fsync_seconds)
        self.inner.fsync_dir(path)

"""Seeded hash-function families built on MurmurHash3.

Sketches need several *independent* hash functions (one per array/layer).  A
:class:`HashFamily` hands out :class:`HashFunction` objects with distinct
seeds derived from a master seed, so an experiment can be reproduced exactly
by fixing a single integer.

Keys in this repository may be ``int``, ``str`` or ``bytes``; everything is
normalised to bytes before hashing so that the same key always maps to the
same bucket regardless of which sketch consumes it.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.hashing.murmur import murmur3_32, murmur3_32_fixed_batch

_MASK64 = 0xFFFFFFFFFFFFFFFF

#: Multiplier of SplitMix64, used to derive per-function seeds from one seed.
_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15


def key_to_bytes(key: object) -> bytes:
    """Normalise a stream key to bytes for hashing.

    Integers are encoded little-endian in the fewest bytes that hold them
    (minimum 4, mirroring the 32-bit flow IDs used in the paper), strings are
    UTF-8 encoded, and bytes pass through unchanged.
    """
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode("utf-8")
    if isinstance(key, int):
        if key < 0:
            # Map negative keys to a distinct positive range deterministically.
            key = (-key << 1) | 1
        else:
            key = key << 1
        length = max(4, (key.bit_length() + 7) // 8)
        return key.to_bytes(length, "little")
    raise TypeError(f"unsupported key type: {type(key)!r}")


def encode_keys(keys: Sequence[object]) -> list[bytes]:
    """Batch :func:`key_to_bytes`: encode every key of a batch exactly once.

    The scalar datapath re-encodes a key for every hash function that touches
    it (``d`` times per insert for a depth-``d`` sketch); the batch datapath
    encodes each key once and shares the encoding across all hash functions
    via :class:`EncodedKeyBatch`.
    """
    return [key_to_bytes(key) for key in keys]


# Per-key type tags of the reversible key-list codec (shared with the wire
# format's tagged batch mode, which uses the same 0/1/2 assignment).
KEY_TAG_INT = 0
KEY_TAG_STR = 1
KEY_TAG_BYTES = 2
#: Slot-is-empty tag of :func:`keys_to_arrays` (``None`` entries, e.g. the
#: unset buckets of a ReliableSketch layer).
KEY_TAG_NONE = 3


def decode_zigzag_int(encoded: bytes) -> int:
    """Invert the zigzag int encoding of :func:`key_to_bytes`."""
    value = int.from_bytes(encoded, "little")
    return -(value >> 1) if value & 1 else value >> 1


def key_from_bytes(tag: int, encoded: bytes) -> object | None:
    """Invert :func:`key_to_bytes` given the key's type tag."""
    if tag == KEY_TAG_BYTES:
        return encoded
    if tag == KEY_TAG_STR:
        return encoded.decode("utf-8")
    if tag == KEY_TAG_INT:
        return decode_zigzag_int(encoded)
    if tag == KEY_TAG_NONE:
        return None
    raise ValueError(f"unknown key tag {tag}")


def keys_to_arrays(keys: Sequence[object | None]) -> dict[str, np.ndarray]:
    """Serialize a key list (``None`` allowed) into three plain arrays.

    Returns ``{"tags": uint8, "lengths": uint32, "blob": uint8}`` —
    per-slot type tags, per-slot encoded lengths and the concatenated
    :func:`key_to_bytes` encodings.  The representation is array-only on
    purpose: it rides inside ``state_snapshot()`` dicts, which the
    distributed wire format ships as raw array bytes.  Inverse:
    :func:`keys_from_arrays`.
    """
    count = len(keys)
    tags = np.empty(count, dtype=np.uint8)
    encodings: list[bytes] = []
    for position, key in enumerate(keys):
        if key is None:
            tags[position] = KEY_TAG_NONE
            encodings.append(b"")
        elif isinstance(key, bytes):
            tags[position] = KEY_TAG_BYTES
            encodings.append(key)
        elif isinstance(key, str):
            tags[position] = KEY_TAG_STR
            encodings.append(key.encode("utf-8"))
        elif isinstance(key, int):
            tags[position] = KEY_TAG_INT
            encodings.append(key_to_bytes(key))
        else:
            raise TypeError(f"unsupported key type: {type(key)!r}")
    lengths = np.fromiter((len(blob) for blob in encodings), dtype=np.uint32, count=count)
    blob = np.frombuffer(b"".join(encodings), dtype=np.uint8)
    return {"tags": tags, "lengths": lengths, "blob": blob}


def keys_from_arrays(
    tags: np.ndarray, lengths: np.ndarray, blob: np.ndarray
) -> list[object | None]:
    """Inverse of :func:`keys_to_arrays`; malformed input raises ``ValueError``."""
    tags = np.asarray(tags, dtype=np.uint8)
    lengths = np.asarray(lengths, dtype=np.uint32)
    if tags.shape != lengths.shape:
        raise ValueError("key tags and lengths must have the same shape")
    raw = np.asarray(blob, dtype=np.uint8).tobytes()
    if int(lengths.sum()) != len(raw):
        raise ValueError("key blob does not match the encoded lengths")
    keys: list[object | None] = []
    position = 0
    for tag, length in zip(tags.tolist(), lengths.tolist()):
        piece = raw[position : position + length]
        position += length
        keys.append(key_from_bytes(tag, piece))
    return keys


class EncodedKeyBatch:
    """A batch of stream keys, pre-encoded and grouped for vectorized hashing.

    MurmurHash3 is only vectorizable over *same-length* inputs (the block
    loop depends on the byte length), so the batch groups its keys by encoded
    length and packs each group into a contiguous ``(n_group, length)``
    ``uint8`` matrix.  Real workloads (32-bit flow IDs) collapse into a
    single 4-byte group, which is the fully vectorized fast path; mixed key
    types degrade gracefully into one kernel launch per distinct length.

    The batch is immutable and reusable: every hash function of every layer
    or array hashes the same encoded matrices, so encoding cost is paid once
    per item regardless of sketch depth.  Batches of non-negative ints below
    2^31 (the paper's 32-bit flow IDs) skip per-key ``key_to_bytes`` entirely
    and build the packed matrix with whole-array NumPy operations.

    Constructing an ``EncodedKeyBatch`` from an existing one shares all of
    its cached state instead of re-encoding, and the batch behaves as a
    read-only sequence of its original keys.  Together these let a batch be
    passed anywhere a key sequence is accepted — in particular, a
    :class:`repro.sketches.sharded.ShardedSketch` can route sub-batches into
    its per-shard sketches' ``insert_batch`` without paying the encoding
    twice.
    """

    __slots__ = (
        "_keys", "_encoded", "_groups", "_group_of", "_row_of",
        "_int_array", "_count", "_parent", "_positions",
    )

    def __init__(self, keys: Sequence[object], _encoded: list[bytes] | None = None) -> None:
        if isinstance(keys, EncodedKeyBatch):
            # Share the donor's cached encodings/groups: re-wrapping a batch
            # (e.g. a routed sub-batch entering a sketch's insert_batch) must
            # never redo the per-key encoding work.
            self._keys = keys._keys
            self._encoded = keys._encoded if _encoded is None else _encoded
            self._groups = keys._groups
            self._group_of = keys._group_of
            self._row_of = keys._row_of
            self._int_array = keys._int_array
            self._count = keys._count
            self._parent = keys._parent
            self._positions = keys._positions
            return
        if isinstance(keys, np.ndarray):
            keys = keys.tolist()
        elif not isinstance(keys, (list, tuple)):
            keys = list(keys)
        self._keys = keys
        self._encoded = _encoded
        self._groups: list[tuple[np.ndarray, np.ndarray]] | None = None
        # Per-position (group id, row within the group matrix) maps, built
        # with the groups; they make take() a pure matrix-slicing operation.
        self._group_of: np.ndarray | None = None
        self._row_of: np.ndarray | None = None
        self._int_array: np.ndarray | None = None
        self._count = len(keys)
        self._parent: EncodedKeyBatch | None = None
        self._positions: np.ndarray | None = None

    @property
    def keys(self) -> Sequence[object]:
        """The original key objects.

        Sub-batches built by :meth:`take` defer this list: the per-layer
        hashing of the survivor pipeline only ever touches the packed
        matrices, so the Python-level key list is materialised lazily on
        first access (typically never for intermediate layers).
        """
        if self._keys is None:
            parent = self._parent
            positions = self._positions
            parent_keys = parent.keys
            self._keys = [parent_keys[i] for i in positions]
            if self._encoded is None and parent._encoded is not None:
                self._encoded = [parent._encoded[i] for i in positions]
            self._parent = None
            self._positions = None
        return self._keys

    def __len__(self) -> int:
        return self._count

    def __iter__(self):
        # Sequence behaviour over the original keys: scalar-fallback sketches
        # inside a sharded wrapper receive sub-batches and loop over them.
        return iter(self.keys)

    def __getitem__(self, index):
        return self.keys[index]

    @property
    def encoded(self) -> list[bytes]:
        """Per-key encodings (materialised on demand)."""
        if self._encoded is None:
            self.keys  # a deferred sub-batch slices its parent's encodings
            if self._encoded is None:
                self._encoded = encode_keys(self._keys)
        return self._encoded

    @property
    def int_key_array(self) -> np.ndarray | None:
        """The keys as one ``int64`` array when the int fast path applies.

        ``None`` for batches that did not take the fast path (mixed types,
        negative or oversized ints).  Used by the key interner to resolve
        whole batches through one table gather.
        """
        self.groups  # the fast-path probe runs with the one-time packing
        return self._int_array

    def _int_fast_groups(self) -> list[tuple[np.ndarray, np.ndarray]] | None:
        """Single-group packing for batches of small non-negative ints.

        ``key_to_bytes`` maps an int ``k`` in ``[0, 2^31)`` to the 4-byte
        little-endian encoding of ``k << 1``, so the whole batch packs into
        one ``(n, 4)`` matrix via a vectorized shift — no per-key encoding.
        The type screen runs at C speed (``set(map(type, ...))`` is exactly
        the per-key ``type(key) is int`` test) and the bounds check on the
        already-converted array.
        """
        if set(map(type, self.keys)) != {int}:
            return None
        try:
            array = np.asarray(self._keys, dtype=np.int64)
        except OverflowError:
            return None
        if int(array.min()) < 0 or int(array.max()) >= 2**31:
            return None
        self._int_array = array
        matrix = (array << 1).astype("<u4").view(np.uint8).reshape(self._count, 4)
        return [(np.arange(self._count, dtype=np.intp), matrix)]

    @property
    def groups(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Length groups as ``(original_positions, (n, length) uint8 matrix)``."""
        if self._groups is None:
            groups = None
            if self._encoded is None and self._count:
                groups = self._int_fast_groups()
            if groups is None:
                by_length: dict[int, list[int]] = {}
                for position, encoding in enumerate(self.encoded):
                    by_length.setdefault(len(encoding), []).append(position)
                groups = []
                for length, positions in by_length.items():
                    packed = b"".join(self.encoded[i] for i in positions)
                    matrix = np.frombuffer(packed, dtype=np.uint8).reshape(len(positions), length)
                    groups.append((np.asarray(positions, dtype=np.intp), matrix))
            self._set_groups(groups)
        return self._groups

    def _set_groups(self, groups: list[tuple[np.ndarray, np.ndarray]]) -> None:
        """Install groups and the position -> (group, row) reverse maps."""
        self._groups = groups
        count = self._count
        self._group_of = np.empty(count, dtype=np.intp)
        self._row_of = np.empty(count, dtype=np.intp)
        for group_id, (positions, _) in enumerate(groups):
            self._group_of[positions] = group_id
            self._row_of[positions] = np.arange(len(positions), dtype=np.intp)

    def take(self, positions: Sequence[int]) -> "EncodedKeyBatch":
        """Sub-batch of the given positions, reusing the packed encodings.

        Used by the layered datapath of ReliableSketch: only the items that
        survive layer ``i`` are re-hashed for layer ``i + 1``.  When the
        length groups are already packed, the sub-batch's groups are sliced
        straight out of the parent matrices — no per-key re-encoding or
        re-packing, even on the int fast path — and the Python key list is
        *deferred*: hashing only reads the matrices, so consumers that
        never touch ``.keys`` (each layer of the survivor pipeline) skip
        the per-key list construction entirely.
        """
        # Force the parent's one-time packing (a no-op if a hash already
        # triggered it), so sub-batches always slice instead of re-encoding.
        parent_groups = self.groups
        position_array = np.asarray(positions, dtype=np.intp)
        sub = object.__new__(EncodedKeyBatch)
        sub._keys = None
        sub._encoded = None
        sub._count = len(position_array)
        sub._parent = self
        sub._positions = position_array
        sub._int_array = (
            None if self._int_array is None else self._int_array[position_array]
        )
        group_ids = self._group_of[position_array]
        rows = self._row_of[position_array]
        groups = []
        for group_id, (_, matrix) in enumerate(parent_groups):
            mask = group_ids == group_id
            if mask.any():
                groups.append(
                    (np.nonzero(mask)[0].astype(np.intp), matrix[rows[mask]])
                )
        sub._set_groups(groups)
        return sub


def derive_seed(master_seed: int, index: int) -> int:
    """Derive the ``index``-th 32-bit seed from a 64-bit master seed.

    Uses a SplitMix64-style finaliser so that nearby master seeds and indices
    still produce unrelated 32-bit seeds.
    """
    z = (master_seed + (index + 1) * _SPLITMIX_GAMMA) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    z = z ^ (z >> 31)
    return z & 0xFFFFFFFF


class HashFunction:
    """A single seeded hash function mapping keys to ``[0, width)``.

    Instances also count how many times they were evaluated; the paper's
    Figure 16 reports the average number of hash calls per operation, and the
    experiment harness reads these counters to reproduce it.
    """

    __slots__ = ("seed", "width", "calls")

    def __init__(self, seed: int, width: int | None = None) -> None:
        if width is not None and width <= 0:
            raise ValueError("hash width must be positive")
        self.seed = seed & 0xFFFFFFFF
        self.width = width
        self.calls = 0

    def raw(self, key: object) -> int:
        """Return the raw unsigned 32-bit hash of ``key``."""
        self.calls += 1
        return murmur3_32(key_to_bytes(key), self.seed)

    def __call__(self, key: object) -> int:
        """Return the bucket index of ``key`` (requires ``width``)."""
        value = self.raw(key)
        if self.width is None:
            return value
        return value % self.width

    def raw_batch(self, batch: EncodedKeyBatch) -> np.ndarray:
        """Raw 32-bit hashes of a whole batch as an ``int64`` array.

        Bit-identical to calling :meth:`raw` on each key; the call counter
        advances by the batch size so that hash-call accounting (Figure 16)
        matches the scalar path exactly.
        """
        self.calls += len(batch)
        out = np.empty(len(batch), dtype=np.int64)
        for positions, matrix in batch.groups:
            out[positions] = murmur3_32_fixed_batch(matrix, self.seed).astype(np.int64)
        return out

    def index_batch(self, batch: EncodedKeyBatch) -> np.ndarray:
        """Bucket indexes of a whole batch (``raw_batch`` reduced mod width)."""
        raw = self.raw_batch(batch)
        if self.width is None:
            return raw
        return raw % self.width

    def reset_counter(self) -> None:
        """Zero the call counter (used between measurement phases)."""
        self.calls = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashFunction(seed={self.seed:#010x}, width={self.width})"


class SignHashFunction(HashFunction):
    """Hash function returning ±1, used by the Count sketch."""

    def __call__(self, key: object) -> int:  # type: ignore[override]
        return 1 if self.raw(key) & 1 else -1

    def sign_batch(self, batch: EncodedKeyBatch) -> np.ndarray:
        """±1 signs of a whole batch as an ``int64`` array."""
        return np.where(self.raw_batch(batch) & 1, np.int64(1), np.int64(-1))


class HashFamily:
    """Factory of independent :class:`HashFunction` objects.

    Parameters
    ----------
    master_seed:
        Any integer; all functions drawn from the family are derived from it.
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._next_index = 0
        self._functions: list[HashFunction] = []

    def draw(self, width: int | None = None) -> HashFunction:
        """Create the next independent index-hash in the family."""
        fn = HashFunction(derive_seed(self.master_seed, self._next_index), width)
        self._next_index += 1
        self._functions.append(fn)
        return fn

    def draw_sign(self) -> SignHashFunction:
        """Create the next independent ±1 hash in the family."""
        fn = SignHashFunction(derive_seed(self.master_seed, self._next_index))
        self._next_index += 1
        self._functions.append(fn)
        return fn

    def draw_many(self, count: int, width: int | None = None) -> list[HashFunction]:
        """Create ``count`` independent index-hashes with a common width."""
        return [self.draw(width) for _ in range(count)]

    @property
    def functions(self) -> Iterable[HashFunction]:
        """All functions drawn so far (used for hash-call accounting)."""
        return tuple(self._functions)

    def total_calls(self) -> int:
        """Total number of hash evaluations across all drawn functions."""
        return sum(fn.calls for fn in self._functions)

    def reset_counters(self) -> None:
        """Zero all call counters in the family."""
        for fn in self._functions:
            fn.reset_counter()

"""Seeded hash-function families built on MurmurHash3.

Sketches need several *independent* hash functions (one per array/layer).  A
:class:`HashFamily` hands out :class:`HashFunction` objects with distinct
seeds derived from a master seed, so an experiment can be reproduced exactly
by fixing a single integer.

Keys in this repository may be ``int``, ``str`` or ``bytes``; everything is
normalised to bytes before hashing so that the same key always maps to the
same bucket regardless of which sketch consumes it.
"""

from __future__ import annotations

from typing import Iterable

from repro.hashing.murmur import murmur3_32

_MASK64 = 0xFFFFFFFFFFFFFFFF

#: Multiplier of SplitMix64, used to derive per-function seeds from one seed.
_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15


def key_to_bytes(key: object) -> bytes:
    """Normalise a stream key to bytes for hashing.

    Integers are encoded little-endian in the fewest bytes that hold them
    (minimum 4, mirroring the 32-bit flow IDs used in the paper), strings are
    UTF-8 encoded, and bytes pass through unchanged.
    """
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode("utf-8")
    if isinstance(key, int):
        if key < 0:
            # Map negative keys to a distinct positive range deterministically.
            key = (-key << 1) | 1
        else:
            key = key << 1
        length = max(4, (key.bit_length() + 7) // 8)
        return key.to_bytes(length, "little")
    raise TypeError(f"unsupported key type: {type(key)!r}")


def derive_seed(master_seed: int, index: int) -> int:
    """Derive the ``index``-th 32-bit seed from a 64-bit master seed.

    Uses a SplitMix64-style finaliser so that nearby master seeds and indices
    still produce unrelated 32-bit seeds.
    """
    z = (master_seed + (index + 1) * _SPLITMIX_GAMMA) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    z = z ^ (z >> 31)
    return z & 0xFFFFFFFF


class HashFunction:
    """A single seeded hash function mapping keys to ``[0, width)``.

    Instances also count how many times they were evaluated; the paper's
    Figure 16 reports the average number of hash calls per operation, and the
    experiment harness reads these counters to reproduce it.
    """

    __slots__ = ("seed", "width", "calls")

    def __init__(self, seed: int, width: int | None = None) -> None:
        if width is not None and width <= 0:
            raise ValueError("hash width must be positive")
        self.seed = seed & 0xFFFFFFFF
        self.width = width
        self.calls = 0

    def raw(self, key: object) -> int:
        """Return the raw unsigned 32-bit hash of ``key``."""
        self.calls += 1
        return murmur3_32(key_to_bytes(key), self.seed)

    def __call__(self, key: object) -> int:
        """Return the bucket index of ``key`` (requires ``width``)."""
        value = self.raw(key)
        if self.width is None:
            return value
        return value % self.width

    def reset_counter(self) -> None:
        """Zero the call counter (used between measurement phases)."""
        self.calls = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashFunction(seed={self.seed:#010x}, width={self.width})"


class SignHashFunction(HashFunction):
    """Hash function returning ±1, used by the Count sketch."""

    def __call__(self, key: object) -> int:  # type: ignore[override]
        return 1 if self.raw(key) & 1 else -1


class HashFamily:
    """Factory of independent :class:`HashFunction` objects.

    Parameters
    ----------
    master_seed:
        Any integer; all functions drawn from the family are derived from it.
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._next_index = 0
        self._functions: list[HashFunction] = []

    def draw(self, width: int | None = None) -> HashFunction:
        """Create the next independent index-hash in the family."""
        fn = HashFunction(derive_seed(self.master_seed, self._next_index), width)
        self._next_index += 1
        self._functions.append(fn)
        return fn

    def draw_sign(self) -> SignHashFunction:
        """Create the next independent ±1 hash in the family."""
        fn = SignHashFunction(derive_seed(self.master_seed, self._next_index))
        self._next_index += 1
        self._functions.append(fn)
        return fn

    def draw_many(self, count: int, width: int | None = None) -> list[HashFunction]:
        """Create ``count`` independent index-hashes with a common width."""
        return [self.draw(width) for _ in range(count)]

    @property
    def functions(self) -> Iterable[HashFunction]:
        """All functions drawn so far (used for hash-call accounting)."""
        return tuple(self._functions)

    def total_calls(self) -> int:
        """Total number of hash evaluations across all drawn functions."""
        return sum(fn.calls for fn in self._functions)

    def reset_counters(self) -> None:
        """Zero all call counters in the family."""
        for fn in self._functions:
            fn.reset_counter()

"""Pure-Python MurmurHash3 (x86, 32-bit).

This mirrors the reference implementation used by the paper's C++ code.  The
function is deterministic across runs and platforms, which matters because the
experiments in the paper (notably Figure 7) repeat runs with different seeds
and report worst-case behaviour — reproducibility requires a stable hash.
"""

from __future__ import annotations

_MASK32 = 0xFFFFFFFF

_C1 = 0xCC9E2D51
_C2 = 0x1B873593


def _rotl32(x: int, r: int) -> int:
    """Rotate a 32-bit integer left by ``r`` bits."""
    return ((x << r) | (x >> (32 - r))) & _MASK32


def _fmix32(h: int) -> int:
    """Finalisation mix — forces all bits of a hash block to avalanche."""
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & _MASK32
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & _MASK32
    h ^= h >> 16
    return h


def murmur3_32(data: bytes, seed: int = 0) -> int:
    """Compute the 32-bit MurmurHash3 of ``data`` with the given ``seed``.

    Parameters
    ----------
    data:
        Raw bytes to hash.  Use :func:`repro.hashing.families.key_to_bytes`
        to convert arbitrary stream keys.
    seed:
        32-bit seed selecting a member of the hash family.

    Returns
    -------
    int
        An unsigned 32-bit hash value.
    """
    length = len(data)
    h1 = seed & _MASK32
    rounded_end = (length // 4) * 4

    for i in range(0, rounded_end, 4):
        k1 = (
            data[i]
            | (data[i + 1] << 8)
            | (data[i + 2] << 16)
            | (data[i + 3] << 24)
        )
        k1 = (k1 * _C1) & _MASK32
        k1 = _rotl32(k1, 15)
        k1 = (k1 * _C2) & _MASK32

        h1 ^= k1
        h1 = _rotl32(h1, 13)
        h1 = (h1 * 5 + 0xE6546B64) & _MASK32

    # Tail (remaining 1-3 bytes).
    k1 = 0
    tail = length & 3
    if tail >= 3:
        k1 ^= data[rounded_end + 2] << 16
    if tail >= 2:
        k1 ^= data[rounded_end + 1] << 8
    if tail >= 1:
        k1 ^= data[rounded_end]
        k1 = (k1 * _C1) & _MASK32
        k1 = _rotl32(k1, 15)
        k1 = (k1 * _C2) & _MASK32
        h1 ^= k1

    h1 ^= length
    return _fmix32(h1)

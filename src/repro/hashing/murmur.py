"""MurmurHash3 (x86, 32-bit): scalar reference and vectorized batch kernel.

This mirrors the reference implementation used by the paper's C++ code.  The
function is deterministic across runs and platforms, which matters because the
experiments in the paper (notably Figure 7) repeat runs with different seeds
and report worst-case behaviour — reproducibility requires a stable hash.

Two entry points are provided:

* :func:`murmur3_32` — the scalar reference, one key at a time;
* :func:`murmur3_32_fixed_batch` — the same function evaluated over a
  ``(n, length)`` matrix of same-length keys with NumPy ``uint32``
  arithmetic.  It is bit-identical to the scalar path (the equivalence is
  enforced by ``tests/hashing/test_batch_hashing.py``) and is the kernel
  behind the batch-first datapath of every sketch.
"""

from __future__ import annotations

import numpy as np

_MASK32 = 0xFFFFFFFF

_C1 = 0xCC9E2D51
_C2 = 0x1B873593


def _rotl32(x: int, r: int) -> int:
    """Rotate a 32-bit integer left by ``r`` bits."""
    return ((x << r) | (x >> (32 - r))) & _MASK32


def _fmix32(h: int) -> int:
    """Finalisation mix — forces all bits of a hash block to avalanche."""
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & _MASK32
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & _MASK32
    h ^= h >> 16
    return h


def murmur3_32(data: bytes, seed: int = 0) -> int:
    """Compute the 32-bit MurmurHash3 of ``data`` with the given ``seed``.

    Parameters
    ----------
    data:
        Raw bytes to hash.  Use :func:`repro.hashing.families.key_to_bytes`
        to convert arbitrary stream keys.
    seed:
        32-bit seed selecting a member of the hash family.

    Returns
    -------
    int
        An unsigned 32-bit hash value.
    """
    length = len(data)
    h1 = seed & _MASK32
    rounded_end = (length // 4) * 4

    for i in range(0, rounded_end, 4):
        k1 = (
            data[i]
            | (data[i + 1] << 8)
            | (data[i + 2] << 16)
            | (data[i + 3] << 24)
        )
        k1 = (k1 * _C1) & _MASK32
        k1 = _rotl32(k1, 15)
        k1 = (k1 * _C2) & _MASK32

        h1 ^= k1
        h1 = _rotl32(h1, 13)
        h1 = (h1 * 5 + 0xE6546B64) & _MASK32

    # Tail (remaining 1-3 bytes).
    k1 = 0
    tail = length & 3
    if tail >= 3:
        k1 ^= data[rounded_end + 2] << 16
    if tail >= 2:
        k1 ^= data[rounded_end + 1] << 8
    if tail >= 1:
        k1 ^= data[rounded_end]
        k1 = (k1 * _C1) & _MASK32
        k1 = _rotl32(k1, 15)
        k1 = (k1 * _C2) & _MASK32
        h1 ^= k1

    h1 ^= length
    return _fmix32(h1)


def murmur3_32_fixed_batch(blocks: np.ndarray, seed: int = 0) -> np.ndarray:
    """Vectorized MurmurHash3 of ``n`` same-length keys.

    Parameters
    ----------
    blocks:
        ``(n, length)`` ``uint8`` matrix, one pre-encoded key per row.  All
        rows share the same byte length, so the block loop and the tail
        handling are identical for every row and can run as whole-array
        ``uint32`` operations (wrap-around multiplication gives the mod-2^32
        semantics of the scalar path for free).
    seed:
        32-bit seed selecting a member of the hash family.

    Returns
    -------
    numpy.ndarray
        ``(n,)`` ``uint32`` array, bit-identical to calling
        :func:`murmur3_32` on each row.
    """
    blocks = np.asarray(blocks, dtype=np.uint8)
    if blocks.ndim != 2:
        raise ValueError("blocks must be a 2-D (n, length) uint8 array")
    n, length = blocks.shape
    h1 = np.full(n, seed & _MASK32, dtype=np.uint32)
    rounded_end = (length // 4) * 4

    for i in range(0, rounded_end, 4):
        k1 = (
            blocks[:, i].astype(np.uint32)
            | (blocks[:, i + 1].astype(np.uint32) << 8)
            | (blocks[:, i + 2].astype(np.uint32) << 16)
            | (blocks[:, i + 3].astype(np.uint32) << 24)
        )
        k1 *= np.uint32(_C1)
        k1 = (k1 << 15) | (k1 >> 17)
        k1 *= np.uint32(_C2)

        h1 ^= k1
        h1 = (h1 << 13) | (h1 >> 19)
        h1 = h1 * np.uint32(5) + np.uint32(0xE6546B64)

    tail = length & 3
    if tail:
        k1 = np.zeros(n, dtype=np.uint32)
        if tail >= 3:
            k1 ^= blocks[:, rounded_end + 2].astype(np.uint32) << 16
        if tail >= 2:
            k1 ^= blocks[:, rounded_end + 1].astype(np.uint32) << 8
        k1 ^= blocks[:, rounded_end].astype(np.uint32)
        k1 *= np.uint32(_C1)
        k1 = (k1 << 15) | (k1 >> 17)
        k1 *= np.uint32(_C2)
        h1 ^= k1

    h1 ^= np.uint32(length)
    h1 ^= h1 >> 16
    h1 *= np.uint32(0x85EBCA6B)
    h1 ^= h1 >> 13
    h1 *= np.uint32(0xC2B2AE35)
    h1 ^= h1 >> 16
    return h1

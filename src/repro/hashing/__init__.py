"""Hashing substrate used by every sketch in this repository.

The paper's C++ implementation uses 32-bit MurmurHash3 for all index hashing.
We provide a faithful pure-Python MurmurHash3 (x86, 32-bit) implementation plus
convenience wrappers that turn a seed into an independent hash function family,
as required by multi-array sketches (CM, CU, Count, ...) and by the per-layer
hash functions of ReliableSketch.
"""

from repro.hashing.murmur import murmur3_32
from repro.hashing.families import (
    HashFamily,
    HashFunction,
    SignHashFunction,
    key_to_bytes,
)

__all__ = [
    "murmur3_32",
    "HashFamily",
    "HashFunction",
    "SignHashFunction",
    "key_to_bytes",
]

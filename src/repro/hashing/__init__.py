"""Hashing substrate used by every sketch in this repository.

The paper's C++ implementation uses 32-bit MurmurHash3 for all index hashing.
We provide a faithful pure-Python MurmurHash3 (x86, 32-bit) implementation plus
convenience wrappers that turn a seed into an independent hash function family,
as required by multi-array sketches (CM, CU, Count, ...) and by the per-layer
hash functions of ReliableSketch.

The batch datapath hashes whole arrays of keys at once: encode a batch once
with :class:`EncodedKeyBatch`, then feed it to ``HashFunction.raw_batch`` /
``index_batch`` (or ``SignHashFunction.sign_batch``), which run the NumPy
murmur kernel :func:`murmur3_32_fixed_batch` per same-length key group and
produce bit-identical results to the scalar calls.
"""

from repro.hashing.murmur import murmur3_32, murmur3_32_fixed_batch
from repro.hashing.families import (
    EncodedKeyBatch,
    HashFamily,
    HashFunction,
    SignHashFunction,
    encode_keys,
    key_to_bytes,
)

__all__ = [
    "murmur3_32",
    "murmur3_32_fixed_batch",
    "EncodedKeyBatch",
    "HashFamily",
    "HashFunction",
    "SignHashFunction",
    "encode_keys",
    "key_to_bytes",
]

"""ReliableSketch reproduction library.

Reproduces the paper "Approaching 100% Confidence in Stream Summary through
ReliableSketch": the ReliableSketch algorithm itself, every baseline sketch of
the evaluation, the workload generators, the accuracy/speed metrics, models of
the FPGA and programmable-switch deployments, and an experiment harness that
regenerates every table and figure of the paper.

Quickstart::

    from repro import ReliableSketch, zipf_stream

    stream = zipf_stream(100_000, skew=1.2, seed=7)
    sketch = ReliableSketch.from_stream(total_value=len(stream), tolerance=25)
    sketch.insert_stream(stream)
    result = sketch.query_with_error(stream[0].key)
    assert result.lower_bound <= stream.counts()[stream[0].key] <= result.upper_bound
"""

from repro.core import (
    ErrorSensibleBucket,
    MiceFilter,
    QueryResult,
    ReliableConfig,
    ReliableSketch,
)
from repro.metrics import (
    evaluate_accuracy,
    measure_throughput,
    measure_batch_throughput,
    mb,
    kb,
)
from repro.sketches import (
    CountMinSketch,
    CUSketch,
    CountSketch,
    SpaceSaving,
    FrequentSketch,
    ElasticSketch,
    CocoSketch,
    HashPipe,
    Precision,
    ShardedSketch,
    UnmergeableSketchError,
    build_sketch,
    is_mergeable,
)
from repro.streams import (
    Item,
    Stream,
    zipf_stream,
    ip_trace,
    web_stream,
    datacenter_trace,
    hadoop_trace,
    load_trace,
)

__version__ = "1.0.0"

__all__ = [
    "ErrorSensibleBucket",
    "MiceFilter",
    "QueryResult",
    "ReliableConfig",
    "ReliableSketch",
    "evaluate_accuracy",
    "measure_throughput",
    "measure_batch_throughput",
    "mb",
    "kb",
    "CountMinSketch",
    "CUSketch",
    "CountSketch",
    "SpaceSaving",
    "FrequentSketch",
    "ElasticSketch",
    "CocoSketch",
    "HashPipe",
    "Precision",
    "ShardedSketch",
    "UnmergeableSketchError",
    "build_sketch",
    "is_mergeable",
    "Item",
    "Stream",
    "zipf_stream",
    "ip_trace",
    "web_stream",
    "datacenter_trace",
    "hadoop_trace",
    "load_trace",
    "__version__",
]

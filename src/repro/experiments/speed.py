"""Speed experiments: Figure 10 (throughput) and Figure 16 (hash calls).

Absolute throughput in pure Python is not comparable to the paper's C++
numbers; the harness therefore reports *relative* throughput between
algorithms measured back to back on the same stream, plus the
platform-independent operation count of Figure 16 (average number of hash
function calls per insert / query), which is the paper's own explanation of
the speed trends.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.datasets import DEFAULT_SCALE, dataset, scaled_memory_points
from repro.experiments.runner import ExperimentSettings
from repro.metrics.memory import BYTES_PER_MB
from repro.metrics.throughput import measure_batch_throughput, measure_throughput
from repro.sketches.registry import build_sketch, competitor_names


@dataclass(frozen=True)
class ThroughputRow:
    """One bar pair of Figure 10: insert and query throughput of one algorithm."""

    algorithm: str
    insert_mops: float
    query_mops: float


@dataclass(frozen=True)
class HashCallCurve:
    """One line of Figure 16: average hash calls per operation vs memory."""

    algorithm: str
    memory_bytes: list[float]
    insert_calls: list[float]
    query_calls: list[float]


def throughput_comparison(
    dataset_name: str = "ip",
    memory_megabytes: float = 1.0,
    scale: float = DEFAULT_SCALE,
    algorithms: tuple[str, ...] | None = None,
    seed: int = 0,
    batch_size: int | None = None,
) -> list[ThroughputRow]:
    """Insertion and query throughput of every algorithm (Figure 10).

    With ``batch_size`` set, both inserts and queries run through the batch
    datapath (``insert_batch`` / ``query_batch``) in chunks of that size;
    the reported unit is still items per second, so scalar and batch runs
    are directly comparable.
    """
    stream = dataset(dataset_name, scale=scale, seed=seed + 1)
    memory_bytes = scaled_memory_points([memory_megabytes], scale)[0]
    algorithms = algorithms or competitor_names("speed")
    keys = stream.keys()

    rows: list[ThroughputRow] = []
    for name in algorithms:
        sketch = build_sketch(name, memory_bytes, seed=seed)
        if batch_size is None:
            insert_result = measure_throughput(
                lambda item, s=sketch: s.insert(item.key, item.value), stream
            )
            query_result = measure_throughput(lambda key, s=sketch: s.query(key), keys)
        else:
            insert_result = measure_batch_throughput(
                lambda chunk, s=sketch: s.insert_batch(
                    [item.key for item in chunk], [item.value for item in chunk]
                ),
                stream,
                batch_size,
            )
            query_result = measure_batch_throughput(
                lambda chunk, s=sketch: s.query_batch(chunk), keys, batch_size
            )
        rows.append(
            ThroughputRow(
                algorithm=name,
                insert_mops=insert_result.mops,
                query_mops=query_result.mops,
            )
        )
    return rows


def hash_call_profile(
    dataset_name: str = "ip",
    scale: float = DEFAULT_SCALE,
    memory_points: list[float] | None = None,
    algorithms: tuple[str, ...] = ("Ours", "Ours(Raw)", "CM_fast"),
    seed: int = 0,
) -> list[HashCallCurve]:
    """Average number of hash calls per insert and per query (Figure 16).

    The paper shows ReliableSketch's raw variant converging to 1 call per
    operation as memory grows (almost everything settles in layer 1), the
    mice-filter variant converging to 3 (2 extra calls in the filter), and
    CM staying flat at its array count.
    """
    stream = dataset(dataset_name, scale=scale, seed=seed + 1)
    if memory_points is None:
        memory_points = scaled_memory_points([0.5, 1.0, 2.0, 3.0, 4.0], scale)
    keys = stream.keys()

    curves: list[HashCallCurve] = []
    for name in algorithms:
        insert_calls: list[float] = []
        query_calls: list[float] = []
        for memory in memory_points:
            sketch = build_sketch(name, memory, seed=seed)
            sketch.reset_hash_calls()
            sketch.insert_stream(stream)
            insert_calls.append(sketch.hash_calls() / len(stream))
            sketch.reset_hash_calls()
            for key in keys:
                sketch.query(key)
            query_calls.append(sketch.hash_calls() / max(1, len(keys)))
        curves.append(HashCallCurve(name, list(memory_points), insert_calls, query_calls))
    return curves


def paper_scale_memory(memory_megabytes: float) -> float:
    """Convenience: a paper-scale memory budget in bytes (no scaling)."""
    return memory_megabytes * BYTES_PER_MB

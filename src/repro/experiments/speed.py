"""Speed experiments: Figure 10 (throughput) and Figure 16 (hash calls).

Absolute throughput in pure Python is not comparable to the paper's C++
numbers; the harness therefore reports *relative* throughput between
algorithms measured back to back on the same stream, plus the
platform-independent operation count of Figure 16 (average number of hash
function calls per insert / query), which is the paper's own explanation of
the speed trends.

Timing runs are never process-parallel (concurrent measurement would distort
the numbers); the ``workers`` knob of :func:`hash_call_profile` is safe
because hash-call counting is deterministic regardless of scheduling.  The
``shards`` knob of :func:`throughput_comparison` measures the sharded-ingest
datapath and attaches per-shard load accounting to each row.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.datasets import DEFAULT_SCALE, dataset, scaled_memory_points
from repro.experiments.parallel import parallel_map
from repro.metrics.memory import BYTES_PER_MB
from repro.metrics.throughput import (
    ShardLoadReport,
    measure_batch_throughput,
    measure_throughput,
    shard_load_report,
)
from repro.sketches.registry import build_sketch, competitor_names
from repro.sketches.sharded import ShardedSketch


@dataclass(frozen=True)
class ThroughputRow:
    """One bar pair of Figure 10: insert and query throughput of one algorithm.

    ``shard_load`` is attached when the measurement ran on the sharded
    datapath (``shards > 1``): per-shard item counts, per-shard items/sec and
    the partition's load-imbalance factor.
    """

    algorithm: str
    insert_mops: float
    query_mops: float
    shard_load: ShardLoadReport | None = None


@dataclass(frozen=True)
class HashCallCurve:
    """One line of Figure 16: average hash calls per operation vs memory."""

    algorithm: str
    memory_bytes: list[float]
    insert_calls: list[float]
    query_calls: list[float]


def throughput_comparison(
    dataset_name: str = "ip",
    memory_megabytes: float = 1.0,
    scale: float = DEFAULT_SCALE,
    algorithms: tuple[str, ...] | None = None,
    seed: int = 0,
    batch_size: int | None = None,
    shards: int = 1,
) -> list[ThroughputRow]:
    """Insertion and query throughput of every algorithm (Figure 10).

    With ``batch_size`` set, both inserts and queries run through the batch
    datapath (``insert_batch`` / ``query_batch``) in chunks of that size;
    the reported unit is still items per second, so scalar and batch runs
    are directly comparable.  With ``shards > 1`` every sketch is a
    hash-partitioned :class:`ShardedSketch` and each row carries a
    :class:`ShardLoadReport` of the partition.
    """
    stream = dataset(dataset_name, scale=scale, seed=seed + 1)
    memory_bytes = scaled_memory_points([memory_megabytes], scale)[0]
    algorithms = algorithms or competitor_names("speed")
    keys = stream.keys()

    rows: list[ThroughputRow] = []
    for name in algorithms:
        if shards > 1:
            sketch = ShardedSketch.from_registry(name, memory_bytes, shards, seed=seed)
        else:
            sketch = build_sketch(name, memory_bytes, seed=seed)
        if batch_size is None:
            insert_result = measure_throughput(
                lambda item, s=sketch: s.insert(item.key, item.value), stream
            )
            query_result = measure_throughput(lambda key, s=sketch: s.query(key), keys)
        else:
            insert_result = measure_batch_throughput(
                lambda chunk, s=sketch: s.insert_batch(
                    [item.key for item in chunk], [item.value for item in chunk]
                ),
                stream,
                batch_size,
            )
            query_result = measure_batch_throughput(
                lambda chunk, s=sketch: s.query_batch(chunk), keys, batch_size
            )
        load = (
            shard_load_report(sketch.items_per_shard, insert_result.seconds)
            if isinstance(sketch, ShardedSketch)
            else None
        )
        rows.append(
            ThroughputRow(
                algorithm=name,
                insert_mops=insert_result.mops,
                query_mops=query_result.mops,
                shard_load=load,
            )
        )
    return rows


@dataclass(frozen=True)
class _HashCallContext:
    """Shared state of the parallel hash-call grid (Figure 16)."""

    dataset_name: str
    scale: float
    seed: int


def _hash_call_task(
    shared: _HashCallContext, task: tuple[str, float]
) -> tuple[float, float]:
    """One (algorithm, memory) cell: average hash calls per insert and query."""
    name, memory = task
    stream = dataset(shared.dataset_name, scale=shared.scale, seed=shared.seed + 1)
    keys = stream.keys()
    sketch = build_sketch(name, memory, seed=shared.seed)
    sketch.reset_hash_calls()
    sketch.insert_stream(stream)
    insert_calls = sketch.hash_calls() / len(stream)
    sketch.reset_hash_calls()
    for key in keys:
        sketch.query(key)
    query_calls = sketch.hash_calls() / max(1, len(keys))
    return insert_calls, query_calls


def hash_call_profile(
    dataset_name: str = "ip",
    scale: float = DEFAULT_SCALE,
    memory_points: list[float] | None = None,
    algorithms: tuple[str, ...] = ("Ours", "Ours(Raw)", "CM_fast"),
    seed: int = 0,
    workers: int = 1,
) -> list[HashCallCurve]:
    """Average number of hash calls per insert and per query (Figure 16).

    The paper shows ReliableSketch's raw variant converging to 1 call per
    operation as memory grows (almost everything settles in layer 1), the
    mice-filter variant converging to 3 (2 extra calls in the filter), and
    CM staying flat at its array count.  Hash-call counts are exact integers
    independent of scheduling, so the parallel grid matches the sequential
    one.
    """
    if memory_points is None:
        memory_points = scaled_memory_points([0.5, 1.0, 2.0, 3.0, 4.0], scale)

    tasks = [(name, memory) for name in algorithms for memory in memory_points]
    context = _HashCallContext(dataset_name, scale, seed)
    cells = parallel_map(_hash_call_task, tasks, workers=workers, shared=context)
    by_cell = dict(zip(tasks, cells))
    return [
        HashCallCurve(
            name,
            list(memory_points),
            [by_cell[(name, memory)][0] for memory in memory_points],
            [by_cell[(name, memory)][1] for memory in memory_points],
        )
        for name in algorithms
    ]


def paper_scale_memory(memory_megabytes: float) -> float:
    """Convenience: a paper-scale memory budget in bytes (no scaling)."""
    return memory_megabytes * BYTES_PER_MB

"""Shared experiment machinery: run a sketch on a stream and measure it.

Every figure of §6 boils down to some combination of the helpers here:

* :func:`run_sketch` — build an algorithm for a memory budget, feed it a
  stream and evaluate its accuracy against the ground truth.
* :func:`run_competitors` — the same, for a whole competitor group.
* :func:`run_grid` — a full (algorithm × memory-point) grid, optionally
  fanned out over a process pool (``ExperimentSettings.workers``).
* :func:`minimum_memory_for_zero_outliers` /
  :func:`minimum_memory_for_target_aae` — the memory-search loops behind
  Figures 5 and 11–15.
* :func:`run_windowed_fill` — the epoch-writer fill that keeps every
  published snapshot plus exact per-window ground truth
  (:meth:`WindowedFill.window_counts`), backing the sliding-window
  accuracy suite of the temporal serving layer.

Three scaling knobs thread through everything: ``shards`` builds every
sketch as a :class:`~repro.sketches.sharded.ShardedSketch` of
identically-seeded replicas (the distributed-ingest model), ``workers`` runs
grid sweeps in parallel with deterministic per-task seeds (parallel results
are bit-identical to sequential ones), and ``transport`` executes the
sharded fill on remote workers over a wire (``repro.distributed``) instead
of in-process — also bit-identical, because remote routing reuses the local
partition hash.

Ground truth is computed once per stream (``stream.counts()`` is cached on
the Stream, and the grid/search helpers thread the counter dict explicitly
through every evaluation) — a sweep never recounts the stream per run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Mapping, Sequence

from repro.experiments.parallel import parallel_map
from repro.kernels import use_backend
from repro.metrics.accuracy import AccuracyReport, evaluate_accuracy
from repro.sketches.base import Sketch
from repro.sketches.registry import build_sketch
from repro.sketches.sharded import ShardedSketch
from repro.streams.items import Stream


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by most experiments."""

    tolerance: float = 25.0
    seed: int = 0
    #: Chunk size for the batch datapath; ``None`` keeps the scalar loop.
    #: Batch and scalar runs produce bit-identical sketches, so this only
    #: changes how fast an experiment fills its sketches, never its results.
    batch_size: int | None = None
    #: Number of hash-partitioned shards per sketch; ``1`` keeps monolithic
    #: sketches.  With ``shards > 1`` every sketch becomes a ShardedSketch of
    #: identically-configured *full-budget* replicas — the distributed-ingest
    #: model, where each node holds the whole sketch over its key partition.
    #: Such runs describe that deployment: the real footprint is S x the
    #: nominal memory point and accuracy typically improves (each shard sees
    #: less collision pressure), so sharded curves are not comparable to
    #: ``shards=1`` curves at the same nominal memory.
    shards: int = 1
    #: Process-pool width for grid sweeps; ``1`` is sequential, ``0`` means
    #: one worker per CPU core.  Results are bit-identical either way.
    workers: int = 1
    #: Transport backend for distributed ingest (``"inproc"``, ``"pipe"`` or
    #: ``"tcp"``); ``None`` fills sketches in-process.  With a transport set,
    #: snapshot-supporting families (CM/CU/Count and ReliableSketch) ingest
    #: on ``shards`` remote workers (one shard per
    #: worker, batches shipped as wire frames) and the evaluated sketch is
    #: rebuilt from the collected worker snapshots — bit-identical to the
    #: local sharded fill, because key->worker placement reuses the exact
    #: ShardedSketch partition.  Families without snapshot support fall back
    #: to the local fill over the identical partition, so a grid mixing both
    #: kinds stays comparable.  Purely an execution knob: results never
    #: change, only where the ingest work runs.
    transport: str | None = None
    #: Update-kernel backend for the order-dependent insert paths
    #: (``"numba"``, ``"numpy-grouped"``, ``"python-replay"`` or ``"auto"``);
    #: ``None`` keeps the process default (``REPRO_KERNEL`` or auto).  Every
    #: backend is bit-identical to the scalar loop, so — like ``batch_size``
    #: and ``workers`` — this only changes how fast sketches fill, never any
    #: result (see :mod:`repro.kernels`).
    kernel: str | None = None
    #: Epoch length of the serving layer, in items; ``None`` fills sketches
    #: directly.  When set, the local fill runs through the epoch writer of
    #: ``repro.serve.snapshots`` (publishing an immutable snapshot every
    #: ``epoch_items`` absorbed items) and the evaluated sketch is the final
    #: *published epoch* after a flush — bit-identical to the direct fill,
    #: because a flush publishes the complete state (pinned by
    #: ``tests/serve/test_snapshots.py``).  Another pure execution knob: it
    #: exercises the serving path inside any experiment without changing a
    #: single number.  Mutually exclusive with ``transport`` (the remote
    #: fill's epoch structure lives on the workers, not here): combining
    #: the two raises instead of silently ignoring one — the same policy
    #: the CLI applies to its flags.
    epoch_items: int | None = None
    #: Extra keyword arguments forwarded to the sketch constructors.
    sketch_kwargs: dict = field(default_factory=dict)


@dataclass(frozen=True)
class SketchRun:
    """Result of running one algorithm once on one stream.

    ``sketch`` is the filled instance for sequential runs; process-pool grid
    sweeps (``workers > 1``) drop it (``None``) so that megabytes of fitted
    table state are never pickled back from the workers — every grid
    consumer only reads the accuracy report.
    """

    algorithm: str
    memory_bytes: float
    report: AccuracyReport
    sketch: Sketch | None

    @property
    def outliers(self) -> int:
        """#Outliers of this run (paper's primary accuracy metric)."""
        return self.report.outliers

    @property
    def aae(self) -> float:
        """Average absolute error of this run."""
        return self.report.aae

    @property
    def are(self) -> float:
        """Average relative error of this run."""
        return self.report.are


def _sketch_factory(name: str, settings: ExperimentSettings) -> Callable[[float], Sketch]:
    """Factory building algorithm ``name`` for an arbitrary memory budget."""

    def build(memory_bytes: float) -> Sketch:
        if settings.shards > 1:
            return ShardedSketch.from_registry(
                name,
                memory_bytes,
                settings.shards,
                seed=settings.seed,
                **settings.sketch_kwargs,
            )
        return build_sketch(name, memory_bytes, seed=settings.seed, **settings.sketch_kwargs)

    return build


def _fill_sketch(
    name: str, memory_bytes: float, stream: Stream, settings: ExperimentSettings
) -> Sketch:
    """Build and fill one sketch, locally or over the configured transport.

    The distributed path (``settings.transport``) ships routed batches to
    ``settings.shards`` remote workers and restores their snapshots into a
    :class:`ShardedSketch` — bit-identical to the local sharded fill because
    both use the same partition router.  Sketches without snapshot support
    (the non-mergeable families) take the local path over the identical
    partition, which produces the same state remote ingest would.

    ``settings.kernel`` selects the update-kernel backend for everything
    built here (kernels bind at sketch construction); because the override
    is applied inside this function it also takes effect inside process-pool
    workers, which re-enter it with the shipped settings.
    """
    with use_backend(settings.kernel):
        return _fill_sketch_with_kernel(name, memory_bytes, stream, settings)


def _fill_sketch_with_kernel(
    name: str, memory_bytes: float, stream: Stream, settings: ExperimentSettings
) -> Sketch:
    if settings.transport is not None and settings.epoch_items is not None:
        raise ValueError(
            "epoch_items cannot be combined with transport: the remote fill "
            "has no local epoch writer to rotate (drop one of the two knobs)"
        )
    if settings.transport is not None:
        from repro.distributed import run_distributed_ingest
        from repro.distributed.ingest import DEFAULT_CHUNK_SIZE
        from repro.sketches.registry import supports_snapshots

        if supports_snapshots(name):
            result = run_distributed_ingest(
                name,
                memory_bytes,
                stream,
                workers=settings.shards,
                transport=settings.transport,
                chunk_size=settings.batch_size or DEFAULT_CHUNK_SIZE,
                seed=settings.seed,
                sketch_kwargs=settings.sketch_kwargs,
            )
            return result.sharded()
    sketch = _sketch_factory(name, settings)(memory_bytes)
    if settings.epoch_items is not None:
        from repro.serve.snapshots import EpochWriter
        from repro.streams.items import chunked

        writer = EpochWriter(sketch, publish_every_items=settings.epoch_items)
        chunk_size = settings.batch_size or settings.epoch_items
        for chunk in chunked(stream, chunk_size):
            writer.ingest([key for key, _ in chunk], [value for _, value in chunk])
        return writer.publish().sketch
    sketch.insert_stream(stream, batch_size=settings.batch_size)
    return sketch


def run_sketch(
    name: str,
    memory_bytes: float,
    stream: Stream,
    settings: ExperimentSettings | None = None,
    keys: Iterable[object] | None = None,
    counts: Mapping[object, int] | None = None,
) -> SketchRun:
    """Build, fill and evaluate one algorithm on one stream.

    ``counts`` is the exact ground truth; pass it when running many sketches
    on the same stream so it is computed once per stream, not once per run
    (omitted, it falls back to the stream's cached counter).
    """
    settings = settings or ExperimentSettings()
    sketch = _fill_sketch(name, memory_bytes, stream, settings)
    if counts is None:
        counts = stream.counts()
    report = evaluate_accuracy(counts, sketch.query, settings.tolerance, keys=keys)
    return SketchRun(algorithm=name, memory_bytes=memory_bytes, report=report, sketch=sketch)


@dataclass(frozen=True)
class _GridContext:
    """Per-worker shared state of a grid sweep (shipped once per worker)."""

    stream: Stream
    settings: ExperimentSettings
    keys: tuple | None
    counts: Mapping[object, int]
    keep_sketches: bool


def _grid_task(shared: _GridContext, task: tuple[str, float]) -> SketchRun:
    """One grid cell: run one algorithm at one memory point."""
    name, memory_bytes = task
    run = run_sketch(
        name, memory_bytes, shared.stream, shared.settings, shared.keys, shared.counts
    )
    if not shared.keep_sketches:
        run = replace(run, sketch=None)
    return run


def run_grid(
    names: Sequence[str],
    memory_points: Sequence[float],
    stream: Stream,
    settings: ExperimentSettings | None = None,
    keys: Iterable[object] | None = None,
) -> dict[tuple[str, float], SketchRun]:
    """Run every (algorithm × memory-point) cell of a sweep grid.

    With ``settings.workers > 1`` the cells fan out over a process pool;
    every task is a pure function of ``(name, memory)`` plus the shared
    context, so the result is bit-identical to the sequential sweep.  The
    returned dict is keyed by ``(name, memory_bytes)`` in task order.
    """
    settings = settings or ExperimentSettings()
    counts = stream.counts()
    materialised_keys = None if keys is None else tuple(keys)
    # Workers must not fan out recursively (each task runs sequentially),
    # and pooled runs drop the fitted sketches instead of pickling them back.
    context = _GridContext(
        stream,
        replace(settings, workers=1),
        materialised_keys,
        counts,
        keep_sketches=settings.workers == 1,
    )
    tasks = [(name, memory) for memory in memory_points for name in names]
    results = parallel_map(_grid_task, tasks, workers=settings.workers, shared=context)
    return dict(zip(tasks, results))


def run_competitors(
    names: Sequence[str],
    memory_bytes: float,
    stream: Stream,
    settings: ExperimentSettings | None = None,
    keys: Iterable[object] | None = None,
) -> dict[str, SketchRun]:
    """Run every algorithm in ``names`` under the same memory budget."""
    grid = run_grid(names, [memory_bytes], stream, settings, keys)
    return {name: grid[(name, memory_bytes)] for name in names}


def _search_minimum_memory(
    evaluate: Callable[[float], bool],
    low_bytes: float,
    high_bytes: float,
    relative_precision: float = 0.05,
    max_iterations: int = 24,
) -> float | None:
    """Binary-search the smallest memory budget for which ``evaluate`` is True.

    Returns ``None`` when even ``high_bytes`` does not satisfy the predicate —
    the paper reports such cases as "cannot achieve zero outliers within X MB".
    """
    if not evaluate(high_bytes):
        return None
    if evaluate(low_bytes):
        return low_bytes
    low, high = low_bytes, high_bytes
    for _ in range(max_iterations):
        if (high - low) / high <= relative_precision:
            break
        middle = (low + high) / 2
        if evaluate(middle):
            high = middle
        else:
            low = middle
    return high


def minimum_memory_for_zero_outliers(
    name: str,
    stream: Stream,
    settings: ExperimentSettings | None = None,
    low_bytes: float = 1024.0,
    high_bytes: float = 64 * 1024 * 1024,
    keys: Iterable[object] | None = None,
    counts: Mapping[object, int] | None = None,
) -> float | None:
    """Smallest memory (bytes) at which ``name`` produces zero outliers (Figure 5)."""
    settings = settings or ExperimentSettings()
    if counts is None:
        counts = stream.counts()

    def evaluate(memory_bytes: float) -> bool:
        return run_sketch(name, memory_bytes, stream, settings, keys, counts).outliers == 0

    return _search_minimum_memory(evaluate, low_bytes, high_bytes)


def minimum_memory_for_target_aae(
    name: str,
    stream: Stream,
    target_aae: float,
    settings: ExperimentSettings | None = None,
    low_bytes: float = 1024.0,
    high_bytes: float = 64 * 1024 * 1024,
    counts: Mapping[object, int] | None = None,
) -> float | None:
    """Smallest memory (bytes) at which ``name`` reaches the target AAE (Figures 12/14/15b)."""
    settings = settings or ExperimentSettings()
    if counts is None:
        counts = stream.counts()

    def evaluate(memory_bytes: float) -> bool:
        return run_sketch(name, memory_bytes, stream, settings, counts=counts).aae <= target_aae

    return _search_minimum_memory(evaluate, low_bytes, high_bytes)


@dataclass(frozen=True)
class WindowedFill:
    """Every epoch published while filling one sketch, plus exact per-window
    ground truth — the raw material for sliding-window accuracy evaluation.

    ``snapshots`` holds the published :class:`~repro.serve.snapshots.EpochSnapshot`
    sequence in epoch order, *including* the construction epoch (the empty
    sketch at 0 items) — so every window has a left boundary.  Each
    snapshot's ``items`` field is the number of stream items absorbed at its
    publish, which makes the exact ground truth of the window ``(earlier,
    later]`` simply the count over that slice of the stream — no replay, no
    approximation, computable for any pair of published epochs.
    """

    algorithm: str
    memory_bytes: float
    snapshots: tuple

    def snapshot(self, epoch_id: int):
        """The published snapshot with this epoch id."""
        for published in self.snapshots:
            if published.epoch_id == epoch_id:
                return published
        raise KeyError(f"epoch {epoch_id} was not published by this fill")

    def window_counts(self, stream: Stream, earlier_epoch: int, later_epoch: int) -> dict:
        """Exact per-key value sums of the items in ``(earlier, later]``.

        This is the windowed analogue of ``stream.counts()``: the ground
        truth a sliding-window estimate (epoch-delta subtraction of the two
        delimiting snapshots) is evaluated against.
        """
        low = self.snapshot(earlier_epoch).items
        high = self.snapshot(later_epoch).items
        if high < low:
            raise ValueError(
                f"window must run forward: epoch {later_epoch} ({high} items) "
                f"is before epoch {earlier_epoch} ({low} items)"
            )
        counts: dict = {}
        for item in stream.items[low:high]:
            counts[item.key] = counts.get(item.key, 0) + item.value
        return counts


def run_windowed_fill(
    name: str,
    memory_bytes: float,
    stream: Stream,
    epoch_items: int,
    settings: ExperimentSettings | None = None,
) -> WindowedFill:
    """Fill one sketch through the epoch writer, keeping *every* published
    snapshot (not just the final one) for windowed evaluation.

    The fill is bit-identical to ``epoch_items``-mode :func:`run_sketch`
    (same writer, same chunking), but instead of evaluating the final epoch
    it returns the whole publish history: for subtractable families (CM and
    Count) the table difference of any two snapshots equals a fresh sketch
    fed only the stream slice between their publishes, and
    :meth:`WindowedFill.window_counts` supplies the matching exact truth.
    A purely local path — the remote fill's epoch structure lives on the
    workers, so ``settings.transport`` is rejected like ``epoch_items``.
    """
    from repro.serve.snapshots import EpochWriter
    from repro.streams.items import chunked

    settings = settings or ExperimentSettings()
    if settings.transport is not None:
        raise ValueError(
            "windowed fills are local: the remote fill has no local epoch "
            "writer whose publish history could be retained"
        )
    snapshots: list = []
    with use_backend(settings.kernel):
        sketch = _sketch_factory(name, settings)(memory_bytes)
        writer = EpochWriter(
            sketch, publish_every_items=epoch_items, on_publish=snapshots.append
        )
        chunk_size = settings.batch_size or epoch_items
        for chunk in chunked(stream, chunk_size):
            writer.ingest([key for key, _ in chunk], [value for _, value in chunk])
        final = writer.publish()
    if not snapshots or snapshots[-1].epoch_id != final.epoch_id:
        snapshots.append(final)
    return WindowedFill(
        algorithm=name, memory_bytes=memory_bytes, snapshots=tuple(snapshots)
    )

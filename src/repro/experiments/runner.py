"""Shared experiment machinery: run a sketch on a stream and measure it.

Every figure of §6 boils down to some combination of the helpers here:

* :func:`run_sketch` — build an algorithm for a memory budget, feed it a
  stream and evaluate its accuracy against the ground truth.
* :func:`run_competitors` — the same, for a whole competitor group.
* :func:`minimum_memory_for_zero_outliers` /
  :func:`minimum_memory_for_target_aae` — the memory-search loops behind
  Figures 5 and 11–15.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.metrics.accuracy import AccuracyReport, evaluate_accuracy
from repro.sketches.base import Sketch
from repro.sketches.registry import build_sketch
from repro.streams.items import Stream


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by most experiments."""

    tolerance: float = 25.0
    seed: int = 0
    #: Chunk size for the batch datapath; ``None`` keeps the scalar loop.
    #: Batch and scalar runs produce bit-identical sketches, so this only
    #: changes how fast an experiment fills its sketches, never its results.
    batch_size: int | None = None
    #: Extra keyword arguments forwarded to the sketch constructors.
    sketch_kwargs: dict = field(default_factory=dict)


@dataclass(frozen=True)
class SketchRun:
    """Result of running one algorithm once on one stream."""

    algorithm: str
    memory_bytes: float
    report: AccuracyReport
    sketch: Sketch

    @property
    def outliers(self) -> int:
        """#Outliers of this run (paper's primary accuracy metric)."""
        return self.report.outliers

    @property
    def aae(self) -> float:
        """Average absolute error of this run."""
        return self.report.aae

    @property
    def are(self) -> float:
        """Average relative error of this run."""
        return self.report.are


def _sketch_factory(name: str, settings: ExperimentSettings) -> Callable[[float], Sketch]:
    """Factory building algorithm ``name`` for an arbitrary memory budget."""

    def build(memory_bytes: float) -> Sketch:
        return build_sketch(name, memory_bytes, seed=settings.seed, **settings.sketch_kwargs)

    return build


def run_sketch(
    name: str,
    memory_bytes: float,
    stream: Stream,
    settings: ExperimentSettings | None = None,
    keys: Iterable[object] | None = None,
) -> SketchRun:
    """Build, fill and evaluate one algorithm on one stream."""
    settings = settings or ExperimentSettings()
    sketch = _sketch_factory(name, settings)(memory_bytes)
    sketch.insert_stream(stream, batch_size=settings.batch_size)
    report = evaluate_accuracy(stream.counts(), sketch.query, settings.tolerance, keys=keys)
    return SketchRun(algorithm=name, memory_bytes=memory_bytes, report=report, sketch=sketch)


def run_competitors(
    names: Sequence[str],
    memory_bytes: float,
    stream: Stream,
    settings: ExperimentSettings | None = None,
    keys: Iterable[object] | None = None,
) -> dict[str, SketchRun]:
    """Run every algorithm in ``names`` under the same memory budget."""
    return {
        name: run_sketch(name, memory_bytes, stream, settings, keys) for name in names
    }


def _search_minimum_memory(
    evaluate: Callable[[float], bool],
    low_bytes: float,
    high_bytes: float,
    relative_precision: float = 0.05,
    max_iterations: int = 24,
) -> float | None:
    """Binary-search the smallest memory budget for which ``evaluate`` is True.

    Returns ``None`` when even ``high_bytes`` does not satisfy the predicate —
    the paper reports such cases as "cannot achieve zero outliers within X MB".
    """
    if not evaluate(high_bytes):
        return None
    if evaluate(low_bytes):
        return low_bytes
    low, high = low_bytes, high_bytes
    for _ in range(max_iterations):
        if (high - low) / high <= relative_precision:
            break
        middle = (low + high) / 2
        if evaluate(middle):
            high = middle
        else:
            low = middle
    return high


def minimum_memory_for_zero_outliers(
    name: str,
    stream: Stream,
    settings: ExperimentSettings | None = None,
    low_bytes: float = 1024.0,
    high_bytes: float = 64 * 1024 * 1024,
    keys: Iterable[object] | None = None,
) -> float | None:
    """Smallest memory (bytes) at which ``name`` produces zero outliers (Figure 5)."""
    settings = settings or ExperimentSettings()

    def evaluate(memory_bytes: float) -> bool:
        return run_sketch(name, memory_bytes, stream, settings, keys).outliers == 0

    return _search_minimum_memory(evaluate, low_bytes, high_bytes)


def minimum_memory_for_target_aae(
    name: str,
    stream: Stream,
    target_aae: float,
    settings: ExperimentSettings | None = None,
    low_bytes: float = 1024.0,
    high_bytes: float = 64 * 1024 * 1024,
) -> float | None:
    """Smallest memory (bytes) at which ``name`` reaches the target AAE (Figures 12/14/15b)."""
    settings = settings or ExperimentSettings()

    def evaluate(memory_bytes: float) -> bool:
        return run_sketch(name, memory_bytes, stream, settings).aae <= target_aae

    return _search_minimum_memory(evaluate, low_bytes, high_bytes)

"""Error-sensing and error-control experiments: Figures 17, 18 and 19 (§6.5).

These experiments look inside ReliableSketch itself: the reported Maximum
Possible Error must always contain the truth (Figure 17), track the actual
error closely (Figure 18), and the number of keys settling in deeper layers
must fall off faster than exponentially (Figure 19a) while no key's error
exceeds Λ (Figure 19b).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.reliable_sketch import ReliableSketch
from repro.experiments.datasets import DEFAULT_SCALE, dataset, scaled_memory_points
from repro.sketches.cm import CountMinSketch


@dataclass(frozen=True)
class SensedInterval:
    """One point of Figure 17: a key's true value and its sensed interval."""

    key: object
    truth: int
    estimate: int
    lower_bound: int
    upper_bound: int

    @property
    def contains_truth(self) -> bool:
        """Whether the sensed interval covers the true value."""
        return self.lower_bound <= self.truth <= self.upper_bound


@dataclass(frozen=True)
class SensedErrorPoint:
    """One bin of Figure 18a: actual error vs average sensed error."""

    actual_error: int
    mean_sensed_error: float
    keys: int


@dataclass(frozen=True)
class LayerDistribution:
    """One line of Figure 19a: number of keys settling in each layer."""

    memory_bytes: float
    keys_per_layer: list[int]


def _build_sketch(stream, memory_bytes: float, tolerance: float, seed: int) -> ReliableSketch:
    sketch = ReliableSketch.from_memory(memory_bytes, tolerance=tolerance, seed=seed)
    sketch.insert_stream(stream)
    return sketch


def sensed_intervals(
    dataset_name: str = "ip",
    memory_megabytes: float = 1.0,
    tolerance: float = 25.0,
    scale: float = DEFAULT_SCALE,
    elephant_threshold: int = 1000,
    sample_size: int = 200,
    seed: int = 0,
) -> tuple[list[SensedInterval], list[SensedInterval]]:
    """Sensed intervals of mice keys and elephant keys (Figure 17a / 17b)."""
    stream = dataset(dataset_name, scale=scale, seed=seed + 1)
    memory_bytes = scaled_memory_points([memory_megabytes], scale)[0]
    sketch = _build_sketch(stream, memory_bytes, tolerance, seed)
    counts = stream.counts()

    mice: list[SensedInterval] = []
    elephants: list[SensedInterval] = []
    for key, truth in counts.items():
        result = sketch.query_with_error(key)
        interval = SensedInterval(
            key=key,
            truth=truth,
            estimate=result.estimate,
            lower_bound=result.lower_bound,
            upper_bound=result.upper_bound,
        )
        target = elephants if truth > elephant_threshold else mice
        if len(target) < sample_size:
            target.append(interval)
        if len(mice) >= sample_size and len(elephants) >= sample_size:
            break
    return mice, elephants


def sensed_vs_actual(
    dataset_name: str = "ip",
    memory_megabytes: float = 1.0,
    tolerance: float = 25.0,
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
) -> list[SensedErrorPoint]:
    """Average sensed error grouped by actual error (Figure 18a)."""
    stream = dataset(dataset_name, scale=scale, seed=seed + 1)
    memory_bytes = scaled_memory_points([memory_megabytes], scale)[0]
    sketch = _build_sketch(stream, memory_bytes, tolerance, seed)
    counts = stream.counts()

    grouped: dict[int, list[int]] = {}
    for key, truth in counts.items():
        result = sketch.query_with_error(key)
        actual = abs(result.estimate - truth)
        grouped.setdefault(actual, []).append(result.mpe)
    return [
        SensedErrorPoint(
            actual_error=actual,
            mean_sensed_error=sum(sensed) / len(sensed),
            keys=len(sensed),
        )
        for actual, sensed in sorted(grouped.items())
    ]


def sensed_error_vs_memory(
    dataset_name: str = "ip",
    memory_megabytes: list[float] | None = None,
    tolerance: float = 25.0,
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
) -> list[tuple[float, float, float]]:
    """(memory, mean sensed error, mean actual error) rows (Figure 18b)."""
    stream = dataset(dataset_name, scale=scale, seed=seed + 1)
    memory_megabytes = memory_megabytes or [1.0, 1.5, 2.0, 2.5]
    counts = stream.counts()
    rows: list[tuple[float, float, float]] = []
    for megabytes in memory_megabytes:
        memory_bytes = scaled_memory_points([megabytes], scale)[0]
        sketch = _build_sketch(stream, memory_bytes, tolerance, seed)
        sensed_total = 0.0
        actual_total = 0.0
        for key, truth in counts.items():
            result = sketch.query_with_error(key)
            sensed_total += result.mpe
            actual_total += abs(result.estimate - truth)
        keys = len(counts)
        rows.append((memory_bytes, sensed_total / keys, actual_total / keys))
    return rows


def layer_distribution(
    dataset_name: str = "ip",
    memory_megabytes: list[float] | None = None,
    tolerance: float = 25.0,
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
) -> list[LayerDistribution]:
    """Number of keys whose queries settle in each layer (Figure 19a).

    The paper categorises a key by the layer where its latest insertion
    settled; the query stopping layer is the equivalent observable notion and
    decays the same way.
    """
    stream = dataset(dataset_name, scale=scale, seed=seed + 1)
    memory_megabytes = memory_megabytes or [1.0, 1.1, 1.25, 2.0]
    counts = stream.counts()
    distributions: list[LayerDistribution] = []
    for megabytes in memory_megabytes:
        memory_bytes = scaled_memory_points([megabytes], scale)[0]
        sketch = _build_sketch(stream, memory_bytes, tolerance, seed)
        per_layer = [0] * sketch.depth
        for key in counts:
            layer = sketch.query_with_error(key).layers_visited
            per_layer[layer - 1] += 1
        distributions.append(LayerDistribution(memory_bytes=memory_bytes, keys_per_layer=per_layer))
    return distributions


def error_distribution(
    dataset_name: str = "ip",
    memory_megabytes: float = 1.0,
    tolerance: float = 25.0,
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
) -> dict[str, list[int]]:
    """Per-key absolute errors sorted descending, ours vs CM (Figure 19b).

    Also returns the sorted *sensed* errors of ReliableSketch, matching the
    figure's "Ours(Sensed)" series.
    """
    stream = dataset(dataset_name, scale=scale, seed=seed + 1)
    memory_bytes = scaled_memory_points([memory_megabytes], scale)[0]
    counts = stream.counts()

    sketch = _build_sketch(stream, memory_bytes, tolerance, seed)
    cm = CountMinSketch(memory_bytes, depth=3, seed=seed)
    cm.insert_stream(stream)

    ours_actual: list[int] = []
    ours_sensed: list[int] = []
    cm_actual: list[int] = []
    for key, truth in counts.items():
        result = sketch.query_with_error(key)
        ours_actual.append(abs(result.estimate - truth))
        ours_sensed.append(result.mpe)
        cm_actual.append(abs(cm.query(key) - truth))
    return {
        "ours_actual": sorted(ours_actual, reverse=True),
        "ours_sensed": sorted(ours_sensed, reverse=True),
        "cm_actual": sorted(cm_actual, reverse=True),
    }

"""Parameter-impact experiments: Figures 11-15 (§6.4).

The paper sweeps the two geometric ratios (R_w, R_λ) and the error tolerance
Λ, reporting (a) the minimum memory achieving zero outliers and (b) the
minimum memory achieving a target AAE.  The sweeps below reproduce both
memory-search modes for arbitrary parameter grids.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.datasets import DEFAULT_SCALE, dataset, scaled_memory_points
from repro.experiments.parallel import parallel_map
from repro.experiments.runner import ExperimentSettings
from repro.core.reliable_sketch import ReliableSketch
from repro.metrics.accuracy import evaluate_accuracy
from repro.streams.items import Stream


@dataclass(frozen=True)
class ParameterPoint:
    """One point of a parameter sweep: the parameter value and the memory found."""

    parameter: float
    memory_bytes: float | None


@dataclass(frozen=True)
class ParameterCurve:
    """One line of Figures 11-14: sweep of one parameter at a fixed other."""

    fixed_name: str
    fixed_value: float
    points: list[ParameterPoint]


def _search_memory(
    stream: Stream,
    predicate,
    low_bytes: float,
    high_bytes: float,
    relative_precision: float = 0.08,
    max_iterations: int = 18,
) -> float | None:
    """Binary-search the smallest memory for which ``predicate(memory)`` holds."""
    if not predicate(high_bytes):
        return None
    if predicate(low_bytes):
        return low_bytes
    low, high = low_bytes, high_bytes
    for _ in range(max_iterations):
        if (high - low) / high <= relative_precision:
            break
        middle = (low + high) / 2
        if predicate(middle):
            high = middle
        else:
            low = middle
    return high


def _reliable_zero_outlier_predicate(stream: Stream, tolerance: float, r_w: float,
                                     r_lambda: float, seed: int):
    """Predicate: a ReliableSketch with these ratios has zero outliers."""

    counts = stream.counts()

    def predicate(memory_bytes: float) -> bool:
        sketch = ReliableSketch.from_memory(
            memory_bytes, tolerance=tolerance, r_w=r_w, r_lambda=r_lambda, seed=seed
        )
        sketch.insert_stream(stream)
        report = evaluate_accuracy(counts, sketch.query, tolerance)
        return report.outliers == 0

    return predicate


def _reliable_aae_predicate(stream: Stream, tolerance: float, r_w: float,
                            r_lambda: float, target_aae: float, seed: int):
    """Predicate: a ReliableSketch with these ratios reaches the target AAE."""

    counts = stream.counts()

    def predicate(memory_bytes: float) -> bool:
        sketch = ReliableSketch.from_memory(
            memory_bytes, tolerance=tolerance, r_w=r_w, r_lambda=r_lambda, seed=seed
        )
        sketch.insert_stream(stream)
        report = evaluate_accuracy(counts, sketch.query, tolerance)
        return report.aae <= target_aae

    return predicate


@dataclass(frozen=True)
class _RatioSweepContext:
    """Shared state of the parallel (R_w × R_λ) grid search (Figures 11-14)."""

    dataset_name: str
    scale: float
    tolerance: float
    target_aae: float | None
    low_bytes: float
    high_bytes: float
    seed: int


def _ratio_point_task(
    shared: _RatioSweepContext, task: tuple[str, float, float]
) -> ParameterPoint:
    """One grid point: binary-search the memory for one (R_w, R_λ) pair.

    Workers regenerate the stream through the cached :func:`dataset` factory
    rather than receiving a pickled copy per task; the search itself is a
    pure function of the task tuple, so parallel grids match sequential ones.
    """
    fixed_name, fixed_value, value = task
    stream = dataset(shared.dataset_name, scale=shared.scale, seed=shared.seed + 1)
    r_w = fixed_value if fixed_name == "r_w" else value
    r_lambda = fixed_value if fixed_name == "r_lambda" else value
    if shared.target_aae is None:
        predicate = _reliable_zero_outlier_predicate(
            stream, shared.tolerance, r_w, r_lambda, shared.seed
        )
    else:
        predicate = _reliable_aae_predicate(
            stream, shared.tolerance, r_w, r_lambda, shared.target_aae, shared.seed
        )
    memory = _search_memory(stream, predicate, shared.low_bytes, shared.high_bytes)
    return ParameterPoint(parameter=value, memory_bytes=memory)


def _ratio_grid(
    dataset_name: str,
    swept_values: list[float],
    fixed_name: str,
    fixed_values: list[float],
    tolerance: float,
    target_aae: float | None,
    scale: float,
    seed: int,
    workers: int,
) -> list[ParameterCurve]:
    """Search the full (fixed × swept) ratio grid, one task per point."""
    high_bytes = scaled_memory_points([10.0], scale)[0]
    low_bytes = max(512.0, high_bytes / 2048)
    context = _RatioSweepContext(
        dataset_name, scale, tolerance, target_aae, low_bytes, high_bytes, seed
    )
    tasks = [
        (fixed_name, fixed_value, value)
        for fixed_value in fixed_values
        for value in swept_values
    ]
    points = parallel_map(_ratio_point_task, tasks, workers=workers, shared=context)
    by_fixed: dict[float, list[ParameterPoint]] = {value: [] for value in fixed_values}
    for (_, fixed_value, _), point in zip(tasks, points):
        by_fixed[fixed_value].append(point)
    return [
        ParameterCurve(fixed_name=fixed_name, fixed_value=fixed_value, points=by_fixed[fixed_value])
        for fixed_value in fixed_values
    ]


def rw_sweep(
    dataset_name: str = "ip",
    r_w_values: list[float] | None = None,
    r_lambda_values: list[float] | None = None,
    tolerance: float = 25.0,
    target_aae: float | None = None,
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
    workers: int = 1,
) -> list[ParameterCurve]:
    """Memory vs ``R_w`` for several fixed ``R_λ`` (Figure 11 zero-outlier, Figure 12 AAE)."""
    r_w_values = r_w_values or [1.4, 2.0, 4.0, 9.0, 12.5]
    r_lambda_values = r_lambda_values or [1.4, 2.0, 4.0, 9.0]
    return _ratio_grid(
        dataset_name, r_w_values, "r_lambda", r_lambda_values,
        tolerance, target_aae, scale, seed, workers,
    )


def rlambda_sweep(
    dataset_name: str = "ip",
    r_lambda_values: list[float] | None = None,
    r_w_values: list[float] | None = None,
    tolerance: float = 25.0,
    target_aae: float | None = None,
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
    workers: int = 1,
) -> list[ParameterCurve]:
    """Memory vs ``R_λ`` for several fixed ``R_w`` (Figure 13 zero-outlier, Figure 14 AAE)."""
    r_lambda_values = r_lambda_values or [1.4, 2.0, 4.0, 9.0, 12.5]
    r_w_values = r_w_values or [1.4, 2.0, 4.0, 9.0]
    return _ratio_grid(
        dataset_name, r_lambda_values, "r_w", r_w_values,
        tolerance, target_aae, scale, seed, workers,
    )


@dataclass(frozen=True)
class _LambdaSweepContext:
    """Shared state of the parallel tolerance sweep (Figure 15)."""

    scale: float
    target_aae: float | None
    low_bytes: float
    high_bytes: float
    seed: int


def _lambda_point_task(
    shared: _LambdaSweepContext, task: tuple[str, float]
) -> ParameterPoint:
    """One (dataset, Λ) point of the tolerance sweep."""
    dataset_name, tolerance = task
    stream = dataset(dataset_name, scale=shared.scale, seed=shared.seed + 1)
    if shared.target_aae is None:
        predicate = _reliable_zero_outlier_predicate(stream, tolerance, 2.0, 2.5, shared.seed)
    else:
        predicate = _reliable_aae_predicate(
            stream, tolerance, 2.0, 2.5, shared.target_aae, shared.seed
        )
    memory = _search_memory(stream, predicate, shared.low_bytes, shared.high_bytes)
    return ParameterPoint(parameter=tolerance, memory_bytes=memory)


def lambda_sweep(
    dataset_names: tuple[str, ...] = ("ip", "web"),
    tolerances: list[float] | None = None,
    target_aae: float | None = None,
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
    workers: int = 1,
) -> dict[str, list[ParameterPoint]]:
    """Memory vs error tolerance Λ (Figure 15a zero-outlier, Figure 15b target AAE)."""
    tolerances = tolerances or [25.0, 50.0, 75.0, 100.0]
    high_bytes = scaled_memory_points([10.0], scale)[0]
    low_bytes = max(512.0, high_bytes / 2048)
    tasks = [
        (dataset_name, tolerance)
        for dataset_name in dataset_names
        for tolerance in tolerances
    ]
    context = _LambdaSweepContext(scale, target_aae, low_bytes, high_bytes, seed)
    points = parallel_map(_lambda_point_task, tasks, workers=workers, shared=context)
    results: dict[str, list[ParameterPoint]] = {name: [] for name in dataset_names}
    for (dataset_name, _), point in zip(tasks, points):
        results[dataset_name].append(point)
    return results

"""Testbed deployment experiment: Figure 20 (§6.5.3).

Drives :class:`repro.hardware.testbed.TestbedDeployment` over the SRAM sizes
the paper reports (92-736 KB for the IP trace, 23-184 KB for Hadoop), scaled
down with the stream so collision pressure matches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.testbed import TestbedDeployment, TestbedResult
from repro.metrics.memory import BYTES_PER_KB

#: SRAM sweeps of Figure 20 in KB at paper scale.
PAPER_SRAM_SWEEP_KB = {
    "ip": [92.0, 184.0, 368.0, 736.0],
    "hadoop": [23.0, 46.0, 92.0, 184.0],
}

#: Paper packet counts for the testbed replays (40 M packets selected from
#: each trace); the surrogate scale is applied to this number.
PAPER_TESTBED_PACKETS = 40_000_000


@dataclass(frozen=True)
class DeploymentCurve:
    """One panel of Figure 20: SRAM sweep results for one trace."""

    trace: str
    results: list[TestbedResult]

    def zero_outlier_sram(self) -> float | None:
        """Smallest swept SRAM with zero outliers, if any."""
        for result in self.results:
            if result.outliers == 0:
                return result.sram_bytes
        return None


def testbed_accuracy(
    trace_name: str = "ip",
    scale: float = 0.005,
    sram_kilobytes: list[float] | None = None,
    seed: int = 0,
) -> DeploymentCurve:
    """Accuracy of the switch deployment vs SRAM size (one Figure 20 panel).

    ``scale`` applies both to the packet count (relative to the paper's 40 M)
    and to the SRAM sizes, preserving the memory-to-traffic ratio.
    """
    if sram_kilobytes is None:
        sram_kilobytes = PAPER_SRAM_SWEEP_KB.get(trace_name, PAPER_SRAM_SWEEP_KB["ip"])
    # The testbed replays 40 M packets whereas the trace surrogates are sized
    # against 10 M; rescale so `scale` means "fraction of the paper's replay".
    trace_scale = scale * (PAPER_TESTBED_PACKETS / 10_000_000)
    deployment = TestbedDeployment(trace_name=trace_name, scale=trace_scale, seed=seed)
    # SRAM budgets shrink with the same factor as the replayed traffic so the
    # memory-to-traffic ratio of each swept point matches the paper's.
    sram_bytes = [
        max(128.0, kilobytes * BYTES_PER_KB * trace_scale) for kilobytes in sram_kilobytes
    ]
    return DeploymentCurve(trace=trace_name, results=deployment.sweep(sram_bytes))

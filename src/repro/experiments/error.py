"""Average-error experiments: Figures 8 (AAE) and 9 (ARE).

Average error is not the paper's primary metric, but Figures 8 and 9 show
ReliableSketch is comparable to the best counter-based competitors and far
better than SpaceSaving.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.datasets import DEFAULT_SCALE, dataset, scaled_memory_points
from repro.experiments.outliers import PAPER_MEMORY_SWEEP_MB
from repro.experiments.runner import ExperimentSettings, run_competitors
from repro.sketches.registry import competitor_names


@dataclass(frozen=True)
class ErrorCurve:
    """One line of an error-vs-memory plot (AAE or ARE)."""

    algorithm: str
    memory_bytes: list[float]
    aae: list[float]
    are: list[float]


def average_error_sweep(
    dataset_name: str = "ip",
    tolerance: float = 25.0,
    scale: float = DEFAULT_SCALE,
    memory_points: list[float] | None = None,
    algorithms: tuple[str, ...] | None = None,
    seed: int = 0,
) -> list[ErrorCurve]:
    """AAE and ARE as a function of memory (Figures 8 and 9)."""
    stream = dataset(dataset_name, scale=scale, seed=seed + 1)
    if memory_points is None:
        memory_points = scaled_memory_points(PAPER_MEMORY_SWEEP_MB, scale)
    algorithms = algorithms or competitor_names("error")
    settings = ExperimentSettings(tolerance=tolerance, seed=seed)

    aae: dict[str, list[float]] = {name: [] for name in algorithms}
    are: dict[str, list[float]] = {name: [] for name in algorithms}
    for memory in memory_points:
        runs = run_competitors(algorithms, memory, stream, settings)
        for name, run in runs.items():
            aae[name].append(run.aae)
            are[name].append(run.are)
    return [
        ErrorCurve(name, list(memory_points), aae[name], are[name]) for name in algorithms
    ]

"""Average-error experiments: Figures 8 (AAE) and 9 (ARE).

Average error is not the paper's primary metric, but Figures 8 and 9 show
ReliableSketch is comparable to the best counter-based competitors and far
better than SpaceSaving.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.datasets import DEFAULT_SCALE, dataset, scaled_memory_points
from repro.experiments.outliers import PAPER_MEMORY_SWEEP_MB
from repro.experiments.runner import ExperimentSettings, run_grid
from repro.sketches.registry import competitor_names


@dataclass(frozen=True)
class ErrorCurve:
    """One line of an error-vs-memory plot (AAE or ARE)."""

    algorithm: str
    memory_bytes: list[float]
    aae: list[float]
    are: list[float]


def average_error_sweep(
    dataset_name: str = "ip",
    tolerance: float = 25.0,
    scale: float = DEFAULT_SCALE,
    memory_points: list[float] | None = None,
    algorithms: tuple[str, ...] | None = None,
    seed: int = 0,
    batch_size: int | None = None,
    shards: int = 1,
    workers: int = 1,
    transport: str | None = None,
) -> list[ErrorCurve]:
    """AAE and ARE as a function of memory (Figures 8 and 9).

    The (algorithm × memory) grid fans out over ``workers`` processes and
    sharded fills optionally run on remote ingest workers (``transport``);
    results are bit-identical to the sequential in-process sweep.
    """
    stream = dataset(dataset_name, scale=scale, seed=seed + 1)
    if memory_points is None:
        memory_points = scaled_memory_points(PAPER_MEMORY_SWEEP_MB, scale)
    algorithms = algorithms or competitor_names("error")
    settings = ExperimentSettings(
        tolerance=tolerance, seed=seed, batch_size=batch_size, shards=shards,
        workers=workers, transport=transport,
    )

    grid = run_grid(algorithms, memory_points, stream, settings)
    return [
        ErrorCurve(
            name,
            list(memory_points),
            [grid[(name, memory)].aae for memory in memory_points],
            [grid[(name, memory)].are for memory in memory_points],
        )
        for name in algorithms
    ]

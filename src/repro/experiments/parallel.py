"""Process-pool fan-out for embarrassingly parallel experiment grids.

The memory sweeps behind Figures 5 and 11–15 evaluate an (algorithm ×
memory-point) grid where every cell is independent: build a sketch, fill it,
measure it.  :func:`parallel_map` runs such grids over a
``ProcessPoolExecutor`` while keeping three properties the experiment
harness relies on:

* **Determinism** — results come back in task order (``Executor.map``), and
  every task is a pure function of its arguments, so a parallel run is
  bit-identical to ``workers=1``.  ``tests/experiments/test_parallel_runner.py``
  pins this.
* **One-shot context shipping** — the shared context (stream, ground-truth
  counts, settings) is sent to each worker once via the pool initializer,
  not pickled per task, so fan-out cost is O(workers), not O(tasks).
* **Graceful degradation** — ``workers <= 1`` or a single task short-circuits
  to a plain loop in-process (no pool, picklability not required).

Task functions must be module-level (picklable) callables of the form
``fn(shared, task)``.

This is the *experiment-level* parallelism layer: whole (algorithm ×
memory) cells fan out, each filling its sketches in-process.  It composes
freely with the *ingest-level* layers below it — sharded construction
(``ExperimentSettings.shards``) and remote ingest over a transport
(``ExperimentSettings.transport``, :mod:`repro.distributed`) — because all
three are exactness-preserving.  ``docs/architecture.md`` (§3) has the
diagram and the contract.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from functools import partial
from typing import Callable, Iterable, Sequence, TypeVar

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")

#: Worker-side slot for the shared context installed by the pool initializer.
_SHARED: object = None


def resolve_workers(workers: int | None) -> int:
    """Normalise a worker-count knob: ``0``/``None`` means "all CPU cores"."""
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError("workers must be >= 0 (0 = one per CPU core)")
    return workers


def _install_shared(shared: object) -> None:
    global _SHARED
    _SHARED = shared


def _invoke(fn: Callable, task: object) -> object:
    return fn(_SHARED, task)


def parallel_map(
    fn: Callable[[object, _Task], _Result],
    tasks: Iterable[_Task],
    workers: int = 1,
    shared: object = None,
) -> list[_Result]:
    """Order-preserving map of ``fn(shared, task)`` over ``tasks``.

    With ``workers > 1`` the tasks are distributed over a process pool whose
    workers receive ``shared`` once at startup; otherwise the map runs
    sequentially in-process.  Either way the result list is in task order
    and element-wise identical, so callers never need to care which path ran.
    """
    task_list: Sequence[_Task] = list(tasks)
    workers = resolve_workers(workers)
    if workers <= 1 or len(task_list) <= 1:
        return [fn(shared, task) for task in task_list]
    pool_size = min(workers, len(task_list))
    with ProcessPoolExecutor(
        max_workers=pool_size, initializer=_install_shared, initargs=(shared,)
    ) as pool:
        return list(pool.map(partial(_invoke, fn), task_list))

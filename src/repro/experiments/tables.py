"""Table experiments and plain-text report formatting.

Covers the three tables of the paper:

* **Table 1** — complexity comparison of the sketch families, instantiated
  numerically for a concrete workload via :mod:`repro.core.analysis`.
* **Table 3** — FPGA synthesis-style resource report from
  :class:`repro.hardware.fpga.FpgaModel`.
* **Table 4** — Tofino resource usage from
  :class:`repro.hardware.tofino.TofinoResourceModel`.

Also provides a tiny text-table formatter used by the CLI and the examples,
so reports render without any plotting dependency.
"""

from __future__ import annotations

from typing import Sequence

from repro.core import analysis
from repro.core.config import ReliableConfig
from repro.hardware.fpga import FpgaModel
from repro.hardware.tofino import TofinoResourceModel


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a list of rows as a fixed-width text table."""
    columns = [list(map(str, column)) for column in zip(headers, *rows)] if rows else [
        [str(h)] for h in headers
    ]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def complexity_table_rows(
    total_value: float = 10_000_000,
    tolerance: float = 25.0,
    delta: float = 1e-10,
    distinct_keys: float = 400_000,
) -> list[list[object]]:
    """Table 1 rows for a concrete workload (defaults: the paper's IP trace)."""
    rows = analysis.complexity_table(total_value, tolerance, delta, distinct_keys)
    return [
        [
            row.family,
            row.overall_confidence,
            row.time,
            row.space,
            row.compatibility,
            f"{row.time_estimate:.3g}",
            f"{row.space_estimate:.3g}",
        ]
        for row in rows
    ]


def complexity_table_text(**kwargs) -> str:
    """Table 1 rendered as text."""
    headers = [
        "Family",
        "Overall confidence",
        "Time",
        "Space",
        "Compatibility",
        "Time est.",
        "Space est. (counters)",
    ]
    return format_table(headers, complexity_table_rows(**kwargs))


def fpga_table_rows(config: ReliableConfig | None = None) -> list[list[object]]:
    """Table 3 rows for a configuration (default: the paper's 1 MB sketch)."""
    if config is None:
        config = ReliableConfig.from_memory(1024 * 1024, tolerance=25.0)
    report = FpgaModel().synthesize(config)
    rows = []
    for entry in report.rows():
        rows.append(
            [
                entry["Module"],
                entry["CLB LUTs"],
                entry["CLB Registers"],
                entry["Block RAM"],
                entry["Frequency (MHz)"],
            ]
        )
    rows.append(
        [
            "Usage",
            f"{report.lut_utilisation:.2%}",
            f"{report.register_utilisation:.2%}",
            f"{report.bram_utilisation:.2%}",
            "",
        ]
    )
    return rows


def fpga_table_text(config: ReliableConfig | None = None) -> str:
    """Table 3 rendered as text."""
    headers = ["Module", "CLB LUTs", "CLB Registers", "Block RAM", "Frequency (MHz)"]
    return format_table(headers, fpga_table_rows(config))


def tofino_table_rows(layers: int = 6) -> list[list[object]]:
    """Table 4 rows for a switch deployment with ``layers`` bucket layers."""
    model = TofinoResourceModel(layers=layers)
    return [
        [row.resource, row.usage, f"{row.percentage:.2%}"] for row in model.rows()
    ]


def tofino_table_text(layers: int = 6) -> str:
    """Table 4 rendered as text."""
    headers = ["Resource", "Usage", "Percentage"]
    return format_table(headers, tofino_table_rows(layers))

"""Experiment harness: one function per table/figure of the paper.

All experiments accept a ``scale`` parameter.  ``scale=1.0`` reproduces the
paper's stream sizes (10 M items); the defaults used here are much smaller so
the pure-Python harness runs in seconds, and memory budgets are scaled down
proportionally so collision pressure — and therefore the qualitative shape of
every figure — is preserved.  See DESIGN.md §3 for the experiment index and
EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.experiments.datasets import dataset, dataset_names, scaled_memory_points
from repro.experiments.parallel import parallel_map, resolve_workers
from repro.experiments.runner import (
    ExperimentSettings,
    SketchRun,
    run_sketch,
    run_competitors,
    run_grid,
    minimum_memory_for_zero_outliers,
    minimum_memory_for_target_aae,
)
from repro.experiments import (
    deployment,
    error,
    outliers,
    parameters,
    sensing,
    speed,
    tables,
)

__all__ = [
    "dataset",
    "dataset_names",
    "scaled_memory_points",
    "ExperimentSettings",
    "SketchRun",
    "parallel_map",
    "resolve_workers",
    "run_sketch",
    "run_competitors",
    "run_grid",
    "minimum_memory_for_zero_outliers",
    "minimum_memory_for_target_aae",
    "deployment",
    "error",
    "outliers",
    "parameters",
    "sensing",
    "speed",
    "tables",
]

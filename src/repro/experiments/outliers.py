"""Outlier-count experiments: Figures 4, 5, 6 and 7.

These are the paper's headline accuracy results: under the same memory
budget, ReliableSketch drives the number of outliers to zero while the
counter-based competitors keep thousands of them.

All drivers accept ``workers`` (process-pool width, ``0`` = one per core);
parallel sweeps use deterministic per-task seeds and are bit-identical to
sequential runs.  ``shards`` switches sketch construction to the
hash-partitioned distributed-ingest model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.datasets import DEFAULT_SCALE, dataset, scaled_memory_points
from repro.experiments.parallel import parallel_map
from repro.experiments.runner import (
    ExperimentSettings,
    minimum_memory_for_zero_outliers,
    run_grid,
    run_sketch,
)
from repro.sketches.registry import competitor_names

#: Memory sweep of Figures 4 and 6 (MB at paper scale).
PAPER_MEMORY_SWEEP_MB = [0.5, 1.0, 2.0, 3.0, 4.0]


@dataclass(frozen=True)
class OutlierCurve:
    """One line of an outliers-vs-memory plot."""

    algorithm: str
    memory_bytes: list[float]
    outliers: list[int]

    def zero_outlier_memory(self) -> float | None:
        """Smallest swept memory with zero outliers, if any."""
        for memory, outliers in zip(self.memory_bytes, self.outliers):
            if outliers == 0:
                return memory
        return None


def outliers_vs_memory(
    dataset_name: str = "ip",
    tolerance: float = 25.0,
    scale: float = DEFAULT_SCALE,
    memory_points: list[float] | None = None,
    algorithms: tuple[str, ...] | None = None,
    seed: int = 0,
    batch_size: int | None = None,
    shards: int = 1,
    workers: int = 1,
    transport: str | None = None,
) -> list[OutlierCurve]:
    """#Outliers as a function of memory (Figure 4 for Λ∈{5,25}, Figure 6 per dataset).

    ``batch_size`` switches the sketch-filling loop to the batch datapath,
    ``workers`` fans the (algorithm × memory) grid out over a process pool,
    and ``transport`` runs the sharded fills on remote ingest workers; the
    curves are unchanged by any of them (batch inserts are bit-identical,
    grid cells are independent, remote routing equals local routing), they
    only change where and how fast the sweep runs.
    """
    stream = dataset(dataset_name, scale=scale, seed=seed + 1)
    if memory_points is None:
        memory_points = scaled_memory_points(PAPER_MEMORY_SWEEP_MB, scale)
    algorithms = algorithms or competitor_names("outliers")
    settings = ExperimentSettings(
        tolerance=tolerance, seed=seed, batch_size=batch_size, shards=shards,
        workers=workers, transport=transport,
    )

    grid = run_grid(algorithms, memory_points, stream, settings)
    return [
        OutlierCurve(
            name,
            list(memory_points),
            [grid[(name, memory)].outliers for memory in memory_points],
        )
        for name in algorithms
    ]


@dataclass(frozen=True)
class _SearchContext:
    """Shared state of the parallel zero-outlier memory search."""

    scale: float
    seed: int
    settings: ExperimentSettings
    low_bytes: float
    high_bytes: float


def _zero_outlier_search_task(
    shared: _SearchContext, task: tuple[str, str]
) -> float | None:
    """One (dataset × algorithm) cell of the Figure 5 search grid.

    Workers regenerate the stream through the cached :func:`dataset` factory
    (deterministic for a given name/scale/seed), so tasks ship two strings
    instead of a pickled million-item stream.
    """
    dataset_name, algorithm = task
    stream = dataset(dataset_name, scale=shared.scale, seed=shared.seed + 1)
    return minimum_memory_for_zero_outliers(
        algorithm,
        stream,
        shared.settings,
        low_bytes=shared.low_bytes,
        high_bytes=shared.high_bytes,
    )


def zero_outlier_memory(
    dataset_names: tuple[str, ...] = ("ip", "web"),
    tolerance: float = 25.0,
    scale: float = DEFAULT_SCALE,
    algorithms: tuple[str, ...] = ("Ours", "CM_acc", "CU_acc", "SS", "Elastic"),
    seed: int = 0,
    high_megabytes: float = 10.0,
    workers: int = 1,
) -> dict[str, dict[str, float | None]]:
    """Minimum memory to reach zero outliers, per dataset and algorithm (Figure 5).

    ``None`` means the algorithm could not reach zero outliers within the
    (scaled) 10 MB search limit, matching the paper's observation for the
    fast CM/CU variants and Coco.  The per-(dataset, algorithm) binary
    searches are independent and fan out over ``workers`` processes.
    """
    settings = ExperimentSettings(tolerance=tolerance, seed=seed)
    high_bytes = scaled_memory_points([high_megabytes], scale)[0]
    low_bytes = max(512.0, high_bytes / 2048)
    tasks = [
        (dataset_name, algorithm)
        for dataset_name in dataset_names
        for algorithm in algorithms
    ]
    context = _SearchContext(scale, seed, settings, low_bytes, high_bytes)
    memories = parallel_map(_zero_outlier_search_task, tasks, workers=workers, shared=context)
    results: dict[str, dict[str, float | None]] = {name: {} for name in dataset_names}
    for (dataset_name, algorithm), memory in zip(tasks, memories):
        results[dataset_name][algorithm] = memory
    return results


@dataclass(frozen=True)
class _FrequentContext:
    """Shared state of the parallel frequent-key worst-case sweep."""

    dataset_name: str
    scale: float
    seed: int
    tolerance: float
    frequent: tuple


def _frequent_outlier_task(
    shared: _FrequentContext, task: tuple[str, float, int]
) -> int:
    """One (algorithm, memory, repetition-seed) run of the Figure 7 sweep."""
    name, memory, repetition = task
    stream = dataset(shared.dataset_name, scale=shared.scale, seed=shared.seed + 1)
    settings = ExperimentSettings(
        tolerance=shared.tolerance, seed=shared.seed + repetition
    )
    run = run_sketch(name, memory, stream, settings, keys=shared.frequent)
    return run.outliers


def frequent_key_outliers(
    threshold: int = 100,
    dataset_name: str = "ip",
    tolerance: float = 25.0,
    scale: float = DEFAULT_SCALE,
    memory_points: list[float] | None = None,
    repetitions: int = 3,
    seed: int = 0,
    workers: int = 1,
) -> list[OutlierCurve]:
    """Worst-case #outliers among frequent keys over repeated seeds (Figure 7).

    The paper repeats each setting 100 times with different hash seeds and
    plots the worst case; ``repetitions`` controls how many seeds we try (the
    benchmarks use a small number to stay fast, the CLI can raise it).  Each
    (algorithm, memory, seed) run is an independent task with a
    deterministic seed, so the worst-case aggregation is order-free and the
    parallel sweep matches the sequential one exactly.
    """
    stream = dataset(dataset_name, scale=scale, seed=seed + 1)
    frequent = tuple(stream.frequent_keys(threshold))
    if memory_points is None:
        memory_points = scaled_memory_points([0.2, 0.5, 1.0, 2.0, 4.0], scale)
    algorithms = competitor_names("frequent")

    tasks = [
        (name, memory, repetition)
        for name in algorithms
        for memory in memory_points
        for repetition in range(repetitions)
    ]
    context = _FrequentContext(dataset_name, scale, seed, tolerance, frequent)
    outlier_counts = parallel_map(
        _frequent_outlier_task, tasks, workers=workers, shared=context
    )
    worst: dict[tuple[str, float], int] = {}
    for (name, memory, _), outliers in zip(tasks, outlier_counts):
        cell = (name, memory)
        worst[cell] = max(worst.get(cell, 0), outliers)
    # .get keeps the degenerate repetitions=0 case returning all-zero curves.
    return [
        OutlierCurve(
            name, list(memory_points), [worst.get((name, m), 0) for m in memory_points]
        )
        for name in algorithms
    ]

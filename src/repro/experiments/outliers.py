"""Outlier-count experiments: Figures 4, 5, 6 and 7.

These are the paper's headline accuracy results: under the same memory
budget, ReliableSketch drives the number of outliers to zero while the
counter-based competitors keep thousands of them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.datasets import DEFAULT_SCALE, dataset, scaled_memory_points
from repro.experiments.runner import (
    ExperimentSettings,
    minimum_memory_for_zero_outliers,
    run_competitors,
)
from repro.sketches.registry import competitor_names

#: Memory sweep of Figures 4 and 6 (MB at paper scale).
PAPER_MEMORY_SWEEP_MB = [0.5, 1.0, 2.0, 3.0, 4.0]


@dataclass(frozen=True)
class OutlierCurve:
    """One line of an outliers-vs-memory plot."""

    algorithm: str
    memory_bytes: list[float]
    outliers: list[int]

    def zero_outlier_memory(self) -> float | None:
        """Smallest swept memory with zero outliers, if any."""
        for memory, outliers in zip(self.memory_bytes, self.outliers):
            if outliers == 0:
                return memory
        return None


def outliers_vs_memory(
    dataset_name: str = "ip",
    tolerance: float = 25.0,
    scale: float = DEFAULT_SCALE,
    memory_points: list[float] | None = None,
    algorithms: tuple[str, ...] | None = None,
    seed: int = 0,
    batch_size: int | None = None,
) -> list[OutlierCurve]:
    """#Outliers as a function of memory (Figure 4 for Λ∈{5,25}, Figure 6 per dataset).

    ``batch_size`` switches the sketch-filling loop to the batch datapath;
    the curves are unchanged (batch inserts are bit-identical), it only
    shortens the sweep's wall-clock time.
    """
    stream = dataset(dataset_name, scale=scale, seed=seed + 1)
    if memory_points is None:
        memory_points = scaled_memory_points(PAPER_MEMORY_SWEEP_MB, scale)
    algorithms = algorithms or competitor_names("outliers")
    settings = ExperimentSettings(tolerance=tolerance, seed=seed, batch_size=batch_size)

    per_algorithm: dict[str, list[int]] = {name: [] for name in algorithms}
    for memory in memory_points:
        runs = run_competitors(algorithms, memory, stream, settings)
        for name, run in runs.items():
            per_algorithm[name].append(run.outliers)
    return [
        OutlierCurve(name, list(memory_points), counts)
        for name, counts in per_algorithm.items()
    ]


def zero_outlier_memory(
    dataset_names: tuple[str, ...] = ("ip", "web"),
    tolerance: float = 25.0,
    scale: float = DEFAULT_SCALE,
    algorithms: tuple[str, ...] = ("Ours", "CM_acc", "CU_acc", "SS", "Elastic"),
    seed: int = 0,
    high_megabytes: float = 10.0,
) -> dict[str, dict[str, float | None]]:
    """Minimum memory to reach zero outliers, per dataset and algorithm (Figure 5).

    ``None`` means the algorithm could not reach zero outliers within the
    (scaled) 10 MB search limit, matching the paper's observation for the
    fast CM/CU variants and Coco.
    """
    settings = ExperimentSettings(tolerance=tolerance, seed=seed)
    high_bytes = scaled_memory_points([high_megabytes], scale)[0]
    low_bytes = max(512.0, high_bytes / 2048)
    results: dict[str, dict[str, float | None]] = {}
    for dataset_name in dataset_names:
        stream = dataset(dataset_name, scale=scale, seed=seed + 1)
        per_algorithm: dict[str, float | None] = {}
        for algorithm in algorithms:
            per_algorithm[algorithm] = minimum_memory_for_zero_outliers(
                algorithm, stream, settings, low_bytes=low_bytes, high_bytes=high_bytes
            )
        results[dataset_name] = per_algorithm
    return results


def frequent_key_outliers(
    threshold: int = 100,
    dataset_name: str = "ip",
    tolerance: float = 25.0,
    scale: float = DEFAULT_SCALE,
    memory_points: list[float] | None = None,
    repetitions: int = 3,
    seed: int = 0,
) -> list[OutlierCurve]:
    """Worst-case #outliers among frequent keys over repeated seeds (Figure 7).

    The paper repeats each setting 100 times with different hash seeds and
    plots the worst case; ``repetitions`` controls how many seeds we try (the
    benchmarks use a small number to stay fast, the CLI can raise it).
    """
    stream = dataset(dataset_name, scale=scale, seed=seed + 1)
    frequent = stream.frequent_keys(threshold)
    if memory_points is None:
        memory_points = scaled_memory_points([0.2, 0.5, 1.0, 2.0, 4.0], scale)
    algorithms = competitor_names("frequent")

    curves: list[OutlierCurve] = []
    for name in algorithms:
        worst_counts: list[int] = []
        for memory in memory_points:
            worst = 0
            for repetition in range(repetitions):
                settings = ExperimentSettings(tolerance=tolerance, seed=seed + repetition)
                run = run_competitors((name,), memory, stream, settings, keys=frequent)[name]
                worst = max(worst, run.outliers)
            worst_counts.append(worst)
        curves.append(OutlierCurve(name, list(memory_points), worst_counts))
    return curves

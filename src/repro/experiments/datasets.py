"""Datasets used by the experiments, addressed by the paper's names.

`dataset(name, scale, seed)` returns the surrogate stream for any workload
referenced in §6: the four trace surrogates plus Zipf synthetic streams with
configurable skew ("zipf-0.3", "zipf-3.0", ...).  Streams are cached per
(name, scale, seed) because several experiments reuse the same workload and
regenerating a few hundred thousand items repeatedly would dominate runtime.
"""

from __future__ import annotations

from functools import lru_cache

from repro.metrics.memory import BYTES_PER_MB
from repro.streams.items import Stream
from repro.streams.synthetic import zipf_stream
from repro.streams.traces import load_trace

#: Default scale for experiments and benchmarks: 1% of the paper's streams.
DEFAULT_SCALE = 0.01

#: Item count of the paper's synthetic Zipf datasets (32 M items, §6.1.2).
_ZIPF_PAPER_ITEMS = 32_000_000
#: Key universe used for the synthetic datasets at scale 1.0.
_ZIPF_PAPER_UNIVERSE = 1_000_000

_TRACE_NAMES = ("ip", "web", "datacenter", "hadoop")


def dataset_names() -> tuple[str, ...]:
    """Workload names accepted by :func:`dataset`."""
    return _TRACE_NAMES + ("zipf-0.3", "zipf-3.0")


@lru_cache(maxsize=32)
def dataset(name: str, scale: float = DEFAULT_SCALE, seed: int = 1) -> Stream:
    """Return the surrogate stream for a workload referenced in the paper."""
    if name in _TRACE_NAMES:
        return load_trace(name, scale=scale, seed=seed)
    if name.startswith("zipf-"):
        try:
            skew = float(name.split("-", 1)[1])
        except ValueError:
            raise ValueError(f"malformed zipf dataset name: {name!r}") from None
        count = max(1, int(_ZIPF_PAPER_ITEMS * scale))
        universe = max(2, int(_ZIPF_PAPER_UNIVERSE * scale))
        return zipf_stream(count, skew=skew, universe=universe, seed=seed)
    raise ValueError(f"unknown dataset {name!r}; expected one of {dataset_names()}")


def scaled_memory_points(paper_megabytes: list[float], scale: float = DEFAULT_SCALE) -> list[float]:
    """Convert the paper's memory sweep (in MB) to bytes at the given scale.

    Memory budgets shrink with the stream so that the ratio of sketch size to
    stream size — which determines collision pressure and therefore the shape
    of every accuracy figure — matches the paper's setup.
    """
    return [max(512.0, megabytes * BYTES_PER_MB * scale) for megabytes in paper_megabytes]

"""Pluggable transports carrying wire frames between collector and workers.

One protocol, three backends:

* ``inproc``  — a pair of ``queue.Queue`` objects per worker, workers run as
  threads in the collector's process.  Zero-copy handoff of frame bytes;
  the reference backend for tests and the serialization-overhead baseline.
* ``pipe``    — ``multiprocessing.Pipe`` duplex connections, workers run as
  separate OS processes.  The single-host multi-core deployment.
* ``tcp``     — length-prefixed frames over TCP sockets.  Workers may be
  threads spawned by the transport (self-hosted demos and tests) or
  external processes started with ``repro-cli ingest-worker`` connecting
  from other hosts.

The ingest logic (:mod:`repro.distributed.ingest`) only ever sees
:class:`Channel` — ``send(frame)`` / ``recv() -> frame | None`` / ``close()``
— so the backend choice is pure configuration.  All channels count bytes in
both directions, which is what ``benchmarks/bench_distributed.py`` reports
as wire volume.

Frames are already length-prefixed by :mod:`repro.distributed.wire`, so the
message-oriented backends carry them verbatim and the TCP backend can
delimit them on the byte stream without scanning.
"""

from __future__ import annotations

import abc
import multiprocessing
import queue
import socket
import threading
from typing import Callable

from repro.distributed.wire import FRAME_HEADER_SIZE, WireFormatError, parse_frame_header

#: Registry names accepted by :func:`create_transport` (and the CLI flag).
TRANSPORT_NAMES = ("inproc", "pipe", "tcp")


class ChannelClosedError(WireFormatError):
    """Send on a channel whose endpoint is already closed.

    A distinct subclass so worker loops can tell a dead link (normal exit:
    the peer hung up or fault injection killed the channel) from a genuine
    protocol violation, which must stay loud.
    """


class ChannelTimeoutError(WireFormatError):
    """``recv(timeout=...)`` expired with no frame.

    Distinct from EOF (``recv`` returning ``None``): the peer has not hung
    up, it has merely not answered in time — the signal a heartbeat failure
    detector or a client deadline acts on.  On the stream-oriented TCP
    backend a timeout may strike *mid-frame*; the channel is then
    positioned inside a partial message and must not be recv'd again
    (callers treat a deadline breach as fatal for the channel, which is
    exactly what the failure detector and the query client both do).
    """

#: How a worker entry point looks to every transport: a callable taking the
#: worker-side channel.  ``pipe`` additionally requires it to be picklable
#: (a module-level function such as ``repro.distributed.ingest.worker_main``).
WorkerFn = Callable[["Channel"], None]


class Channel(abc.ABC):
    """A bidirectional, message-oriented frame channel."""

    def __init__(self) -> None:
        self.bytes_sent = 0
        self.bytes_received = 0

    @abc.abstractmethod
    def send(self, frame: bytes) -> None:
        """Send one whole wire frame."""

    @abc.abstractmethod
    def recv(self, timeout: float | None = None) -> bytes | None:
        """Block for the next frame; ``None`` once the peer closed.

        With a ``timeout`` (seconds), raise :class:`ChannelTimeoutError`
        if no frame arrives in time; ``None`` keeps the blocking default.
        """

    @abc.abstractmethod
    def close(self) -> None:
        """Close this endpoint (idempotent); the peer's ``recv`` returns None."""


class Transport(abc.ABC):
    """Launches workers and hands the collector one channel per worker."""

    name: str = "transport"

    def __init__(self) -> None:
        self._channels: list[Channel] = []

    @abc.abstractmethod
    def launch(self, worker_fn: WorkerFn, count: int) -> list[Channel]:
        """Start ``count`` workers running ``worker_fn(channel)``.

        Returns the collector-side channels, one per worker.  Workers are
        symmetric until the collector's CONFIG frame assigns shard ids, so
        the order of the returned list is the shard order.
        """

    @abc.abstractmethod
    def join(self, timeout: float | None = None) -> None:
        """Wait for every launched worker to exit."""

    def close(self) -> None:
        """Close all collector-side channels (idempotent)."""
        for channel in self._channels:
            channel.close()

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
        self.join(timeout=30)


# ---------------------------------------------------------------------------
# inproc: queue pairs + worker threads


class QueueChannel(Channel):
    """One endpoint of an in-process queue pair (``None`` is the EOF marker)."""

    def __init__(self, send_queue: "queue.Queue", recv_queue: "queue.Queue") -> None:
        super().__init__()
        self._send_queue = send_queue
        self._recv_queue = recv_queue
        self._closed = False
        self._eof = False

    def send(self, frame: bytes) -> None:
        if self._closed:
            raise ChannelClosedError("send on a closed channel")
        self.bytes_sent += len(frame)
        self._send_queue.put(frame)

    def recv(self, timeout: float | None = None) -> bytes | None:
        if self._eof:
            return None
        try:
            frame = self._recv_queue.get(timeout=timeout)
        except queue.Empty:
            raise ChannelTimeoutError(f"no frame within {timeout}s") from None
        if frame is None:
            self._eof = True
            return None
        self.bytes_received += len(frame)
        return frame

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._send_queue.put(None)

    @classmethod
    def pair(cls) -> tuple["QueueChannel", "QueueChannel"]:
        """A connected (collector-side, worker-side) channel pair."""
        a_to_b: queue.Queue = queue.Queue()
        b_to_a: queue.Queue = queue.Queue()
        return cls(a_to_b, b_to_a), cls(b_to_a, a_to_b)


def _run_worker(worker_fn: WorkerFn, channel: Channel) -> None:
    """Worker entry shared by all self-hosted backends: always close on exit.

    A dead link mid-send — the collector hung up, or fault injection killed
    the channel — is a normal worker exit, not a crash: the collector's
    failure detector already owns that event.  Protocol violations
    (plain :class:`WireFormatError`) stay loud.
    """
    try:
        worker_fn(channel)
    except (ChannelClosedError, OSError, EOFError):
        pass
    finally:
        channel.close()


class InprocTransport(Transport):
    """Workers as daemon threads, frames over queue pairs."""

    name = "inproc"

    def __init__(self) -> None:
        super().__init__()
        self._threads: list[threading.Thread] = []

    def launch(self, worker_fn: WorkerFn, count: int) -> list[Channel]:
        for index in range(count):
            collector_side, worker_side = QueueChannel.pair()
            thread = threading.Thread(
                target=_run_worker,
                args=(worker_fn, worker_side),
                name=f"ingest-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
            self._channels.append(collector_side)
        return list(self._channels)

    def join(self, timeout: float | None = None) -> None:
        for thread in self._threads:
            thread.join(timeout)


# ---------------------------------------------------------------------------
# pipe: multiprocessing.Pipe + worker processes


class PipeChannel(Channel):
    """A ``multiprocessing.Connection`` endpoint carrying whole frames."""

    def __init__(self, connection) -> None:
        super().__init__()
        self._connection = connection
        self._closed = False

    def send(self, frame: bytes) -> None:
        if self._closed:
            raise ChannelClosedError("send on a closed channel")
        self.bytes_sent += len(frame)
        self._connection.send_bytes(frame)

    def recv(self, timeout: float | None = None) -> bytes | None:
        if self._closed:
            return None
        try:
            if timeout is not None and not self._connection.poll(timeout):
                raise ChannelTimeoutError(f"no frame within {timeout}s")
            frame = self._connection.recv_bytes()
        except EOFError:
            return None
        self.bytes_received += len(frame)
        return frame

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._connection.close()


def _pipe_worker_entry(worker_fn: WorkerFn, connection, parent_ends=()) -> None:
    """Module-level process target (must be picklable on spawn platforms).

    ``parent_ends`` are the collector-side connections this child inherited
    copies of (under fork: its own pipe's collector end plus every earlier
    worker's).  They must be closed here, or the collector closing its end
    would never surface as EOF on any worker's pipe — a worker whose link
    is killed would block in ``recv`` forever instead of exiting.
    """
    for end in parent_ends:
        end.close()
    _run_worker(worker_fn, PipeChannel(connection))


class PipeTransport(Transport):
    """Workers as OS processes, frames over ``multiprocessing.Pipe``."""

    name = "pipe"

    def __init__(self) -> None:
        super().__init__()
        self._processes: list[multiprocessing.Process] = []

    def launch(self, worker_fn: WorkerFn, count: int) -> list[Channel]:
        for index in range(count):
            collector_side, worker_side = multiprocessing.Pipe(duplex=True)
            parent_ends = [
                channel._connection
                for channel in self._channels
                if isinstance(channel, PipeChannel)
            ] + [collector_side]
            process = multiprocessing.Process(
                target=_pipe_worker_entry,
                args=(worker_fn, worker_side, parent_ends),
                name=f"ingest-worker-{index}",
                daemon=True,
            )
            process.start()
            # The parent must drop its handle on the worker-side end, or the
            # worker's close would never surface as EOF on the collector side.
            worker_side.close()
            self._processes.append(process)
            self._channels.append(PipeChannel(collector_side))
        return list(self._channels)

    def join(self, timeout: float | None = None) -> None:
        for process in self._processes:
            process.join(timeout)


# ---------------------------------------------------------------------------
# tcp: length-prefixed frames over sockets


class SocketChannel(Channel):
    """Frames over a connected TCP socket, delimited by the frame header."""

    def __init__(self, sock: socket.socket) -> None:
        super().__init__()
        self._socket = sock
        self._closed = False
        try:
            # Frames are whole messages: Nagle buys nothing on bulk ingest
            # (frames already fill segments) and costs the serving layer a
            # delayed-ACK round trip (~40 ms) per request/response exchange.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP sockets in tests
            pass

    def send(self, frame: bytes) -> None:
        if self._closed:
            raise ChannelClosedError("send on a closed channel")
        self.bytes_sent += len(frame)
        self._socket.sendall(frame)

    def _recv_exact(self, size: int) -> bytes | None:
        chunks: list[bytes] = []
        remaining = size
        while remaining:
            try:
                chunk = self._socket.recv(remaining)
            except socket.timeout:
                # The deadline struck (possibly mid-frame: the stream is then
                # desynchronized and the caller must not recv again — see
                # ChannelTimeoutError).
                raise ChannelTimeoutError("no frame within the recv timeout") from None
            except OSError:
                return None
            if not chunk:
                return None
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def recv(self, timeout: float | None = None) -> bytes | None:
        if self._closed:
            return None
        if timeout is not None:
            self._socket.settimeout(timeout)
        try:
            header = self._recv_exact(FRAME_HEADER_SIZE)
            if header is None:
                return None
            _, payload_length = parse_frame_header(header)
            payload = self._recv_exact(payload_length) if payload_length else b""
            if payload is None:
                raise WireFormatError("connection closed mid-frame")
        finally:
            if timeout is not None and not self._closed:
                try:
                    self._socket.settimeout(None)
                except OSError:  # pragma: no cover - racing a concurrent close
                    pass
        frame = header + payload
        self.bytes_received += len(frame)
        return frame

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._socket.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._socket.close()


def connect_worker(host: str, port: int, timeout: float | None = 30.0) -> SocketChannel:
    """Dial a collector from a standalone worker (``repro-cli ingest-worker``)."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(None)
    return SocketChannel(sock)


class TcpTransport(Transport):
    """Frames over TCP; workers self-hosted as threads or joining externally.

    With ``self_hosted=True`` (default) ``launch`` spawns ``count`` worker
    threads that dial the listener — a single-command demo that still
    exercises real sockets.  With ``self_hosted=False`` it only *accepts*
    ``count`` external connections (workers started elsewhere with
    ``repro-cli ingest-worker --connect host:port``).
    """

    name = "tcp"

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 self_hosted: bool = True, accept_timeout: float | None = 60.0) -> None:
        super().__init__()
        self.host = host
        self.port = port
        self.self_hosted = self_hosted
        self.accept_timeout = accept_timeout
        self._threads: list[threading.Thread] = []
        self._listener: socket.socket | None = None

    def launch(self, worker_fn: WorkerFn, count: int) -> list[Channel]:
        listener = socket.create_server((self.host, self.port), backlog=count)
        listener.settimeout(self.accept_timeout)
        self._listener = listener
        self.port = listener.getsockname()[1]
        if self.self_hosted:
            for index in range(count):
                thread = threading.Thread(
                    target=self._dial_and_run,
                    args=(worker_fn,),
                    name=f"ingest-worker-{index}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)
        try:
            for _ in range(count):
                connection, _ = listener.accept()
                self._channels.append(SocketChannel(connection))
        finally:
            # Always release the bound port — a timeout waiting for external
            # workers must not leak the listener (close() only knows about
            # accepted channels).
            listener.close()
            self._listener = None
        return list(self._channels)

    def _dial_and_run(self, worker_fn: WorkerFn) -> None:
        _run_worker(worker_fn, connect_worker(self.host, self.port))

    def join(self, timeout: float | None = None) -> None:
        for thread in self._threads:
            thread.join(timeout)


def create_transport(name: str, **kwargs) -> Transport:
    """Build a transport backend by registry name (``inproc``/``pipe``/``tcp``)."""
    if name == "inproc":
        return InprocTransport(**kwargs)
    if name == "pipe":
        return PipeTransport(**kwargs)
    if name == "tcp":
        return TcpTransport(**kwargs)
    raise ValueError(
        f"unknown transport {name!r}; expected one of {', '.join(TRANSPORT_NAMES)}"
    )

"""Distributed ingest over pluggable transports.

This package turns the shard/merge subsystem of PR 2 into a deployable
pipeline: ``N`` worker nodes each own a shard-local sketch, consume
:class:`~repro.hashing.EncodedKeyBatch` chunks over a pluggable transport,
and a collector tree-merges the workers' state snapshots into one sketch —
bit-identical to single-node ingest for every exactly-mergeable family
(CM, Count) and within CU's documented upper-bound merge semantics.

Three cooperating layers:

* :mod:`repro.distributed.wire` — versioned, length-prefixed serialization
  of key batches and sketch table state.  Batch frames carry the packed
  per-key encodings of the batch datapath, so a decoded batch enters the
  receiving sketch's ``insert_batch`` without re-encoding a single key.
* :mod:`repro.distributed.transport` — one :class:`Transport` protocol with
  three backends: ``inproc`` (queue pair, worker threads), ``pipe``
  (``multiprocessing`` pipes + processes) and ``tcp`` (length-prefixed
  frames over sockets).  The ingest logic never branches on the backend.
* :mod:`repro.distributed.ingest` — the transport-agnostic worker loop and
  the coordinator/collector.  The coordinator reuses the *same* partition
  hash as :class:`~repro.sketches.sharded.ShardedSketch`
  (``partition_router``), so key->worker placement is identical to local
  sharding: each key's whole history reaches one worker in stream order,
  which keeps remote ingest exact even for order-dependent families.

PR 8 adds the **dynamic** layer on top: partition-grained ownership behind
an epoch-versioned router (:class:`~repro.sketches.sharded.EpochRouter`),
live resharding (split/merge/add/remove under ingest via epoch-fenced
state handoff), worker-failure recovery (heartbeats, snapshot+journal
restore onto survivors, exact lost-window reporting), credit-based flow
control on routed batches, and a deterministic fault-injection harness
(:mod:`repro.distributed.fault`) that the chaos/property suites drive.

See ``docs/architecture.md`` for the full deployment picture.
"""

from repro.distributed.fault import (
    ChannelFault,
    FaultInjectingChannel,
    FaultInjectingTransport,
    FaultPlan,
)
from repro.distributed.ingest import (
    DistributedIngestResult,
    DynamicIngestCoordinator,
    DynamicIngestResult,
    DynamicWorkerConfig,
    IngestCoordinator,
    RecoveryReport,
    WorkerConfig,
    dynamic_worker_main,
    run_distributed_ingest,
    run_dynamic_ingest,
    tree_merge,
    worker_main,
)
from repro.distributed.transport import (
    TRANSPORT_NAMES,
    Channel,
    InprocTransport,
    PipeTransport,
    TcpTransport,
    create_transport,
)
from repro.distributed.wire import (
    WIRE_VERSION,
    WireFormatError,
    decode_batch,
    decode_config,
    decode_frame,
    decode_state,
    encode_batch,
    encode_config,
    encode_frame,
    encode_state,
)

__all__ = [
    "Channel",
    "ChannelFault",
    "DistributedIngestResult",
    "DynamicIngestCoordinator",
    "DynamicIngestResult",
    "DynamicWorkerConfig",
    "FaultInjectingChannel",
    "FaultInjectingTransport",
    "FaultPlan",
    "IngestCoordinator",
    "RecoveryReport",
    "InprocTransport",
    "PipeTransport",
    "TcpTransport",
    "TRANSPORT_NAMES",
    "WIRE_VERSION",
    "WireFormatError",
    "WorkerConfig",
    "create_transport",
    "decode_batch",
    "decode_config",
    "decode_frame",
    "decode_state",
    "dynamic_worker_main",
    "encode_batch",
    "encode_config",
    "encode_frame",
    "encode_state",
    "run_distributed_ingest",
    "run_dynamic_ingest",
    "tree_merge",
    "worker_main",
]

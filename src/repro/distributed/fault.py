"""Deterministic fault injection for distributed-ingest channels.

The chaos/property suites of the dynamic ingest protocol need faults that
are *repeatable*: the same seed must produce the same drop/delay/kill
schedule on every run, on every transport.  This module is that harness —
a first-class library, not test-local scaffolding:

* :class:`FaultPlan` declares a schedule in terms of frame *counters*
  (kill after N sends, drop send #k, delay every recv), plus seeded
  probabilistic drops.  Counters, not wall clocks, are what make the
  schedule deterministic under arbitrary scheduler timing.
* :class:`FaultInjectingChannel` wraps any :class:`~repro.distributed.transport.Channel`
  and applies a plan.  A *kill* closes the underlying channel — the peer
  observes a real EOF (thread workers drain, process workers exit), and the
  wrapping side sees ``ChannelFault`` on send / ``None`` on recv, exactly
  the signals a coordinator's failure detector watches for.
* :class:`FaultInjectingTransport` wraps a whole transport backend and
  applies per-worker plans by launch index, so a chaos test can say "run a
  normal tcp fleet, but worker 1's link dies after 7 frames".

Every decision the harness makes is recorded (``sends``, ``recvs``,
``dropped_sends``, ``killed``), so a test can assert the schedule fired as
planned before asserting what the protocol did about it.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.distributed.transport import Channel, Transport, WorkerFn
from repro.distributed.wire import WireFormatError


class ChannelFault(WireFormatError):
    """A fault-injected channel refused an operation (it is dead).

    Subclasses :class:`WireFormatError` so coordinator-side failure
    detection treats an injected link death exactly like a real closed
    channel — callers never special-case the harness.
    """


@dataclass(frozen=True)
class FaultPlan:
    """One channel's deterministic fault schedule.

    All counters are 0-based frame indices *as seen by the wrapped side*.
    ``None`` disables a fault.  The probabilistic drop draws from
    ``random.Random(seed)`` once per send, in send order — same seed, same
    coin flips, every run.
    """

    #: The channel dies immediately after this many successful sends.
    kill_after_sends: int | None = None
    #: The channel dies immediately after this many successful recvs.
    kill_after_recvs: int | None = None
    #: Send indices to drop silently (sender believes the frame went out).
    drop_sends: frozenset[int] = field(default_factory=frozenset)
    #: Seeded per-send drop probability (0.0 = never).
    drop_send_probability: float = 0.0
    #: Deterministic pacing: sleep this long before every send / recv.
    delay_send_seconds: float = 0.0
    delay_recv_seconds: float = 0.0
    #: Seed of the per-channel RNG behind the probabilistic faults.
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_send_probability <= 1.0:
            raise ValueError("drop_send_probability must be in [0, 1]")
        if self.delay_send_seconds < 0 or self.delay_recv_seconds < 0:
            raise ValueError("fault delays must be non-negative")


class FaultInjectingChannel(Channel):
    """A :class:`Channel` decorator executing a :class:`FaultPlan`.

    Byte counters (``bytes_sent``/``bytes_received``) track what the wrapped
    side *observed* — dropped frames still count as sent, because the sender
    cannot tell; the divergence from the peer's receive counter is exactly
    the injected loss.
    """

    def __init__(self, inner: Channel, plan: FaultPlan | None = None) -> None:
        super().__init__()
        self.inner = inner
        self.plan = plan or FaultPlan()
        self.sends = 0
        self.recvs = 0
        self.dropped_sends: list[int] = []
        self.killed = False
        self._rng = random.Random(self.plan.seed)

    # -- schedule execution -------------------------------------------------

    def _kill(self) -> None:
        """Take the channel down: the peer sees EOF, this side sees faults."""
        if not self.killed:
            self.killed = True
            self.inner.close()

    def _check_dead(self) -> None:
        if self.killed:
            raise ChannelFault("send on a fault-killed channel")

    def send(self, frame: bytes) -> None:
        self._check_dead()
        if self.plan.delay_send_seconds:
            time.sleep(self.plan.delay_send_seconds)
        index = self.sends
        self.sends += 1
        dropped = index in self.plan.drop_sends or (
            self.plan.drop_send_probability > 0.0
            and self._rng.random() < self.plan.drop_send_probability
        )
        self.bytes_sent += len(frame)
        if not dropped:
            self.inner.send(frame)
        else:
            self.dropped_sends.append(index)
        if (
            self.plan.kill_after_sends is not None
            and self.sends >= self.plan.kill_after_sends
        ):
            self._kill()

    def recv(self, timeout: float | None = None) -> bytes | None:
        if self.killed:
            return None
        if self.plan.delay_recv_seconds:
            time.sleep(self.plan.delay_recv_seconds)
        frame = self.inner.recv(timeout=timeout)
        if frame is None:
            return None
        self.recvs += 1
        self.bytes_received += len(frame)
        if (
            self.plan.kill_after_recvs is not None
            and self.recvs >= self.plan.kill_after_recvs
        ):
            self._kill()
        return frame

    def close(self) -> None:
        self.inner.close()


class FaultInjectingTransport(Transport):
    """Wrap a transport backend, fault-injecting selected worker channels.

    ``plans`` maps a worker's launch index (0-based, cumulative across
    ``launch`` calls — the same index the coordinator uses as the worker id)
    to its :class:`FaultPlan`.  Unlisted workers get a clean pass-through
    wrapper, so counters stay comparable across the fleet.
    """

    def __init__(self, inner: Transport, plans: dict[int, FaultPlan] | None = None) -> None:
        super().__init__()
        self.inner = inner
        self.plans = dict(plans or {})
        self.name = f"faulty+{inner.name}"
        self._launched = 0

    def launch(self, worker_fn: WorkerFn, count: int) -> list[Channel]:
        raw = self.inner.launch(worker_fn, count)
        # Transports return the *cumulative* channel list; wrap only the new
        # tail so a channel keeps one wrapper (and one schedule) for life.
        for channel in raw[self._launched :]:
            plan = self.plans.get(self._launched)
            self._channels.append(FaultInjectingChannel(channel, plan))
            self._launched += 1
        return list(self._channels)

    def join(self, timeout: float | None = None) -> None:
        self.inner.join(timeout)

    def close(self) -> None:
        super().close()
        self.inner.close()

"""Wire format of the distributed-ingest subsystem.

Every message is one *frame*::

    +-------+---------+----------+-------------+----------------+
    | magic | version | msg type | payload len |    payload     |
    |  2 B  |   1 B   |   1 B    |  4 B (BE)   | payload-len B  |
    +-------+---------+----------+-------------+----------------+

The header is fixed-size and length-prefixed, so stream transports (TCP)
can delimit frames without scanning, and message transports (queues,
pipes) just carry whole frames.  The version byte is checked on every
decode; a mismatch raises :class:`WireFormatError` instead of guessing.

Two payload families do the real work:

* **Batch payloads** (:func:`encode_batch` / :func:`decode_batch`) carry a
  chunk of the key/value stream.  They reuse the packed per-key encodings of
  the batch datapath (``EncodedKeyBatch.encoded`` — the ``key_to_bytes``
  forms, which are reversible given a one-byte type tag), so the decoder
  rebuilds an :class:`~repro.hashing.EncodedKeyBatch` *without re-encoding a
  single key*.  Batches of small non-negative ints (the paper's 32-bit flow
  IDs) take a denser vectorized path: one ``uint32`` array, no per-key work
  on either side.
* **State payloads** (:func:`encode_state` / :func:`decode_state`) carry a
  sketch's table state (the :meth:`~repro.sketches.base.Sketch.state_snapshot`
  arrays) as a JSON header plus raw C-order array bytes — the collector
  restores them into a structurally identical replica and merges.

The format is deliberately self-contained (no pickle): a frame's bytes mean
the same thing on every platform, and a malformed frame fails loudly.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.hashing import EncodedKeyBatch
from repro.hashing.families import (
    KEY_TAG_BYTES,
    KEY_TAG_INT,
    KEY_TAG_STR,
    decode_zigzag_int,
)

MAGIC = b"RS"
#: Bump on any incompatible layout change; decoders reject other versions.
#: v2: MSG_QUERY_REPLY carries a status byte (OK / BUSY back-pressure).
#: v3: the dynamic-ingest frames — HEARTBEAT/HEARTBEAT_ACK (liveness),
#: HANDOFF/HANDOFF_ACK (epoch-fenced partition migration), CREDIT
#: (flow control) and ROUTED_BATCH (per-partition, epoch-stamped data);
#: MSG_SNAPSHOT_REQUEST optionally carries a per-partition body.
WIRE_VERSION = 3

#: Upper bound on a single frame's payload.  Nothing legitimate comes close
#: (the largest payloads are sketch-state snapshots, a few MiB at paper
#: budgets); a declared length beyond this is a hostile or corrupt header,
#: and rejecting it here means no server ever allocates buffers for it.
MAX_PAYLOAD_BYTES = 64 * 1024 * 1024

_FRAME_HEADER = struct.Struct(">2sBBI")
FRAME_HEADER_SIZE = _FRAME_HEADER.size  # 8 bytes

# Message types.
MSG_CONFIG = 1  # collector -> worker: WorkerConfig JSON
MSG_BATCH = 2  # collector -> worker: one routed key/value chunk
MSG_SNAPSHOT_REQUEST = 3  # collector -> worker: send your state
MSG_SNAPSHOT = 4  # worker -> collector: sketch state + ingest stats
MSG_SHUTDOWN = 5  # collector -> worker: drain and exit
MSG_QUERY = 6  # client -> server: one query request (serving layer)
MSG_QUERY_REPLY = 7  # server -> client: the epoch-stamped answer
MSG_HEARTBEAT = 8  # coordinator -> worker: liveness probe (seq, epoch)
MSG_HEARTBEAT_ACK = 9  # worker -> coordinator: echo + ingest stats
MSG_HANDOFF = 10  # coordinator -> worker: install one partition's state
MSG_HANDOFF_ACK = 11  # worker -> coordinator: partition installed at epoch
MSG_CREDIT = 12  # worker -> coordinator: return flow-control credits
MSG_ROUTED_BATCH = 13  # coordinator -> worker: epoch-fenced partition chunk

_MESSAGE_TYPES = frozenset(
    {
        MSG_CONFIG,
        MSG_BATCH,
        MSG_SNAPSHOT_REQUEST,
        MSG_SNAPSHOT,
        MSG_SHUTDOWN,
        MSG_QUERY,
        MSG_QUERY_REPLY,
        MSG_HEARTBEAT,
        MSG_HEARTBEAT_ACK,
        MSG_HANDOFF,
        MSG_HANDOFF_ACK,
        MSG_CREDIT,
        MSG_ROUTED_BATCH,
    }
)

# Request kinds of the serving layer's MSG_QUERY / MSG_QUERY_REPLY payloads.
QUERY_KEYS = 0  # batch point estimates for an explicit key list
QUERY_TOP_K = 1  # the k heaviest keys of the service's directory
QUERY_STATS = 2  # service counters as JSON
QUERY_FLUSH = 3  # force an epoch publish; reply carries the new epoch id

_QUERY_KINDS = frozenset({QUERY_KEYS, QUERY_TOP_K, QUERY_STATS, QUERY_FLUSH})

# Status byte of a MSG_QUERY_REPLY (wire v2).  BUSY is the typed
# back-pressure signal of the async front end: the request was *not*
# served (the global in-flight bound was hit) and carries no body — the
# client may retry.  The reply still echoes the request id and kind, so
# pipelined clients keep their in-order bookkeeping.  EPOCH_GONE is the
# temporal layer's typed rejection of a pinned-epoch (or windowed) read
# whose epoch the ring has evicted: like BUSY it carries no body, but
# unlike BUSY the request can *never* succeed by retrying — clients must
# raise, not back off (``epoch_id`` echoes the requested epoch).
STATUS_OK = 0
STATUS_BUSY = 1
STATUS_EPOCH_GONE = 2

_QUERY_STATUSES = frozenset({STATUS_OK, STATUS_BUSY, STATUS_EPOCH_GONE})

#: Reply statuses that carry no body (the request was not answered).
_BODYLESS_STATUSES = frozenset({STATUS_BUSY, STATUS_EPOCH_GONE})

# Key-block modes of a batch payload.
_KEYS_INT32 = 0  # all keys are ints in [0, 2^31): one uint32 array
_KEYS_TAGGED = 1  # per-key type tag + length + key_to_bytes encoding

# Per-key type tags of the tagged mode — the reversible key codec of
# ``repro.hashing.families`` is the single source of the tag assignment,
# shared with sketch snapshots (``keys_to_arrays``).
_TAG_INT = KEY_TAG_INT
_TAG_STR = KEY_TAG_STR
_TAG_BYTES = KEY_TAG_BYTES

# Value-block modes of a batch payload.
_VALUES_ONES = 0  # every value is 1 (the paper's frequency streams)
_VALUES_UNIFORM = 1  # one shared int64
_VALUES_ARRAY = 2  # one int64 per key


class WireFormatError(ValueError):
    """A frame or payload violates the wire format (or its version)."""


def encode_frame(msg_type: int, payload: bytes = b"") -> bytes:
    """Wrap ``payload`` in a versioned, length-prefixed frame."""
    if msg_type not in _MESSAGE_TYPES:
        raise WireFormatError(f"unknown message type {msg_type}")
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise WireFormatError(
            f"payload of {len(payload)} bytes exceeds the {MAX_PAYLOAD_BYTES}-byte bound"
        )
    return _FRAME_HEADER.pack(MAGIC, WIRE_VERSION, msg_type, len(payload)) + payload


def parse_frame_header(header: bytes) -> tuple[int, int]:
    """Validate a frame header and return ``(msg_type, payload_length)``."""
    if len(header) != FRAME_HEADER_SIZE:
        raise WireFormatError(
            f"frame header must be {FRAME_HEADER_SIZE} bytes, got {len(header)}"
        )
    magic, version, msg_type, payload_length = _FRAME_HEADER.unpack(header)
    if magic != MAGIC:
        raise WireFormatError(f"bad frame magic {magic!r}")
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"unsupported wire version {version} (expected {WIRE_VERSION})"
        )
    if msg_type not in _MESSAGE_TYPES:
        raise WireFormatError(f"unknown message type {msg_type}")
    if payload_length > MAX_PAYLOAD_BYTES:
        # A hostile or corrupt header must never make a server allocate (or
        # wait for) an absurd payload — fail at the header, before any read.
        raise WireFormatError(
            f"declared payload of {payload_length} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte bound"
        )
    return msg_type, payload_length


def decode_frame(frame: bytes) -> tuple[int, bytes]:
    """Split one whole frame into ``(msg_type, payload)``."""
    msg_type, payload_length = parse_frame_header(frame[:FRAME_HEADER_SIZE])
    payload = frame[FRAME_HEADER_SIZE:]
    if len(payload) != payload_length:
        raise WireFormatError(
            f"frame payload is {len(payload)} bytes, header promised {payload_length}"
        )
    return msg_type, payload


# ---------------------------------------------------------------------------
# Batch payloads


def _append_key_block(parts: list[bytes], batch: EncodedKeyBatch) -> None:
    """Append the key block of ``batch`` (mode byte + packed keys) to ``parts``.

    Shared by batch payloads and the serving layer's query frames, so every
    frame family ships keys in the same packed encodings.
    """
    count = len(batch)
    if all(type(key) is int and 0 <= key < 2**31 for key in batch.keys):
        parts.append(bytes([_KEYS_INT32]))
        parts.append(np.asarray(batch.keys, dtype="<u4").tobytes())
    else:
        # Tag before touching the encodings: an unsupported key type must
        # surface as a WireFormatError, not a hashing-layer TypeError.
        tags = bytearray(count)
        for position, key in enumerate(batch.keys):
            if isinstance(key, bytes):
                tags[position] = _TAG_BYTES
            elif isinstance(key, str):
                tags[position] = _TAG_STR
            elif isinstance(key, int):
                tags[position] = _TAG_INT
            else:
                raise WireFormatError(f"unsupported key type: {type(key)!r}")
        encoded = batch.encoded
        lengths = np.fromiter(
            (len(blob) for blob in encoded), dtype="<u4", count=count
        )
        parts.append(bytes([_KEYS_TAGGED]))
        parts.append(bytes(tags))
        parts.append(lengths.tobytes())
        parts.append(b"".join(encoded))


def _read_key_block(read, count: int) -> EncodedKeyBatch:
    """Inverse of :func:`_append_key_block` over a payload ``read`` cursor."""
    key_mode = read(1)[0]
    if key_mode == _KEYS_INT32:
        raw = np.frombuffer(read(4 * count), dtype="<u4")
        # tolist() materialises Python ints in one C-level pass — this mode
        # stays free of per-key Python work on both sides.
        return EncodedKeyBatch(raw.tolist())
    if key_mode == _KEYS_TAGGED:
        tags = read(count)
        lengths = np.frombuffer(read(4 * count), dtype="<u4")
        blob = read(int(lengths.sum()))
        keys: list[object] = []
        encoded: list[bytes] = []
        position = 0
        for tag, length in zip(tags, lengths):
            piece = blob[position : position + int(length)]
            position += int(length)
            encoded.append(piece)
            if tag == _TAG_BYTES:
                keys.append(piece)
            elif tag == _TAG_STR:
                try:
                    keys.append(piece.decode("utf-8"))
                except UnicodeDecodeError as error:
                    raise WireFormatError(f"malformed str key: {error}") from None
            elif tag == _TAG_INT:
                keys.append(decode_zigzag_int(piece))
            else:
                raise WireFormatError(f"unknown key tag {tag}")
        return EncodedKeyBatch(keys, _encoded=encoded)
    raise WireFormatError(f"unknown key mode {key_mode}")


def _payload_reader(payload: bytes):
    """A bounds-checked ``read(size)`` cursor plus its position probe."""
    offset = 0

    def read(size: int) -> bytes:
        nonlocal offset
        blob = payload[offset : offset + size]
        if len(blob) != size:
            raise WireFormatError("truncated payload")
        offset += size
        return blob

    def position() -> int:
        return offset

    return read, position


def encode_batch(
    keys: Sequence[object], values: Sequence[int] | np.ndarray | int | None = None
) -> bytes:
    """Serialize a key/value chunk into a ``MSG_BATCH`` payload.

    ``keys`` may be a plain sequence or an :class:`EncodedKeyBatch`; passing
    a batch whose encodings are already materialised (e.g. a routed
    sub-batch) reuses them instead of re-encoding.  Stream order is
    preserved — decode returns the keys in exactly this order, which is what
    keeps remote ingest exact for order-dependent sketches.
    """
    batch = keys if isinstance(keys, EncodedKeyBatch) else EncodedKeyBatch(keys)
    count = len(batch)
    parts = [struct.pack(">I", count)]
    _append_key_block(parts, batch)

    if values is None:
        parts.append(bytes([_VALUES_ONES]))
    elif isinstance(values, int):
        parts.append(bytes([_VALUES_UNIFORM]) + struct.pack(">q", values))
    else:
        value_array = np.asarray(values, dtype=np.int64)
        if value_array.shape != (count,):
            raise WireFormatError("values must match the number of keys")
        if count and (value_array == value_array[0]).all():
            # Degenerate to the uniform mode (covers the all-ones frequency
            # streams of the paper): 8 bytes instead of 8 per key.
            parts.append(bytes([_VALUES_UNIFORM]) + struct.pack(">q", int(value_array[0])))
        else:
            parts.append(bytes([_VALUES_ARRAY]) + value_array.astype("<i8").tobytes())
    return b"".join(parts)


def decode_batch(payload: bytes) -> tuple[EncodedKeyBatch, np.ndarray]:
    """Inverse of :func:`encode_batch`: ``(EncodedKeyBatch, int64 values)``.

    In the tagged mode the returned batch is seeded with the transmitted
    per-key encodings, so the receiving sketch's hash kernels pack them
    straight into matrices — the encoding work of the batch datapath is paid
    once at the sender, never again.
    """
    read, position = _payload_reader(payload)
    (count,) = struct.unpack(">I", read(4))
    batch = _read_key_block(read, count)

    value_mode = read(1)[0]
    if value_mode == _VALUES_ONES:
        values = np.ones(count, dtype=np.int64)
    elif value_mode == _VALUES_UNIFORM:
        (value,) = struct.unpack(">q", read(8))
        values = np.full(count, value, dtype=np.int64)
    elif value_mode == _VALUES_ARRAY:
        values = np.frombuffer(read(8 * count), dtype="<i8").astype(np.int64)
    else:
        raise WireFormatError(f"unknown value mode {value_mode}")
    if position() != len(payload):
        raise WireFormatError("trailing bytes after batch payload")
    return batch, values


# ---------------------------------------------------------------------------
# Sketch-state payloads


def encode_state(
    state: dict[str, np.ndarray], algorithm: str, meta: dict | None = None
) -> bytes:
    """Serialize a ``state_snapshot()`` dict into a ``MSG_SNAPSHOT`` payload.

    ``algorithm`` names the registry entry the snapshot came from (the
    collector validates it restores into the same family), ``meta`` carries
    small JSON-serializable ingest stats (item counts, timings).
    """
    arrays = []
    blobs = []
    for name, array in state.items():
        array = np.ascontiguousarray(array)
        arrays.append({"name": name, "dtype": array.dtype.str, "shape": list(array.shape)})
        blobs.append(array.tobytes())
    header = json.dumps(
        {"algorithm": algorithm, "arrays": arrays, "meta": meta or {}}
    ).encode("utf-8")
    return struct.pack(">I", len(header)) + header + b"".join(blobs)


def decode_state(payload: bytes) -> tuple[dict[str, np.ndarray], str, dict]:
    """Inverse of :func:`encode_state`: ``(state, algorithm, meta)``."""
    if len(payload) < 4:
        raise WireFormatError("truncated state payload")
    (header_length,) = struct.unpack(">I", payload[:4])
    header_end = 4 + header_length
    if len(payload) < header_end:
        raise WireFormatError("truncated state header")
    try:
        header = json.loads(payload[4:header_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireFormatError(f"malformed state header: {error}") from None
    state: dict[str, np.ndarray] = {}
    offset = header_end
    try:
        algorithm = header["algorithm"]
        meta = header["meta"]
        entries = [
            (entry["name"], np.dtype(entry["dtype"]), tuple(entry["shape"]))
            for entry in header["arrays"]
        ]
    except (KeyError, TypeError, ValueError) as error:
        # Structurally invalid headers (missing keys, bogus dtypes) must
        # honour the module contract: WireFormatError, never a raw escape.
        raise WireFormatError(f"invalid state header: {error!r}") from None
    for name, dtype, shape in entries:
        size = dtype.itemsize * int(np.prod(shape, dtype=np.int64)) if shape else dtype.itemsize
        blob = payload[offset : offset + size]
        if len(blob) != size:
            raise WireFormatError(f"truncated array {name!r}")
        offset += size
        state[name] = np.frombuffer(blob, dtype=dtype).reshape(shape).copy()
    if offset != len(payload):
        raise WireFormatError("trailing bytes after state payload")
    return state, algorithm, meta


# ---------------------------------------------------------------------------
# Config payloads


def encode_config(config: dict) -> bytes:
    """Serialize a worker-configuration dict (JSON, UTF-8)."""
    return json.dumps(config).encode("utf-8")


def decode_config(payload: bytes) -> dict:
    """Inverse of :func:`encode_config`."""
    try:
        config = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireFormatError(f"malformed config payload: {error}") from None
    if not isinstance(config, dict):
        raise WireFormatError("config payload must be a JSON object")
    return config


# ---------------------------------------------------------------------------
# Dynamic-ingest payloads (live resharding / fault tolerance)
#
# Every frame of the dynamic protocol is *epoch-fenced*: it carries the
# routing epoch the sender believed in.  Decoders accept an optional
# ``expected_epoch``; a mismatch raises :class:`WireFormatError` — a stale
# frame (routed before an epoch flip) must never be applied silently, which
# is what keeps at-most-once delivery provable under fault injection.

_HEARTBEAT = struct.Struct(">II")  # seq, epoch
_HEARTBEAT_ACK = struct.Struct(">IIQI")  # seq, epoch, items, stale_dropped
_CREDIT = struct.Struct(">II")  # epoch, amount
_ROUTED_HEADER = struct.Struct(">II")  # epoch, partition
_HANDOFF_HEADER = struct.Struct(">II")  # epoch, partition
_HANDOFF_ACK = struct.Struct(">II")  # epoch, partition
_SNAPSHOT_REQUEST = struct.Struct(">IIB")  # epoch, partition, release flag


def _check_epoch(epoch: int, expected_epoch: int | None, what: str) -> None:
    if expected_epoch is not None and epoch != expected_epoch:
        raise WireFormatError(
            f"{what} is fenced at epoch {epoch}, expected epoch {expected_epoch}"
        )


def _unpack_exact(layout: struct.Struct, payload: bytes, what: str) -> tuple:
    """Unpack a fixed-layout payload, rejecting truncation and trailing bytes."""
    if len(payload) != layout.size:
        raise WireFormatError(
            f"{what} payload must be {layout.size} bytes, got {len(payload)}"
        )
    return layout.unpack(payload)


def encode_heartbeat(seq: int, epoch: int) -> bytes:
    """Serialize a coordinator liveness probe (``MSG_HEARTBEAT``)."""
    try:
        return _HEARTBEAT.pack(seq, epoch)
    except struct.error as error:
        raise WireFormatError(f"invalid heartbeat fields: {error}") from None


def decode_heartbeat(payload: bytes, expected_epoch: int | None = None) -> tuple[int, int]:
    """Inverse of :func:`encode_heartbeat`: ``(seq, epoch)``."""
    seq, epoch = _unpack_exact(_HEARTBEAT, payload, "heartbeat")
    _check_epoch(epoch, expected_epoch, "heartbeat")
    return seq, epoch


def encode_heartbeat_ack(seq: int, epoch: int, items: int, stale_dropped: int = 0) -> bytes:
    """Serialize a worker's heartbeat echo (``MSG_HEARTBEAT_ACK``).

    ``items`` is the worker's total applied item count, ``stale_dropped`` how
    many epoch-fenced frames it rejected — both ride along so every liveness
    round doubles as a cheap accounting probe.
    """
    try:
        return _HEARTBEAT_ACK.pack(seq, epoch, items, stale_dropped)
    except struct.error as error:
        raise WireFormatError(f"invalid heartbeat-ack fields: {error}") from None


def decode_heartbeat_ack(
    payload: bytes, expected_epoch: int | None = None
) -> tuple[int, int, int, int]:
    """Inverse of :func:`encode_heartbeat_ack`: ``(seq, epoch, items, stale_dropped)``."""
    seq, epoch, items, stale_dropped = _unpack_exact(
        _HEARTBEAT_ACK, payload, "heartbeat ack"
    )
    _check_epoch(epoch, expected_epoch, "heartbeat ack")
    return seq, epoch, items, stale_dropped


def encode_credit(epoch: int, amount: int) -> bytes:
    """Serialize a flow-control credit grant (``MSG_CREDIT``).

    A worker returns one credit per applied (or deliberately rejected)
    ``MSG_ROUTED_BATCH`` frame; the coordinator never has more than the
    credit limit outstanding, which is the bounded-queue guarantee.
    """
    if amount <= 0:
        raise WireFormatError("credit amount must be positive")
    try:
        return _CREDIT.pack(epoch, amount)
    except struct.error as error:
        raise WireFormatError(f"invalid credit fields: {error}") from None


def decode_credit(payload: bytes) -> tuple[int, int]:
    """Inverse of :func:`encode_credit`: ``(epoch, amount)``.

    Credits are deliberately *not* epoch-fenced on decode: a credit returned
    for a pre-flip batch still frees a real send slot.
    """
    epoch, amount = _unpack_exact(_CREDIT, payload, "credit")
    if amount <= 0:
        raise WireFormatError("credit amount must be positive")
    return epoch, amount


def encode_routed_batch(
    epoch: int,
    partition: int,
    keys: Sequence[object],
    values: Sequence[int] | np.ndarray | int | None = None,
) -> bytes:
    """Serialize an epoch-fenced per-partition chunk (``MSG_ROUTED_BATCH``).

    The body after the 8-byte fence header is exactly an
    :func:`encode_batch` payload, so routed frames reuse the packed key
    encodings of the batch datapath unchanged.
    """
    try:
        header = _ROUTED_HEADER.pack(epoch, partition)
    except struct.error as error:
        raise WireFormatError(f"invalid routed-batch fields: {error}") from None
    return header + encode_batch(keys, values)


def decode_routed_batch(
    payload: bytes, expected_epoch: int | None = None
) -> tuple[int, int, EncodedKeyBatch, np.ndarray]:
    """Inverse of :func:`encode_routed_batch`: ``(epoch, partition, batch, values)``."""
    if len(payload) < _ROUTED_HEADER.size:
        raise WireFormatError("truncated routed-batch payload")
    epoch, partition = _ROUTED_HEADER.unpack(payload[: _ROUTED_HEADER.size])
    _check_epoch(epoch, expected_epoch, "routed batch")
    batch, values = decode_batch(payload[_ROUTED_HEADER.size :])
    return epoch, partition, batch, values


def encode_handoff(
    epoch: int,
    partition: int,
    state: dict[str, np.ndarray],
    algorithm: str,
    meta: dict | None = None,
) -> bytes:
    """Serialize a partition-state migration (``MSG_HANDOFF``).

    ``epoch`` is the *new* routing epoch the receiver must adopt; the body
    after the fence header is an :func:`encode_state` payload, so handoff
    reuses the existing sketch-state frames wholesale.
    """
    try:
        header = _HANDOFF_HEADER.pack(epoch, partition)
    except struct.error as error:
        raise WireFormatError(f"invalid handoff fields: {error}") from None
    return header + encode_state(state, algorithm, meta)


def decode_handoff(
    payload: bytes, expected_epoch: int | None = None
) -> tuple[int, int, dict[str, np.ndarray], str, dict]:
    """Inverse of :func:`encode_handoff`: ``(epoch, partition, state, algorithm, meta)``."""
    if len(payload) < _HANDOFF_HEADER.size:
        raise WireFormatError("truncated handoff payload")
    epoch, partition = _HANDOFF_HEADER.unpack(payload[: _HANDOFF_HEADER.size])
    _check_epoch(epoch, expected_epoch, "handoff")
    state, algorithm, meta = decode_state(payload[_HANDOFF_HEADER.size :])
    return epoch, partition, state, algorithm, meta


def encode_handoff_ack(epoch: int, partition: int) -> bytes:
    """Serialize the receiver's installation acknowledgement (``MSG_HANDOFF_ACK``)."""
    try:
        return _HANDOFF_ACK.pack(epoch, partition)
    except struct.error as error:
        raise WireFormatError(f"invalid handoff-ack fields: {error}") from None


def decode_handoff_ack(
    payload: bytes, expected_epoch: int | None = None
) -> tuple[int, int]:
    """Inverse of :func:`encode_handoff_ack`: ``(epoch, partition)``."""
    epoch, partition = _unpack_exact(_HANDOFF_ACK, payload, "handoff ack")
    _check_epoch(epoch, expected_epoch, "handoff ack")
    return epoch, partition


def encode_snapshot_request(epoch: int, partition: int, release: bool = False) -> bytes:
    """Serialize a per-partition snapshot request body (dynamic protocol).

    The static protocol sends ``MSG_SNAPSHOT_REQUEST`` with an empty payload
    ("snapshot your whole shard"); the dynamic protocol names a partition.
    ``release=True`` additionally tells the owner to drop its copy once the
    snapshot is on the wire — the quiesce step of a handoff.
    """
    try:
        return _SNAPSHOT_REQUEST.pack(epoch, partition, 1 if release else 0)
    except struct.error as error:
        raise WireFormatError(f"invalid snapshot-request fields: {error}") from None


def decode_snapshot_request(
    payload: bytes, expected_epoch: int | None = None
) -> tuple[int, int, bool]:
    """Inverse of :func:`encode_snapshot_request`: ``(epoch, partition, release)``."""
    epoch, partition, release = _unpack_exact(
        _SNAPSHOT_REQUEST, payload, "snapshot request"
    )
    if release not in (0, 1):
        raise WireFormatError(f"invalid snapshot-request release flag {release}")
    _check_epoch(epoch, expected_epoch, "snapshot request")
    return epoch, partition, bool(release)


# ---------------------------------------------------------------------------
# Query payloads (the serving layer)


@dataclass(frozen=True)
class QueryRequest:
    """One decoded ``MSG_QUERY`` payload.

    ``keys`` is set for :data:`QUERY_KEYS` (an :class:`EncodedKeyBatch`
    carrying the transmitted packed encodings), ``k`` for
    :data:`QUERY_TOP_K`; :data:`QUERY_STATS` and :data:`QUERY_FLUSH` carry
    nothing but the request id.
    """

    request_id: int
    kind: int
    keys: EncodedKeyBatch | None = None
    k: int | None = None
    #: Pin the answer to a specific published epoch (temporal reads); the
    #: server resolves it against its epoch ring and replies
    #: :data:`STATUS_EPOCH_GONE` when evicted.  ``None`` = latest epoch.
    epoch: int | None = None
    #: Answer from the delta of the last ``window`` epochs instead of the
    #: cumulative sketch (subtractable families only).  ``None`` = cumulative.
    window: int | None = None


@dataclass(frozen=True)
class QueryResponse:
    """One decoded ``MSG_QUERY_REPLY`` payload.

    ``epoch_id`` stamps every answer with the epoch that produced it — the
    client-visible handle of snapshot isolation (two answers with the same
    epoch id came from the same frozen replica).  ``estimates`` is set for
    key and top-k queries, ``keys`` for top-k (the ranked keys, heaviest
    first), ``stats`` for stats requests.

    ``status`` is :data:`STATUS_OK` for a served answer.  A
    :data:`STATUS_BUSY` reply is the admission-control rejection of the
    async front end: the request was never executed, the reply carries no
    body, and the client may retry it.  A :data:`STATUS_EPOCH_GONE` reply
    rejects a pinned or windowed read whose epoch the ring has evicted —
    also bodyless, but retrying can never succeed; ``epoch_id`` echoes the
    epoch that was requested and is gone.
    """

    request_id: int
    kind: int
    epoch_id: int
    estimates: np.ndarray | None = None
    keys: EncodedKeyBatch | None = None
    stats: dict | None = None
    status: int = STATUS_OK


# Temporal extension of a MSG_QUERY payload: an optional trailing block
# (flags byte + fields) appended after the kind body.  Emitted *only* when a
# temporal field is set, so plain latest-epoch requests stay byte-identical
# to pre-temporal frames — a compatible extension within wire v3.
_TEMPORAL_EPOCH = 0x01  # + 8-byte BE epoch id: pin the answer to that epoch
_TEMPORAL_WINDOW = 0x02  # + 4-byte BE N: answer from the last-N-epochs delta


def _check_temporal_fields(kind: int, epoch: int | None, window: int | None) -> None:
    """Shared encode/decode validation of the temporal extension."""
    if epoch is not None and window is not None:
        raise WireFormatError("a query may pin an epoch or a window, not both")
    if epoch is not None:
        if kind not in (QUERY_KEYS, QUERY_TOP_K):
            raise WireFormatError("only key and top-k queries can pin an epoch")
        if epoch < 0:
            raise WireFormatError("pinned epoch must be non-negative")
    if window is not None:
        if kind != QUERY_KEYS:
            raise WireFormatError("only key queries can request a window")
        if window <= 0:
            raise WireFormatError("window must be a positive epoch count")


def encode_query_request(
    request_id: int,
    kind: int,
    keys: Sequence[object] | None = None,
    k: int | None = None,
    epoch: int | None = None,
    window: int | None = None,
) -> bytes:
    """Serialize a query request into a ``MSG_QUERY`` payload.

    Key lists ride the same packed key block as batch payloads, so a query
    for a million keys costs the sender no per-key Python work on the int
    fast path.  ``epoch`` pins the request to a specific published epoch,
    ``window`` asks for last-``N``-epochs estimates; either appends the
    temporal extension block — requests with neither are byte-identical to
    pre-temporal frames.
    """
    if kind not in _QUERY_KINDS:
        raise WireFormatError(f"unknown query kind {kind}")
    _check_temporal_fields(kind, epoch, window)
    parts = [struct.pack(">IB", request_id, kind)]
    if kind == QUERY_KEYS:
        if keys is None:
            raise WireFormatError("QUERY_KEYS requires a key list")
        batch = keys if isinstance(keys, EncodedKeyBatch) else EncodedKeyBatch(keys)
        parts.append(struct.pack(">I", len(batch)))
        _append_key_block(parts, batch)
    elif kind == QUERY_TOP_K:
        if k is None or k <= 0:
            raise WireFormatError("QUERY_TOP_K requires a positive k")
        parts.append(struct.pack(">I", k))
    if epoch is not None:
        parts.append(struct.pack(">BQ", _TEMPORAL_EPOCH, epoch))
    elif window is not None:
        parts.append(struct.pack(">BI", _TEMPORAL_WINDOW, window))
    return b"".join(parts)


def decode_query_request(payload: bytes) -> QueryRequest:
    """Inverse of :func:`encode_query_request`."""
    read, position = _payload_reader(payload)
    request_id, kind = struct.unpack(">IB", read(5))
    if kind not in _QUERY_KINDS:
        raise WireFormatError(f"unknown query kind {kind}")
    keys = None
    k = None
    if kind == QUERY_KEYS:
        (count,) = struct.unpack(">I", read(4))
        keys = _read_key_block(read, count)
    elif kind == QUERY_TOP_K:
        (k,) = struct.unpack(">I", read(4))
        if k <= 0:
            raise WireFormatError("QUERY_TOP_K requires a positive k")
    epoch = None
    window = None
    if position() != len(payload):
        # The temporal extension block (absent on plain latest-epoch frames).
        flags = read(1)[0]
        if flags == _TEMPORAL_EPOCH:
            (epoch,) = struct.unpack(">Q", read(8))
        elif flags == _TEMPORAL_WINDOW:
            (window,) = struct.unpack(">I", read(4))
        else:
            raise WireFormatError(f"unknown temporal extension flags {flags:#x}")
        _check_temporal_fields(kind, epoch, window)
    if position() != len(payload):
        raise WireFormatError("trailing bytes after query request")
    return QueryRequest(
        request_id=request_id, kind=kind, keys=keys, k=k, epoch=epoch, window=window
    )


def encode_query_response(
    request_id: int,
    kind: int,
    epoch_id: int,
    estimates: np.ndarray | Sequence[int] | None = None,
    keys: Sequence[object] | None = None,
    stats: dict | None = None,
    status: int = STATUS_OK,
) -> bytes:
    """Serialize an epoch-stamped answer into a ``MSG_QUERY_REPLY`` payload.

    A :data:`STATUS_BUSY` or :data:`STATUS_EPOCH_GONE` reply carries no body
    (the request was rejected, not answered), so ``estimates``/``keys``/
    ``stats`` must be omitted; an EPOCH_GONE reply echoes the requested
    epoch in ``epoch_id``.
    """
    if kind not in _QUERY_KINDS:
        raise WireFormatError(f"unknown query kind {kind}")
    if status not in _QUERY_STATUSES:
        raise WireFormatError(f"unknown reply status {status}")
    parts = [struct.pack(">IBBQ", request_id, kind, status, epoch_id)]
    if status in _BODYLESS_STATUSES:
        if estimates is not None or keys is not None or stats is not None:
            raise WireFormatError("a rejection reply must not carry a body")
        return b"".join(parts)
    if kind in (QUERY_KEYS, QUERY_TOP_K):
        if estimates is None:
            raise WireFormatError("key and top-k responses require estimates")
        estimate_array = np.asarray(estimates, dtype=np.int64)
        if estimate_array.ndim != 1:
            raise WireFormatError("estimates must be one-dimensional")
        parts.append(struct.pack(">I", len(estimate_array)))
        if kind == QUERY_TOP_K:
            if keys is None:
                raise WireFormatError("top-k responses require the ranked keys")
            batch = keys if isinstance(keys, EncodedKeyBatch) else EncodedKeyBatch(keys)
            if len(batch) != len(estimate_array):
                raise WireFormatError("top-k keys must match the estimates")
            _append_key_block(parts, batch)
        parts.append(estimate_array.astype("<i8").tobytes())
    elif kind == QUERY_STATS:
        if stats is None:
            raise WireFormatError("stats responses require a stats dict")
        parts.append(json.dumps(stats).encode("utf-8"))
    return b"".join(parts)


def decode_query_response(payload: bytes) -> QueryResponse:
    """Inverse of :func:`encode_query_response`."""
    read, position = _payload_reader(payload)
    request_id, kind, status, epoch_id = struct.unpack(">IBBQ", read(14))
    if kind not in _QUERY_KINDS:
        raise WireFormatError(f"unknown query kind {kind}")
    if status not in _QUERY_STATUSES:
        raise WireFormatError(f"unknown reply status {status}")
    estimates = None
    keys = None
    stats = None
    if status in _BODYLESS_STATUSES:
        if position() != len(payload):
            raise WireFormatError("trailing bytes after a rejection reply")
        return QueryResponse(
            request_id=request_id, kind=kind, epoch_id=epoch_id, status=status
        )
    if kind in (QUERY_KEYS, QUERY_TOP_K):
        (count,) = struct.unpack(">I", read(4))
        if kind == QUERY_TOP_K:
            keys = _read_key_block(read, count)
        estimates = np.frombuffer(read(8 * count), dtype="<i8").astype(np.int64)
    elif kind == QUERY_STATS:
        blob = payload[position():]
        read(len(blob))
        try:
            stats = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise WireFormatError(f"malformed stats payload: {error}") from None
        if not isinstance(stats, dict):
            raise WireFormatError("stats payload must be a JSON object")
    if position() != len(payload):
        raise WireFormatError("trailing bytes after query response")
    return QueryResponse(
        request_id=request_id,
        kind=kind,
        epoch_id=epoch_id,
        estimates=estimates,
        keys=keys,
        stats=stats,
        status=status,
    )

"""Transport-agnostic distributed ingest: worker loop, coordinator, collector.

The deployment shape mirrors the paper's distributed measurement points —
many ingest nodes, one collector, results merged centrally:

* The **coordinator** owns the stream.  It partitions every chunk with the
  *same* vectorized partition hash as local sharding
  (:func:`repro.sketches.sharded.partition_router`), so key->worker
  placement is identical to a :class:`~repro.sketches.sharded.ShardedSketch`:
  each key's whole history reaches exactly one worker, in stream order —
  which keeps remote ingest exact even for order-dependent update rules.
  Routed sub-batches ship as wire frames over the chosen transport.
* Each **worker** (:func:`worker_main`) builds a shard-local sketch from its
  CONFIG frame, ingests BATCH frames through the normal ``insert_batch``
  datapath, and answers a SNAPSHOT_REQUEST with its serialized table state.
* The **collector** restores every worker snapshot into a registry-built
  replica and :func:`tree_merge`-s the replicas into one sketch.  For
  CM/Count the result is bit-identical to a single sketch fed the whole
  stream; CU carries its documented upper-bound merge guarantee.

:func:`run_distributed_ingest` wires the three together for one stream and
is what the CLI, the experiment runner (``ExperimentSettings.transport``)
and ``benchmarks/bench_distributed.py`` call.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

import numpy as np

from repro.distributed.transport import (
    Channel,
    ChannelTimeoutError,
    Transport,
    create_transport,
)
from repro.distributed.wire import (
    MSG_BATCH,
    MSG_CONFIG,
    MSG_CREDIT,
    MSG_HANDOFF,
    MSG_HANDOFF_ACK,
    MSG_HEARTBEAT,
    MSG_HEARTBEAT_ACK,
    MSG_ROUTED_BATCH,
    MSG_SHUTDOWN,
    MSG_SNAPSHOT,
    MSG_SNAPSHOT_REQUEST,
    WireFormatError,
    decode_batch,
    decode_config,
    decode_credit,
    decode_frame,
    decode_handoff,
    decode_handoff_ack,
    decode_heartbeat,
    decode_heartbeat_ack,
    decode_routed_batch,
    decode_snapshot_request,
    decode_state,
    encode_batch,
    encode_config,
    encode_credit,
    encode_frame,
    encode_handoff,
    encode_handoff_ack,
    encode_heartbeat,
    encode_heartbeat_ack,
    encode_routed_batch,
    encode_snapshot_request,
    encode_state,
)
from repro.hashing import EncodedKeyBatch
from repro.sketches.base import Sketch, UnmergeableSketchError
from repro.sketches.registry import build_sketch, supports_snapshots
from repro.sketches.sharded import (
    EpochRouter,
    ShardedSketch,
    partition_positions,
    partition_router,
)
from repro.streams.items import chunked

if TYPE_CHECKING:  # imported lazily at runtime: repro.store depends on wire
    from repro.store import PartitionStore

#: Default chunk size of the coordinator's stream batching.
DEFAULT_CHUNK_SIZE = 8192

#: Default flow-control window: how many ROUTED_BATCH frames a worker may
#: have outstanding (sent, credit not yet returned) before the coordinator
#: blocks instead of growing the worker's inbox.
DEFAULT_CREDIT_LIMIT = 8

#: Default journal bound: a partition is checkpointed (fresh snapshot pulled,
#: journal cleared) once this many batches accumulate since its last
#: snapshot.  The journal is what recovery replays — and what bounds the
#: lost window when replay is disabled.
DEFAULT_JOURNAL_LIMIT = 64


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs to build its shard-local sketch.

    Travels as the first frame on every channel, so workers are stateless
    until configured — a TCP worker process can be started with nothing but
    the collector's address.
    """

    algorithm: str
    memory_bytes: float
    seed: int
    shard_id: int
    shards: int
    sketch_kwargs: dict = field(default_factory=dict)

    def to_payload(self) -> bytes:
        return encode_config(
            {
                "algorithm": self.algorithm,
                "memory_bytes": self.memory_bytes,
                "seed": self.seed,
                "shard_id": self.shard_id,
                "shards": self.shards,
                "sketch_kwargs": self.sketch_kwargs,
            }
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "WorkerConfig":
        config = decode_config(payload)
        try:
            return cls(
                algorithm=config["algorithm"],
                memory_bytes=config["memory_bytes"],
                seed=config["seed"],
                shard_id=config["shard_id"],
                shards=config["shards"],
                sketch_kwargs=config.get("sketch_kwargs", {}),
            )
        except KeyError as missing:
            raise WireFormatError(f"worker config is missing {missing}") from None

    def build(self) -> Sketch:
        """The shard-local replica (full budget, shared seed — see PR 2)."""
        return build_sketch(
            self.algorithm, self.memory_bytes, seed=self.seed, **self.sketch_kwargs
        )


def worker_main(channel: Channel) -> None:
    """The worker node's event loop (same code on every transport).

    Frames in: CONFIG (build the sketch), BATCH (ingest through the batch
    datapath), SNAPSHOT_REQUEST (reply with serialized state + stats),
    SHUTDOWN / EOF (exit).  Runs until the channel closes.
    """
    config: WorkerConfig | None = None
    sketch: Sketch | None = None
    items_ingested = 0
    while True:
        frame = channel.recv()
        if frame is None:
            break
        msg_type, payload = decode_frame(frame)
        if msg_type == MSG_CONFIG:
            config = WorkerConfig.from_payload(payload)
            sketch = config.build()
            items_ingested = 0
        elif msg_type == MSG_BATCH:
            if sketch is None:
                raise WireFormatError("BATCH frame before CONFIG")
            batch, values = decode_batch(payload)
            sketch.insert_batch(batch, values)
            items_ingested += len(batch)
        elif msg_type == MSG_SNAPSHOT_REQUEST:
            if sketch is None or config is None:
                raise WireFormatError("SNAPSHOT_REQUEST frame before CONFIG")
            meta = {
                "shard_id": config.shard_id,
                "items": items_ingested,
                "hash_calls": sketch.hash_calls(),
            }
            channel.send(
                encode_frame(
                    MSG_SNAPSHOT,
                    encode_state(sketch.state_snapshot(), config.algorithm, meta),
                )
            )
        elif msg_type == MSG_SHUTDOWN:
            break
        else:  # pragma: no cover - decode_frame already validates types
            raise WireFormatError(f"unexpected message type {msg_type}")
    channel.close()


class IngestCoordinator:
    """Collector-side driver: configure workers, route batches, collect state.

    Parameters mirror ``ShardedSketch.from_registry``: ``workers``
    identically-configured full-budget replicas of ``algorithm``, partitioned
    by the canonical router for ``workers`` shards.  The algorithm must
    support state snapshots (the mergeable families CM/CU/Count plus
    ReliableSketch) — that is what a worker can ship back over the wire.
    Whether the collected shards additionally *merge* into one sketch is the
    stricter ``mergeable`` contract; the routed ``sharded()`` view works for
    every snapshotable family.
    """

    def __init__(
        self,
        algorithm: str,
        memory_bytes: float,
        workers: int,
        transport: Transport,
        seed: int = 0,
        sketch_kwargs: dict | None = None,
    ) -> None:
        if workers <= 0:
            raise ValueError("worker count must be positive")
        if not supports_snapshots(algorithm):
            raise UnmergeableSketchError(
                f"{algorithm} cannot be ingested remotely: distributed collection "
                "requires state-snapshot support (state_snapshot/state_restore); "
                "snapshotable families are CM/CU/Count and ReliableSketch"
            )
        self.algorithm = algorithm
        self.memory_bytes = memory_bytes
        self.workers = workers
        self.seed = seed
        self.sketch_kwargs = dict(sketch_kwargs or {})
        self.transport = transport
        self.router = partition_router(seed, workers)
        self.items_per_worker = np.zeros(workers, dtype=np.int64)
        self.channels: list[Channel] = transport.launch(worker_main, workers)
        for shard_id, channel in enumerate(self.channels):
            config = WorkerConfig(
                algorithm, memory_bytes, seed, shard_id, workers, self.sketch_kwargs
            )
            channel.send(encode_frame(MSG_CONFIG, config.to_payload()))

    def send_batch(self, keys: Sequence[object], values: Sequence[int] | int | None = None) -> None:
        """Partition one chunk and ship each worker its routed sub-batch.

        Sub-batches reuse the parent batch's packed encodings
        (``EncodedKeyBatch.take``) and arrive in stream order per worker —
        exactly the local ``ShardedSketch.insert_batch`` routing, over a wire.
        """
        batch = keys if isinstance(keys, EncodedKeyBatch) else EncodedKeyBatch(keys)
        value_array = Sketch._batch_values(values, len(batch))
        for shard_id, positions in enumerate(partition_positions(self.router, batch)):
            if positions.size:
                self.items_per_worker[shard_id] += positions.size
                payload = encode_batch(batch.take(positions), value_array[positions])
                self.channels[shard_id].send(encode_frame(MSG_BATCH, payload))

    def send_stream(self, items: Iterable, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        """Chunk an iterable of ``(key, value)`` pairs through :meth:`send_batch`."""
        for chunk in chunked(items, chunk_size):
            self.send_batch([key for key, _ in chunk], [value for _, value in chunk])

    def collect(self) -> tuple[list[Sketch], list[dict]]:
        """Snapshot every worker and restore the states into local replicas.

        Returns ``(shard_sketches, metas)`` in shard order.  Each restored
        replica is bit-identical to the worker's sketch, so the pair
        (replicas, router seed) reconstructs the full sharded state locally.
        """
        for channel in self.channels:
            channel.send(encode_frame(MSG_SNAPSHOT_REQUEST))
        sketches: list[Sketch] = []
        metas: list[dict] = []
        for shard_id, channel in enumerate(self.channels):
            frame = channel.recv()
            if frame is None:
                raise WireFormatError(f"worker {shard_id} closed before sending a snapshot")
            msg_type, payload = decode_frame(frame)
            if msg_type != MSG_SNAPSHOT:
                raise WireFormatError(
                    f"expected SNAPSHOT from worker {shard_id}, got message type {msg_type}"
                )
            state, algorithm, meta = decode_state(payload)
            if algorithm != self.algorithm:
                raise WireFormatError(
                    f"worker {shard_id} snapshot is for {algorithm!r}, "
                    f"expected {self.algorithm!r}"
                )
            if meta.get("items") != int(self.items_per_worker[shard_id]):
                raise WireFormatError(
                    f"worker {shard_id} ingested {meta.get('items')} items, "
                    f"coordinator routed {int(self.items_per_worker[shard_id])}"
                )
            replica = WorkerConfig(
                self.algorithm, self.memory_bytes, self.seed, shard_id,
                self.workers, self.sketch_kwargs,
            ).build()
            replica.state_restore(state)
            sketches.append(replica)
            metas.append(meta)
        return sketches, metas

    def shutdown(self) -> None:
        """Tell every worker to exit and close the collector-side channels."""
        for channel in self.channels:
            try:
                channel.send(encode_frame(MSG_SHUTDOWN))
            except (WireFormatError, OSError):
                pass  # already closed
        self.transport.close()
        self.transport.join(timeout=30)

    @property
    def bytes_sent(self) -> int:
        return sum(channel.bytes_sent for channel in self.channels)

    @property
    def bytes_received(self) -> int:
        return sum(channel.bytes_received for channel in self.channels)


def tree_merge(sketches: Sequence[Sketch]) -> Sketch:
    """Merge sketches pairwise in rounds (the collector-tree reduction).

    Mutates the left operand of every pair and returns the root.  Pass
    copies to keep the inputs intact.  For the exactly-mergeable families
    the result equals any merge order (addition commutes); the tree shape is
    the latency win for a multi-collector deployment: ``ceil(log2 S)`` merge
    rounds instead of ``S - 1`` sequential merges.
    """
    nodes = list(sketches)
    if not nodes:
        raise ValueError("tree_merge needs at least one sketch")
    while len(nodes) > 1:
        merged_round: list[Sketch] = []
        for left_index in range(0, len(nodes) - 1, 2):
            merged_round.append(nodes[left_index].merge(nodes[left_index + 1]))
        if len(nodes) % 2:
            merged_round.append(nodes[-1])
        nodes = merged_round
    return nodes[0]


@dataclass(frozen=True)
class DistributedIngestResult:
    """Everything one distributed ingest run produced.

    ``shard_sketches`` are the restored worker replicas (shard order);
    ``merged`` is their tree-merge — for CM/Count bit-identical to a single
    sketch fed the whole stream, for CU an upper bound with the documented
    merge semantics, and ``None`` for snapshotable-but-unmergeable families
    (ReliableSketch), whose shards have no lossless combination.
    ``sharded()`` wraps the replicas back into a routed
    :class:`ShardedSketch`, which answers queries bit-identically to local
    sharded ingest for *every* supported family (CU and ReliableSketch
    included: per-shard states are exact; only the cross-shard merge is
    weaker or absent).
    """

    algorithm: str
    transport: str
    workers: int
    seed: int
    memory_bytes: float
    shard_sketches: list[Sketch]
    worker_metas: list[dict]
    merged: Sketch | None
    items_per_worker: tuple[int, ...]
    ingest_seconds: float
    merge_seconds: float
    bytes_sent: int
    bytes_received: int

    @property
    def total_items(self) -> int:
        return int(sum(self.items_per_worker))

    def sharded(self) -> ShardedSketch:
        """The restored shards behind the canonical router (routed queries)."""
        sharded = ShardedSketch(self.shard_sketches, seed=self.seed)
        sharded.items_per_shard[:] = np.asarray(self.items_per_worker, dtype=np.int64)
        return sharded


def run_distributed_ingest(
    algorithm: str,
    memory_bytes: float,
    items: Iterable,
    *,
    workers: int = 2,
    transport: str | Transport = "inproc",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    seed: int = 0,
    sketch_kwargs: dict | None = None,
) -> DistributedIngestResult:
    """Ingest ``items`` over ``workers`` remote shards and collect the merge.

    ``transport`` is a backend name (``inproc``/``pipe``/``tcp``) or a
    pre-built :class:`Transport` (e.g. a ``TcpTransport`` awaiting external
    workers).  Either way the transport is *consumed*: a Transport launches
    workers once, and this function shuts them down and closes every channel
    before returning — pass a fresh instance per run.  ``items`` is any
    iterable of ``(key, value)`` pairs — a
    :class:`~repro.streams.items.Stream` works as-is.
    """
    backend = create_transport(transport) if isinstance(transport, str) else transport
    coordinator = IngestCoordinator(
        algorithm, memory_bytes, workers, backend, seed=seed, sketch_kwargs=sketch_kwargs
    )
    try:
        start = time.perf_counter()
        coordinator.send_stream(items, chunk_size=chunk_size)
        shard_sketches, metas = coordinator.collect()
        ingest_seconds = time.perf_counter() - start
        bytes_sent = coordinator.bytes_sent
        bytes_received = coordinator.bytes_received
    finally:
        coordinator.shutdown()

    start = time.perf_counter()
    if shard_sketches[0].mergeable:
        merged = tree_merge([copy.deepcopy(sketch) for sketch in shard_sketches])
    else:
        # Snapshotable but order-dependent (ReliableSketch): the routed
        # sharded() view is the queryable result; there is no lossless merge.
        merged = None
    merge_seconds = time.perf_counter() - start

    return DistributedIngestResult(
        algorithm=algorithm,
        transport=backend.name,
        workers=workers,
        seed=seed,
        memory_bytes=memory_bytes,
        shard_sketches=shard_sketches,
        worker_metas=metas,
        merged=merged,
        items_per_worker=tuple(int(count) for count in coordinator.items_per_worker),
        ingest_seconds=ingest_seconds,
        merge_seconds=merge_seconds,
        bytes_sent=bytes_sent,
        bytes_received=bytes_received,
    )


# ---------------------------------------------------------------------------
# Dynamic ingest: live resharding, failure recovery, flow control
#
# The static pipeline above assumes the worker fleet outlives the stream.
# The dynamic layer drops that assumption.  Keys hash to a *fixed* set of
# partitions (the canonical partition hash), each worker owns a set of
# partitions with one full-budget sketch per partition, and the
# partition->worker assignment is epoch-versioned (`EpochRouter`).  Moving a
# partition is quiesce -> snapshot -> epoch flip -> handoff (+ journal
# replay under faults), so a partition's state lineage is continuous no
# matter how many owners it passes through — which keeps every family's
# per-partition state bit-identical to a static `partitions`-shard fleet.


class WorkerUnavailable(RuntimeError):
    """Internal signal: a worker's channel died (EOF, closed, or fault-killed)."""

    def __init__(self, worker_id: int) -> None:
        super().__init__(f"worker {worker_id} is unavailable")
        self.worker_id = worker_id


@dataclass(frozen=True)
class DynamicWorkerConfig:
    """CONFIG payload of a dynamic worker: its owned partitions and the epoch.

    Unlike the static :class:`WorkerConfig` (one shard sketch per worker),
    a dynamic worker builds one full-budget replica *per owned partition*,
    because partitions — not workers — are the unit of state migration.
    """

    algorithm: str
    memory_bytes: float
    seed: int
    worker_id: int
    partitions: int
    owned: tuple[int, ...]
    epoch: int
    sketch_kwargs: dict = field(default_factory=dict)

    def to_payload(self) -> bytes:
        return encode_config(
            {
                "algorithm": self.algorithm,
                "memory_bytes": self.memory_bytes,
                "seed": self.seed,
                "worker_id": self.worker_id,
                "partitions": self.partitions,
                "owned": list(self.owned),
                "epoch": self.epoch,
                "sketch_kwargs": self.sketch_kwargs,
            }
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "DynamicWorkerConfig":
        config = decode_config(payload)
        try:
            return cls(
                algorithm=config["algorithm"],
                memory_bytes=config["memory_bytes"],
                seed=config["seed"],
                worker_id=config["worker_id"],
                partitions=config["partitions"],
                owned=tuple(config["owned"]),
                epoch=config["epoch"],
                sketch_kwargs=config.get("sketch_kwargs", {}),
            )
        except KeyError as missing:
            raise WireFormatError(f"dynamic worker config is missing {missing}") from None

    def build_partition(self) -> Sketch:
        """One partition's replica (full budget, shared seed — see PR 2)."""
        return build_sketch(
            self.algorithm, self.memory_bytes, seed=self.seed, **self.sketch_kwargs
        )


def dynamic_worker_main(channel: Channel) -> None:
    """The dynamic worker's event loop (same code on every transport).

    Beyond the static loop it understands the epoch-fenced frames:
    ROUTED_BATCH (apply if current, *reject* if stale — at-most-once),
    HANDOFF (install a migrated partition and adopt the new epoch),
    per-partition SNAPSHOT_REQUEST (optionally releasing ownership — the
    quiesce step), HEARTBEAT (echo liveness + ingest stats), and CREDIT
    grants flowing back after every batch so the coordinator's outstanding
    window stays bounded.

    Epoch rule: the coordinator is the routing authority, so frames fenced
    at a *newer* epoch fast-forward the worker; frames fenced at an *older*
    epoch (or for unowned partitions) are counted in ``stale_dropped`` and
    never applied — a credit is still returned, because the coordinator
    spent one sending the frame.
    """
    config: DynamicWorkerConfig | None = None
    epoch = 0
    sketches: dict[int, Sketch] = {}
    counts: dict[int, int] = {}
    items_applied = 0
    stale_dropped = 0

    def require_config() -> DynamicWorkerConfig:
        if config is None:
            raise WireFormatError("dynamic frame before CONFIG")
        return config

    while True:
        frame = channel.recv()
        if frame is None:
            break
        msg_type, payload = decode_frame(frame)
        if msg_type == MSG_CONFIG:
            config = DynamicWorkerConfig.from_payload(payload)
            epoch = config.epoch
            sketches = {partition: config.build_partition() for partition in config.owned}
            counts = {partition: 0 for partition in config.owned}
            items_applied = 0
            stale_dropped = 0
        elif msg_type == MSG_ROUTED_BATCH:
            require_config()
            frame_epoch, partition, batch, values = decode_routed_batch(payload)
            if frame_epoch > epoch:
                epoch = frame_epoch
            if frame_epoch < epoch or partition not in sketches:
                # Stale routing (pre-flip frame) or a partition this worker
                # no longer owns: never applied — at-most-once is the safety
                # property the chaos suite pins.
                stale_dropped += 1
            else:
                sketches[partition].insert_batch(batch, values)
                counts[partition] += len(batch)
                items_applied += len(batch)
            channel.send(encode_frame(MSG_CREDIT, encode_credit(epoch, 1)))
        elif msg_type == MSG_SNAPSHOT_REQUEST:
            active = require_config()
            if not payload:
                raise WireFormatError(
                    "dynamic workers require a per-partition snapshot request"
                )
            request_epoch, partition, release = decode_snapshot_request(payload)
            if request_epoch > epoch:
                epoch = request_epoch
            if partition not in sketches:
                raise WireFormatError(
                    f"snapshot request for partition {partition} not owned here"
                )
            meta = {
                "partition": partition,
                "epoch": epoch,
                "items": counts[partition],
                "stale_dropped": stale_dropped,
            }
            channel.send(
                encode_frame(
                    MSG_SNAPSHOT,
                    encode_state(
                        sketches[partition].state_snapshot(), active.algorithm, meta
                    ),
                )
            )
            if release:
                del sketches[partition]
                del counts[partition]
        elif msg_type == MSG_HANDOFF:
            active = require_config()
            handoff_epoch, partition, state, algorithm, meta = decode_handoff(payload)
            if algorithm != active.algorithm:
                raise WireFormatError(
                    f"handoff carries {algorithm!r} state, worker runs {active.algorithm!r}"
                )
            if handoff_epoch < epoch:
                raise WireFormatError(
                    f"stale handoff at epoch {handoff_epoch}, worker is at {epoch}"
                )
            if partition in sketches:
                raise WireFormatError(
                    f"handoff for partition {partition} already owned here"
                )
            epoch = handoff_epoch
            replica = active.build_partition()
            replica.state_restore(state)
            sketches[partition] = replica
            counts[partition] = int(meta.get("items", 0))
            channel.send(
                encode_frame(MSG_HANDOFF_ACK, encode_handoff_ack(epoch, partition))
            )
        elif msg_type == MSG_HEARTBEAT:
            seq, beat_epoch = decode_heartbeat(payload)
            if beat_epoch > epoch:
                epoch = beat_epoch
            channel.send(
                encode_frame(
                    MSG_HEARTBEAT_ACK,
                    encode_heartbeat_ack(seq, epoch, items_applied, stale_dropped),
                )
            )
        elif msg_type == MSG_SHUTDOWN:
            break
        else:
            raise WireFormatError(f"unexpected message type {msg_type}")
    channel.close()


@dataclass
class _WorkerHandle:
    """Coordinator-side view of one worker: channel, liveness, credit window."""

    worker_id: int
    channel: Channel
    alive: bool = True
    credits: int = 0
    items_reported: int = 0
    stale_reported: int = 0


@dataclass(frozen=True)
class RecoveryReport:
    """What one worker-failure recovery did — and what it could not save.

    ``lost_items`` is the *exact* size of the lost window: batches routed to
    the dead worker after its partitions' last snapshots, discarded because
    journal replay was disabled.  With replay enabled the window is
    re-sent instead and ``lost_items`` is zero — recovery is lossless.
    """

    worker_id: int
    partitions: tuple[int, ...]
    epoch: int
    targets: dict[int, int]
    lost_items: int
    lost_batches: int
    replayed_items: int


class DynamicIngestCoordinator:
    """Epoch-fenced coordinator over a *dynamic* worker fleet.

    The topology can change under live ingest:

    * :meth:`move_partition` — quiesce one partition (release-snapshot from
      its owner drains all in-flight batches by FIFO), flip the routing
      epoch, hand the state to the new owner, await the ack.
    * :meth:`add_worker` / :meth:`remove_worker` /
      :meth:`split_worker` / :meth:`merge_workers` — fleet surgery built on
      partition moves.
    * Worker death (channel EOF, send failure, or a missed heartbeat in
      :meth:`ping`) triggers recovery: every partition the dead worker owned
      is restored on a survivor from its last snapshot, and the journal —
      every batch sent since that snapshot — is replayed exactly once
      (``replay_on_recovery=True``, lossless) or discarded and *reported*
      as the lost window (``replay_on_recovery=False``).
    * Heartbeat cadence is configurable: ``heartbeat_interval`` makes
      :meth:`maybe_ping` probe the fleet that often (called once per chunk
      by :func:`run_dynamic_ingest`), and ``heartbeat_timeout`` bounds how
      long :meth:`ping` waits for each ack — a silent-but-connected worker
      (hung, not dead) is then declared failed and recovered, instead of
      stalling the coordinator forever.
    * With a :class:`~repro.store.PartitionStore`, every checkpoint /
      quiesce / collect snapshot is also persisted to disk, and a new
      coordinator over the same directory **resumes** the fleet from the
      persisted checkpoints — recovery from a coordinator crash no longer
      needs a surviving process's memory.
    * ``MSG_BATCH`` flow control: every routed frame consumes a credit from
      the owner's window (``credit_limit``); workers return one credit per
      frame applied (or rejected), so a slow worker back-pressures the
      coordinator instead of growing an unbounded inbox.
      ``max_outstanding`` records the high-water mark.

    Placement invariant: keys hash to ``partitions`` fixed partitions, each
    with its own full-budget sketch, so per-partition state is bit-identical
    to a static ``partitions``-shard fleet (local
    :class:`~repro.sketches.sharded.ShardedSketch`) regardless of how many
    reshards happened — for *every* snapshotable family, CU and
    ReliableSketch included.
    """

    def __init__(
        self,
        algorithm: str,
        memory_bytes: float,
        workers: int,
        transport: Transport,
        *,
        partitions: int | None = None,
        seed: int = 0,
        credit_limit: int = DEFAULT_CREDIT_LIMIT,
        journal_limit: int = DEFAULT_JOURNAL_LIMIT,
        replay_on_recovery: bool = True,
        heartbeat_interval: float | None = None,
        heartbeat_timeout: float | None = None,
        store: "PartitionStore | None" = None,
        sketch_kwargs: dict | None = None,
    ) -> None:
        if workers <= 0:
            raise ValueError("worker count must be positive")
        partitions = workers if partitions is None else partitions
        if partitions < workers:
            raise ValueError("need at least one partition per worker")
        if credit_limit <= 0:
            raise ValueError("credit limit must be positive")
        if journal_limit <= 0:
            raise ValueError("journal limit must be positive")
        if heartbeat_interval is not None and heartbeat_interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ValueError("heartbeat timeout must be positive")
        if not supports_snapshots(algorithm):
            raise UnmergeableSketchError(
                f"{algorithm} cannot be ingested remotely: dynamic ingest requires "
                "state-snapshot support (state_snapshot/state_restore)"
            )
        self.algorithm = algorithm
        self.memory_bytes = memory_bytes
        self.partitions = partitions
        self.seed = seed
        self.credit_limit = credit_limit
        self.journal_limit = journal_limit
        self.replay_on_recovery = replay_on_recovery
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.store = store
        self.sketch_kwargs = dict(sketch_kwargs or {})
        self.transport = transport
        self.router = EpochRouter.round_robin(seed, partitions, workers)

        self.items_per_partition = np.zeros(partitions, dtype=np.int64)
        self.items_lost_per_partition = np.zeros(partitions, dtype=np.int64)
        self.max_outstanding = 0
        self.handoffs: list[dict] = []
        self.recoveries: list[RecoveryReport] = []
        self.store_errors = 0
        self.heartbeat_rounds = 0
        self._heartbeat_seq = 0
        self._last_ping = time.monotonic()

        # The epoch-0 snapshot of every partition is the empty sketch — what
        # recovery restores from before the first checkpoint lands.
        empty_state = build_sketch(
            algorithm, memory_bytes, seed=seed, **self.sketch_kwargs
        ).state_snapshot()
        self._snapshots: dict[int, tuple[dict[str, np.ndarray], dict]] = {
            partition: (
                copy.deepcopy(empty_state),
                {"partition": partition, "epoch": 0, "items": 0},
            )
            for partition in range(partitions)
        }
        #: Batches sent per partition since its last snapshot — the replay
        #: window of a handoff under faults and the lost window of a
        #: no-replay recovery.
        self._journal: dict[int, list[tuple[EncodedKeyBatch, np.ndarray]]] = {
            partition: [] for partition in range(partitions)
        }

        # Resume: a PartitionStore holding checkpoints from a previous
        # coordinator replaces the empty epoch-0 snapshots, and the routed
        # counters pick up where that coordinator's accounting stopped.
        self.resumed_partitions: tuple[int, ...] = ()
        if store is not None:
            persisted = store.load_all()
            for partition in persisted:
                if not 0 <= partition < partitions:
                    raise ValueError(
                        f"store holds partition {partition} but this fleet "
                        f"has {partitions} partitions"
                    )
            for partition, (state, meta) in persisted.items():
                self._snapshots[partition] = (state, dict(meta))
                self.items_per_partition[partition] = int(meta.get("items", 0))
            self.resumed_partitions = tuple(sorted(persisted))

        self._workers: list[_WorkerHandle] = []
        channels = transport.launch(dynamic_worker_main, workers)
        resuming = bool(self.resumed_partitions)
        for worker_id in range(workers):
            handle = _WorkerHandle(
                worker_id, channels[worker_id], credits=credit_limit
            )
            self._workers.append(handle)
            config = DynamicWorkerConfig(
                algorithm,
                memory_bytes,
                seed,
                worker_id,
                partitions,
                # On resume, workers start owning nothing and every partition
                # is installed below via HANDOFF — the only path that can
                # carry non-empty state into a fresh worker.
                () if resuming else self.router.partitions_of(worker_id),
                epoch=0,
                sketch_kwargs=self.sketch_kwargs,
            )
            handle.channel.send(encode_frame(MSG_CONFIG, config.to_payload()))
        if resuming:
            for partition in range(partitions):
                state, meta = self._snapshots[partition]
                self._install(self.router.owner(partition), partition, state, meta, 0)

    # -- epoch / fleet introspection ---------------------------------------

    @property
    def epoch(self) -> int:
        return self.router.epoch

    @property
    def worker_count(self) -> int:
        return len(self._workers)

    def alive_workers(self) -> tuple[int, ...]:
        return tuple(handle.worker_id for handle in self._workers if handle.alive)

    @property
    def bytes_sent(self) -> int:
        return sum(handle.channel.bytes_sent for handle in self._workers)

    @property
    def bytes_received(self) -> int:
        return sum(handle.channel.bytes_received for handle in self._workers)

    # -- channel pump --------------------------------------------------------

    def _recv_control(
        self,
        handle: _WorkerHandle,
        want: int | None,
        timeout: float | None = None,
    ) -> bytes | None:
        """Receive from one worker, absorbing control frames along the way.

        CREDIT and HEARTBEAT_ACK frames are bookkeeping and are consumed
        wherever they appear; ``want`` names the frame type to return (or
        ``None`` to absorb exactly one frame of any kind).  EOF, channel
        errors and a breached ``timeout`` all surface as
        :class:`WorkerUnavailable` — the single signal the failure detector
        acts on, so a hung-but-connected worker is treated exactly like a
        dead one.
        """
        while True:
            try:
                frame = handle.channel.recv(timeout=timeout)
            except ChannelTimeoutError:
                raise WorkerUnavailable(handle.worker_id) from None
            except (WireFormatError, OSError):
                frame = None
            if frame is None:
                raise WorkerUnavailable(handle.worker_id)
            msg_type, payload = decode_frame(frame)
            if msg_type == MSG_CREDIT:
                _, amount = decode_credit(payload)
                handle.credits = min(self.credit_limit, handle.credits + amount)
                if want is None:
                    return None
            elif msg_type == MSG_HEARTBEAT_ACK:
                _, _, items, stale = decode_heartbeat_ack(payload)
                handle.items_reported = items
                handle.stale_reported = stale
                if want == MSG_HEARTBEAT_ACK:
                    return payload
                if want is None:
                    return None
            elif msg_type == want:
                return payload
            else:
                raise WireFormatError(
                    f"unexpected frame type {msg_type} from worker {handle.worker_id}"
                )

    def _acquire_credit(self, handle: _WorkerHandle) -> None:
        """Block until the worker's window has room; take one credit."""
        while handle.credits <= 0:
            self._recv_control(handle, None)
        handle.credits -= 1
        self.max_outstanding = max(
            self.max_outstanding, self.credit_limit - handle.credits
        )

    # -- data path -----------------------------------------------------------

    def _send_routed(self, partition: int, batch: EncodedKeyBatch, values: np.ndarray) -> None:
        """Ship one partition sub-batch to its current owner, surviving deaths.

        Journals the batch on success; a dead owner triggers recovery (which
        re-places the partition) and the send retries against the new owner.
        """
        while True:
            owner = self.router.owner(partition)
            handle = self._workers[owner]
            if not handle.alive:
                self._recover(owner)
                continue
            try:
                self._acquire_credit(handle)
                handle.channel.send(
                    encode_frame(
                        MSG_ROUTED_BATCH,
                        encode_routed_batch(self.epoch, partition, batch, values),
                    )
                )
            except WorkerUnavailable as dead:
                self._recover(dead.worker_id)
                continue
            except (WireFormatError, OSError):
                self._recover(handle.worker_id)
                continue
            self._journal[partition].append((batch, values))
            if len(self._journal[partition]) >= self.journal_limit:
                self.checkpoint(partition)
            return

    def send_batch(
        self, keys: Sequence[object], values: Sequence[int] | int | None = None
    ) -> None:
        """Partition one chunk and ship each sub-batch to its partition's owner."""
        batch = keys if isinstance(keys, EncodedKeyBatch) else EncodedKeyBatch(keys)
        value_array = Sketch._batch_values(values, len(batch))
        for _, partition, positions in self.router.route(batch):
            self.items_per_partition[partition] += positions.size
            self._send_routed(partition, batch.take(positions), value_array[positions])

    def send_stream(self, items: Iterable, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        """Chunk an iterable of ``(key, value)`` pairs through :meth:`send_batch`."""
        for chunk in chunked(items, chunk_size):
            self.send_batch([key for key, _ in chunk], [value for _, value in chunk])

    # -- snapshots / checkpoints ---------------------------------------------

    def _request_snapshot(
        self, handle: _WorkerHandle, partition: int, release: bool
    ) -> tuple[dict[str, np.ndarray], dict]:
        """Pull one partition's state from its owner (FIFO drains in-flight batches)."""
        handle.channel.send(
            encode_frame(
                MSG_SNAPSHOT_REQUEST,
                encode_snapshot_request(self.epoch, partition, release),
            )
        )
        payload = self._recv_control(handle, MSG_SNAPSHOT)
        state, algorithm, meta = decode_state(payload)
        if algorithm != self.algorithm:
            raise WireFormatError(
                f"worker {handle.worker_id} snapshot is for {algorithm!r}, "
                f"expected {self.algorithm!r}"
            )
        if meta.get("partition") != partition:
            raise WireFormatError(
                f"worker {handle.worker_id} answered for partition "
                f"{meta.get('partition')}, expected {partition}"
            )
        return state, meta

    def _persist(self, partition: int, state: dict[str, np.ndarray], meta: dict) -> None:
        """Write one partition checkpoint to the durable store, if configured.

        Coordinator-side disk trouble must not kill a healthy ingest fleet:
        failures are counted (``store_errors``) and the coordinator carries
        on with in-memory snapshots only — the same loud-degradation
        contract as :class:`~repro.store.SketchStore`.
        """
        if self.store is None:
            return
        try:
            self.store.save(partition, state, meta, self.algorithm)
        except OSError:
            self.store_errors += 1

    def checkpoint(self, partition: int) -> dict:
        """Refresh one partition's stored snapshot and clear its journal.

        This bounds both the journal's memory and the lost window of a
        no-replay recovery; it is called automatically every
        ``journal_limit`` batches and is safe to call any time.
        """
        while True:
            owner = self.router.owner(partition)
            handle = self._workers[owner]
            if not handle.alive:
                self._recover(owner)
                continue
            try:
                state, meta = self._request_snapshot(handle, partition, release=False)
            except WorkerUnavailable as dead:
                self._recover(dead.worker_id)
                continue
            self._snapshots[partition] = (state, meta)
            self._journal[partition] = []
            self._persist(partition, state, meta)
            return meta

    # -- resharding ----------------------------------------------------------

    def _install(
        self,
        worker_id: int,
        partition: int,
        state: dict[str, np.ndarray],
        meta: dict,
        epoch: int,
    ) -> None:
        """HANDOFF one partition's state to ``worker_id`` and await the ack.

        If the target dies mid-install, its recovery re-places the partition
        (the router already names the target as owner) from the stored
        snapshot — the caller does not retry.
        """
        handle = self._workers[worker_id]
        try:
            handle.channel.send(
                encode_frame(
                    MSG_HANDOFF,
                    encode_handoff(epoch, partition, state, self.algorithm, meta),
                )
            )
        except (WireFormatError, OSError):
            self._recover(worker_id)
            return
        try:
            payload = self._recv_control(handle, MSG_HANDOFF_ACK)
        except WorkerUnavailable as dead:
            self._recover(dead.worker_id)
            return
        _, acked_partition = decode_handoff_ack(payload, expected_epoch=epoch)
        if acked_partition != partition:
            raise WireFormatError(
                f"worker {worker_id} acked partition {acked_partition}, "
                f"expected {partition}"
            )

    def move_partition(self, partition: int, to_worker: int) -> None:
        """Migrate one partition under live ingest: quiesce -> snapshot ->
        epoch flip -> handoff.

        The release-snapshot from the old owner doubles as the quiesce
        barrier: the channel is FIFO, so by the time the snapshot is on the
        wire every batch sent before it has been applied — the handoff
        window is drained into the state, and the journal resets.  If the
        old owner dies mid-quiesce, recovery restores the partition from its
        last snapshot and replays the journal — preferring the requested
        target, so the move still lands.
        """
        if not 0 <= to_worker < len(self._workers) or not self._workers[to_worker].alive:
            raise ValueError(f"target worker {to_worker} is not alive")
        source = self.router.owner(partition)
        if source == to_worker:
            return
        start = time.perf_counter()
        handle = self._workers[source]
        if not handle.alive:
            self._recover(source, prefer=to_worker)
            return
        try:
            state, meta = self._request_snapshot(handle, partition, release=True)
        except WorkerUnavailable as dead:
            self._recover(dead.worker_id, prefer=to_worker)
            return
        self._snapshots[partition] = (state, meta)
        self._journal[partition] = []
        self._persist(partition, state, meta)
        epoch = self.router.reassign(partition, to_worker)
        self._install(to_worker, partition, state, meta, epoch)
        self.handoffs.append(
            {
                "partition": partition,
                "from_worker": source,
                "to_worker": to_worker,
                "epoch": epoch,
                "items": int(meta.get("items", 0)),
                "seconds": time.perf_counter() - start,
            }
        )

    def _least_loaded(self, exclude: set[int] = frozenset()) -> int:
        load = self.router.load()
        candidates = [
            handle.worker_id
            for handle in self._workers
            if handle.alive and handle.worker_id not in exclude
        ]
        if not candidates:
            raise RuntimeError("no surviving workers available")
        return min(candidates, key=lambda worker: (load.get(worker, 0), worker))

    def add_worker(self) -> int:
        """Launch one empty worker under live ingest; returns its id."""
        worker_id = len(self._workers)
        channel = self.transport.launch(dynamic_worker_main, 1)[-1]
        handle = _WorkerHandle(worker_id, channel, credits=self.credit_limit)
        self._workers.append(handle)
        config = DynamicWorkerConfig(
            self.algorithm,
            self.memory_bytes,
            self.seed,
            worker_id,
            self.partitions,
            owned=(),
            epoch=self.epoch,
            sketch_kwargs=self.sketch_kwargs,
        )
        channel.send(encode_frame(MSG_CONFIG, config.to_payload()))
        return worker_id

    def remove_worker(self, worker_id: int, target: int | None = None) -> None:
        """Drain a worker's partitions onto survivors and retire it gracefully."""
        handle = self._workers[worker_id]
        if not handle.alive:
            raise ValueError(f"worker {worker_id} is not alive")
        for partition in self.router.partitions_of(worker_id):
            destination = (
                target
                if target is not None
                else self._least_loaded(exclude={worker_id})
            )
            self.move_partition(partition, destination)
        handle.alive = False
        try:
            handle.channel.send(encode_frame(MSG_SHUTDOWN))
        except (WireFormatError, OSError):
            pass
        handle.channel.close()

    def split_worker(self, worker_id: int) -> int:
        """Shard split: move every other partition of ``worker_id`` to a new worker."""
        new_worker = self.add_worker()
        for partition in self.router.partitions_of(worker_id)[1::2]:
            self.move_partition(partition, new_worker)
        return new_worker

    def merge_workers(self, source: int, into: int) -> None:
        """Shard merge: fold ``source``'s partitions into ``into`` and retire it."""
        if source == into:
            raise ValueError("cannot merge a worker into itself")
        self.remove_worker(source, target=into)

    # -- failure detection / recovery ----------------------------------------

    def ping(self) -> tuple[int, ...]:
        """One heartbeat round: probe every live worker, recover the dead.

        Returns the ids of workers alive after the round.  Any ack counts as
        liveness proof; a dead channel (EOF or send failure) triggers the
        same recovery path as a mid-send failure.  With
        ``heartbeat_timeout`` set, a worker that stays *connected* but never
        acks (hung, not dead) is also recovered instead of blocking the
        coordinator forever.
        """
        self._heartbeat_seq += 1
        self.heartbeat_rounds += 1
        for handle in list(self._workers):
            if not handle.alive:
                continue
            try:
                handle.channel.send(
                    encode_frame(
                        MSG_HEARTBEAT,
                        encode_heartbeat(self._heartbeat_seq, self.epoch),
                    )
                )
                self._recv_control(
                    handle, MSG_HEARTBEAT_ACK, timeout=self.heartbeat_timeout
                )
            except WorkerUnavailable:
                self._recover(handle.worker_id)
            except (WireFormatError, OSError):
                self._recover(handle.worker_id)
        self._last_ping = time.monotonic()
        return self.alive_workers()

    def maybe_ping(self) -> tuple[int, ...] | None:
        """Run :meth:`ping` iff ``heartbeat_interval`` has elapsed since the
        last round.  The stream pump calls this once per chunk, so probe
        cadence is wall-clock bounded without a background thread.
        """
        if self.heartbeat_interval is None:
            return None
        if time.monotonic() - self._last_ping < self.heartbeat_interval:
            return None
        return self.ping()

    def _recover(self, worker_id: int, prefer: int | None = None) -> None:
        """Re-place every partition of a dead worker on survivors.

        Each partition is restored from its last snapshot; the journal since
        that snapshot is replayed exactly once (lossless) or discarded and
        reported as the lost window.  Journal entries are detached *before*
        the install, so a survivor dying mid-recovery can never double-apply
        a window (its own nested recovery sees an empty journal for the
        partition and the outer replay targets whatever owner won).
        """
        handle = self._workers[worker_id]
        if not handle.alive:
            return
        handle.alive = False
        handle.credits = 0
        handle.channel.close()
        owned = self.router.partitions_of(worker_id)
        lost_items = 0
        lost_batches = 0
        replayed_items = 0
        targets: dict[int, int] = {}
        for partition in owned:
            entries = self._journal[partition]
            self._journal[partition] = []
            if prefer is not None and self._workers[prefer].alive:
                target = prefer
            else:
                target = self._least_loaded(exclude={worker_id})
            epoch = self.router.reassign(partition, target)
            state, meta = self._snapshots[partition]
            self._install(target, partition, state, meta, epoch)
            targets[partition] = self.router.owner(partition)
            if self.replay_on_recovery:
                for batch, values in entries:
                    self._send_routed(partition, batch, values)
                    replayed_items += len(batch)
            else:
                window = sum(len(batch) for batch, _ in entries)
                lost_items += window
                lost_batches += len(entries)
                self.items_lost_per_partition[partition] += window
        self.recoveries.append(
            RecoveryReport(
                worker_id=worker_id,
                partitions=owned,
                epoch=self.epoch,
                targets=targets,
                lost_items=lost_items,
                lost_batches=lost_batches,
                replayed_items=replayed_items,
            )
        )

    # -- collection ----------------------------------------------------------

    def collect(self) -> tuple[list[Sketch], list[dict]]:
        """Snapshot every partition and restore the states into local replicas.

        Returns ``(partition_sketches, metas)`` in partition order.  The
        applied-item accounting must balance: every partition's worker-side
        count equals routed minus reported-lost, or collection fails loudly.
        """
        sketches: list[Sketch] = []
        metas: list[dict] = []
        for partition in range(self.partitions):
            while True:
                owner = self.router.owner(partition)
                handle = self._workers[owner]
                if not handle.alive:
                    self._recover(owner)
                    continue
                try:
                    state, meta = self._request_snapshot(handle, partition, release=False)
                except WorkerUnavailable as dead:
                    self._recover(dead.worker_id)
                    continue
                break
            expected = int(
                self.items_per_partition[partition]
                - self.items_lost_per_partition[partition]
            )
            if meta.get("items") != expected:
                raise WireFormatError(
                    f"partition {partition} applied {meta.get('items')} items, "
                    f"coordinator routed {int(self.items_per_partition[partition])} "
                    f"and reported {int(self.items_lost_per_partition[partition])} lost"
                )
            self._snapshots[partition] = (state, meta)
            self._journal[partition] = []
            self._persist(partition, state, meta)
            replica = build_sketch(
                self.algorithm, self.memory_bytes, seed=self.seed, **self.sketch_kwargs
            )
            replica.state_restore(state)
            sketches.append(replica)
            metas.append(meta)
        return sketches, metas

    def shutdown(self) -> None:
        """Tell every live worker to exit and close all channels."""
        for handle in self._workers:
            if not handle.alive:
                continue
            try:
                handle.channel.send(encode_frame(MSG_SHUTDOWN))
            except (WireFormatError, OSError):
                pass
        self.transport.close()
        self.transport.join(timeout=30)


@dataclass(frozen=True)
class DynamicIngestResult:
    """Everything one dynamic ingest run produced.

    ``partition_sketches`` are the restored per-partition replicas (partition
    order) — bit-identical to a static ``partitions``-shard fleet for every
    family whenever nothing was lost.  ``merged`` is their tree-merge (CM /
    Count bit-identical to single-node, CU upper-bound, ``None`` for
    unmergeable-but-snapshotable families).  ``recoveries`` documents every
    worker death and its exact lost window; ``handoffs`` every live
    migration with its latency.
    """

    algorithm: str
    transport: str
    partitions: int
    seed: int
    memory_bytes: float
    partition_sketches: list[Sketch]
    partition_metas: list[dict]
    merged: Sketch | None
    items_per_partition: tuple[int, ...]
    items_lost_per_partition: tuple[int, ...]
    epoch: int
    handoffs: list[dict]
    recoveries: list[RecoveryReport]
    max_outstanding: int
    ingest_seconds: float
    merge_seconds: float
    bytes_sent: int
    bytes_received: int

    @property
    def total_items(self) -> int:
        return int(sum(self.items_per_partition))

    @property
    def total_lost(self) -> int:
        return int(sum(self.items_lost_per_partition))

    def sharded(self) -> ShardedSketch:
        """The restored partitions behind the canonical router (routed queries)."""
        sharded = ShardedSketch(self.partition_sketches, seed=self.seed)
        sharded.items_per_shard[:] = np.asarray(
            self.items_per_partition, dtype=np.int64
        ) - np.asarray(self.items_lost_per_partition, dtype=np.int64)
        return sharded


def run_dynamic_ingest(
    algorithm: str,
    memory_bytes: float,
    items: Iterable,
    *,
    workers: int = 2,
    partitions: int | None = None,
    transport: str | Transport = "inproc",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    seed: int = 0,
    credit_limit: int = DEFAULT_CREDIT_LIMIT,
    journal_limit: int = DEFAULT_JOURNAL_LIMIT,
    replay_on_recovery: bool = True,
    heartbeat_interval: float | None = None,
    heartbeat_timeout: float | None = None,
    store_dir: str | None = None,
    sketch_kwargs: dict | None = None,
    actions: dict[int, Callable[["DynamicIngestCoordinator"], None]] | None = None,
) -> DynamicIngestResult:
    """Ingest ``items`` over a dynamic fleet, optionally resharding mid-stream.

    ``actions`` maps a chunk index to a callable invoked with the
    coordinator *before* that chunk is sent — the hook the chaos suite and
    the reshard-under-load benchmark use to split/merge/kill mid-ingest
    deterministically (chunk counts, not wall clocks).  Like the static
    runner, the transport is consumed.

    ``heartbeat_interval`` probes the fleet between chunks at that cadence;
    ``heartbeat_timeout`` bounds each ack wait.  ``store_dir`` opens a
    :class:`~repro.store.PartitionStore` there: checkpoints persist to disk
    and a later run over the same directory resumes from them.
    """
    backend = create_transport(transport) if isinstance(transport, str) else transport
    store = None
    if store_dir is not None:
        from repro.store import PartitionStore

        store = PartitionStore(store_dir, algorithm=algorithm)
    coordinator = DynamicIngestCoordinator(
        algorithm,
        memory_bytes,
        workers,
        backend,
        partitions=partitions,
        seed=seed,
        credit_limit=credit_limit,
        journal_limit=journal_limit,
        replay_on_recovery=replay_on_recovery,
        heartbeat_interval=heartbeat_interval,
        heartbeat_timeout=heartbeat_timeout,
        store=store,
        sketch_kwargs=sketch_kwargs,
    )
    try:
        start = time.perf_counter()
        for index, chunk in enumerate(chunked(items, chunk_size)):
            if actions and index in actions:
                actions[index](coordinator)
            coordinator.maybe_ping()
            coordinator.send_batch(
                [key for key, _ in chunk], [value for _, value in chunk]
            )
        partition_sketches, metas = coordinator.collect()
        ingest_seconds = time.perf_counter() - start
        bytes_sent = coordinator.bytes_sent
        bytes_received = coordinator.bytes_received
    finally:
        coordinator.shutdown()

    start = time.perf_counter()
    if partition_sketches[0].mergeable:
        merged = tree_merge([copy.deepcopy(sketch) for sketch in partition_sketches])
    else:
        merged = None
    merge_seconds = time.perf_counter() - start

    return DynamicIngestResult(
        algorithm=algorithm,
        transport=backend.name,
        partitions=coordinator.partitions,
        seed=seed,
        memory_bytes=memory_bytes,
        partition_sketches=partition_sketches,
        partition_metas=metas,
        merged=merged,
        items_per_partition=tuple(
            int(count) for count in coordinator.items_per_partition
        ),
        items_lost_per_partition=tuple(
            int(count) for count in coordinator.items_lost_per_partition
        ),
        epoch=coordinator.epoch,
        handoffs=list(coordinator.handoffs),
        recoveries=list(coordinator.recoveries),
        max_outstanding=coordinator.max_outstanding,
        ingest_seconds=ingest_seconds,
        merge_seconds=merge_seconds,
        bytes_sent=bytes_sent,
        bytes_received=bytes_received,
    )

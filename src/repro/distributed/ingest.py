"""Transport-agnostic distributed ingest: worker loop, coordinator, collector.

The deployment shape mirrors the paper's distributed measurement points —
many ingest nodes, one collector, results merged centrally:

* The **coordinator** owns the stream.  It partitions every chunk with the
  *same* vectorized partition hash as local sharding
  (:func:`repro.sketches.sharded.partition_router`), so key->worker
  placement is identical to a :class:`~repro.sketches.sharded.ShardedSketch`:
  each key's whole history reaches exactly one worker, in stream order —
  which keeps remote ingest exact even for order-dependent update rules.
  Routed sub-batches ship as wire frames over the chosen transport.
* Each **worker** (:func:`worker_main`) builds a shard-local sketch from its
  CONFIG frame, ingests BATCH frames through the normal ``insert_batch``
  datapath, and answers a SNAPSHOT_REQUEST with its serialized table state.
* The **collector** restores every worker snapshot into a registry-built
  replica and :func:`tree_merge`-s the replicas into one sketch.  For
  CM/Count the result is bit-identical to a single sketch fed the whole
  stream; CU carries its documented upper-bound merge guarantee.

:func:`run_distributed_ingest` wires the three together for one stream and
is what the CLI, the experiment runner (``ExperimentSettings.transport``)
and ``benchmarks/bench_distributed.py`` call.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.distributed.transport import Channel, Transport, create_transport
from repro.distributed.wire import (
    MSG_BATCH,
    MSG_CONFIG,
    MSG_SHUTDOWN,
    MSG_SNAPSHOT,
    MSG_SNAPSHOT_REQUEST,
    WireFormatError,
    decode_batch,
    decode_config,
    decode_frame,
    decode_state,
    encode_batch,
    encode_config,
    encode_frame,
    encode_state,
)
from repro.hashing import EncodedKeyBatch
from repro.sketches.base import Sketch, UnmergeableSketchError
from repro.sketches.registry import build_sketch, supports_snapshots
from repro.sketches.sharded import ShardedSketch, partition_positions, partition_router
from repro.streams.items import chunked

#: Default chunk size of the coordinator's stream batching.
DEFAULT_CHUNK_SIZE = 8192


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs to build its shard-local sketch.

    Travels as the first frame on every channel, so workers are stateless
    until configured — a TCP worker process can be started with nothing but
    the collector's address.
    """

    algorithm: str
    memory_bytes: float
    seed: int
    shard_id: int
    shards: int
    sketch_kwargs: dict = field(default_factory=dict)

    def to_payload(self) -> bytes:
        return encode_config(
            {
                "algorithm": self.algorithm,
                "memory_bytes": self.memory_bytes,
                "seed": self.seed,
                "shard_id": self.shard_id,
                "shards": self.shards,
                "sketch_kwargs": self.sketch_kwargs,
            }
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "WorkerConfig":
        config = decode_config(payload)
        try:
            return cls(
                algorithm=config["algorithm"],
                memory_bytes=config["memory_bytes"],
                seed=config["seed"],
                shard_id=config["shard_id"],
                shards=config["shards"],
                sketch_kwargs=config.get("sketch_kwargs", {}),
            )
        except KeyError as missing:
            raise WireFormatError(f"worker config is missing {missing}") from None

    def build(self) -> Sketch:
        """The shard-local replica (full budget, shared seed — see PR 2)."""
        return build_sketch(
            self.algorithm, self.memory_bytes, seed=self.seed, **self.sketch_kwargs
        )


def worker_main(channel: Channel) -> None:
    """The worker node's event loop (same code on every transport).

    Frames in: CONFIG (build the sketch), BATCH (ingest through the batch
    datapath), SNAPSHOT_REQUEST (reply with serialized state + stats),
    SHUTDOWN / EOF (exit).  Runs until the channel closes.
    """
    config: WorkerConfig | None = None
    sketch: Sketch | None = None
    items_ingested = 0
    while True:
        frame = channel.recv()
        if frame is None:
            break
        msg_type, payload = decode_frame(frame)
        if msg_type == MSG_CONFIG:
            config = WorkerConfig.from_payload(payload)
            sketch = config.build()
            items_ingested = 0
        elif msg_type == MSG_BATCH:
            if sketch is None:
                raise WireFormatError("BATCH frame before CONFIG")
            batch, values = decode_batch(payload)
            sketch.insert_batch(batch, values)
            items_ingested += len(batch)
        elif msg_type == MSG_SNAPSHOT_REQUEST:
            if sketch is None or config is None:
                raise WireFormatError("SNAPSHOT_REQUEST frame before CONFIG")
            meta = {
                "shard_id": config.shard_id,
                "items": items_ingested,
                "hash_calls": sketch.hash_calls(),
            }
            channel.send(
                encode_frame(
                    MSG_SNAPSHOT,
                    encode_state(sketch.state_snapshot(), config.algorithm, meta),
                )
            )
        elif msg_type == MSG_SHUTDOWN:
            break
        else:  # pragma: no cover - decode_frame already validates types
            raise WireFormatError(f"unexpected message type {msg_type}")
    channel.close()


class IngestCoordinator:
    """Collector-side driver: configure workers, route batches, collect state.

    Parameters mirror ``ShardedSketch.from_registry``: ``workers``
    identically-configured full-budget replicas of ``algorithm``, partitioned
    by the canonical router for ``workers`` shards.  The algorithm must
    support state snapshots (the mergeable families CM/CU/Count plus
    ReliableSketch) — that is what a worker can ship back over the wire.
    Whether the collected shards additionally *merge* into one sketch is the
    stricter ``mergeable`` contract; the routed ``sharded()`` view works for
    every snapshotable family.
    """

    def __init__(
        self,
        algorithm: str,
        memory_bytes: float,
        workers: int,
        transport: Transport,
        seed: int = 0,
        sketch_kwargs: dict | None = None,
    ) -> None:
        if workers <= 0:
            raise ValueError("worker count must be positive")
        if not supports_snapshots(algorithm):
            raise UnmergeableSketchError(
                f"{algorithm} cannot be ingested remotely: distributed collection "
                "requires state-snapshot support (state_snapshot/state_restore); "
                "snapshotable families are CM/CU/Count and ReliableSketch"
            )
        self.algorithm = algorithm
        self.memory_bytes = memory_bytes
        self.workers = workers
        self.seed = seed
        self.sketch_kwargs = dict(sketch_kwargs or {})
        self.transport = transport
        self.router = partition_router(seed, workers)
        self.items_per_worker = np.zeros(workers, dtype=np.int64)
        self.channels: list[Channel] = transport.launch(worker_main, workers)
        for shard_id, channel in enumerate(self.channels):
            config = WorkerConfig(
                algorithm, memory_bytes, seed, shard_id, workers, self.sketch_kwargs
            )
            channel.send(encode_frame(MSG_CONFIG, config.to_payload()))

    def send_batch(self, keys: Sequence[object], values: Sequence[int] | int | None = None) -> None:
        """Partition one chunk and ship each worker its routed sub-batch.

        Sub-batches reuse the parent batch's packed encodings
        (``EncodedKeyBatch.take``) and arrive in stream order per worker —
        exactly the local ``ShardedSketch.insert_batch`` routing, over a wire.
        """
        batch = keys if isinstance(keys, EncodedKeyBatch) else EncodedKeyBatch(keys)
        value_array = Sketch._batch_values(values, len(batch))
        for shard_id, positions in enumerate(partition_positions(self.router, batch)):
            if positions.size:
                self.items_per_worker[shard_id] += positions.size
                payload = encode_batch(batch.take(positions), value_array[positions])
                self.channels[shard_id].send(encode_frame(MSG_BATCH, payload))

    def send_stream(self, items: Iterable, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        """Chunk an iterable of ``(key, value)`` pairs through :meth:`send_batch`."""
        for chunk in chunked(items, chunk_size):
            self.send_batch([key for key, _ in chunk], [value for _, value in chunk])

    def collect(self) -> tuple[list[Sketch], list[dict]]:
        """Snapshot every worker and restore the states into local replicas.

        Returns ``(shard_sketches, metas)`` in shard order.  Each restored
        replica is bit-identical to the worker's sketch, so the pair
        (replicas, router seed) reconstructs the full sharded state locally.
        """
        for channel in self.channels:
            channel.send(encode_frame(MSG_SNAPSHOT_REQUEST))
        sketches: list[Sketch] = []
        metas: list[dict] = []
        for shard_id, channel in enumerate(self.channels):
            frame = channel.recv()
            if frame is None:
                raise WireFormatError(f"worker {shard_id} closed before sending a snapshot")
            msg_type, payload = decode_frame(frame)
            if msg_type != MSG_SNAPSHOT:
                raise WireFormatError(
                    f"expected SNAPSHOT from worker {shard_id}, got message type {msg_type}"
                )
            state, algorithm, meta = decode_state(payload)
            if algorithm != self.algorithm:
                raise WireFormatError(
                    f"worker {shard_id} snapshot is for {algorithm!r}, "
                    f"expected {self.algorithm!r}"
                )
            if meta.get("items") != int(self.items_per_worker[shard_id]):
                raise WireFormatError(
                    f"worker {shard_id} ingested {meta.get('items')} items, "
                    f"coordinator routed {int(self.items_per_worker[shard_id])}"
                )
            replica = WorkerConfig(
                self.algorithm, self.memory_bytes, self.seed, shard_id,
                self.workers, self.sketch_kwargs,
            ).build()
            replica.state_restore(state)
            sketches.append(replica)
            metas.append(meta)
        return sketches, metas

    def shutdown(self) -> None:
        """Tell every worker to exit and close the collector-side channels."""
        for channel in self.channels:
            try:
                channel.send(encode_frame(MSG_SHUTDOWN))
            except (WireFormatError, OSError):
                pass  # already closed
        self.transport.close()
        self.transport.join(timeout=30)

    @property
    def bytes_sent(self) -> int:
        return sum(channel.bytes_sent for channel in self.channels)

    @property
    def bytes_received(self) -> int:
        return sum(channel.bytes_received for channel in self.channels)


def tree_merge(sketches: Sequence[Sketch]) -> Sketch:
    """Merge sketches pairwise in rounds (the collector-tree reduction).

    Mutates the left operand of every pair and returns the root.  Pass
    copies to keep the inputs intact.  For the exactly-mergeable families
    the result equals any merge order (addition commutes); the tree shape is
    the latency win for a multi-collector deployment: ``ceil(log2 S)`` merge
    rounds instead of ``S - 1`` sequential merges.
    """
    nodes = list(sketches)
    if not nodes:
        raise ValueError("tree_merge needs at least one sketch")
    while len(nodes) > 1:
        merged_round: list[Sketch] = []
        for left_index in range(0, len(nodes) - 1, 2):
            merged_round.append(nodes[left_index].merge(nodes[left_index + 1]))
        if len(nodes) % 2:
            merged_round.append(nodes[-1])
        nodes = merged_round
    return nodes[0]


@dataclass(frozen=True)
class DistributedIngestResult:
    """Everything one distributed ingest run produced.

    ``shard_sketches`` are the restored worker replicas (shard order);
    ``merged`` is their tree-merge — for CM/Count bit-identical to a single
    sketch fed the whole stream, for CU an upper bound with the documented
    merge semantics, and ``None`` for snapshotable-but-unmergeable families
    (ReliableSketch), whose shards have no lossless combination.
    ``sharded()`` wraps the replicas back into a routed
    :class:`ShardedSketch`, which answers queries bit-identically to local
    sharded ingest for *every* supported family (CU and ReliableSketch
    included: per-shard states are exact; only the cross-shard merge is
    weaker or absent).
    """

    algorithm: str
    transport: str
    workers: int
    seed: int
    memory_bytes: float
    shard_sketches: list[Sketch]
    worker_metas: list[dict]
    merged: Sketch | None
    items_per_worker: tuple[int, ...]
    ingest_seconds: float
    merge_seconds: float
    bytes_sent: int
    bytes_received: int

    @property
    def total_items(self) -> int:
        return int(sum(self.items_per_worker))

    def sharded(self) -> ShardedSketch:
        """The restored shards behind the canonical router (routed queries)."""
        sharded = ShardedSketch(self.shard_sketches, seed=self.seed)
        sharded.items_per_shard[:] = np.asarray(self.items_per_worker, dtype=np.int64)
        return sharded


def run_distributed_ingest(
    algorithm: str,
    memory_bytes: float,
    items: Iterable,
    *,
    workers: int = 2,
    transport: str | Transport = "inproc",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    seed: int = 0,
    sketch_kwargs: dict | None = None,
) -> DistributedIngestResult:
    """Ingest ``items`` over ``workers`` remote shards and collect the merge.

    ``transport`` is a backend name (``inproc``/``pipe``/``tcp``) or a
    pre-built :class:`Transport` (e.g. a ``TcpTransport`` awaiting external
    workers).  Either way the transport is *consumed*: a Transport launches
    workers once, and this function shuts them down and closes every channel
    before returning — pass a fresh instance per run.  ``items`` is any
    iterable of ``(key, value)`` pairs — a
    :class:`~repro.streams.items.Stream` works as-is.
    """
    backend = create_transport(transport) if isinstance(transport, str) else transport
    coordinator = IngestCoordinator(
        algorithm, memory_bytes, workers, backend, seed=seed, sketch_kwargs=sketch_kwargs
    )
    try:
        start = time.perf_counter()
        coordinator.send_stream(items, chunk_size=chunk_size)
        shard_sketches, metas = coordinator.collect()
        ingest_seconds = time.perf_counter() - start
        bytes_sent = coordinator.bytes_sent
        bytes_received = coordinator.bytes_received
    finally:
        coordinator.shutdown()

    start = time.perf_counter()
    if shard_sketches[0].mergeable:
        merged = tree_merge([copy.deepcopy(sketch) for sketch in shard_sketches])
    else:
        # Snapshotable but order-dependent (ReliableSketch): the routed
        # sharded() view is the queryable result; there is no lossless merge.
        merged = None
    merge_seconds = time.perf_counter() - start

    return DistributedIngestResult(
        algorithm=algorithm,
        transport=backend.name,
        workers=workers,
        seed=seed,
        memory_bytes=memory_bytes,
        shard_sketches=shard_sketches,
        worker_metas=metas,
        merged=merged,
        items_per_worker=tuple(int(count) for count in coordinator.items_per_worker),
        ingest_seconds=ingest_seconds,
        merge_seconds=merge_seconds,
        bytes_sent=bytes_sent,
        bytes_received=bytes_received,
    )

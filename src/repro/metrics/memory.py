"""Byte-accurate memory accounting for sketches.

Every comparison in the paper fixes a memory budget (for example 1 MB) and
sizes each algorithm so that its data structure fits in that budget, using
the bit widths of the C++ implementation (32-bit counters, 32-bit key
fingerprints, 16-bit NO counters, ...).  :class:`MemoryModel` expresses a
sketch's per-entry layout so the constructors can convert "bytes of memory"
into "number of counters / buckets" the same way the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass

BYTES_PER_KB = 1024
BYTES_PER_MB = 1024 * 1024


def mb(amount: float) -> int:
    """Convert megabytes to bytes (paper memory sizes are quoted in MB)."""
    return int(amount * BYTES_PER_MB)


def kb(amount: float) -> int:
    """Convert kilobytes to bytes (the testbed SRAM sizes are quoted in KB)."""
    return int(amount * BYTES_PER_KB)


@dataclass(frozen=True)
class FieldSpec:
    """One field of an entry: a name and its width in bits."""

    name: str
    bits: int

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise ValueError("field width must be positive")


@dataclass(frozen=True)
class MemoryModel:
    """Per-entry memory layout of a sketch.

    ``entries_for(budget)`` answers "how many entries fit in this many
    bytes", and ``bytes_for(entries)`` the converse — both used by sketch
    constructors and by the memory-consumption experiments (Figure 5).
    """

    fields: tuple[FieldSpec, ...]

    @property
    def bits_per_entry(self) -> int:
        """Total width of one entry in bits."""
        return sum(field.bits for field in self.fields)

    @property
    def bytes_per_entry(self) -> float:
        """Total width of one entry in bytes (may be fractional)."""
        return self.bits_per_entry / 8

    def entries_for(self, budget_bytes: float) -> int:
        """Largest number of entries that fit in ``budget_bytes``."""
        if budget_bytes <= 0:
            raise ValueError("memory budget must be positive")
        return max(1, int(budget_bytes * 8 // self.bits_per_entry))

    def bytes_for(self, entries: int) -> float:
        """Memory required by ``entries`` entries, in bytes."""
        if entries < 0:
            raise ValueError("entry count must be non-negative")
        return entries * self.bits_per_entry / 8


#: Layouts used by the paper's C++ implementation (§6.1.1).
COUNTER_32 = MemoryModel((FieldSpec("counter", 32),))
RELIABLE_BUCKET = MemoryModel(
    (FieldSpec("id", 32), FieldSpec("yes", 32), FieldSpec("no", 16))
)
KEY_COUNTER_PAIR = MemoryModel((FieldSpec("key", 32), FieldSpec("counter", 32)))
ELASTIC_HEAVY_BUCKET = MemoryModel(
    (FieldSpec("key", 32), FieldSpec("positive", 32), FieldSpec("negative", 32), FieldSpec("flag", 8))
)
SPACESAVING_ENTRY = MemoryModel(
    # key + counter + overestimate + heap/linked-list pointer overhead
    (FieldSpec("key", 32), FieldSpec("counter", 32), FieldSpec("error", 32), FieldSpec("pointers", 64))
)

"""Accuracy metrics: #Outliers, AAE and ARE.

Definitions follow §6.1.3 of the paper verbatim:

* **#Outliers** — number of keys whose absolute estimation error exceeds the
  user-defined tolerance Λ.
* **AAE** — mean absolute error over the evaluated key set.
* **ARE** — mean relative error over the evaluated key set.

The evaluated key set is all distinct keys of the stream by default; the
frequent-key experiments (Figure 7) restrict it to keys with true value sum
above a threshold ``T``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping


@dataclass
class AccuracyReport:
    """Full per-run accuracy summary.

    Attributes
    ----------
    outliers:
        Number of keys with absolute error greater than ``tolerance``.
    aae / are:
        Average absolute / relative error over the evaluated keys.
    max_error:
        Largest absolute error observed (useful for the error-distribution
        experiment of Figure 19b).
    evaluated_keys:
        How many keys were compared.
    tolerance:
        The Λ used for outlier counting.
    outlier_keys:
        The actual offending keys (capped by the caller if needed).
    """

    outliers: int
    aae: float
    are: float
    max_error: int
    evaluated_keys: int
    tolerance: float
    outlier_keys: list = field(default_factory=list)

    @property
    def zero_outliers(self) -> bool:
        """True when every key's error is within the tolerance."""
        return self.outliers == 0


def _errors(
    true_counts: Mapping[object, int],
    estimate: Callable[[object], float],
    keys: Iterable[object] | None = None,
) -> list[tuple[object, float, float]]:
    """Return ``(key, true, error)`` triples for the evaluated key set."""
    evaluated = true_counts.keys() if keys is None else keys
    rows: list[tuple[object, float, float]] = []
    for key in evaluated:
        truth = true_counts.get(key, 0)
        rows.append((key, truth, abs(estimate(key) - truth)))
    return rows


def evaluate_accuracy(
    true_counts: Mapping[object, int],
    estimate: Callable[[object], float],
    tolerance: float,
    keys: Iterable[object] | None = None,
    keep_outlier_keys: int = 32,
) -> AccuracyReport:
    """Compare a sketch's estimates against the ground truth.

    Parameters
    ----------
    true_counts:
        Exact per-key value sums (``Stream.counts()``).
    estimate:
        Callable returning the sketch's estimate for a key (``sketch.query``).
    tolerance:
        The error tolerance Λ used for outlier counting.
    keys:
        Optional restriction of the evaluated key set (Figure 7 uses the
        frequent keys only).
    keep_outlier_keys:
        Retain at most this many offending keys in the report, for debugging.
    """
    rows = _errors(true_counts, estimate, keys)
    if not rows:
        return AccuracyReport(0, 0.0, 0.0, 0, 0, tolerance)

    outlier_keys = [key for key, _, err in rows if err > tolerance]
    abs_errors = [err for _, _, err in rows]
    rel_errors = [err / truth if truth > 0 else float(err) for _, truth, err in rows]
    return AccuracyReport(
        outliers=len(outlier_keys),
        aae=sum(abs_errors) / len(rows),
        are=sum(rel_errors) / len(rows),
        max_error=int(max(abs_errors)),
        evaluated_keys=len(rows),
        tolerance=tolerance,
        outlier_keys=outlier_keys[:keep_outlier_keys],
    )


def count_outliers(
    true_counts: Mapping[object, int],
    estimate: Callable[[object], float],
    tolerance: float,
    keys: Iterable[object] | None = None,
) -> int:
    """Shortcut returning only the #Outliers metric."""
    return evaluate_accuracy(true_counts, estimate, tolerance, keys).outliers


def average_absolute_error(
    true_counts: Mapping[object, int],
    estimate: Callable[[object], float],
    keys: Iterable[object] | None = None,
) -> float:
    """Shortcut returning only the AAE metric."""
    rows = _errors(true_counts, estimate, keys)
    if not rows:
        return 0.0
    return sum(err for _, _, err in rows) / len(rows)


def average_relative_error(
    true_counts: Mapping[object, int],
    estimate: Callable[[object], float],
    keys: Iterable[object] | None = None,
) -> float:
    """Shortcut returning only the ARE metric."""
    rows = _errors(true_counts, estimate, keys)
    if not rows:
        return 0.0
    rel = [err / truth if truth > 0 else float(err) for _, truth, err in rows]
    return sum(rel) / len(rel)

"""Metrics used by the paper's evaluation (§6.1.3).

Four metrics are reported throughout §6: the number of outliers (keys whose
absolute error exceeds the tolerance Λ), the average absolute error (AAE),
the average relative error (ARE) and throughput.  This package also provides
byte-accurate memory accounting so that every sketch in a comparison is
configured from the same memory budget, exactly as in the paper.
"""

from repro.metrics.accuracy import (
    AccuracyReport,
    evaluate_accuracy,
    count_outliers,
    average_absolute_error,
    average_relative_error,
)
from repro.metrics.throughput import (
    LatencySummary,
    ShardLoadReport,
    ThroughputResult,
    measure_throughput,
    measure_batch_throughput,
    shard_load_report,
)
from repro.metrics.memory import (
    BYTES_PER_MB,
    BYTES_PER_KB,
    mb,
    kb,
    FieldSpec,
    MemoryModel,
)

__all__ = [
    "AccuracyReport",
    "evaluate_accuracy",
    "count_outliers",
    "average_absolute_error",
    "average_relative_error",
    "LatencySummary",
    "ShardLoadReport",
    "ThroughputResult",
    "measure_throughput",
    "measure_batch_throughput",
    "shard_load_report",
    "BYTES_PER_MB",
    "BYTES_PER_KB",
    "mb",
    "kb",
    "FieldSpec",
    "MemoryModel",
]

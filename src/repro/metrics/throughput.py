"""Throughput measurement (paper metric: million operations per second).

The paper reports Mpps of the C++ implementations; absolute Python numbers
are orders of magnitude lower and not comparable, so the experiment harness
only ever interprets these results *relatively* between algorithms run under
identical conditions (same stream, same process, back to back).

Two measurement modes exist since the batch datapath rework:

* :func:`measure_throughput` — one call of ``operation`` per input element
  (the scalar datapath);
* :func:`measure_batch_throughput` — inputs are chunked and ``operation``
  receives whole chunks (the batch datapath); the result still counts
  *items*, not chunks, so the two modes are directly comparable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence


@dataclass(frozen=True)
class ThroughputResult:
    """Result of one throughput measurement."""

    operations: int
    seconds: float

    @property
    def ops_per_second(self) -> float:
        """Raw operations per second.

        Zero operations yield ``0.0`` (an empty measurement has no
        throughput); a positive operation count against a timer reading of
        zero (possible at very coarse timer resolution) yields ``inf``.
        """
        if self.operations == 0:
            return 0.0
        if self.seconds <= 0:
            return float("inf")
        return self.operations / self.seconds

    @property
    def mops(self) -> float:
        """Million operations per second (the paper's Mpps unit).

        Inherits the degenerate-case behaviour of :attr:`ops_per_second`
        (0.0 for empty measurements, inf for zero elapsed time).
        """
        return self.ops_per_second / 1e6


@dataclass(frozen=True)
class LatencySummary:
    """Percentile summary of per-operation latencies, in milliseconds.

    The serving layer's closed-loop measurements (one outstanding request)
    report p50/p99 of *service* latency — there is no queueing delay to
    conflate.  An empty sample yields all-zero summaries rather than NaNs,
    so JSON artifacts stay clean for write-only runs.
    """

    count: int
    p50_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float

    @classmethod
    def from_seconds(cls, latencies_seconds: Sequence[float]) -> "LatencySummary":
        """Summarise raw per-operation wall-clock samples (seconds)."""
        import numpy as np

        if not len(latencies_seconds):
            return cls(count=0, p50_ms=0.0, p99_ms=0.0, mean_ms=0.0, max_ms=0.0)
        samples_ms = np.asarray(latencies_seconds, dtype=np.float64) * 1e3
        return cls(
            count=int(samples_ms.size),
            p50_ms=float(np.percentile(samples_ms, 50)),
            p99_ms=float(np.percentile(samples_ms, 99)),
            mean_ms=float(samples_ms.mean()),
            max_ms=float(samples_ms.max()),
        )


@dataclass(frozen=True)
class ShardLoadReport:
    """Per-shard ingest accounting of one sharded measurement.

    ``items_per_shard`` is the number of items each shard ingested (the
    ``ShardedSketch.items_per_shard`` series) and ``seconds`` the wall-clock
    of the whole sharded run.  Per-shard throughput attributes each shard's
    item count to the common wall-clock — the rate at which that shard's
    partition was ingested — so the figures stay comparable with the
    unsharded items-per-second numbers.
    """

    items_per_shard: tuple[int, ...]
    seconds: float

    @property
    def total_items(self) -> int:
        return sum(self.items_per_shard)

    @property
    def per_shard_ips(self) -> tuple[float, ...]:
        """Items/second contributed by each shard over the measured window."""
        if self.seconds <= 0:
            return tuple(float("inf") if count else 0.0 for count in self.items_per_shard)
        return tuple(count / self.seconds for count in self.items_per_shard)

    @property
    def load_imbalance(self) -> float:
        """Max/mean shard load — 1.0 is a perfectly balanced partition.

        The partition hash splits keys, not items, so a skewed stream (one
        elephant key) shows up here as imbalance; the paper-style Zipf
        workloads typically stay within a few percent of 1.0.
        """
        if not self.items_per_shard or self.total_items == 0:
            return 1.0
        mean = self.total_items / len(self.items_per_shard)
        return max(self.items_per_shard) / mean


def shard_load_report(items_per_shard: Sequence[int], seconds: float) -> ShardLoadReport:
    """Build a :class:`ShardLoadReport` from raw shard counts and wall-clock."""
    return ShardLoadReport(tuple(int(count) for count in items_per_shard), seconds)


def measure_throughput(operation: Callable[[object], object], inputs: Iterable[object]) -> ThroughputResult:
    """Apply ``operation`` to every element of ``inputs`` and time the loop.

    The inputs are materialised before timing starts so that generator cost is
    excluded from the measurement.
    """
    materialised = list(inputs)
    start = time.perf_counter()
    for element in materialised:
        operation(element)
    elapsed = time.perf_counter() - start
    return ThroughputResult(operations=len(materialised), seconds=elapsed)


def measure_batch_throughput(
    operation: Callable[[Sequence[object]], object],
    inputs: Iterable[object],
    chunk_size: int,
) -> ThroughputResult:
    """Chunk ``inputs`` and time one ``operation`` call per chunk.

    ``operation`` receives each chunk as a list (e.g. a lambda forwarding to
    ``Sketch.insert_batch``).  Inputs are materialised and chunked before
    timing starts, mirroring :func:`measure_throughput`, and the reported
    operation count is the number of *items* so scalar and batch results are
    directly comparable.
    """
    from repro.streams.items import chunked

    materialised = list(inputs)
    chunks = list(chunked(materialised, chunk_size))
    start_time = time.perf_counter()
    for chunk in chunks:
        operation(chunk)
    elapsed = time.perf_counter() - start_time
    return ThroughputResult(operations=len(materialised), seconds=elapsed)

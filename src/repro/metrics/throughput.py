"""Throughput measurement (paper metric: million operations per second).

The paper reports Mpps of the C++ implementations; absolute Python numbers
are orders of magnitude lower and not comparable, so the experiment harness
only ever interprets these results *relatively* between algorithms run under
identical conditions (same stream, same process, back to back).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable


@dataclass(frozen=True)
class ThroughputResult:
    """Result of one throughput measurement."""

    operations: int
    seconds: float

    @property
    def ops_per_second(self) -> float:
        """Raw operations per second."""
        if self.seconds <= 0:
            return float("inf")
        return self.operations / self.seconds

    @property
    def mops(self) -> float:
        """Million operations per second (the paper's Mpps unit)."""
        return self.ops_per_second / 1e6


def measure_throughput(operation: Callable[[object], object], inputs: Iterable[object]) -> ThroughputResult:
    """Apply ``operation`` to every element of ``inputs`` and time the loop.

    The inputs are materialised before timing starts so that generator cost is
    excluded from the measurement.
    """
    materialised = list(inputs)
    start = time.perf_counter()
    for element in materialised:
        operation(element)
    elapsed = time.perf_counter() - start
    return ThroughputResult(operations=len(materialised), seconds=elapsed)

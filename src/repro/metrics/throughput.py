"""Throughput measurement (paper metric: million operations per second).

The paper reports Mpps of the C++ implementations; absolute Python numbers
are orders of magnitude lower and not comparable, so the experiment harness
only ever interprets these results *relatively* between algorithms run under
identical conditions (same stream, same process, back to back).

Two measurement modes exist since the batch datapath rework:

* :func:`measure_throughput` — one call of ``operation`` per input element
  (the scalar datapath);
* :func:`measure_batch_throughput` — inputs are chunked and ``operation``
  receives whole chunks (the batch datapath); the result still counts
  *items*, not chunks, so the two modes are directly comparable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence


@dataclass(frozen=True)
class ThroughputResult:
    """Result of one throughput measurement."""

    operations: int
    seconds: float

    @property
    def ops_per_second(self) -> float:
        """Raw operations per second.

        Zero operations yield ``0.0`` (an empty measurement has no
        throughput); a positive operation count against a timer reading of
        zero (possible at very coarse timer resolution) yields ``inf``.
        """
        if self.operations == 0:
            return 0.0
        if self.seconds <= 0:
            return float("inf")
        return self.operations / self.seconds

    @property
    def mops(self) -> float:
        """Million operations per second (the paper's Mpps unit).

        Inherits the degenerate-case behaviour of :attr:`ops_per_second`
        (0.0 for empty measurements, inf for zero elapsed time).
        """
        return self.ops_per_second / 1e6


def measure_throughput(operation: Callable[[object], object], inputs: Iterable[object]) -> ThroughputResult:
    """Apply ``operation`` to every element of ``inputs`` and time the loop.

    The inputs are materialised before timing starts so that generator cost is
    excluded from the measurement.
    """
    materialised = list(inputs)
    start = time.perf_counter()
    for element in materialised:
        operation(element)
    elapsed = time.perf_counter() - start
    return ThroughputResult(operations=len(materialised), seconds=elapsed)


def measure_batch_throughput(
    operation: Callable[[Sequence[object]], object],
    inputs: Iterable[object],
    chunk_size: int,
) -> ThroughputResult:
    """Chunk ``inputs`` and time one ``operation`` call per chunk.

    ``operation`` receives each chunk as a list (e.g. a lambda forwarding to
    ``Sketch.insert_batch``).  Inputs are materialised and chunked before
    timing starts, mirroring :func:`measure_throughput`, and the reported
    operation count is the number of *items* so scalar and batch results are
    directly comparable.
    """
    from repro.streams.items import chunked

    materialised = list(inputs)
    chunks = list(chunked(materialised, chunk_size))
    start_time = time.perf_counter()
    for chunk in chunks:
        operation(chunk)
    elapsed = time.perf_counter() - start_time
    return ThroughputResult(operations=len(materialised), seconds=elapsed)

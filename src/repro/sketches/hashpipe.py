"""HashPipe (Sivaraman et al., SOSR 2017).

A heavy-hitter data structure designed for programmable switch pipelines,
used as a competitor in Figures 7 and 10.  The structure is a pipeline of
``d`` stages, each an array of (key, counter) slots:

* Stage 1 always installs the arriving key, evicting the incumbent.
* Later stages install the carried (evicted) key only if the slot is empty or
  holds a smaller counter; otherwise the carried key continues down the
  pipeline and is dropped after the last stage.

The paper uses ``d = 6`` stages as recommended by the original authors.
"""

from __future__ import annotations

from repro.hashing import HashFamily
from repro.metrics.memory import KEY_COUNTER_PAIR
from repro.sketches.base import Sketch


class _Slot:
    """One (key, counter) slot of a pipeline stage."""

    __slots__ = ("key", "count")

    def __init__(self) -> None:
        self.key = None
        self.count = 0


class HashPipe(Sketch):
    """HashPipe sized from a memory budget."""

    name = "HashPipe"

    def __init__(self, memory_bytes: float, depth: int = 6, seed: int = 0) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        total_slots = KEY_COUNTER_PAIR.entries_for(memory_bytes)
        self.depth = depth
        self.width = max(1, total_slots // depth)
        self._family = HashFamily(seed)
        self._hashes = self._family.draw_many(depth, self.width)
        self._stages = [[_Slot() for _ in range(self.width)] for _ in range(depth)]

    def insert(self, key: object, value: int = 1) -> None:
        self._check_insert(value)
        # Stage 1: always insert, evicting whatever was there.
        slot = self._stages[0][self._hashes[0](key)]
        if slot.key == key:
            slot.count += value
            return
        carried_key, carried_count = slot.key, slot.count
        slot.key, slot.count = key, value
        if carried_key is None:
            return
        # Later stages: merge on match, settle into empty or smaller slots,
        # otherwise keep carrying the evicted key down the pipeline.
        for stage, hash_fn in zip(self._stages[1:], self._hashes[1:]):
            slot = stage[hash_fn(carried_key)]
            if slot.key == carried_key:
                slot.count += carried_count
                return
            if slot.key is None:
                slot.key, slot.count = carried_key, carried_count
                return
            if slot.count < carried_count:
                slot.key, slot.count, carried_key, carried_count = (
                    carried_key,
                    carried_count,
                    slot.key,
                    slot.count,
                )
        # The final carried key falls off the pipeline and is forgotten.

    def query(self, key: object) -> int:
        # A key may be resident in several stages (duplicates are inherent to
        # HashPipe); the estimate is the sum of all matching slots.
        total = 0
        for stage, hash_fn in zip(self._stages, self._hashes):
            slot = stage[hash_fn(key)]
            if slot.key == key:
                total += slot.count
        return total

    def memory_bytes(self) -> float:
        return KEY_COUNTER_PAIR.bytes_for(self.depth * self.width)

    def hash_calls(self) -> int:
        return self._family.total_calls()

    def reset_hash_calls(self) -> None:
        self._family.reset_counters()

    def parameters(self) -> dict:
        return {"depth": self.depth, "width": self.width}

"""HashPipe (Sivaraman et al., SOSR 2017).

A heavy-hitter data structure designed for programmable switch pipelines,
used as a competitor in Figures 7 and 10.  The structure is a pipeline of
``d`` stages, each an array of (key, counter) slots:

* Stage 1 always installs the arriving key, evicting the incumbent.
* Later stages install the carried (evicted) key only if the slot is empty or
  holds a smaller counter; otherwise the carried key continues down the
  pipeline and is dropped after the last stage.

The paper uses ``d = 6`` stages as recommended by the original authors.

The state is struct-of-arrays (``int64`` counters plus interned key ids,
with the key objects mirrored for scalar queries), and both datapaths run
through the shared kernel transitions (:mod:`repro.kernels`).  Because the
eviction walk hashes the *carried* (evicted) key — not the arriving one —
the sketch pre-computes every interned key's cell at every stage in a
``(depth, capacity)`` cache, filled from the interner's assignment hook;
hash-call counters are advanced exactly where the legacy per-slot datapath
evaluated a hash (once at stage 1 per insert, once per walk stage entered).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.hashing import EncodedKeyBatch, HashFamily, key_to_bytes, murmur3_32
from repro.hashing.families import keys_from_arrays, keys_to_arrays
from repro.kernels import resolve_backend
from repro.kernels.interning import KeyInterner
from repro.kernels.scalar import EMPTY_ID, hashpipe_apply
from repro.metrics.memory import KEY_COUNTER_PAIR
from repro.sketches.base import Sketch

#: Initial column capacity of the per-stage cell cache.
_INITIAL_CACHE_CAPACITY = 1024


class HashPipe(Sketch):
    """HashPipe sized from a memory budget.

    Parameters mirror :class:`repro.sketches.coco.CocoSketch`; ``depth``
    defaults to the paper's 6 stages.
    """

    name = "HashPipe"
    snapshotable = True

    def __init__(
        self,
        memory_bytes: float,
        depth: int = 6,
        seed: int = 0,
        kernel: str | None = None,
        max_interned_keys: int | None = None,
        interner_eviction: str | None = None,
    ) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        total_slots = KEY_COUNTER_PAIR.entries_for(memory_bytes)
        self.depth = depth
        self.width = max(1, total_slots // depth)
        self._family = HashFamily(seed)
        self._hashes = self._family.draw_many(depth, self.width)
        self._key_ids = np.full((depth, self.width), EMPTY_ID, dtype=np.int64)
        self._counts = np.zeros((depth, self.width), dtype=np.int64)
        self._keys: list[list[object | None]] = [
            [None] * self.width for _ in range(depth)
        ]
        self._kernel = resolve_backend(kernel)
        self.max_interned_keys = max_interned_keys
        self.interner_eviction = interner_eviction
        self._stage_cells = np.zeros((depth, 0), dtype=np.int64)
        self._interner = self._new_interner()

    def _new_interner(self) -> KeyInterner:
        interner = KeyInterner(
            max_keys=self.max_interned_keys, evict=self.interner_eviction
        )
        interner.on_assign = self._cache_stage_cells
        return interner

    def _cache_stage_cells(self, key: object, item_id: int) -> None:
        """Record ``key``'s cell at every stage under its interned id.

        Runs uncounted: the cache is a precomputation artefact of the
        struct-of-arrays port, not a hash evaluation the pipeline model
        performs — ``calls`` is advanced where the legacy datapath hashed.
        """
        cache = self._grow_cache(item_id)
        data = key_to_bytes(key)
        for row, hash_fn in enumerate(self._hashes):
            cache[row, item_id] = murmur3_32(data, hash_fn.seed) % self.width

    def _grow_cache(self, item_id: int) -> np.ndarray:
        """Ensure the cell cache covers ``item_id``; return it."""
        cache = self._stage_cells
        if item_id >= cache.shape[1]:
            capacity = max(_INITIAL_CACHE_CAPACITY, 2 * cache.shape[1], item_id + 1)
            grown = np.empty((self.depth, capacity), dtype=np.int64)
            grown[:, : cache.shape[1]] = cache
            self._stage_cells = cache = grown
        return cache

    # ------------------------------------------------------------- inserts
    def insert(self, key: object, value: int = 1) -> None:
        self._check_insert(value)
        item_id = self._interner.intern(key)
        self._hashes[0].calls += 1
        changed, walk_stages = hashpipe_apply(
            self._key_ids, self._counts, self._stage_cells, item_id, value
        )
        for row in range(1, 1 + walk_stages):
            self._hashes[row].calls += 1
        if changed:
            id_to_key = self._interner.id_to_key
            for row, cell in changed:
                self._keys[row][cell] = id_to_key[self._key_ids[row, cell]]

    def insert_batch(
        self, keys: Sequence[object], values: Sequence[int] | int | None = None
    ) -> None:
        batch = EncodedKeyBatch(keys)
        value_array = self._batch_values(values, len(batch))
        if not len(batch):
            return
        # Fill the cell cache vectorized instead of per new key through the
        # assignment hook: same murmur values, scattered under the interned
        # ids.  The hook is suspended so new keys do not also pay the
        # scalar fill.  Without eviction, ids grow densely, so only the
        # batch's first-contact keys need hashing; an LRU interner can
        # recycle ids below the watermark, so it refills the whole batch
        # (idempotent for already-cached ids).
        interner = self._interner
        known_before = len(interner)
        interner.on_assign = None
        try:
            item_ids = interner.intern_batch(batch.keys, batch.int_key_array)
        finally:
            interner.on_assign = self._cache_stage_cells
        self._grow_cache(int(item_ids.max()))
        cache = self._stage_cells
        if interner.evict is None:
            fresh_pos = np.flatnonzero(item_ids >= known_before)
            if fresh_pos.size:
                new_ids, first_seen = np.unique(
                    item_ids[fresh_pos], return_index=True
                )
                first_pos = fresh_pos[first_seen]
                fill_batch = EncodedKeyBatch(
                    [batch.keys[i] for i in first_pos.tolist()]
                )
            else:
                new_ids, fill_batch = None, None
        else:
            new_ids, fill_batch = item_ids, batch
        if fill_batch is not None:
            for row, hash_fn in enumerate(self._hashes):
                cells_row = hash_fn.index_batch(fill_batch)
                # Uncounted, like the hook: cache fills are a precomputation
                # artefact, not datapath hashing (accounted for below).
                hash_fn.calls -= len(fill_batch)
                cache[row, new_ids] = cells_row
        rows, cells, stage_entries = self._kernel.hashpipe_update(
            self._key_ids, self._counts, cache, item_ids, value_array
        )
        self._hashes[0].calls += len(batch)
        for row in range(1, self.depth):
            self._hashes[row].calls += int(stage_entries[row])
        self._sync_changed(rows, cells)

    def _sync_changed(self, rows: np.ndarray, cells: np.ndarray) -> None:
        """Re-sync the object-key mirror at every (row, cell) the kernel changed."""
        if not rows.size:
            return
        id_to_key = self._interner.id_to_key
        key_table = self._keys
        rows_u, cells_u = np.divmod(np.unique(rows * self.width + cells), self.width)
        ids = self._key_ids[rows_u, cells_u].tolist()
        for row, cell, item_id in zip(rows_u.tolist(), cells_u.tolist(), ids):
            key_table[row][cell] = id_to_key[item_id]

    # ------------------------------------------------------------- queries
    def query(self, key: object) -> int:
        # A key may be resident in several stages (duplicates are inherent to
        # HashPipe); the estimate is the sum of all matching slots.
        total = 0
        for row, hash_fn in enumerate(self._hashes):
            cell = hash_fn(key)
            if self._keys[row][cell] == key:
                total += int(self._counts[row, cell])
        return total

    def query_batch(self, keys: Sequence[object]) -> np.ndarray:
        batch = EncodedKeyBatch(keys)
        ids = self._interner.lookup_batch(batch.keys, batch.int_key_array)
        totals = np.zeros(len(batch), dtype=np.int64)
        for row, hash_fn in enumerate(self._hashes):
            cells = hash_fn.index_batch(batch)
            matches = self._key_ids[row, cells] == ids
            totals += np.where(matches, self._counts[row, cells], 0)
        return totals

    # ----------------------------------------------------------- snapshots
    def state_snapshot(self) -> dict[str, np.ndarray]:
        resident = [key for row_keys in self._keys for key in row_keys]
        arrays = keys_to_arrays(resident)
        return {
            "counts": self._counts.copy(),
            "key_tags": arrays["tags"],
            "key_lengths": arrays["lengths"],
            "key_blob": arrays["blob"],
        }

    def state_restore(self, state: dict[str, np.ndarray]) -> None:
        shape = (self.depth, self.width)
        slots = self.depth * self.width
        counts = self._check_snapshot_shape(state, "counts", shape).astype(np.int64)
        tags = self._check_snapshot_shape(state, "key_tags", (slots,))
        lengths = self._check_snapshot_shape(state, "key_lengths", (slots,))
        if "key_blob" not in state:
            raise ValueError("snapshot is missing the 'key_blob' array")
        resident = keys_from_arrays(tags, lengths, state["key_blob"])
        # Fresh cache first: the new interner's assignment hook refills it
        # as the resident keys are re-interned.
        self._stage_cells = np.zeros((self.depth, 0), dtype=np.int64)
        interner = self._new_interner()
        key_ids = np.full(shape, EMPTY_ID, dtype=np.int64)
        key_table: list[list[object | None]] = [
            [None] * self.width for _ in range(self.depth)
        ]
        for row in range(self.depth):
            row_keys = key_table[row]
            for cell in range(self.width):
                key = resident[row * self.width + cell]
                if key is not None:
                    key_ids[row, cell] = interner.intern(key)
                    row_keys[cell] = key
        self._counts = counts.copy()
        self._key_ids = key_ids
        self._keys = key_table
        self._interner = interner

    # -------------------------------------------------------- introspection
    def memory_bytes(self) -> float:
        return KEY_COUNTER_PAIR.bytes_for(self.depth * self.width)

    def hash_calls(self) -> int:
        return self._family.total_calls()

    def reset_hash_calls(self) -> None:
        self._family.reset_counters()

    def parameters(self) -> dict:
        return {"depth": self.depth, "width": self.width}

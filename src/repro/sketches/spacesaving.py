"""Space Saving (Metwally, Agrawal & El Abbadi 2005).

The heap-based baseline of the paper (Table 1, "Heap-based").  The structure
keeps at most ``capacity`` monitored keys; when a new key arrives while the
structure is full, the key with the smallest counter is evicted and the new
key inherits its counter (recorded as the per-key overestimation error).

The implementation uses a lazily-rebuilt binary heap over the monitored
entries, giving the ``O(log(N/Λ))`` insertion the paper attributes to
heap-based sketches for weighted updates.  The same class also serves as the
(d+1)-th emergency layer of ReliableSketch (Theorem 4).
"""

from __future__ import annotations

import heapq

from repro.metrics.memory import SPACESAVING_ENTRY
from repro.sketches.base import Sketch


class _Entry:
    """One monitored key: its counter and the error inherited at adoption."""

    __slots__ = ("key", "count", "error")

    def __init__(self, key: object, count: int, error: int) -> None:
        self.key = key
        self.count = count
        self.error = error


class SpaceSaving(Sketch):
    """Space Saving stream summary.

    Parameters
    ----------
    memory_bytes:
        Memory budget; converted to a number of monitored entries using the
        per-entry layout (key + counter + error + pointer overhead).
    capacity:
        Alternatively, the exact number of monitored keys (overrides the
        memory budget when given).
    """

    name = "SS"

    def __init__(self, memory_bytes: float | None = None, capacity: int | None = None) -> None:
        if capacity is None:
            if memory_bytes is None:
                raise ValueError("provide either memory_bytes or capacity")
            capacity = SPACESAVING_ENTRY.entries_for(memory_bytes)
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: dict[object, _Entry] = {}
        # Min-heap of (count, tiebreak, key); entries may be stale and are
        # validated against ``_entries`` when popped.
        self._heap: list[tuple[int, int, object]] = []
        self._tiebreak = 0
        self._comparisons = 0

    def _push(self, entry: _Entry) -> None:
        self._tiebreak += 1
        heapq.heappush(self._heap, (entry.count, self._tiebreak, entry.key))

    def _pop_minimum(self) -> _Entry:
        """Pop the live entry with the smallest counter, skipping stale heap rows."""
        while self._heap:
            count, _, key = heapq.heappop(self._heap)
            entry = self._entries.get(key)
            if entry is not None and entry.count == count:
                return entry
            self._comparisons += 1
        raise RuntimeError("heap empty while entries exist")  # pragma: no cover

    def insert(self, key: object, value: int = 1) -> None:
        self._check_insert(value)
        entry = self._entries.get(key)
        if entry is not None:
            entry.count += value
            self._push(entry)
            return
        if len(self._entries) < self.capacity:
            entry = _Entry(key, value, 0)
            self._entries[key] = entry
            self._push(entry)
            return
        victim = self._pop_minimum()
        # The newcomer adopts the victim's counter: classic Space Saving.
        del self._entries[victim.key]
        adopted = _Entry(key, victim.count + value, victim.count)
        self._entries[key] = adopted
        self._push(adopted)

    def query(self, key: object) -> int:
        entry = self._entries.get(key)
        if entry is not None:
            return entry.count
        # Unmonitored keys: the guaranteed upper bound is the minimum counter;
        # reporting 0 matches the paper's evaluation convention for SS, where
        # unmonitored keys are simply "not frequent".
        return 0

    def guaranteed_count(self, key: object) -> int:
        """Lower bound ``count - error`` for a monitored key, else 0."""
        entry = self._entries.get(key)
        if entry is None:
            return 0
        return entry.count - entry.error

    def monitored_keys(self) -> list[object]:
        """Keys currently tracked by the summary."""
        return list(self._entries.keys())

    def top_k(self, k: int) -> list[tuple[object, int]]:
        """The ``k`` largest monitored keys and their counters."""
        ranked = sorted(self._entries.values(), key=lambda e: e.count, reverse=True)
        return [(entry.key, entry.count) for entry in ranked[:k]]

    def memory_bytes(self) -> float:
        return SPACESAVING_ENTRY.bytes_for(self.capacity)

    def parameters(self) -> dict:
        return {"capacity": self.capacity}

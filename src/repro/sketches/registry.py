"""Registry of algorithms by the names used in the paper's figures.

The evaluation compares "Ours" (ReliableSketch, with and without the mice
filter) against CM/CU in fast and accurate variants, SpaceSaving, Elastic,
Coco, HashPipe and PRECISION.  ``build_sketch(name, memory_bytes, ...)``
constructs any of them with the per-algorithm parameters of §6.1.4, so
experiment code never hard-codes constructor details.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable

from repro.sketches.base import Sketch
from repro.sketches.cm import CountMinSketch
from repro.sketches.coco import CocoSketch
from repro.sketches.count import CountSketch
from repro.sketches.cu import CUSketch
from repro.sketches.elastic import ElasticSketch
from repro.sketches.frequent import FrequentSketch
from repro.sketches.hashpipe import HashPipe
from repro.sketches.precision import Precision
from repro.sketches.spacesaving import SpaceSaving


def _build_reliable(memory_bytes: float, seed: int, **kwargs) -> Sketch:
    # Imported lazily: repro.core depends on repro.sketches (CU mice filter,
    # SpaceSaving emergency layer), so a module-level import would be circular.
    from repro.core import ReliableSketch

    return ReliableSketch.from_memory(memory_bytes, seed=seed, **kwargs)


def _build_reliable_raw(memory_bytes: float, seed: int, **kwargs) -> Sketch:
    from repro.core import ReliableSketch

    kwargs.setdefault("use_mice_filter", False)
    return ReliableSketch.from_memory(memory_bytes, seed=seed, **kwargs)


_BUILDERS: dict[str, Callable[..., Sketch]] = {
    "Ours": _build_reliable,
    "Ours(Raw)": _build_reliable_raw,
    "CM_fast": lambda memory_bytes, seed, **kw: CountMinSketch(memory_bytes, depth=3, seed=seed, **kw),
    "CM_acc": lambda memory_bytes, seed, **kw: CountMinSketch(memory_bytes, depth=16, seed=seed, **kw),
    "CU_fast": lambda memory_bytes, seed, **kw: CUSketch(memory_bytes, depth=3, seed=seed, **kw),
    "CU_acc": lambda memory_bytes, seed, **kw: CUSketch(memory_bytes, depth=16, seed=seed, **kw),
    "Count": lambda memory_bytes, seed, **kw: CountSketch(memory_bytes, depth=3, seed=seed, **kw),
    "Elastic": lambda memory_bytes, seed, **kw: ElasticSketch(memory_bytes, seed=seed, **kw),
    "SS": lambda memory_bytes, seed, **kw: SpaceSaving(memory_bytes, **kw),
    "Frequent": lambda memory_bytes, seed, **kw: FrequentSketch(memory_bytes, **kw),
    "Coco": lambda memory_bytes, seed, **kw: CocoSketch(memory_bytes, depth=2, seed=seed, **kw),
    "HashPipe": lambda memory_bytes, seed, **kw: HashPipe(memory_bytes, depth=6, seed=seed, **kw),
    "PRECISION": lambda memory_bytes, seed, **kw: Precision(memory_bytes, depth=3, seed=seed, **kw),
}

#: Competitor sets of the paper's figures.
COMPETITORS: dict[str, tuple[str, ...]] = {
    # Figures 4-6: outlier counts across all keys.
    "outliers": ("Ours", "CM_acc", "CU_acc", "CM_fast", "CU_fast", "Elastic", "SS", "Coco"),
    # Figure 7: outliers among frequent keys (switch-oriented competitors).
    "frequent": ("Ours", "PRECISION", "Elastic", "HashPipe", "SS"),
    # Figures 8-9: average error.
    "error": ("Ours", "CM_fast", "CU_fast", "Elastic", "SS", "Coco"),
    # Figure 10: throughput.
    "speed": (
        "Ours",
        "Ours(Raw)",
        "CM_fast",
        "CU_fast",
        "CM_acc",
        "CU_acc",
        "SS",
        "Elastic",
        "Coco",
        "HashPipe",
        "PRECISION",
    ),
}


def competitor_names(group: str | None = None) -> tuple[str, ...]:
    """Algorithm names for a figure group, or every registered name."""
    if group is None:
        return tuple(_BUILDERS.keys())
    try:
        return COMPETITORS[group]
    except KeyError:
        raise ValueError(
            f"unknown competitor group {group!r}; expected one of {sorted(COMPETITORS)}"
        ) from None


def build_sketch(name: str, memory_bytes: float, seed: int = 0, **kwargs) -> Sketch:
    """Construct the algorithm registered under ``name`` for a memory budget."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown sketch {name!r}; expected one of {sorted(_BUILDERS)}"
        ) from None
    return builder(memory_bytes, seed, **kwargs)


@lru_cache(maxsize=None)
def is_mergeable(name: str) -> bool:
    """Whether the algorithm registered under ``name`` supports ``merge()``.

    Probed from a throwaway minimum-size instance so the capability can never
    drift from the sketch classes' own ``mergeable`` flags.
    """
    return bool(build_sketch(name, 1024.0, seed=0).mergeable)


def mergeable_names() -> tuple[str, ...]:
    """All registered algorithms whose shards can be merged losslessly."""
    return tuple(name for name in _BUILDERS if is_mergeable(name))


@lru_cache(maxsize=None)
def supports_snapshots(name: str) -> bool:
    """Whether ``name`` implements ``state_snapshot``/``state_restore``.

    Snapshot support is what distributed workers need to ship state and what
    the serving layer needs for cheap epoch publication; it is a strictly
    weaker requirement than ``is_mergeable`` (ReliableSketch snapshots but
    does not merge).  Probed like :func:`is_mergeable`, from a throwaway
    instance, so it can never drift from the classes' ``snapshotable`` flags.
    """
    return bool(build_sketch(name, 1024.0, seed=0).snapshotable)


def snapshot_names() -> tuple[str, ...]:
    """All registered algorithms whose state round-trips through snapshots."""
    return tuple(name for name in _BUILDERS if supports_snapshots(name))


@lru_cache(maxsize=None)
def supports_deltas(name: str) -> bool:
    """Whether ``name`` implements the ``subtract``/``state_delta`` contract.

    Delta support is what the temporal layer's sliding-window reads need: a
    sketch whose state is linear in the stream, so the difference of two
    epoch snapshots is exactly the sketch of the items between them.  A
    strictly stronger requirement than ``is_mergeable`` (CU merges as an
    upper bound but cannot subtract).  Probed like :func:`is_mergeable`,
    from a throwaway instance, so it can never drift from the classes'
    ``subtractable`` flags.
    """
    return bool(build_sketch(name, 1024.0, seed=0).subtractable)


def delta_names() -> tuple[str, ...]:
    """All registered algorithms whose epoch snapshots subtract exactly."""
    return tuple(name for name in _BUILDERS if supports_deltas(name))

"""Count-Min sketch (Cormode & Muthukrishnan 2005).

The canonical counter-based baseline of the paper.  ``d`` arrays of ``w``
32-bit counters; insertion adds the value to one counter per array, the query
reports the minimum.  The paper evaluates a fast variant (``d = 3``) and an
accurate variant (``d = 16``); :mod:`repro.sketches.registry` exposes both.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.hashing import EncodedKeyBatch, HashFamily
from repro.metrics.memory import COUNTER_32
from repro.sketches.base import Sketch


class CountMinSketch(Sketch):
    """Count-Min sketch sized from a memory budget.

    Counters live in a ``(depth, width)`` NumPy ``int64`` matrix, so the
    batch datapath is a pure array program: one vectorized hash per row plus
    ``np.add.at`` scatter-adds.  Addition commutes, so the batch insert is
    bit-identical to the scalar loop for any chunking.

    Parameters
    ----------
    memory_bytes:
        Total memory budget; split evenly across ``depth`` counter arrays.
    depth:
        Number of independent arrays (3 = "fast", 16 = "accurate" in §6.1.4).
    seed:
        Master seed of the hash family.
    """

    name = "CM"
    #: CM state is the sum of per-item updates, so merging is element-wise
    #: table addition and exactly equals one sketch fed both streams.
    mergeable = True
    #: The counter matrix is the whole mutable state (snapshot contract).
    snapshotable = True
    #: CM state is linear in the stream, so subtraction is the exact inverse
    #: of merging: a later table minus an earlier table of the same stream is
    #: bit-identical to a sketch fed only the items in between.
    subtractable = True

    def __init__(self, memory_bytes: float, depth: int = 3, seed: int = 0) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        total_counters = COUNTER_32.entries_for(memory_bytes)
        self.depth = depth
        self.width = max(1, total_counters // depth)
        self._family = HashFamily(seed)
        self._hashes = self._family.draw_many(depth, self.width)
        self._tables = np.zeros((depth, self.width), dtype=np.int64)

    def insert(self, key: object, value: int = 1) -> None:
        self._check_insert(value)
        for row, hash_fn in zip(self._tables, self._hashes):
            row[hash_fn(key)] += value

    def query(self, key: object) -> int:
        return int(
            min(row[hash_fn(key)] for row, hash_fn in zip(self._tables, self._hashes))
        )

    def insert_batch(self, keys: Sequence[object], values: Sequence[int] | int | None = None) -> None:
        batch = EncodedKeyBatch(keys)
        value_array = self._batch_values(values, len(batch))
        for row, hash_fn in zip(self._tables, self._hashes):
            np.add.at(row, hash_fn.index_batch(batch), value_array)

    def query_batch(self, keys: Sequence[object]) -> np.ndarray:
        batch = EncodedKeyBatch(keys)
        readings = np.stack(
            [row[hash_fn.index_batch(batch)] for row, hash_fn in zip(self._tables, self._hashes)]
        )
        return readings.min(axis=0)

    @property
    def _hash_seeds(self) -> tuple[int, ...]:
        return tuple(hash_fn.seed for hash_fn in self._hashes)

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        """Element-wise table addition; exact for any split of the stream."""
        self._check_merge_peer(other, ("depth", "width", "_hash_seeds"))
        self._tables += other._tables
        return self

    def subtract(self, other: "CountMinSketch") -> "CountMinSketch":
        """Element-wise table subtraction; exact inverse of :meth:`merge`."""
        self._check_merge_peer(other, ("depth", "width", "_hash_seeds"))
        self._tables -= other._tables
        return self

    def state_delta(self, earlier: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Current tables minus an earlier snapshot of the same stream."""
        tables = self._check_snapshot_shape(earlier, "tables", self._tables.shape)
        return {"tables": self._tables - tables.astype(np.int64)}

    def state_snapshot(self) -> dict[str, np.ndarray]:
        """The counter matrix — the whole mutable state of a CM sketch."""
        return {"tables": self._tables.copy()}

    def state_restore(self, state: dict[str, np.ndarray]) -> None:
        tables = self._check_snapshot_shape(state, "tables", self._tables.shape)
        self._tables = tables.astype(np.int64, copy=True)

    def memory_bytes(self) -> float:
        return COUNTER_32.bytes_for(self.depth * self.width)

    def hash_calls(self) -> int:
        return self._family.total_calls()

    def reset_hash_calls(self) -> None:
        self._family.reset_counters()

    def parameters(self) -> dict:
        return {"depth": self.depth, "width": self.width}

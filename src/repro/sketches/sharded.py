"""Sharded ingest: hash-partition a stream across per-shard sketches.

This is the distributed-ingest model the ROADMAP names as the follow-on to
the batch-first datapath: ``S`` identically-configured sketches ("shards")
each ingest the sub-stream of keys that a dedicated partition hash routes to
them.  Because the partition is *by key*, every key's entire update history
lands on exactly one shard, in stream order — which makes sharding exact for
order-dependent sketches too:

* Queries route to the owning shard, so a :class:`ShardedSketch` answers
  every query bit-identically to manually running ``S`` scalar sketches and
  routing each item by hand (the property pinned by
  ``tests/sketches/test_sharded.py``).
* For mergeable families (CM, Count), :meth:`ShardedSketch.merge_shards`
  folds the shards into one sketch by element-wise table addition, which is
  bit-identical to a single sketch fed the full stream — the "merge at the
  collector" step of a distributed deployment.

The batch datapath is preserved end to end: one vectorized murmur evaluation
partitions an :class:`~repro.hashing.EncodedKeyBatch`, and each shard
receives a routed *sub-batch* that reuses the parent batch's packed
encodings (``EncodedKeyBatch.take``), so keys are encoded once no matter how
many shards or hash arrays touch them.

:func:`partition_router` is the *single* definition of key->shard
placement: the distributed coordinator (:mod:`repro.distributed.ingest`)
routes with the same hash, which is what makes ingest on remote workers
bit-identical to this local wrapper.  ``docs/architecture.md`` (§2, §4)
diagrams both layers; ``docs/api.md`` states the public contract.
"""

from __future__ import annotations

import copy
from typing import Sequence

import numpy as np

from repro.hashing import EncodedKeyBatch
from repro.hashing.families import HashFunction, derive_seed, key_to_bytes
from repro.hashing.murmur import murmur3_32
from repro.sketches.base import Sketch, UnmergeableSketchError

#: Salt folded into the master seed for the partition hash, so the router is
#: independent of every hash the per-shard sketches draw from the same seed.
_PARTITION_SALT = 0x53484152  # "SHAR"


def partition_router(seed: int, shards: int) -> HashFunction:
    """The canonical key->shard partition hash for ``shards`` partitions.

    This single definition is shared by :class:`ShardedSketch` and the
    distributed coordinator (``repro.distributed.ingest``), so local sharding
    and remote ingest place every key on the same shard — the property that
    keeps remote ingest exact for order-dependent families (each key's whole
    history reaches one worker, in stream order).
    """
    if shards <= 0:
        raise ValueError("shard count must be positive")
    return HashFunction(derive_seed(seed ^ _PARTITION_SALT, 0), shards)


def partition_positions(router: HashFunction, batch: EncodedKeyBatch) -> list[np.ndarray]:
    """Per-shard position arrays of ``batch`` (ascending: stream order survives).

    One vectorized murmur evaluation of the whole batch, then one
    ``np.nonzero`` per shard; ``batch.take(positions)`` turns each position
    array into a routed sub-batch that reuses the parent's packed encodings.
    """
    shard_ids = router.index_batch(batch)
    return [
        np.nonzero(shard_ids == shard_id)[0] for shard_id in range(router.width)
    ]


class EpochRouter:
    """Epoch-versioned key->partition->owner routing for a dynamic fleet.

    The key->partition map is the *immutable* canonical partition hash
    (:func:`partition_router` over a fixed ``partitions`` count), so a key's
    partition never changes — that is what keeps every key's history on one
    continuous state lineage.  The partition->owner assignment is the
    *mutable* half: reassigning a partition bumps the routing ``epoch``,
    and every frame of the dynamic ingest protocol is fenced on that epoch
    (:mod:`repro.distributed.wire`).  Live resharding is therefore pure
    assignment surgery; the hash — and with it bit-identical placement
    against a static ``partitions``-shard fleet — never moves.
    """

    def __init__(self, seed: int, partitions: int, owners: Sequence[int]) -> None:
        if len(owners) != partitions:
            raise ValueError(
                f"owner table has {len(owners)} entries for {partitions} partitions"
            )
        self.hash = partition_router(seed, partitions)
        self.partitions = partitions
        self.assignment = [int(owner) for owner in owners]
        self.epoch = 0

    @classmethod
    def round_robin(cls, seed: int, partitions: int, workers: int) -> "EpochRouter":
        """The initial placement: partition ``p`` on worker ``p % workers``."""
        if workers <= 0:
            raise ValueError("worker count must be positive")
        return cls(seed, partitions, [p % workers for p in range(partitions)])

    def owner(self, partition: int) -> int:
        """The worker currently owning ``partition``."""
        return self.assignment[partition]

    def partitions_of(self, worker: int) -> tuple[int, ...]:
        """All partitions currently assigned to ``worker`` (ascending)."""
        return tuple(
            partition
            for partition, owner in enumerate(self.assignment)
            if owner == worker
        )

    def load(self) -> dict[int, int]:
        """Partitions per worker, for least-loaded placement decisions."""
        load: dict[int, int] = {}
        for owner in self.assignment:
            load[owner] = load.get(owner, 0) + 1
        return load

    def reassign(self, partition: int, owner: int) -> int:
        """Move ``partition`` to ``owner``; returns the bumped routing epoch.

        Every reassignment is one epoch flip — the fence that lets receivers
        reject frames routed under the old placement.
        """
        if not 0 <= partition < self.partitions:
            raise ValueError(f"partition {partition} out of range")
        self.assignment[partition] = int(owner)
        self.epoch += 1
        return self.epoch

    def route(self, batch: EncodedKeyBatch) -> list[tuple[int, int, np.ndarray]]:
        """Partition a batch: ``(owner, partition, positions)`` per non-empty partition.

        One vectorized hash evaluation; position arrays are ascending, so
        stream order survives within every partition — the same guarantee
        :class:`ShardedSketch` gives locally.
        """
        return [
            (self.assignment[partition], partition, positions)
            for partition, positions in enumerate(
                partition_positions(self.hash, batch)
            )
            if positions.size
        ]


class ShardedSketch(Sketch):
    """Hash-partitioned wrapper routing a stream across per-shard sketches.

    Parameters
    ----------
    shards:
        Pre-built per-shard sketches.  For :meth:`merge_shards` to be exact
        they must be structurally identical (same class, geometry and hash
        seeds); :meth:`from_registry` builds such replicas.
    seed:
        Master seed of the partition hash (independent of the shards' own
        hash families by construction).

    Every key is owned by exactly one shard (``shard_of``), and routed
    batches preserve stream order within each shard, so sharding is exact
    even for order-dependent sketches such as CU and ReliableSketch: each
    shard's state equals a scalar sketch fed that shard's sub-stream.
    """

    def __init__(self, shards: Sequence[Sketch], seed: int = 0) -> None:
        if not shards:
            raise ValueError("ShardedSketch needs at least one shard")
        self.shards: list[Sketch] = list(shards)
        self.seed = seed
        self.name = f"Sharded[{self.shards[0].name}x{len(self.shards)}]"
        self.mergeable = all(shard.mergeable for shard in self.shards)
        self.snapshotable = all(shard.snapshotable for shard in self.shards)
        self._router = partition_router(seed, len(self.shards))
        #: Items ingested per shard — the raw series behind per-shard
        #: throughput accounting (`repro.metrics.throughput.shard_load_report`).
        self.items_per_shard = np.zeros(len(self.shards), dtype=np.int64)

    @classmethod
    def from_registry(
        cls,
        name: str,
        memory_bytes: float,
        shards: int,
        seed: int = 0,
        **kwargs,
    ) -> "ShardedSketch":
        """Build ``shards`` identically-configured replicas of a registered sketch.

        Each shard gets the *full* ``memory_bytes`` budget and the same hash
        seed — the distributed model where every node runs the same sketch
        over its partition and results merge at a collector.  (Replicas, not
        splits: identical geometry is what makes ``merge_shards`` equal a
        single sketch fed the whole stream.)
        """
        if shards <= 0:
            raise ValueError("shard count must be positive")
        from repro.sketches.registry import build_sketch

        replicas = [
            build_sketch(name, memory_bytes, seed=seed, **kwargs)
            for _ in range(shards)
        ]
        return cls(replicas, seed=seed)

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def shard_of(self, key: object) -> int:
        """The shard owning ``key`` (introspection; no hash-call accounting)."""
        return murmur3_32(key_to_bytes(key), self._router.seed) % self.shard_count

    def _partition(self, batch: EncodedKeyBatch) -> list[np.ndarray]:
        """Per-shard position arrays (ascending, so stream order survives)."""
        return partition_positions(self._router, batch)

    def insert(self, key: object, value: int = 1) -> None:
        self._check_insert(value)
        shard_id = self._router(key)
        self.items_per_shard[shard_id] += 1
        self.shards[shard_id].insert(key, value)

    def query(self, key: object) -> int:
        return self.shards[self._router(key)].query(key)

    def insert_batch(self, keys: Sequence[object], values: Sequence[int] | int | None = None) -> None:
        batch = EncodedKeyBatch(keys)
        value_array = self._batch_values(values, len(batch))
        for shard_id, positions in enumerate(self._partition(batch)):
            if positions.size:
                self.items_per_shard[shard_id] += positions.size
                self.shards[shard_id].insert_batch(
                    batch.take(positions), value_array[positions]
                )

    def query_batch(self, keys: Sequence[object]) -> np.ndarray:
        batch = EncodedKeyBatch(keys)
        estimates = np.zeros(len(batch), dtype=np.int64)
        for shard_id, positions in enumerate(self._partition(batch)):
            if positions.size:
                estimates[positions] = self.shards[shard_id].query_batch(
                    batch.take(positions)
                )
        return estimates

    def merge_shards(self) -> Sketch:
        """Fold all shards into one sketch (mergeable families only).

        Returns a *new* sketch — the sharded instance stays usable.  For
        CM/Count the result is bit-identical to a single sketch that ingested
        the full stream; for CU it carries CU's weaker merge guarantee.
        """
        if not self.shards[0].mergeable:
            raise UnmergeableSketchError(
                f"{self.shards[0].name} shards cannot be merged losslessly; "
                "query the sharded sketch directly instead"
            )
        merged = copy.deepcopy(self.shards[0])
        for shard in self.shards[1:]:
            merged.merge(shard)
        return merged

    def merge(self, other: Sketch) -> "ShardedSketch":
        """Merge another ShardedSketch shard-by-shard (same router required).

        This is the tree-reduction step of a multi-collector deployment:
        two sharded ingests over the same partition function merge by
        merging corresponding shards.
        """
        if type(other) is not ShardedSketch:
            raise ValueError(f"cannot merge {type(other).__name__} into ShardedSketch")
        if other.shard_count != self.shard_count or other._router.seed != self._router.seed:
            raise ValueError(
                "cannot merge ShardedSketches with different partition functions"
            )
        for mine, theirs in zip(self.shards, other.shards):
            mine.merge(theirs)
        self.items_per_shard += other.items_per_shard
        return self

    def state_snapshot(self) -> dict[str, np.ndarray]:
        """Per-shard snapshots under ``shard{i}/`` prefixes, plus load counts.

        Snapshotable whenever every shard is — which includes ReliableSketch
        shards, so a sharded ``Ours`` can be epoch-published by the serving
        layer (``repro.serve``) exactly like the mergeable families.
        """
        if not self.snapshotable:
            raise UnmergeableSketchError(
                f"{self.shards[0].name} shards do not support state snapshots"
            )
        state: dict[str, np.ndarray] = {"items_per_shard": self.items_per_shard.copy()}
        for index, shard in enumerate(self.shards):
            for name, array in shard.state_snapshot().items():
                state[f"shard{index}/{name}"] = array
        return state

    def state_restore(self, state: dict[str, np.ndarray]) -> None:
        """Inverse of :meth:`state_snapshot` (delegates shard by shard).

        Validate-then-commit like the per-sketch restores: every shard's
        sub-state is restored into a throwaway copy first, and the live
        shards are only swapped once all of them succeeded — a snapshot
        that is malformed for shard ``k`` must not leave shards ``< k``
        already overwritten.
        """
        if not self.snapshotable:
            raise UnmergeableSketchError(
                f"{self.shards[0].name} shards do not support state snapshots"
            )
        items = self._check_snapshot_shape(
            state, "items_per_shard", (self.shard_count,)
        )
        restored: list[Sketch] = []
        for index, shard in enumerate(self.shards):
            prefix = f"shard{index}/"
            replica = copy.deepcopy(shard)
            replica.state_restore(
                {
                    name[len(prefix):]: array
                    for name, array in state.items()
                    if name.startswith(prefix)
                }
            )
            restored.append(replica)
        self.shards = restored
        self.items_per_shard = items.astype(np.int64, copy=True)

    def memory_bytes(self) -> float:
        return sum(shard.memory_bytes() for shard in self.shards)

    def hash_calls(self) -> int:
        return self._router.calls + sum(shard.hash_calls() for shard in self.shards)

    def router_hash_calls(self) -> int:
        """Partition-hash evaluations alone (excluded per-shard accounting)."""
        return self._router.calls

    def reset_hash_calls(self) -> None:
        self._router.reset_counter()
        for shard in self.shards:
            shard.reset_hash_calls()

    def parameters(self) -> dict:
        return {
            "shards": self.shard_count,
            "algorithm": self.shards[0].name,
            "shard_parameters": self.shards[0].parameters(),
        }

"""CU sketch — Count-Min with Conservative Update (Estan & Varghese 2002).

Identical layout to Count-Min, but an insertion only increments the counters
that currently hold the minimum value, which strictly reduces overestimation
for unit-value streams.  Used by the paper both as a baseline (fast/accurate
variants) and, in miniature, as the mice filter of ReliableSketch (§3.3).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.hashing import EncodedKeyBatch, HashFamily
from repro.metrics.memory import COUNTER_32
from repro.sketches.base import Sketch


class CUSketch(Sketch):
    """Conservative-update Count-Min sketch sized from a memory budget.

    Conservative update is order-dependent within a batch (each item's
    target depends on the counters left by its predecessors), so the batch
    datapath vectorizes the hashing only and applies the counter updates in
    stream order over plain Python lists — which keeps ``insert_batch``
    bit-identical to the scalar loop.
    """

    name = "CU"
    #: CU merges by element-wise addition like CM, but conservative update is
    #: order-dependent, so the merge carries a weaker guarantee — see
    #: :meth:`merge`.
    mergeable = True

    def __init__(self, memory_bytes: float, depth: int = 3, seed: int = 0) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        total_counters = COUNTER_32.entries_for(memory_bytes)
        self.depth = depth
        self.width = max(1, total_counters // depth)
        self._family = HashFamily(seed)
        self._hashes = self._family.draw_many(depth, self.width)
        self._tables = [[0] * self.width for _ in range(depth)]
        # Read-only NumPy mirror of the tables for query_batch, rebuilt
        # lazily after inserts (all mutations go through _conservative_update).
        self._tables_array: np.ndarray | None = None

    def insert(self, key: object, value: int = 1) -> None:
        self._check_insert(value)
        self._conservative_update([hash_fn(key) for hash_fn in self._hashes], value)

    def _conservative_update(self, indexes: list[int], value: int) -> None:
        """Conservative update at pre-computed per-row indexes.

        Raises every counter only up to the new lower bound (min + value);
        counters already above it are left untouched.  Shared verbatim by
        the scalar and batch insert paths, so the two cannot drift apart.
        """
        tables = self._tables
        target = min(row[idx] for row, idx in zip(tables, indexes)) + value
        for row, idx in zip(tables, indexes):
            if row[idx] < target:
                row[idx] = target
        self._tables_array = None

    def query(self, key: object) -> int:
        return min(
            row[hash_fn(key)] for row, hash_fn in zip(self._tables, self._hashes)
        )

    def insert_batch(self, keys: Sequence[object], values: Sequence[int] | int | None = None) -> None:
        batch = EncodedKeyBatch(keys)
        value_list = self._batch_values(values, len(batch)).tolist()
        # Hashing is vectorized across the whole batch; the conservative
        # updates then replay in stream order without further hashing.
        index_rows = [hash_fn.index_batch(batch).tolist() for hash_fn in self._hashes]
        for position, value in enumerate(value_list):
            self._conservative_update([row[position] for row in index_rows], value)

    def query_batch(self, keys: Sequence[object]) -> np.ndarray:
        batch = EncodedKeyBatch(keys)
        if self._tables_array is None:
            self._tables_array = np.asarray(self._tables, dtype=np.int64)
        readings = np.stack(
            [
                row[hash_fn.index_batch(batch)]
                for row, hash_fn in zip(self._tables_array, self._hashes)
            ]
        )
        return readings.min(axis=0)

    @property
    def _hash_seeds(self) -> tuple[int, ...]:
        return tuple(hash_fn.seed for hash_fn in self._hashes)

    def merge(self, other: "CUSketch") -> "CUSketch":
        """Element-wise table addition — exact only where order permits.

        The merged sketch still never underestimates (each key's counters
        hold at least its value sum from either operand), and it is exactly
        the single-pass CU result when the operands' occupied counters are
        disjoint in every row (then no update's conservative minimum ever
        spans both streams, so any interleaving produces the same tables).
        When occupancy overlaps, the merge is an upper bound on the
        single-pass CU — the standard distributed-CU compromise.
        """
        self._check_merge_peer(other, ("depth", "width", "_hash_seeds"))
        for row, other_row in zip(self._tables, other._tables):
            row[:] = [mine + theirs for mine, theirs in zip(row, other_row)]
        self._tables_array = None
        return self

    def state_snapshot(self) -> dict[str, np.ndarray]:
        """The counter rows as one ``int64`` matrix (CU stores Python lists)."""
        return {"tables": np.asarray(self._tables, dtype=np.int64)}

    def state_restore(self, state: dict[str, np.ndarray]) -> None:
        tables = self._check_snapshot_shape(state, "tables", (self.depth, self.width))
        self._tables = [[int(value) for value in row] for row in tables]
        self._tables_array = None

    def memory_bytes(self) -> float:
        return COUNTER_32.bytes_for(self.depth * self.width)

    def hash_calls(self) -> int:
        return self._family.total_calls()

    def reset_hash_calls(self) -> None:
        self._family.reset_counters()

    def parameters(self) -> dict:
        return {"depth": self.depth, "width": self.width}

"""CU sketch — Count-Min with Conservative Update (Estan & Varghese 2002).

Identical layout to Count-Min, but an insertion only increments the counters
that currently hold the minimum value, which strictly reduces overestimation
for unit-value streams.  Used by the paper both as a baseline (fast/accurate
variants) and, in miniature, as the mice filter of ReliableSketch (§3.3).
"""

from __future__ import annotations

from repro.hashing import HashFamily
from repro.metrics.memory import COUNTER_32
from repro.sketches.base import Sketch


class CUSketch(Sketch):
    """Conservative-update Count-Min sketch sized from a memory budget."""

    name = "CU"

    def __init__(self, memory_bytes: float, depth: int = 3, seed: int = 0) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        total_counters = COUNTER_32.entries_for(memory_bytes)
        self.depth = depth
        self.width = max(1, total_counters // depth)
        self._family = HashFamily(seed)
        self._hashes = self._family.draw_many(depth, self.width)
        self._tables = [[0] * self.width for _ in range(depth)]

    def insert(self, key: object, value: int = 1) -> None:
        self._check_insert(value)
        indexes = [hash_fn(key) for hash_fn in self._hashes]
        current = [row[idx] for row, idx in zip(self._tables, indexes)]
        # Conservative update: raise every counter only up to the new lower
        # bound (min + value); counters already above it are left untouched.
        target = min(current) + value
        for row, idx in zip(self._tables, indexes):
            if row[idx] < target:
                row[idx] = target

    def query(self, key: object) -> int:
        return min(
            row[hash_fn(key)] for row, hash_fn in zip(self._tables, self._hashes)
        )

    def memory_bytes(self) -> float:
        return COUNTER_32.bytes_for(self.depth * self.width)

    def hash_calls(self) -> int:
        return self._family.total_calls()

    def reset_hash_calls(self) -> None:
        self._family.reset_counters()

    def parameters(self) -> dict:
        return {"depth": self.depth, "width": self.width}

"""CU sketch — Count-Min with Conservative Update (Estan & Varghese 2002).

Identical layout to Count-Min, but an insertion only increments the counters
that currently hold the minimum value, which strictly reduces overestimation
for unit-value streams.  Used by the paper both as a baseline (fast/accurate
variants) and, in miniature, as the mice filter of ReliableSketch (§3.3).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.hashing import EncodedKeyBatch, HashFamily
from repro.kernels import resolve_backend
from repro.kernels.scalar import cu_apply
from repro.metrics.memory import COUNTER_32
from repro.sketches.base import Sketch


class CUSketch(Sketch):
    """Conservative-update Count-Min sketch sized from a memory budget.

    Conservative update is order-dependent within a batch (each item's
    target depends on the counters left by its predecessors), so
    ``insert_batch`` hands the vectorized per-row indexes to a conflict-free
    update kernel (:mod:`repro.kernels`) — bit-identical to the scalar loop,
    which applies the same transition (:func:`repro.kernels.scalar.cu_apply`)
    one item at a time.  The counter rows live in one native ``int64``
    matrix, shared by inserts, queries, merges and snapshots alike.
    """

    name = "CU"
    #: CU merges by element-wise addition like CM, but conservative update is
    #: order-dependent, so the merge carries a weaker guarantee — see
    #: :meth:`merge`.
    mergeable = True
    #: The counter matrix is the whole mutable state (snapshot contract).
    snapshotable = True

    def __init__(
        self,
        memory_bytes: float,
        depth: int = 3,
        seed: int = 0,
        kernel: str | None = None,
    ) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        total_counters = COUNTER_32.entries_for(memory_bytes)
        self.depth = depth
        self.width = max(1, total_counters // depth)
        self._family = HashFamily(seed)
        self._hashes = self._family.draw_many(depth, self.width)
        self._tables = np.zeros((depth, self.width), dtype=np.int64)
        self._kernel = resolve_backend(kernel)

    def insert(self, key: object, value: int = 1) -> None:
        self._check_insert(value)
        cu_apply(self._tables, [hash_fn(key) for hash_fn in self._hashes], value)

    def query(self, key: object) -> int:
        return int(
            min(row[hash_fn(key)] for row, hash_fn in zip(self._tables, self._hashes))
        )

    def insert_batch(self, keys: Sequence[object], values: Sequence[int] | int | None = None) -> None:
        batch = EncodedKeyBatch(keys)
        value_array = self._batch_values(values, len(batch))
        if not len(batch):
            return
        # Hashing is vectorized across the whole batch; the order-dependent
        # conservative updates then run through the dispatched kernel.
        indexes = np.stack([hash_fn.index_batch(batch) for hash_fn in self._hashes])
        self._kernel.cu_update(self._tables, indexes, value_array)

    def query_batch(self, keys: Sequence[object]) -> np.ndarray:
        batch = EncodedKeyBatch(keys)
        readings = np.stack(
            [
                row[hash_fn.index_batch(batch)]
                for row, hash_fn in zip(self._tables, self._hashes)
            ]
        )
        return readings.min(axis=0)

    @property
    def _hash_seeds(self) -> tuple[int, ...]:
        return tuple(hash_fn.seed for hash_fn in self._hashes)

    def merge(self, other: "CUSketch") -> "CUSketch":
        """Element-wise table addition — exact only where order permits.

        The merged sketch still never underestimates (each key's counters
        hold at least its value sum from either operand), and it is exactly
        the single-pass CU result when the operands' occupied counters are
        disjoint in every row (then no update's conservative minimum ever
        spans both streams, so any interleaving produces the same tables).
        When occupancy overlaps, the merge is an upper bound on the
        single-pass CU — the standard distributed-CU compromise.
        """
        self._check_merge_peer(other, ("depth", "width", "_hash_seeds"))
        self._tables += other._tables
        return self

    def state_snapshot(self) -> dict[str, np.ndarray]:
        """A copy of the counter matrix."""
        return {"tables": self._tables.copy()}

    def state_restore(self, state: dict[str, np.ndarray]) -> None:
        tables = self._check_snapshot_shape(state, "tables", (self.depth, self.width))
        self._tables = tables.astype(np.int64, copy=True)

    def memory_bytes(self) -> float:
        return COUNTER_32.bytes_for(self.depth * self.width)

    def hash_calls(self) -> int:
        return self._family.total_calls()

    def reset_hash_calls(self) -> None:
        self._family.reset_counters()

    def parameters(self) -> dict:
        return {"depth": self.depth, "width": self.width}

"""Baseline sketches used as competitors in the paper's evaluation (§6.1.4).

All sketches implement the :class:`repro.sketches.base.Sketch` interface:
``insert(key, value)`` and ``query(key)``.  Each constructor accepts a memory
budget in bytes and sizes its arrays the same way the paper's C++
implementation does (see :mod:`repro.metrics.memory`).
"""

from repro.sketches.base import Sketch, SketchDescription, UnmergeableSketchError
from repro.sketches.cm import CountMinSketch
from repro.sketches.cu import CUSketch
from repro.sketches.count import CountSketch
from repro.sketches.spacesaving import SpaceSaving
from repro.sketches.frequent import FrequentSketch
from repro.sketches.elastic import ElasticSketch
from repro.sketches.coco import CocoSketch
from repro.sketches.hashpipe import HashPipe
from repro.sketches.precision import Precision
from repro.sketches.sharded import ShardedSketch
from repro.sketches.registry import (
    COMPETITORS,
    build_sketch,
    competitor_names,
    delta_names,
    is_mergeable,
    mergeable_names,
    supports_deltas,
)

__all__ = [
    "Sketch",
    "SketchDescription",
    "UnmergeableSketchError",
    "CountMinSketch",
    "CUSketch",
    "CountSketch",
    "SpaceSaving",
    "FrequentSketch",
    "ElasticSketch",
    "CocoSketch",
    "HashPipe",
    "Precision",
    "ShardedSketch",
    "build_sketch",
    "competitor_names",
    "is_mergeable",
    "mergeable_names",
    "supports_deltas",
    "delta_names",
    "COMPETITORS",
]

"""Elastic sketch (Yang et al., SIGCOMM 2018).

The closest prior work to ReliableSketch: its heavy part also uses an
election bucket with positive and negative votes, but the negative counter is
reset on replacement, so it cannot bound the error (§7 of the paper).

Structure:

* **Heavy part** — an array of buckets, each holding a candidate key, its
  positive votes, a negative-vote counter and an "ejected" flag.  When
  ``negative / positive`` exceeds the eviction ratio ``λ`` (8 in the original
  paper), the candidate is evicted to the light part and replaced.
* **Light part** — a single-array CM sketch of 8-bit counters.

Memory is split ``1 : light_ratio`` between heavy and light parts
(``light_ratio = 3`` as recommended by the original authors and used in
§6.1.4).
"""

from __future__ import annotations

from repro.hashing import HashFamily
from repro.metrics.memory import ELASTIC_HEAVY_BUCKET, FieldSpec, MemoryModel
from repro.sketches.base import Sketch

_LIGHT_COUNTER = MemoryModel((FieldSpec("counter", 8),))
_LIGHT_COUNTER_MAX = 255


class _HeavyBucket:
    """One heavy-part bucket: candidate key, votes and eviction flag."""

    __slots__ = ("key", "positive", "negative", "flag")

    def __init__(self) -> None:
        self.key = None
        self.positive = 0
        self.negative = 0
        self.flag = False


class ElasticSketch(Sketch):
    """Elastic sketch sized from a memory budget."""

    name = "Elastic"

    def __init__(
        self,
        memory_bytes: float,
        light_ratio: float = 3.0,
        eviction_ratio: int = 8,
        seed: int = 0,
    ) -> None:
        if light_ratio <= 0:
            raise ValueError("light_ratio must be positive")
        if eviction_ratio <= 0:
            raise ValueError("eviction_ratio must be positive")
        heavy_bytes = memory_bytes / (1.0 + light_ratio)
        light_bytes = memory_bytes - heavy_bytes
        self.eviction_ratio = eviction_ratio
        self.heavy_width = max(1, ELASTIC_HEAVY_BUCKET.entries_for(heavy_bytes))
        self.light_width = max(1, _LIGHT_COUNTER.entries_for(light_bytes))
        self._family = HashFamily(seed)
        self._heavy_hash = self._family.draw(self.heavy_width)
        self._light_hash = self._family.draw(self.light_width)
        self._heavy = [_HeavyBucket() for _ in range(self.heavy_width)]
        self._light = [0] * self.light_width

    def _light_insert(self, key: object, value: int) -> None:
        index = self._light_hash(key)
        self._light[index] = min(_LIGHT_COUNTER_MAX, self._light[index] + value)

    def _light_query(self, key: object) -> int:
        return self._light[self._light_hash(key)]

    def insert(self, key: object, value: int = 1) -> None:
        self._check_insert(value)
        bucket = self._heavy[self._heavy_hash(key)]
        if bucket.key is None:
            bucket.key = key
            bucket.positive = value
            bucket.negative = 0
            bucket.flag = False
            return
        if bucket.key == key:
            bucket.positive += value
            return
        bucket.negative += value
        if bucket.negative >= self.eviction_ratio * bucket.positive:
            # Evict the incumbent to the light part and install the newcomer.
            self._light_insert(bucket.key, bucket.positive)
            bucket.key = key
            bucket.positive = value
            bucket.negative = 1  # Elastic resets the vote-all counter.
            bucket.flag = True
        else:
            self._light_insert(key, value)

    def query(self, key: object) -> int:
        bucket = self._heavy[self._heavy_hash(key)]
        if bucket.key == key:
            estimate = bucket.positive
            if bucket.flag:
                estimate += self._light_query(key)
            return estimate
        return self._light_query(key)

    def memory_bytes(self) -> float:
        return ELASTIC_HEAVY_BUCKET.bytes_for(self.heavy_width) + _LIGHT_COUNTER.bytes_for(
            self.light_width
        )

    def hash_calls(self) -> int:
        return self._family.total_calls()

    def reset_hash_calls(self) -> None:
        self._family.reset_counters()

    def parameters(self) -> dict:
        return {
            "heavy_width": self.heavy_width,
            "light_width": self.light_width,
            "eviction_ratio": self.eviction_ratio,
        }
